#!/usr/bin/env python
"""Device playground: program and read the FeFET / DG FeFET compact models.

Walks through the device physics the architecture is built on:

1. the Preisach hysteresis loop of the ferroelectric layer;
2. programming a FeFET with ±4 V pulses and reading its two V_TH states;
3. the DG FeFET four-input product I_SL = x·G·y·z;
4. the back-gate sweep that realises the fractional annealing factor, and
   the temperature-encoder lookup built on top of it.

Run:  python examples/device_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.core import FractionalFactor, VbgEncoder
from repro.devices import VBG_MAX, DGFeFET, FeFET, PreisachFerroelectric
from repro.utils.tables import render_series, render_table


def ascii_plot(xs, ys, width=61, height=12, label="") -> str:
    """A minimal ASCII scatter for terminal-only environments."""
    xs, ys = np.asarray(xs, dtype=float), np.asarray(ys, dtype=float)
    grid = [[" "] * width for _ in range(height)]
    x0, x1 = xs.min(), xs.max()
    y0, y1 = ys.min(), ys.max()
    for x, y in zip(xs, ys):
        col = int((x - x0) / (x1 - x0 + 1e-12) * (width - 1))
        row = int((y - y0) / (y1 - y0 + 1e-12) * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = ["".join(row) for row in grid]
    header = f"{label}  (x: {x0:.2g}..{x1:.2g}, y: {y0:.2g}..{y1:.2g})"
    return "\n".join([header] + lines)


def main() -> None:
    # 1. Preisach hysteresis -------------------------------------------------
    fe = PreisachFerroelectric()
    v, p = fe.major_loop(v_max=4.0, points=61)
    print(ascii_plot(v, p, label="Preisach major loop: P/Ps vs V"))
    print()

    # 2. FeFET programming ---------------------------------------------------
    fefet = FeFET()
    rows = []
    for label, program in (
        ("+4 V / 1 µs (set '1')", fefet.program_low_vth),
        ("-4 V / 1 µs (set '0')", fefet.program_high_vth),
    ):
        vth = program()
        i_read = float(fefet.drain_current(0.5, 0.1))
        rows.append((label, f"{vth:+.2f} V", fefet.stored_bit, f"{i_read:.3e} A"))
    print(render_table(
        ["program pulse", "V_TH", "stored bit", "I_D @ V_G=0.5 V"],
        rows,
        title="FeFET programming (Fig 2a/2b)",
    ))
    print()

    # 3. DG FeFET four-input product ----------------------------------------
    cell = DGFeFET()
    cell.program_bit(1)
    rows = []
    for x in (0, 1):
        for y in (0, 1):
            for z in (0.0, VBG_MAX):
                i = float(cell.sl_current(x, y, z))
                rows.append((x, 1, y, f"{z:.1f} V", f"{i:.3e} A"))
    print(render_table(
        ["x (FG)", "G", "y (DL)", "z (BG)", "I_SL"],
        rows,
        title="DG FeFET four-input product (Fig 6a)",
    ))
    print()

    # 4. Back-gate sweep and the temperature encoder -------------------------
    factor = FractionalFactor()
    temps = np.linspace(0, factor.t_max, 9)
    encoder = VbgEncoder(
        factor, transfer=lambda vb: float(cell.normalized_factor(np.asarray(vb)))
    )
    print(render_series(
        "T",
        [float(t) for t in temps],
        {
            "f(T) requested": [float(factor.value(np.asarray(t))) for t in temps],
            "V_BG chosen (V)": [encoder.encode(float(t)) for t in temps],
            "factor realised": [encoder.realized_factor(float(t)) for t in temps],
        },
        title="Temperature encoder: inverting the device curve (Fig 6c)",
        float_fmt="{:.3f}",
    ))


if __name__ == "__main__":
    main()
