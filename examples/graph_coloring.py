#!/usr/bin/env python
"""Graph coloring through the QUBO path (a Table 1 COP class).

Colors the Petersen graph with 3 colors: encode as a penalty QUBO, convert
to Ising, fold the linear terms in with an ancilla spin, and anneal with
the in-situ solver — the same route any constrained COP takes onto the
crossbar.

Run:  python examples/graph_coloring.py
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core import solve_ising
from repro.ising import GraphColoringProblem, QuboModel
from repro.utils.tables import render_table


def main() -> None:
    graph = nx.petersen_graph()
    edges = np.array(graph.edges())
    problem = GraphColoringProblem(graph.number_of_nodes(), edges, num_colors=3)
    print(
        f"Petersen graph: {graph.number_of_nodes()} vertices, "
        f"{graph.number_of_edges()} edges, chromatic number 3 — "
        f"{problem.num_variables} binary variables one-hot encoded."
    )

    qubo = problem.to_qubo()
    model = qubo.to_ising()
    print(f"Ising model: {model.num_spins} spins (+1 ancilla for the fields)\n")

    best = None
    for attempt in range(5):
        result = solve_ising(model, method="insitu", iterations=8_000, seed=attempt)
        if best is None or result.best_energy < best.best_energy:
            best = result
        if abs(best.best_energy - problem.ground_energy) < 1e-9:
            break

    x = QuboModel.sigma_to_x(best.best_sigma)
    colors = problem.decode(x)
    violations = problem.violations(x)
    rows = [(v, int(c)) for v, c in enumerate(colors)]
    print(render_table(["vertex", "color"], rows, title="Best coloring found"))
    print(
        f"\nQUBO energy {best.best_energy:g} (ground {problem.ground_energy:g}); "
        f"violations: {violations}"
    )
    if problem.is_proper(x):
        print("Proper 3-coloring found.")
    else:
        print("Not a proper coloring — try more iterations/restarts.")


if __name__ == "__main__":
    main()
