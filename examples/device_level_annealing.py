#!/usr/bin/env python
"""Device-accurate annealing: every E_inc sensed through the compact models.

Runs the in-situ machine with the "device" crossbar backend on a small
Max-Cut instance: each iteration drives the FG/DL lines, evaluates every
activated DG FeFET cell (with threshold variation and wire IR-drop), muxes
the column currents through the SAR ADC and folds the codes in the
shift-and-add — exactly the Fig 6d read path.  Compares ideal vs varied
arrays against the brute-force optimum.

Run:  python examples/device_level_annealing.py
"""

from __future__ import annotations

from repro.arch import InSituCimAnnealer
from repro.devices import VariationModel
from repro.ising import MaxCutProblem
from repro.utils.tables import render_table
from repro.utils.units import format_energy, format_time


def main() -> None:
    problem = MaxCutProblem.random(16, 48, seed=31)
    model = problem.to_ising()
    _, e_min = model.brute_force_minimum()
    optimum = problem.cut_from_energy(e_min)
    print(
        f"Instance: {problem.num_nodes} nodes / {problem.num_edges} edges, "
        f"brute-force optimum cut = {optimum:g}\n"
    )

    scenarios = {
        "ideal array": VariationModel(),
        "25 mV V_TH spread": VariationModel(vth_sigma=0.025),
        "50 mV spread + 2 % read noise": VariationModel(
            vth_sigma=0.05, read_noise_sigma=0.02
        ),
    }
    rows = []
    for label, variation in scenarios.items():
        machine = InSituCimAnnealer(
            model, backend="device", variation=variation, seed=3
        )
        result = machine.run(800)
        cut = problem.cut_value(result.anneal.best_sigma)
        rows.append(
            (
                label,
                f"{cut:g}",
                f"{cut / optimum:.3f}",
                format_energy(result.annealing_energy),
                format_time(result.annealing_time),
            )
        )
    print(
        render_table(
            ["array condition", "best cut", "norm.", "energy", "time"],
            rows,
            title="Device-accurate in-situ annealing (800 iterations)",
        )
    )
    print("\nNote: the 'device' backend evaluates every activated cell through")
    print("the DG FeFET compact model — use it for small arrays; the")
    print("'behavioral' backend scales to the paper's 3000-node instances.")


if __name__ == "__main__":
    main()
