#!/usr/bin/env python
"""0/1 knapsack through the QUBO path (a Table 1 COP class).

Encodes a 12-item knapsack with the log-slack construction, anneals it, and
compares against the exact dynamic-programming optimum.

Run:  python examples/knapsack.py
"""

from __future__ import annotations

import numpy as np

from repro.core import solve_ising
from repro.ising import KnapsackProblem, QuboModel
from repro.utils.tables import render_table


def main() -> None:
    problem = KnapsackProblem.random(12, seed=4)
    print(
        f"Knapsack: {problem.num_items} items, capacity {problem.capacity}, "
        f"{problem.num_slack_bits} slack bits → {problem.num_variables} variables"
    )

    exact_sel, exact_value = problem.brute_force_optimum()
    model = problem.to_qubo().to_ising().with_ancilla()

    best_sel, best_value = None, -np.inf
    for attempt in range(6):
        result = solve_ising(model, method="insitu", iterations=10_000, seed=attempt)
        sigma = result.best_sigma
        if sigma[0] == -1:  # gauge: ancilla must read +1
            sigma = -sigma
        x = QuboModel.sigma_to_x(sigma[1:])
        sel = problem.decode(x)
        if problem.is_feasible(sel) and problem.total_value(sel) > best_value:
            best_sel, best_value = sel, problem.total_value(sel)

    rows = [
        (
            "exact (DP)",
            f"{exact_value:g}",
            f"{problem.total_weight(exact_sel):g}/{problem.capacity}",
            "".join(map(str, exact_sel)),
        ),
        (
            "in-situ annealer",
            f"{best_value:g}",
            f"{problem.total_weight(best_sel):g}/{problem.capacity}",
            "".join(map(str, best_sel)),
        ),
    ]
    print(render_table(["solver", "value", "weight/cap", "selection"], rows))
    print(f"\nAnnealer reached {best_value / exact_value:.1%} of the DP optimum.")


if __name__ == "__main__":
    main()
