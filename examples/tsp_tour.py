#!/usr/bin/env python
"""Travelling salesman on the annealer (permutation-structured COP).

Encodes a 5-city Euclidean TSP with the one-hot Lucas construction
(25 binary variables + ancilla), anneals it with restarts, and compares the
best valid tour against the exact optimum.

Run:  python examples/tsp_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.core import solve_ising
from repro.ising import QuboModel, TravellingSalesmanProblem
from repro.utils.tables import render_table


def main() -> None:
    tsp = TravellingSalesmanProblem.random_euclidean(5, seed=11)
    optimal_tour, optimal_len = tsp.brute_force_tour()
    print(
        f"TSP: {tsp.num_cities} cities → {tsp.num_variables} one-hot variables, "
        f"penalty A = {tsp.penalty:.2f}"
    )
    print(f"Exact optimum: tour {optimal_tour.tolist()} length {optimal_len:.4f}\n")

    model = tsp.to_qubo().to_ising().with_ancilla()
    rows = []
    best_len, best_tour = np.inf, None
    for attempt in range(8):
        result = solve_ising(model, method="insitu", iterations=15_000, seed=attempt)
        sigma = result.best_sigma
        if sigma[0] == -1:
            sigma = -sigma
        tour = tsp.decode(QuboModel.sigma_to_x(sigma[1:]))
        if tour is None:
            rows.append((attempt, "invalid", "—"))
            continue
        length = tsp.tour_length(tour)
        rows.append((attempt, str(tour.tolist()), f"{length:.4f}"))
        if length < best_len:
            best_len, best_tour = length, tour
    print(render_table(["restart", "decoded tour", "length"], rows))
    if best_tour is None:
        print("\nNo valid tour decoded — increase iterations/restarts.")
        return
    print(
        f"\nBest found: {best_tour.tolist()} length {best_len:.4f} "
        f"({best_len / optimal_len:.2%} of optimal)"
    )


if __name__ == "__main__":
    main()
