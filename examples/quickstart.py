#!/usr/bin/env python
"""Quickstart: solve a Max-Cut problem with the in-situ CiM annealer.

Builds a random 64-node Max-Cut instance, solves it three ways — the
paper's fractional in-situ flow, the direct-E Metropolis baseline, and
MESA — and prints the resulting cuts side by side.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import MaxCutProblem, solve_maxcut
from repro.analysis import compute_reference_cut
from repro.utils.tables import render_table


def main() -> None:
    problem = MaxCutProblem.random(64, 400, seed=1)
    print(f"Instance: {problem.name} — {problem.num_nodes} nodes, "
          f"{problem.num_edges} edges (total weight {problem.total_weight:g})")

    # A best-known reference from a quick multi-restart battery.
    reference = compute_reference_cut(problem, restarts=2, iterations=20_000)
    print(f"Reference (best-known proxy) cut: {reference:g}\n")

    rows = []
    for method in ("insitu", "sa", "mesa"):
        result = solve_maxcut(
            problem,
            method=method,
            iterations=2_000,
            seed=7,
            reference_cut=reference,
        )
        rows.append(
            (
                result.anneal.solver,
                f"{result.best_cut:g}",
                f"{result.normalized_cut:.3f}",
                "yes" if result.is_success() else "no",
                f"{result.anneal.acceptance_rate:.0%}",
            )
        )
    print(
        render_table(
            ["solver", "best cut", "normalised", "≥ 0.9 success", "acceptance"],
            rows,
            title="2000-iteration comparison",
        )
    )


if __name__ == "__main__":
    main()
