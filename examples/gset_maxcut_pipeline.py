#!/usr/bin/env python
"""Full pipeline on a Gset-class instance with hardware instrumentation.

Reproduces, on one 800-node G1-class instance, what the paper's evaluation
does per instance — build/parse the graph, map it onto the three machines
(this work, CiM/FPGA, CiM/ASIC), run the paper's 700-iteration budget, and
report solution quality plus the energy/time ledgers with reduction
ratios — and demonstrates the mapping pipeline end to end: the instance is
built on the sparse CSR backend, sharded over a grid of ``tile_size``-row
crossbar arrays, and laid out by the ``reorder="auto"`` pass (RCM vs
min-cut partition, scored by exact active-tile count).  Reordering is
transparent, so the tiled machine's trajectory matches the monolithic
default bit for bit on these ±1-weighted instances.

Run:  python examples/gset_maxcut_pipeline.py [path/to/instance.gset]
"""

from __future__ import annotations

import sys

from repro.analysis import compute_reference_cut
from repro.arch import DirectECimAnnealer, HardwareConfig, InSituCimAnnealer
from repro.ising import PAPER_ITERATIONS, generate_random, parse_gset
from repro.utils.tables import render_table
from repro.utils.units import format_energy, format_time

TILE_SIZE = 64


def load_problem():
    """Load a Gset file when given, else generate the G1-class instance."""
    if len(sys.argv) > 1:
        problem = parse_gset(sys.argv[1], name=sys.argv[1])
        print(f"Loaded {problem.name}: n={problem.num_nodes} m={problem.num_edges}")
        return problem
    problem = generate_random(800, 19_176, seed=1000, name="G1-class synthetic")
    print("No file given — generated a synthetic G1-class instance "
          "(800 nodes / 19 176 edges).")
    return problem


def main() -> None:
    problem = load_problem()
    # The auto heuristic puts every Gset-scale instance on the CSR
    # backend, so the tiled machine shards it without densifying.
    model = problem.to_ising(backend="auto")
    iterations = PAPER_ITERATIONS.get(problem.num_nodes, 1_000)
    print(f"Coupling backend: {type(model).__name__}")
    print(f"Iteration budget: {iterations} (paper Sec. 4.1)\n")

    machines = {
        "This work": InSituCimAnnealer(
            model, tile_size=TILE_SIZE, reorder="auto", seed=1
        ),
        "CiM/FPGA": DirectECimAnnealer(model, HardwareConfig.baseline_fpga(), seed=1),
        "CiM/ASIC": DirectECimAnnealer(model, HardwareConfig.baseline_asic(), seed=1),
    }

    # What the mapping pass decided before any annealing runs.
    ours_machine = machines["This work"]
    mapping = ours_machine.mapping.summary()
    crossbar = ours_machine.crossbar
    print(f"Tiled mapping: {crossbar.num_tiles} of {crossbar.grid_tiles} "
          f"possible {TILE_SIZE}×{TILE_SIZE} tiles programmed "
          f"({crossbar.occupancy:.1%} of the grid)")
    print(f"Spin ordering: {mapping['ordering']} "
          f"(bandwidth {mapping['bandwidth']})"
          + ("" if ours_machine.permutation is None else
             " — solutions are mapped back to the input order") + "\n")

    results = {label: machine.run(iterations) for label, machine in machines.items()}

    reference = compute_reference_cut(problem, restarts=1, iterations=40_000)
    ours = results["This work"]
    rows = []
    for label, result in results.items():
        cut = problem.cut_from_energy(result.anneal.best_energy)
        rows.append(
            (
                label,
                f"{cut:g}",
                f"{cut / reference:.3f}",
                format_energy(result.annealing_energy),
                format_time(result.annealing_time),
                f"{result.annealing_energy / ours.annealing_energy:.0f}x",
                f"{result.annealing_time / ours.annealing_time:.2f}x",
            )
        )
    print(
        render_table(
            ["machine", "best cut", "norm.", "energy", "time", "E ratio", "t ratio"],
            rows,
            title=f"Per-instance evaluation (reference cut {reference:g})",
        )
    )
    print("\nIn-situ machine component ledger:")
    print(ours.ledger.as_table())


if __name__ == "__main__":
    main()
