"""Maximum independent set as a QUBO.

Select the largest vertex set with no internal edges:

.. math::  \\min\\; -\\sum_v x_v + P \\sum_{(u,v) \\in E} x_u x_v .

With ``P > 1`` every optimal QUBO solution is a maximal independent set.
Included as the simplest constrained COP — useful in tests because small
instances have easily verified optima.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ising.qubo import QuboModel


@dataclass
class MaxIndependentSetProblem:
    """A maximum-independent-set instance.

    Parameters
    ----------
    num_nodes:
        Number of vertices.
    edges:
        ``(m, 2)`` endpoint array.
    penalty:
        Edge-conflict penalty ``P > 1`` (default 2).
    """

    num_nodes: int
    edges: np.ndarray
    penalty: float = 2.0
    name: str = "mis"
    _edges: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.penalty <= 1.0:
            raise ValueError("penalty must exceed 1 for exactness")
        e = np.asarray(self.edges, dtype=np.intp).reshape(-1, 2)
        if e.size and (e.min() < 0 or e.max() >= self.num_nodes):
            raise ValueError("edge endpoints out of range")
        if np.any(e[:, 0] == e[:, 1]):
            raise ValueError("self loops are not allowed")
        self._edges = e

    def to_qubo(self) -> QuboModel:
        """Build the penalty QUBO of the module docstring (minimisation)."""
        n = self.num_nodes
        Q = np.zeros((n, n), dtype=np.float64)
        for u, v in self._edges:
            Q[u, v] += self.penalty / 2.0
            Q[v, u] += self.penalty / 2.0
        q = -np.ones(n, dtype=np.float64)
        return QuboModel(Q, q, name=self.name)

    def is_independent(self, x) -> bool:
        """Whether the selected vertices form an independent set."""
        arr = np.asarray(x)
        return not any(arr[u] and arr[v] for u, v in self._edges)

    def set_size(self, x) -> int:
        """Number of selected vertices."""
        return int(np.asarray(x).sum())

    def brute_force_optimum(self) -> int:
        """Exact maximum independent-set size (n ≤ 20)."""
        n = self.num_nodes
        if n > 20:
            raise ValueError("brute force limited to 20 vertices")
        best = 0
        for bits in range(1 << n):
            x = [(bits >> i) & 1 for i in range(n)]
            if self.is_independent(x):
                best = max(best, sum(x))
        return best

    @classmethod
    def random(
        cls, num_nodes: int, num_edges: int, seed=None, name: str = "mis"
    ) -> "MaxIndependentSetProblem":
        """Random simple graph instance."""
        from repro.ising.gset import random_edge_set

        edges, _ = random_edge_set(num_nodes, num_edges, seed=seed)
        return cls(num_nodes, edges, name=name)
