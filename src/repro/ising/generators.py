"""Structured benchmark-instance generators: circulants, scatters, SBMs.

The scaling and mapping benchmarks all need instances with a *known*
structure so their acceptance assertions mean something: a circulant is
perfectly banded (the friendly case for a tiled crossbar), a scattered
relabelling of it hides that band (the case RCM recovers), and a planted
partition / stochastic-block-model graph is clustered with **no** banded
ordering at all (the case min-cut partitioning opens).  These builders
used to be copy-pasted across the benchmark scripts; this module is the
single library home, also usable from tests and examples.

Every generator is deterministic for a fixed ``seed`` and returns plain
:class:`~repro.ising.maxcut.MaxCutProblem` instances (convert with
``problem.to_ising(backend=...)``); the scattered builders additionally
return the ground-truth layout so benches can compare a mapper against
the planted structure it is supposed to rediscover.
"""

from __future__ import annotations

import numpy as np

from repro.ising.gset import random_edge_set
from repro.ising.maxcut import MaxCutProblem
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_count, check_probability


def circulant_edges(n: int, offsets=(1, 2, 3)) -> tuple[np.ndarray, np.ndarray]:
    """Endpoint arrays of the circulant: ``i ~ i ± k (mod n)`` per offset.

    The natural labelling is banded with bandwidth ``max(offsets)`` (plus
    the wrap-around edges), which is what keeps a tiled crossbar's
    occupied set at a few block diagonals.
    """
    n = check_count("n", n, minimum=2)
    offsets = tuple(int(k) for k in offsets)
    if not offsets or min(offsets) < 1:
        raise ValueError(f"offsets must be positive integers, got {offsets}")
    if n <= 2 * max(offsets):
        raise ValueError(
            f"circulant needs n > twice the largest offset "
            f"({max(offsets)}), got n={n}"
        )
    base = np.arange(n)
    u = np.concatenate([base] * len(offsets))
    v = np.concatenate([(base + k) % n for k in offsets])
    return u, v


def circulant_maxcut(
    n: int,
    offsets=(1, 2, 3),
    weighted: bool = True,
    seed=99,
    name: str | None = None,
) -> MaxCutProblem:
    """Banded Max-Cut instance: degree-``2·len(offsets)`` circulant.

    The default offsets give the degree-6 graph the tiled-scaling bench
    solves at 100k nodes; weights are ±1 when ``weighted`` (the
    exactly-representable G-set convention) else all one.
    """
    u, v = circulant_edges(n, offsets)
    edges = np.stack([np.minimum(u, v), np.maximum(u, v)], axis=1)
    rng = ensure_rng(seed)
    if weighted:
        weights = rng.choice(np.array([-1.0, 1.0]), size=edges.shape[0])
    else:
        weights = np.ones(edges.shape[0], dtype=np.float64)
    degree = 2 * len(offsets)
    return MaxCutProblem(
        n, edges, weights, name=name or f"circulant-{n}-d{degree}"
    )


def scattered_circulant_maxcut(
    n: int,
    offsets=(1, 2, 3),
    weighted: bool = True,
    seed=99,
    name: str | None = None,
):
    """A circulant with scrambled node labels, plus the oracle layout.

    The underlying graph is perfectly banded; the random relabelling
    scatters its edges over the whole coupling matrix — exactly the
    mapping problem a bandwidth-reducing reorder pass must undo.  Returns
    ``(problem, oracle)`` where ``oracle`` is the
    :class:`~repro.core.reorder.Permutation` that restores the planted
    band (a real mapper does not know it; RCM has to rediscover an
    equivalent one).
    """
    from repro.core.reorder import Permutation  # local import, no cycle

    u, v = circulant_edges(n, offsets)
    rng = ensure_rng(seed)
    relabel = rng.permutation(n)
    u, v = relabel[u], relabel[v]
    edges = np.stack([np.minimum(u, v), np.maximum(u, v)], axis=1)
    if weighted:
        weights = rng.choice(np.array([-1.0, 1.0]), size=edges.shape[0])
    else:
        weights = np.ones(edges.shape[0], dtype=np.float64)
    degree = 2 * len(offsets)
    problem = MaxCutProblem(
        n, edges, weights,
        name=name or f"scattered-circulant-{n}-d{degree}",
    )
    oracle = np.empty(n, dtype=np.intp)
    oracle[relabel] = np.arange(n)  # forward: scattered label → band position
    return problem, Permutation(oracle, strategy="oracle")


def planted_partition_maxcut(
    n: int,
    communities: int,
    intra_degree: float = 8.0,
    community_degree: float = 6.0,
    pair_edges: int = 8,
    hub_fraction: float = 0.04,
    hub_bias: float = 0.95,
    weighted: bool = True,
    seed=0,
    name: str | None = None,
):
    """Clustered Max-Cut instance: a planted-partition (SBM) graph.

    ``communities`` equal-sized clusters (``n`` must divide evenly) with
    a dense random subgraph inside each, connected through a sparse
    random community-level graph — the structure of social/community
    networks, and the instance family where bandwidth reordering is the
    wrong objective (there is no hidden band to recover) while min-cut
    partitioning aligns whole clusters onto crossbar tiles.

    Parameters
    ----------
    intra_degree:
        Average degree of the uniform random subgraph inside a community.
    community_degree:
        Average degree of the random community-level graph; only the
        sampled community pairs exchange edges ("sparse inter-block
        edges"), so the clustered structure survives at any size.
    pair_edges:
        Edges drawn between each connected community pair.
    hub_fraction / hub_bias:
        Degree correction: the first ``hub_fraction`` share of every
        community are hubs, each starred to half its community, and every
        inter-community endpoint lands on a hub with probability
        ``hub_bias`` (communities talk through their hubs — the
        degree-corrected SBM shape of real community graphs).  Set
        ``hub_fraction=0`` for the vanilla uniform SBM.
    weighted / seed / name:
        As for the other generators.

    Returns
    -------
    ``(problem, membership)`` — the instance (node labels scrambled, so
    the planted clustering is hidden from the mapper) and the
    ground-truth community id per (scrambled) node.
    """
    n = check_count("n", n, minimum=2)
    communities = check_count("communities", communities, minimum=1)
    pair_edges = check_count("pair_edges", pair_edges)
    check_probability("hub_bias", hub_bias)
    if n % communities != 0:
        raise ValueError(
            f"n={n} must divide into {communities} equal communities "
            f"(community size n/communities keeps the planted structure "
            f"exact)"
        )
    size = n // communities
    if size < 2:
        raise ValueError("communities must hold at least 2 nodes each")
    if not 0.0 <= hub_fraction < 1.0:
        raise ValueError(f"hub_fraction must be in [0, 1), got {hub_fraction}")
    rng = ensure_rng(seed)
    num_hubs = int(round(hub_fraction * size))
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for c in range(communities):
        base = c * size
        m_in = min(int(round(intra_degree * size / 2.0)), size * (size - 1) // 2)
        intra, _ = random_edge_set(size, m_in, seed=rng)
        rows.append(base + intra[:, 0])
        cols.append(base + intra[:, 1])
        for h in range(num_hubs):
            star = rng.choice(np.arange(1, size), size=size // 2, replace=False)
            rows.append(np.full(star.size, base + h, dtype=np.intp))
            cols.append(base + star)
    if communities > 1:
        m_c = min(
            int(round(community_degree * communities / 2.0)),
            communities * (communities - 1) // 2,
        )
        community_pairs, _ = random_edge_set(communities, m_c, seed=rng)

        def endpoints(comm: int) -> np.ndarray:
            local = rng.integers(0, size, size=pair_edges)
            if num_hubs:
                hub = rng.random(pair_edges) < hub_bias
                local = np.where(
                    hub, rng.integers(0, num_hubs, size=pair_edges), local
                )
            return comm * size + local

        for a, b in community_pairs:
            rows.append(endpoints(int(a)))
            cols.append(endpoints(int(b)))
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    keep = r != c
    r, c = r[keep], c[keep]
    key = np.minimum(r, c) * n + np.maximum(r, c)
    _, first = np.unique(key, return_index=True)
    r, c = r[first], c[first]
    if weighted:
        weights = rng.choice(np.array([-1.0, 1.0]), size=r.size)
    else:
        weights = np.ones(r.size, dtype=np.float64)
    relabel = rng.permutation(n)
    membership = np.empty(n, dtype=np.intp)
    membership[relabel] = np.arange(n) // size
    edges = np.stack(
        [np.minimum(relabel[r], relabel[c]), np.maximum(relabel[r], relabel[c])],
        axis=1,
    )
    problem = MaxCutProblem(
        n, edges, weights,
        name=name or f"planted-partition-{n}-c{communities}",
    )
    return problem, membership
