"""Max-Cut problems and their exact Ising embedding.

Max-Cut is the paper's representative COP (Sec. 4, ref [38]): partition the
vertices of a weighted graph so that the total weight of edges crossing the
partition is maximised.  With ±1 spins labelling the two sides,

.. math::  \\mathrm{cut}(\\sigma) = \\sum_{(i,j)\\in E} w_{ij}
           \\frac{1 - \\sigma_i\\sigma_j}{2}
           = \\frac{W_{tot}}{2} - \\sigma^T \\frac{W}{4} \\sigma,

so minimising the Ising energy with ``J = W/4`` maximises the cut and
``cut = W_tot/2 − E``.  Both directions of that bookkeeping are implemented
here and checked by the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.ising.model import IsingModel
from repro.ising.sparse import BACKENDS, SparseIsingModel, recommended_backend
from repro.utils.validation import check_spin_vector


@dataclass
class MaxCutProblem:
    """A weighted Max-Cut instance stored as edge lists.

    Parameters
    ----------
    num_nodes:
        Number of vertices ``n``.
    edges:
        ``(m, 2)`` integer array of endpoints, each pair unique, ``u != v``.
    weights:
        Optional ``(m,)`` edge weights (default all ones).
    name:
        Instance label (e.g. ``"gset-like-800-r0"``).
    """

    num_nodes: int
    edges: np.ndarray
    weights: np.ndarray | None = None
    name: str = "maxcut"
    _edges: np.ndarray = field(init=False, repr=False)
    _weights: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n = int(self.num_nodes)
        if n <= 0:
            raise ValueError("num_nodes must be positive")
        e = np.asarray(self.edges, dtype=np.intp)
        if e.size == 0:
            e = e.reshape(0, 2)
        if e.ndim != 2 or e.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {e.shape}")
        if e.size and (e.min() < 0 or e.max() >= n):
            raise ValueError("edge endpoints out of range")
        if np.any(e[:, 0] == e[:, 1]):
            raise ValueError("self loops are not allowed")
        key = np.minimum(e[:, 0], e[:, 1]) * n + np.maximum(e[:, 0], e[:, 1])
        if np.unique(key).size != key.size:
            raise ValueError("duplicate edges are not allowed")
        if self.weights is None:
            w = np.ones(e.shape[0], dtype=np.float64)
        else:
            w = np.asarray(self.weights, dtype=np.float64)
            if w.shape != (e.shape[0],):
                raise ValueError(
                    f"weights must have shape ({e.shape[0]},), got {w.shape}"
                )
        self.num_nodes = n
        self._edges = e
        self._weights = w

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return self._edges.shape[0]

    @property
    def edge_array(self) -> np.ndarray:
        """The validated ``(m, 2)`` endpoint array (do not mutate)."""
        return self._edges

    @property
    def weight_array(self) -> np.ndarray:
        """The validated ``(m,)`` weight array (do not mutate)."""
        return self._weights

    @property
    def total_weight(self) -> float:
        """``W_tot``, the sum of all edge weights."""
        return float(self._weights.sum())

    def adjacency(self) -> np.ndarray:
        """Dense symmetric weighted adjacency matrix ``W``."""
        W = np.zeros((self.num_nodes, self.num_nodes), dtype=np.float64)
        u, v = self._edges[:, 0], self._edges[:, 1]
        W[u, v] = self._weights
        W[v, u] = self._weights
        return W

    def degrees(self) -> np.ndarray:
        """Unweighted vertex degrees."""
        d = np.zeros(self.num_nodes, dtype=np.int64)
        np.add.at(d, self._edges[:, 0], 1)
        np.add.at(d, self._edges[:, 1], 1)
        return d

    def to_networkx(self) -> nx.Graph:
        """Export as a :class:`networkx.Graph` with ``weight`` attributes."""
        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        g.add_weighted_edges_from(
            (int(u), int(v), float(w))
            for (u, v), w in zip(self._edges, self._weights)
        )
        return g

    @classmethod
    def from_networkx(cls, graph: nx.Graph, name: str = "maxcut") -> "MaxCutProblem":
        """Build from a networkx graph (missing weights default to 1)."""
        nodes = list(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = []
        weights = []
        for u, v, data in graph.edges(data=True):
            edges.append((index[u], index[v]))
            weights.append(float(data.get("weight", 1.0)))
        edge_arr = np.asarray(edges, dtype=np.intp).reshape(-1, 2)
        return cls(len(nodes), edge_arr, np.asarray(weights), name=name)

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def cut_value(self, sigma) -> float:
        """Total weight of edges crossing the ±1 partition ``sigma``.

        Evaluated edge-wise in O(m), which is much cheaper than the dense
        quadratic form for the sparse Gset-style instances.
        """
        s = check_spin_vector(sigma, self.num_nodes)
        u, v = self._edges[:, 0], self._edges[:, 1]
        crossing = s[u] != s[v]
        return float(self._weights[crossing].sum())

    def cut_from_energy(self, energy: float) -> float:
        """Convert an Ising energy of :meth:`to_ising` back to a cut value."""
        return self.total_weight / 2.0 - energy

    def energy_from_cut(self, cut: float) -> float:
        """Convert a cut value to the Ising energy of :meth:`to_ising`."""
        return self.total_weight / 2.0 - cut

    def to_ising(self, backend: str = "auto") -> IsingModel | SparseIsingModel:
        """Exact Ising embedding with ``J = W/4`` and no field.

        Minimising the returned model's ``σᵀJσ`` maximises the cut;
        ``cut = W_tot/2 − σᵀJσ`` (the model's ``offset`` is left at zero so
        its raw energy matches the quadratic form; use
        :meth:`cut_from_energy` for the translation).

        ``backend`` picks the coupling representation: ``"dense"`` builds
        the ``(n, n)`` matrix, ``"sparse"`` a CSR
        :class:`~repro.ising.sparse.SparseIsingModel` straight from the
        edge list (never materialising the dense matrix), ``"packed"``
        the bit-packed sign-only
        :class:`~repro.ising.packed.PackedIsingModel` (requires uniform
        |weight| — e.g. ±1 G-set edges, whose embedding is ``J = ±1/4``),
        and ``"auto"`` (default) applies the density-threshold heuristic
        with sign-only promotion — all G-set-scale ±1 instances come out
        packed.  All backends define the identical Hamiltonian and (for
        eligible weights) identical fixed-seed trajectories.
        """
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
            )
        # Local import: repro.ising.packed imports this sub-package's
        # sparse module, so a top-level import would be circular via
        # repro.ising.__init__.
        from repro.ising.packed import PackedIsingModel, dyadic_uniform_scale

        if backend == "auto":
            backend = recommended_backend(
                self.num_nodes,
                self.num_edges,
                uniform_signs=dyadic_uniform_scale(self._weights / 4.0) is not None,
            )
        if backend in ("sparse", "packed"):
            sparse_model = SparseIsingModel.from_edges(
                self.num_nodes,
                self._edges[:, 0],
                self._edges[:, 1],
                self._weights / 4.0,
                name=self.name,
            )
            if backend == "packed":
                return PackedIsingModel.from_sparse(sparse_model)
            return sparse_model
        return IsingModel(self.adjacency() / 4.0, None, name=self.name)

    def partition(self, sigma) -> tuple[np.ndarray, np.ndarray]:
        """Return the two vertex sets induced by ``sigma`` (+1 side, −1 side)."""
        s = check_spin_vector(sigma, self.num_nodes)
        idx = np.arange(self.num_nodes)
        return idx[s == 1], idx[s == -1]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        n: int,
        m: int,
        weighted: bool = False,
        seed=None,
        name: str | None = None,
    ) -> "MaxCutProblem":
        """Uniform random graph with ``m`` distinct edges.

        ``weighted=True`` draws ±1 weights (the Gset convention for the
        G6-G10 style instances); otherwise weights are all +1.
        """
        from repro.ising.gset import random_edge_set  # local import, no cycle

        rng_edges, weights = random_edge_set(n, m, weighted, seed)
        return cls(n, rng_edges, weights, name=name or f"random-{n}-{m}")
