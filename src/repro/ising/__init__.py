"""Problem substrate: Ising/QUBO models and the COP families of the paper.

This sub-package is pure mathematics — no device or hardware concepts.  The
core identity it provides (and that the whole CiM design leans on) is the
incremental energy difference of :meth:`IsingModel.delta_energy_flips`.
"""

from repro.ising.coloring import GraphColoringProblem
from repro.ising.generators import (
    circulant_edges,
    circulant_maxcut,
    planted_partition_maxcut,
    scattered_circulant_maxcut,
)
from repro.ising.gset import (
    PAPER_ITERATIONS,
    GsetSpec,
    build_instance,
    generate_random,
    generate_skew,
    generate_toroidal,
    load_ising,
    paper_instance_suite,
    parse_gset,
    suite_by_size,
    write_gset,
)
from repro.ising.knapsack import KnapsackProblem
from repro.ising.maxcut import MaxCutProblem
from repro.ising.mis import MaxIndependentSetProblem
from repro.ising.model import IsingModel
from repro.ising.packed import PackedIsingModel, dyadic_uniform_scale, packed_scale
from repro.ising.partition import NumberPartitioningProblem
from repro.ising.qubo import QuboModel
from repro.ising.sparse import (
    SPARSE_DENSITY_THRESHOLD,
    SPARSE_MIN_SPINS,
    SparseIsingModel,
    as_backend,
    dense_couplings,
    recommended_backend,
)
from repro.ising.tsp import TravellingSalesmanProblem

__all__ = [
    "IsingModel",
    "SparseIsingModel",
    "PackedIsingModel",
    "QuboModel",
    "dyadic_uniform_scale",
    "packed_scale",
    "as_backend",
    "dense_couplings",
    "recommended_backend",
    "SPARSE_MIN_SPINS",
    "SPARSE_DENSITY_THRESHOLD",
    "load_ising",
    "MaxCutProblem",
    "GraphColoringProblem",
    "KnapsackProblem",
    "NumberPartitioningProblem",
    "MaxIndependentSetProblem",
    "TravellingSalesmanProblem",
    "GsetSpec",
    "PAPER_ITERATIONS",
    "build_instance",
    "circulant_edges",
    "circulant_maxcut",
    "planted_partition_maxcut",
    "scattered_circulant_maxcut",
    "generate_random",
    "generate_skew",
    "generate_toroidal",
    "paper_instance_suite",
    "suite_by_size",
    "parse_gset",
    "write_gset",
]
