"""Travelling salesman as a QUBO (permutation one-hot encoding).

The classic Lucas construction: binary variable ``x[v, p]`` means "city v is
visited at position p".  Penalties enforce one city per position and one
position per city; the objective sums the distances of consecutive
positions (cyclically).  Included to exercise the library on a
permutation-structured COP — much denser constraints than Max-Cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ising.qubo import QuboModel


@dataclass
class TravellingSalesmanProblem:
    """A symmetric TSP instance over an explicit distance matrix.

    Parameters
    ----------
    distances:
        Symmetric ``(n, n)`` matrix of non-negative inter-city distances
        (diagonal ignored).
    penalty:
        Constraint weight ``A``; must exceed the largest distance for valid
        tours to dominate (a safe default is chosen when ``None``).
    """

    distances: np.ndarray
    penalty: float | None = None
    name: str = "tsp"
    _D: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        D = np.asarray(self.distances, dtype=np.float64)
        if D.ndim != 2 or D.shape[0] != D.shape[1] or D.shape[0] < 3:
            raise ValueError("distances must be a square matrix with n >= 3")
        if not np.allclose(D, D.T):
            raise ValueError("distances must be symmetric")
        if np.any(D < 0):
            raise ValueError("distances must be non-negative")
        self._D = D
        if self.penalty is None:
            self.penalty = float(D.max()) * 2.0 + 1.0
        elif self.penalty <= 0:
            raise ValueError("penalty must be positive")

    @property
    def num_cities(self) -> int:
        """Number of cities ``n``."""
        return self._D.shape[0]

    @property
    def num_variables(self) -> int:
        """Binary variables in the one-hot encoding, ``n²``."""
        return self.num_cities**2

    def variable_index(self, city: int, position: int) -> int:
        """Flat index of ``x[city, position]``."""
        n = self.num_cities
        if not 0 <= city < n or not 0 <= position < n:
            raise IndexError("city/position out of range")
        return city * n + position

    # ------------------------------------------------------------------
    def to_qubo(self) -> QuboModel:
        """Lucas encoding: distance objective + two one-hot penalty families."""
        n = self.num_cities
        nv = self.num_variables
        A = float(self.penalty)
        Q = np.zeros((nv, nv), dtype=np.float64)
        q = np.zeros(nv, dtype=np.float64)
        offset = 0.0

        def add_pair(i: int, j: int, w: float) -> None:
            Q[i, j] += w / 2.0
            Q[j, i] += w / 2.0

        # A · Σ_v (1 − Σ_p x_vp)² and A · Σ_p (1 − Σ_v x_vp)².
        for v in range(n):
            offset += A
            for p in range(n):
                q[self.variable_index(v, p)] += -A
            for p1 in range(n):
                for p2 in range(p1 + 1, n):
                    add_pair(
                        self.variable_index(v, p1), self.variable_index(v, p2), 2 * A
                    )
        for p in range(n):
            offset += A
            for v in range(n):
                q[self.variable_index(v, p)] += -A
            for v1 in range(n):
                for v2 in range(v1 + 1, n):
                    add_pair(
                        self.variable_index(v1, p), self.variable_index(v2, p), 2 * A
                    )
        # Σ_p Σ_{u≠v} D_uv x_up x_v(p+1).
        for p in range(n):
            p_next = (p + 1) % n
            for u in range(n):
                for v in range(n):
                    if u == v:
                        continue
                    add_pair(
                        self.variable_index(u, p),
                        self.variable_index(v, p_next),
                        self._D[u, v],
                    )
        return QuboModel(Q, q, offset=offset, name=self.name)

    # ------------------------------------------------------------------
    def decode(self, x) -> np.ndarray | None:
        """Extract the tour (city per position); ``None`` if not a permutation."""
        arr = np.asarray(x).reshape(self.num_cities, self.num_cities)
        if not np.all(arr.sum(axis=0) == 1) or not np.all(arr.sum(axis=1) == 1):
            return None
        return np.argmax(arr, axis=0)

    def tour_length(self, tour) -> float:
        """Cyclic length of a tour given as city-per-position."""
        t = np.asarray(tour, dtype=np.intp)
        if sorted(t.tolist()) != list(range(self.num_cities)):
            raise ValueError("tour must be a permutation of all cities")
        return float(sum(self._D[t[i], t[(i + 1) % len(t)]] for i in range(len(t))))

    def brute_force_tour(self) -> tuple[np.ndarray, float]:
        """Exact optimum by enumeration (n ≤ 9)."""
        from itertools import permutations

        n = self.num_cities
        if n > 9:
            raise ValueError("brute force limited to 9 cities")
        best_tour, best_len = None, np.inf
        for perm in permutations(range(1, n)):
            tour = np.array([0, *perm], dtype=np.intp)
            length = self.tour_length(tour)
            if length < best_len:
                best_tour, best_len = tour, length
        return best_tour, float(best_len)

    @classmethod
    def random_euclidean(
        cls, num_cities: int, seed=None, name: str = "tsp"
    ) -> "TravellingSalesmanProblem":
        """Random points on the unit square with Euclidean distances."""
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(seed)
        points = rng.random((num_cities, 2))
        diff = points[:, None, :] - points[None, :, :]
        D = np.sqrt((diff**2).sum(axis=-1))
        return cls(D, name=name)
