"""Bit-packed sign-only coupling backend: the FeFET crossbar's image.

Every bundled G-set and every :mod:`repro.ising.generators` instance has
±1 edge weights — exactly the sign-only coupling images the paper's
FeFET crossbar programs (one polarity bit per cell) — yet the sparse
hot-path kernels move an 8-byte float per stored edge and an 8-byte
float per replica spin.  :class:`PackedIsingModel` packs both down to
single bits:

* the **neighbour sign mask** — one bit per stored CSR slot
  (``bit = 1`` iff the coupling is negative), held in uint64 words
  (:attr:`PackedIsingModel.sign_words`, 64 neighbour signs per word);
* the **replica spin tensor** — one bit per spin per replica
  (``bit = 1`` iff the spin is +1), packed by :func:`pack_spin_rows`
  and consumed by the popcount field kernels and the XOR flip scatters
  in :mod:`repro.core.packed`.

Eligibility and exactness
-------------------------
A model is packed-eligible when its coupling matrix has a zero diagonal
and every stored off-diagonal entry shares one magnitude ``c`` whose
floating-point numerator is small (``c = num / 2**k`` with
``num <= 2**24``; :func:`dyadic_uniform_scale`).  That covers ±1 weights
and the Max-Cut embedding ``J = W/4`` (``c = 1/4``) alike.  Under that
restriction every local field is ``c · (2·p − degree)`` with ``p`` a
popcount — a small-integer multiple of ``c`` that is exactly
representable, as is every partial sum of the sparse backend's
``bincount`` kernel.  Both backends therefore compute the identical
floats and fixed-seed trajectories are **bit-identical** (the same
transparency contract as the dense/sparse pair, ``permutation=`` and
``reorder=`` rows included; pinned by ``tests/test_packed.py``).

The float CSR arrays are retained (they are what the model-level
contract — ``energy``, tiling, quantization — consumes and what keeps
the O(Σ degree) cross-term/field-update kernels exact), so packing is a
*traffic* optimisation for the replica hot loop, not a storage cut: the
per-iteration state the batch engine touches shrinks 64×.

``np.bitwise_count`` (numpy ≥ 2) serves the popcounts; on older numpy a
pure-numpy byte lookup table (:func:`popcount_bytes`) is used instead.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.ising.sparse import SparseIsingModel

#: Largest odd numerator of the shared coupling magnitude ``c`` for
#: packed eligibility: ``c = num / 2**k`` with ``num <= 2**24`` keeps
#: every ``c · integer`` product of the field kernels exact in float64
#: (``num · |2p − degree| < 2**53`` for any realistic degree).
PACKED_MAX_NUMERATOR = 1 << 24

_U64_ONE = np.uint64(1)
_U64_63 = np.uint64(63)
_U8_LOW_MASKS = np.array(
    [0x00, 0x01, 0x03, 0x07, 0x0F, 0x1F, 0x3F, 0x7F], dtype=np.uint8
)

try:  # numpy >= 2
    _np_bitwise_count = np.bitwise_count

    def popcount_bytes(a: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint8 array (``np.bitwise_count``)."""
        return _np_bitwise_count(a)

    HAS_BITWISE_COUNT = True
except AttributeError:  # pragma: no cover - exercised only on numpy < 2
    _POPCOUNT_LUT = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def popcount_bytes(a: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint8 array (pure-numpy byte LUT)."""
        return _POPCOUNT_LUT[a]

    HAS_BITWISE_COUNT = False


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 array of shape ``(..., n)`` into uint64 words.

    Bit ``j`` of the stream lands in word ``j >> 6`` at position
    ``j & 63`` regardless of platform endianness (the bytes from
    ``np.packbits(bitorder="little")`` are recombined with explicit
    shifts, never a dtype view).
    """
    arr = np.asarray(bits)
    n = arr.shape[-1]
    lead = arr.shape[:-1]
    num_words = max(1, -(-n // 64))
    packed8 = np.packbits(arr.astype(bool), axis=-1, bitorder="little")
    padded = np.zeros(lead + (num_words * 8,), dtype=np.uint8)
    padded[..., : packed8.shape[-1]] = packed8
    words = np.zeros(lead + (num_words,), dtype=np.uint64)
    for k in range(8):
        words |= padded[..., k::8].astype(np.uint64) << np.uint64(8 * k)
    return words


def words_to_bytes(words: np.ndarray) -> np.ndarray:
    """Explode uint64 words into their 8 little-end-first bytes each."""
    out = np.empty(words.shape + (8,), dtype=np.uint8)
    for k in range(8):
        out[..., k] = (
            (words >> np.uint64(8 * k)) & np.uint64(0xFF)
        ).astype(np.uint8)
    return out.reshape(words.shape[:-1] + (words.shape[-1] * 8,))


def pack_spin_rows(sigma: np.ndarray) -> np.ndarray:
    """Pack ±1 spin rows ``(R, n)`` into a ``(R, ceil(n/64))`` word tensor.

    Bit ``j & 63`` of word ``j >> 6`` is 1 iff spin ``j`` is +1.  The
    result is C-contiguous (the flip scatter in
    :class:`repro.core.packed.PackedBatchState` aliases it through
    ``reshape(-1)``).
    """
    s = np.asarray(sigma)
    if s.ndim != 2:
        raise ValueError(f"expected a (R, n) spin tensor, got shape {s.shape}")
    return pack_bits(s > 0)


def unpack_spin_rows(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_spin_rows`: ``(R, W)`` words → ``(R, n)`` int8."""
    bits = np.unpackbits(
        words_to_bytes(words), axis=-1, count=n, bitorder="little"
    )
    return (2 * bits.astype(np.int8) - 1).astype(np.int8, copy=False)


def dyadic_uniform_scale(values) -> float | None:
    """The shared magnitude ``c`` if ``values`` are packed-eligible.

    Returns ``c`` when every entry is ``±c`` for one ``c > 0`` whose
    float numerator is at most :data:`PACKED_MAX_NUMERATOR` (so all
    ``c · integer`` kernel products are exact), ``1.0`` for an empty
    array, and ``None`` otherwise.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return 1.0
    c = float(abs(v.flat[0]))
    if c == 0.0 or not np.all(np.abs(v) == c):
        return None
    numerator, _ = c.as_integer_ratio()
    if numerator > PACKED_MAX_NUMERATOR:
        return None
    return c


def packed_scale(model) -> float | None:
    """Packed eligibility of a model: the shared |J| magnitude, or ``None``.

    Either coupling backend is accepted; eligibility requires a zero
    coupling diagonal and :func:`dyadic_uniform_scale` off-diagonal
    values.  External fields do not matter — the packed kernels only
    replace coupling traffic and ``h`` stays a dense float vector.
    """
    if isinstance(model, SparseIsingModel):
        if np.any(model.coupling_diagonal()):
            return None
        _, _, data = model.csr_arrays()
        return dyadic_uniform_scale(data)
    J = getattr(model, "J", None)
    if J is None:
        return None
    if np.any(np.diag(J)):
        return None
    return dyadic_uniform_scale(J[J != 0.0])


class PackedIsingModel(SparseIsingModel):
    """A :class:`SparseIsingModel` carrying bit-packed sign-only kernels.

    The full CSR contract is inherited unchanged (energies, tiling,
    quantization, ancilla folds all keep working on the float arrays);
    on top of it the constructor validates packed eligibility and
    precomputes the bit-level structures the
    :class:`repro.core.packed.PackedCouplingOps` kernels traverse:

    * :attr:`sign_words` / :attr:`sign_bytes` — the per-slot neighbour
      sign mask, bit-packed in CSR slot order;
    * per-slot word/shift addresses of each neighbour's spin bit;
    * per-row degrees, for ``g_i = c · (2·p_i − degree_i)``.

    Use :meth:`from_sparse` (or ``repro.ising.as_backend(model,
    "packed")``) to convert an existing model; ineligible couplings
    raise ``ValueError`` with the offending property named.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        fields: np.ndarray | None = None,
        offset: float = 0.0,
        name: str = "packed-ising",
    ) -> None:
        super().__init__(indptr, indices, data, fields, offset, name)
        if np.any(self._diag):
            raise ValueError(
                "packed backend requires a zero coupling diagonal "
                "(self-couplings have no sign-only image); use the sparse "
                "backend for this model"
            )
        scale = dyadic_uniform_scale(self._data)
        if scale is None:
            raise ValueError(
                "packed backend requires all off-diagonal couplings to share "
                "one small dyadic magnitude ±c (e.g. ±1 edge weights, or the "
                "Max-Cut embedding's ±1/4); use the sparse backend for "
                "general float couplings"
            )
        self._scale = float(scale)
        # Per-CSR-slot bit addresses of each neighbour's spin bit, and the
        # bit-packed sign mask aligned with np.packbits' byte stream.
        self._slot_word = (self._indices >> 6).astype(np.intp)
        self._slot_shift = (self._indices & 63).astype(np.uint64)
        neg = self._data < 0.0
        self._sign_words = pack_bits(neg[None, :])[0] if neg.size else (
            np.zeros(1, dtype=np.uint64)
        )
        num_bytes = max(1, -(-int(neg.size) // 8))
        self._sign_bytes = words_to_bytes(self._sign_words)[:num_bytes]
        self._degrees = np.diff(self._indptr).astype(np.int64)
        self._num_words = max(1, -(-self._n // 64))

    # ------------------------------------------------------------------
    # Packed structure accessors
    # ------------------------------------------------------------------
    @property
    def scale(self) -> float:
        """The shared coupling magnitude ``c`` (all entries are ``±c``)."""
        return self._scale

    @property
    def sign_words(self) -> np.ndarray:
        """Neighbour sign mask, 64 CSR slots per uint64 word (do not mutate)."""
        return self._sign_words

    @property
    def num_spin_words(self) -> int:
        """uint64 words per packed spin row, ``ceil(n / 64)``."""
        return self._num_words

    def content_fingerprint(self) -> str:
        """Content digest from the packed representation itself.

        Same contract as the sparse base, ~64× less value data hashed:
        the ``±c`` entries are fully determined by the shared scale plus
        the sign-bit words, so the float64 CSR data array is skipped.
        The class tag keeps packed/sparse twins distinct on purpose —
        the :class:`~repro.core.plan.PlanCache` compiles per backend.
        """
        h = hashlib.sha256()
        h.update(
            f"{type(self).__name__}:{self._n}:{self._scale!r}:"
            f"{self.offset!r}".encode()
        )
        for arr in (self._indptr, self._indices, self._sign_words, self._h):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()

    def packed_fields(self, spin_words: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Local fields ``g = J σ`` of one packed spin row, via popcount.

        ``spin_words`` is one row of :func:`pack_spin_rows`; ``out`` is a
        float64 ``(n,)`` buffer written in place.  The kernel gathers each
        neighbour's spin bit, XORs in the sign mask (product bit
        ``p = 1`` iff the slot contributes ``+c``), popcounts the packed
        product stream cumulatively, and differences the cumulative
        counts at the ``indptr`` boundaries:

        ``g_i = c · (2·p_i − degree_i)``

        — exactly the value (and the exact float) of the sparse
        ``bincount`` kernel, since both are small-integer multiples of
        the dyadic ``c``.
        """
        nnz = self._indices.shape[0]
        if nnz == 0:
            out[:] = 0.0
            return out
        spin_bits = (
            (spin_words[self._slot_word] >> self._slot_shift) & _U64_ONE
        ).astype(np.uint8)
        product = np.packbits(spin_bits, bitorder="little")
        product ^= self._sign_bytes
        # Cumulative popcount with a zero sentinel byte so the boundary
        # lookup at position nnz stays in range when nnz % 8 == 0.
        cumulative = np.zeros(product.shape[0] + 1, dtype=np.int64)
        np.cumsum(popcount_bytes(product), dtype=np.int64, out=cumulative[1:])
        padded = np.concatenate([product, np.zeros(1, dtype=np.uint8)])
        byte_index = self._indptr >> 3
        partial = popcount_bytes(
            padded[byte_index] & _U8_LOW_MASKS[self._indptr & 7]
        )
        boundary = cumulative[byte_index] + partial
        positives = boundary[1:] - boundary[:-1]
        np.multiply(
            (2 * positives - self._degrees).astype(np.float64),
            self._scale,
            out=out,
        )
        return out

    # ------------------------------------------------------------------
    # Constructors / transformations (stay packed where eligibility holds)
    # ------------------------------------------------------------------
    @classmethod
    def from_sparse(cls, model: SparseIsingModel) -> "PackedIsingModel":
        """Wrap an eligible :class:`SparseIsingModel` (CSR arrays shared)."""
        indptr, indices, data = model.csr_arrays()
        return cls(
            indptr,
            indices,
            data,
            model.h.copy() if model.has_fields else None,
            offset=model.offset,
            name=model.name,
        )

    def to_sparse(self) -> SparseIsingModel:
        """Downgrade to a plain CSR model (arrays shared, kernels float)."""
        return SparseIsingModel(
            self._indptr,
            self._indices,
            self._data,
            self._h.copy() if self.has_fields else None,
            offset=self.offset,
            name=self.name,
        )

    def permuted(self, perm) -> "PackedIsingModel":
        """Relabel spins and repack — permutations preserve eligibility."""
        return PackedIsingModel.from_sparse(super().permuted(perm))

    def scaled(self, factor: float) -> SparseIsingModel:
        """Scale ``J``/``h``/``offset``; repack when still eligible.

        Scaling by zero (or by a factor that pushes the magnitude's
        numerator past the exactness bound) loses eligibility; the plain
        sparse model is returned in that case.
        """
        base = super().scaled(factor)
        if dyadic_uniform_scale(base.csr_arrays()[2]) is None:
            return base
        return PackedIsingModel.from_sparse(base)

    def memory_bytes(self) -> int:
        """CSR storage plus the bit-packed kernel structures."""
        return int(
            super().memory_bytes()
            + self._slot_word.nbytes
            + self._slot_shift.nbytes
            + self._sign_words.nbytes
            + self._sign_bytes.nbytes
            + self._degrees.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PackedIsingModel(n={self._n}, pairs={self.num_interactions}, "
            f"scale={self._scale:g}, name={self.name!r})"
        )
