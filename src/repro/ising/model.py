"""Ising model substrate: energy, local fields and spin-flip increments.

The paper (Eq. 1-2) works with the Hamiltonian

.. math::  E(\\sigma) = \\sigma^T J \\sigma + h^T \\sigma,

with symmetric coupling matrix ``J`` and ±1 spins.  Because ``σ_i² = 1`` the
diagonal of ``J`` only contributes a constant, so all increment formulas below
are independent of ``diag(J)``; we keep the diagonal around (the paper's Eq. 2
stores self couplings there) and account for it exactly in :meth:`energy`.

The central identity of the paper's incremental-E transformation (Eq. 5-9) is

.. math::  E(\\sigma_{new}) - E(\\sigma) = 4\\,\\sigma_r^T J \\sigma_c
            + 2\\,h^T \\sigma_c,

where ``σ_c`` keeps the flipped entries of ``σ_new`` (others zeroed) and
``σ_r`` keeps the unflipped entries.  :meth:`delta_energy_flips` implements it
and the test-suite verifies it against brute-force recomputation for random
models and flip sets.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_index,
    check_permutation,
    check_spin_vector,
    check_square_symmetric,
)


@dataclass
class IsingModel:
    """An Ising Hamiltonian ``E(σ) = σᵀJσ + hᵀσ + offset``.

    Parameters
    ----------
    couplings:
        Symmetric ``(n, n)`` matrix ``J``.  Both triangles must be populated
        (the energy sums over *all* ordered pairs, as in the paper's Eq. 2).
    fields:
        Optional length-``n`` external field ``h`` (``None`` means zero).
    offset:
        Constant added to every energy; used to preserve objective values
        through QUBO/Max-Cut conversions.
    name:
        Free-form label used in reports.
    """

    couplings: np.ndarray
    fields: np.ndarray | None = None
    offset: float = 0.0
    name: str = "ising"
    _J: np.ndarray = field(init=False, repr=False)
    _h: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._J = check_square_symmetric(self.couplings, "couplings")
        n = self._J.shape[0]
        if self.fields is None:
            self._h = np.zeros(n, dtype=np.float64)
        else:
            h = np.asarray(self.fields, dtype=np.float64)
            if h.shape != (n,):
                raise ValueError(f"fields must have shape ({n},), got {h.shape}")
            self._h = h
        self.offset = float(self.offset)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_spins(self) -> int:
        """Number of spins ``n``."""
        return self._J.shape[0]

    @property
    def J(self) -> np.ndarray:
        """The validated symmetric coupling matrix (do not mutate)."""
        return self._J

    @property
    def h(self) -> np.ndarray:
        """The validated external-field vector (do not mutate)."""
        return self._h

    @property
    def has_fields(self) -> bool:
        """Whether any external field is non-zero."""
        return bool(np.any(self._h))

    def content_fingerprint(self) -> str:
        """Content digest of the problem data (couplings, fields, offset).

        Two models hash equal iff they carry byte-identical numbers on the
        same coupling backend; the display ``name`` is deliberately
        excluded.  This is the model half of the
        :class:`~repro.core.plan.PlanCache` key — backends hash
        differently on purpose, because the compiled artifacts differ.
        """
        h = hashlib.sha256()
        h.update(
            f"{type(self).__name__}:{self.num_spins}:{self.offset!r}".encode()
        )
        h.update(np.ascontiguousarray(self._J).tobytes())
        h.update(np.ascontiguousarray(self._h).tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Energies
    # ------------------------------------------------------------------
    def energy(self, sigma) -> float:
        """Exact energy ``σᵀJσ + hᵀσ + offset`` of a ±1 configuration."""
        s = check_spin_vector(sigma, self.num_spins).astype(np.float64)
        return float(s @ self._J @ s + self._h @ s) + self.offset

    def local_fields(self, sigma) -> np.ndarray:
        """Return ``g = J σ`` for the given configuration.

        ``g`` lets single-flip increments be evaluated in O(1) per spin and is
        the state the software annealers keep incrementally up to date.
        """
        s = check_spin_vector(sigma, self.num_spins).astype(np.float64)
        return self._J @ s

    def delta_energy_single(self, sigma, index: int, g: np.ndarray | None = None) -> float:
        """Energy change from flipping the single spin ``index``.

        Parameters
        ----------
        sigma:
            Current ±1 configuration.
        index:
            Spin to flip.
        g:
            Optional precomputed local fields ``J σ`` (avoids the O(n·n)
            matrix-vector product when the caller maintains them).
        """
        n = self.num_spins
        s = check_spin_vector(sigma, n)
        index = check_index("index", index, n)
        si = float(s[index])
        if g is None:
            gi = float(self._J[index] @ s.astype(np.float64))
        else:
            gi = float(g[index])
        # Diagonal term does not change under a flip; remove its contribution
        # from the local field before applying the rank-1 update formula.
        gi_off = gi - self._J[index, index] * si
        return -4.0 * si * gi_off - 2.0 * self._h[index] * si

    def delta_energy_flips(self, sigma, flip_indices) -> float:
        """Energy change from flipping the set ``flip_indices`` simultaneously.

        Implements the paper's incremental identity
        ``ΔE = 4 σ_rᵀ J σ_c + 2 hᵀ σ_c`` (Eq. 9 extended with fields), which
        costs ``O(n·|F|)`` instead of the ``O(n²)`` direct recomputation.
        """
        s = check_spin_vector(sigma, self.num_spins).astype(np.float64)
        flips = np.atleast_1d(np.asarray(flip_indices, dtype=np.intp))
        if flips.size == 0:
            return 0.0
        if np.unique(flips).size != flips.size:
            raise ValueError("flip_indices must be unique")
        sigma_new = s.copy()
        sigma_new[flips] *= -1.0
        # σ_c: flipped entries of σ_new; σ_r: unflipped entries of σ_new.
        sigma_c = np.zeros_like(s)
        sigma_c[flips] = sigma_new[flips]
        sigma_r = sigma_new.copy()
        sigma_r[flips] = 0.0
        cross = float(sigma_r @ (self._J @ sigma_c))
        return 4.0 * cross + 2.0 * float(self._h @ sigma_c)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_ancilla(self) -> "IsingModel":
        """Fold the external field into couplings via one ancilla spin.

        Returns an ``(n+1)``-spin model whose spin 0 is pinned to +1 by
        convention: ``J'_{0j} = J'_{j0} = h_j / 2`` reproduces ``hᵀσ`` exactly
        when ``σ_0 = +1``.  This is how a field is mapped onto a crossbar that
        only stores couplings.
        """
        n = self.num_spins
        J2 = np.zeros((n + 1, n + 1), dtype=np.float64)
        J2[1:, 1:] = self._J
        J2[0, 1:] = self._h / 2.0
        J2[1:, 0] = self._h / 2.0
        return IsingModel(J2, None, offset=self.offset, name=f"{self.name}+ancilla")

    def scaled(self, factor: float) -> "IsingModel":
        """Return a copy with ``J``, ``h`` and ``offset`` scaled by ``factor``."""
        return IsingModel(
            self._J * factor,
            self._h * factor if self.has_fields else None,
            offset=self.offset * factor,
            name=self.name,
        )

    def permuted(self, perm) -> "IsingModel":
        """Relabel the spins through a permutation.

        Dense counterpart of :meth:`SparseIsingModel.permuted`: ``perm`` is
        a :class:`~repro.core.reorder.Permutation` (or a raw ``forward``
        array) and entry ``(i, j)`` moves to ``(forward[i], forward[j])``.
        Values are gathered, never recomputed, so the round trip through
        ``perm.inverse`` is exact.
        """
        _, bwd = check_permutation(perm, self.num_spins)
        return IsingModel(
            self._J[np.ix_(bwd, bwd)],
            self._h[bwd] if self.has_fields else None,
            offset=self.offset,
            name=self.name,
        )

    def max_abs_coupling(self) -> float:
        """Largest |J_ij| off the diagonal (used for quantization scaling)."""
        off = self._J - np.diag(np.diag(self._J))
        return float(np.max(np.abs(off))) if off.size else 0.0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        n: int,
        density: float = 1.0,
        coupling_scale: float = 1.0,
        with_fields: bool = False,
        seed=None,
    ) -> "IsingModel":
        """Random symmetric model for tests and demos.

        Couplings are drawn uniform in ``[-coupling_scale, coupling_scale]``
        and thinned to the requested ``density``; the diagonal is zero.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0.0 <= density <= 1.0:
            raise ValueError("density must be in [0, 1]")
        rng = ensure_rng(seed)
        upper = rng.uniform(-coupling_scale, coupling_scale, size=(n, n))
        mask = rng.random((n, n)) < density
        upper = np.triu(upper * mask, k=1)
        J = upper + upper.T
        h = rng.uniform(-coupling_scale, coupling_scale, size=n) if with_fields else None
        return cls(J, h, name=f"random-{n}")

    def random_configuration(self, seed=None) -> np.ndarray:
        """Draw a uniform random ±1 configuration of the right length."""
        rng = ensure_rng(seed)
        return rng.choice(np.array([-1, 1], dtype=np.int8), size=self.num_spins)

    def brute_force_minimum(self) -> tuple[np.ndarray, float]:
        """Exhaustively minimise the Hamiltonian (only for ``n <= 20``).

        Used by tests and tiny examples to validate the annealers against
        ground truth.
        """
        n = self.num_spins
        if n > 20:
            raise ValueError(f"brute force limited to 20 spins, got {n}")
        best_sigma = None
        best_energy = np.inf
        for bits in range(1 << n):
            s = np.fromiter(
                ((1 if bits >> i & 1 else -1) for i in range(n)),
                dtype=np.int8,
                count=n,
            )
            e = self.energy(s)
            if e < best_energy:
                best_energy = e
                best_sigma = s
        return best_sigma, float(best_energy)
