"""Gset-style Max-Cut instances: format parser/writer and generators.

The paper evaluates on Stanford Gset Max-Cut instances [38] (9×800-node,
9×1000-node, 9×2000-node and 3×3000-node graphs).  The Gset files are not
redistributable here, so this module provides:

* :func:`parse_gset` / :func:`write_gset` — the standard Gset text format
  (header ``n m``, then 1-indexed ``u v w`` lines), so users who *do* have the
  original files can load them directly; and
* deterministic synthetic generators for the three Gset families —
  **random** (uniform edge set, e.g. G1: 800 nodes / 19 176 edges),
  **skew** (heavy-tailed degrees, e.g. G14), and
  **toroidal** (2-D torus with ±1 weights, e.g. G48-G50: 3000 nodes /
  6000 edges) — with node/edge counts matching the corresponding Gset
  classes; and
* :func:`paper_instance_suite` — the 30-instance evaluation suite mirroring
  the paper's grouping, with fixed seeds so every figure is reproducible.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.ising.maxcut import MaxCutProblem
from repro.utils.rng import ensure_rng

#: Iteration budget per node count used throughout the paper's evaluation
#: (Sec. 4.1): 800 → 700, 1000 → 1000, 2000 → 10 000, 3000 → 100 000.
PAPER_ITERATIONS = {800: 700, 1000: 1_000, 2000: 10_000, 3000: 100_000}


# ----------------------------------------------------------------------
# Gset text format
# ----------------------------------------------------------------------
def parse_gset(source, name: str = "gset") -> MaxCutProblem:
    """Parse a Gset-format instance.

    Parameters
    ----------
    source:
        A path, a file-like object, or the raw text of the instance.
    name:
        Label for the returned problem.

    Format: first non-comment line is ``<num_nodes> <num_edges>``; each
    following line is ``<u> <v> <weight>`` with 1-indexed endpoints (weight
    optional, default 1).  Lines starting with ``#`` or ``%`` are ignored.
    """
    if isinstance(source, Path):
        text = source.read_text()
    elif hasattr(source, "read"):
        text = source.read()
    else:
        text = str(source)
        if "\n" not in text and text.strip():
            candidate = Path(text)
            if candidate.is_file():
                text = candidate.read_text()

    lines = [
        ln.strip()
        for ln in text.splitlines()
        if ln.strip() and not ln.lstrip().startswith(("#", "%"))
    ]
    if not lines:
        raise ValueError("empty Gset input")
    header = lines[0].split()
    if len(header) < 2:
        raise ValueError(f"bad Gset header: {lines[0]!r}")
    n, m = int(header[0]), int(header[1])
    edges = np.zeros((m, 2), dtype=np.intp)
    weights = np.ones(m, dtype=np.float64)
    body = len(lines) - 1
    if body != m:
        # Truncating at m used to silently drop trailing edge lines, so a
        # file whose header disagrees with its body parsed without error.
        raise ValueError(
            f"expected {m} edge lines, found {body}: the header declares "
            f"m={m} but the body has {body} non-comment lines"
            + (" (trailing lines would be silently ignored)" if body > m else "")
        )
    for i, ln in enumerate(lines[1 : m + 1]):
        parts = ln.split()
        if len(parts) < 2:
            raise ValueError(f"bad edge line: {ln!r}")
        edges[i, 0] = int(parts[0]) - 1
        edges[i, 1] = int(parts[1]) - 1
        if len(parts) >= 3:
            weights[i] = float(parts[2])
    return MaxCutProblem(n, edges, weights, name=name)


def load_ising(source, backend: str = "auto", name: str = "gset"):
    """Parse a Gset instance and build its Ising model in one call.

    Returns ``(problem, model)``.  ``backend`` is forwarded to
    :meth:`MaxCutProblem.to_ising`; with the default ``"auto"`` every
    G-set-scale instance (low pair density, hundreds to thousands of
    nodes) comes out on the sparse CSR backend without ever materialising
    the dense coupling matrix.
    """
    problem = parse_gset(source, name=name)
    return problem, problem.to_ising(backend=backend)


def write_gset(problem: MaxCutProblem, target=None) -> str:
    """Serialise a problem in Gset format; write to ``target`` if given.

    ``target`` may be a path or a file-like object.  The serialised text is
    returned either way.
    """
    buf = io.StringIO()
    buf.write(f"{problem.num_nodes} {problem.num_edges}\n")
    for (u, v), w in zip(problem.edge_array, problem.weight_array):
        w_txt = str(int(w)) if float(w).is_integer() else repr(float(w))
        buf.write(f"{u + 1} {v + 1} {w_txt}\n")
    text = buf.getvalue()
    if target is not None:
        if isinstance(target, (str, Path)):
            Path(target).write_text(text)
        else:
            target.write(text)
    return text


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def random_edge_set(
    n: int, m: int, weighted: bool = False, seed=None
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``m`` distinct undirected edges uniformly at random.

    Returns ``(edges, weights)``; weights are ±1 when ``weighted`` else all 1.
    """
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"cannot place {m} edges in a {n}-node simple graph")
    rng = ensure_rng(seed)
    # Sample linear indices of the strict upper triangle without replacement.
    chosen = rng.choice(max_edges, size=m, replace=False)
    # Invert the row-major upper-triangle linear index.
    # Row r starts at offset r*n - r*(r+1)/2 - r ... easier via cumulative counts.
    counts = np.arange(n - 1, 0, -1)  # row r has (n-1-r) entries
    row_starts = np.concatenate(([0], np.cumsum(counts)))
    rows = np.searchsorted(row_starts, chosen, side="right") - 1
    cols = chosen - row_starts[rows] + rows + 1
    edges = np.stack([rows, cols], axis=1).astype(np.intp)
    if weighted:
        weights = rng.choice(np.array([-1.0, 1.0]), size=m)
    else:
        weights = np.ones(m, dtype=np.float64)
    return edges, weights


def generate_random(
    n: int, m: int, weighted: bool = False, seed=None, name: str | None = None
) -> MaxCutProblem:
    """Uniform random graph, the G1/G22/G43 Gset class."""
    edges, weights = random_edge_set(n, m, weighted, seed)
    return MaxCutProblem(
        n, edges, weights, name=name or f"gset-random-{n}-{m}-s{seed}"
    )


def generate_skew(
    n: int, m: int, weighted: bool = False, seed=None, name: str | None = None
) -> MaxCutProblem:
    """Heavy-tailed ("skew") random graph, the G14/G35/G51 Gset class.

    Edges are added one at a time; each endpoint is drawn preferentially
    (probability proportional to ``degree + 1``), which yields the skewed
    degree distribution characteristic of those instances.
    """
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"cannot place {m} edges in a {n}-node simple graph")
    rng = ensure_rng(seed)
    degree = np.ones(n, dtype=np.float64)  # +1 smoothing so isolated nodes join
    seen: set[tuple[int, int]] = set()
    edges = np.zeros((m, 2), dtype=np.intp)
    count = 0
    while count < m:
        p = degree / degree.sum()
        u = int(rng.choice(n, p=p))
        v = int(rng.choice(n, p=p))
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        edges[count] = key
        degree[u] += 1.0
        degree[v] += 1.0
        count += 1
    if weighted:
        weights = rng.choice(np.array([-1.0, 1.0]), size=m)
    else:
        weights = np.ones(m, dtype=np.float64)
    return MaxCutProblem(
        n, edges, weights, name=name or f"gset-skew-{n}-{m}-s{seed}"
    )


def generate_toroidal(
    rows: int, cols: int, weighted: bool = False, seed=None, name: str | None = None
) -> MaxCutProblem:
    """2-D torus, the G48-G50 Gset class.

    Every vertex connects to its right and down neighbour with wrap-around,
    giving exactly ``2·rows·cols`` edges and uniform degree 4.  Unweighted
    (the G48/G49 convention — note an even torus is bipartite, so the true
    optimum is exactly ``2·rows·cols``) or ±1 weighted.
    """
    if rows < 3 or cols < 3:
        raise ValueError("torus needs at least 3 rows and 3 columns")
    rng = ensure_rng(seed)
    n = rows * cols
    idx = np.arange(n).reshape(rows, cols)
    right = np.roll(idx, -1, axis=1)
    down = np.roll(idx, -1, axis=0)
    edges = np.concatenate(
        [
            np.stack([idx.ravel(), right.ravel()], axis=1),
            np.stack([idx.ravel(), down.ravel()], axis=1),
        ]
    ).astype(np.intp)
    if weighted:
        weights = rng.choice(np.array([-1.0, 1.0]), size=edges.shape[0])
    else:
        weights = np.ones(edges.shape[0], dtype=np.float64)
    return MaxCutProblem(
        n, edges, weights, name=name or f"gset-torus-{rows}x{cols}-s{seed}"
    )


# ----------------------------------------------------------------------
# The paper's 30-instance evaluation suite
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GsetSpec:
    """Specification of one synthetic Gset-class instance.

    Attributes
    ----------
    name:
        Unique instance label.
    nodes:
        Node count (800 / 1000 / 2000 / 3000 in the paper suite).
    family:
        ``"random"``, ``"skew"`` or ``"toroidal"``.
    edges:
        Edge count (for toroidal this is implied by the grid).
    weighted:
        Whether weights are ±1 (True) or all +1 (False).
    seed:
        Generator seed — fixed per suite entry for reproducibility.
    """

    name: str
    nodes: int
    family: str
    edges: int
    weighted: bool
    seed: int

    @property
    def iterations(self) -> int:
        """The paper's annealing-iteration budget for this node count."""
        return PAPER_ITERATIONS[self.nodes]


def build_instance(spec: GsetSpec) -> MaxCutProblem:
    """Materialise the graph for a :class:`GsetSpec`."""
    if spec.family == "random":
        return generate_random(
            spec.nodes, spec.edges, spec.weighted, spec.seed, name=spec.name
        )
    if spec.family == "skew":
        return generate_skew(
            spec.nodes, spec.edges, spec.weighted, spec.seed, name=spec.name
        )
    if spec.family == "toroidal":
        grids = {2000: (40, 50), 3000: (50, 60)}
        if spec.nodes not in grids:
            raise ValueError(f"no torus grid preset for {spec.nodes} nodes")
        rows, cols = grids[spec.nodes]
        return generate_toroidal(rows, cols, spec.weighted, spec.seed, name=spec.name)
    raise ValueError(f"unknown Gset family {spec.family!r}")


def paper_instance_suite() -> list[GsetSpec]:
    """The 30-instance suite mirroring the paper's Sec. 4.1 grouping.

    The paper draws 30 Max-Cut instances from the Stanford Gset [38]; the
    synthetic suite uses the canonical Gset class at each node count:
    9 × 800 nodes (G1 class: uniform random, 19 176 edges), 9 × 1000 nodes
    (G43 class: uniform random, 9 990 edges), 9 × 2000 nodes (G22 class:
    uniform random, 19 990 edges), and 3 × 3000 nodes (G48-G50 class:
    toroidal, 6 000 edges, unweighted — an even torus is bipartite, so the
    reference optimum is exactly 6 000, matching G48/G49's best-known).
    """
    suite: list[GsetSpec] = []
    for i in range(9):
        suite.append(GsetSpec(f"R800-{i}", 800, "random", 19_176, False, 1_000 + i))
    for i in range(9):
        suite.append(GsetSpec(f"R1000-{i}", 1000, "random", 9_990, False, 2_000 + i))
    for i in range(9):
        suite.append(GsetSpec(f"R2000-{i}", 2000, "random", 19_990, False, 3_000 + i))
    for i in range(3):
        suite.append(GsetSpec(f"T3000-{i}", 3000, "toroidal", 6_000, False, 4_000 + i))
    return suite


def suite_by_size(specs: list[GsetSpec] | None = None) -> dict[int, list[GsetSpec]]:
    """Group suite specs by node count (the paper's four groups)."""
    specs = paper_instance_suite() if specs is None else specs
    groups: dict[int, list[GsetSpec]] = {}
    for spec in specs:
        groups.setdefault(spec.nodes, []).append(spec)
    return dict(sorted(groups.items()))
