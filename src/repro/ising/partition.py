"""Number partitioning as an Ising model.

Split a multiset of positive numbers into two halves with minimal sum
difference.  With ±1 spins choosing sides, the residue is ``|sᵀσ|`` and

.. math::  (s^T\\sigma)^2 = \\sigma^T (s s^T) \\sigma,

so ``J = s sᵀ`` (with the diagonal's constant ``Σ s_i²`` tracked in the
offset) is an exact Ising embedding whose ground energy is the squared
optimal residue.  This gives the test-suite a COP with *known* ground energy
(0 for perfectly partitionable sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ising.model import IsingModel
from repro.utils.validation import check_spin_vector


@dataclass
class NumberPartitioningProblem:
    """A two-way number-partitioning instance.

    Parameters
    ----------
    numbers:
        Positive values to split.
    name:
        Instance label.
    """

    numbers: np.ndarray
    name: str = "partition"
    _numbers: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        s = np.asarray(self.numbers, dtype=np.float64)
        if s.ndim != 1 or s.size < 2:
            raise ValueError("numbers must be a 1-D array with at least 2 entries")
        if np.any(s <= 0):
            raise ValueError("numbers must be positive")
        self._numbers = s

    @property
    def num_items(self) -> int:
        """Number of values to split."""
        return self._numbers.size

    def residue(self, sigma) -> float:
        """Absolute difference between the two side sums, ``|sᵀσ|``."""
        s = check_spin_vector(sigma, self.num_items).astype(np.float64)
        return float(abs(self._numbers @ s))

    def to_ising(self) -> IsingModel:
        """Exact embedding: ``E(σ) = (sᵀσ)² = σᵀ(ssᵀ)σ``.

        The diagonal of ``s sᵀ`` contributes the constant ``Σ s_i²``; it is
        zeroed out of ``J`` and moved into ``offset`` so the reported energy
        equals the squared residue exactly.
        """
        outer = np.outer(self._numbers, self._numbers)
        diag_const = float(np.sum(self._numbers**2))
        J = outer - np.diag(np.diag(outer))
        return IsingModel(J, None, offset=diag_const, name=self.name)

    def residue_from_energy(self, energy: float) -> float:
        """Convert a :meth:`to_ising` energy back to a residue."""
        return float(np.sqrt(max(energy, 0.0)))

    @classmethod
    def random(
        cls, num_items: int, high: int = 100, seed=None, name: str = "partition"
    ) -> "NumberPartitioningProblem":
        """Random instance with integers in ``[1, high]``."""
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(seed)
        return cls(rng.integers(1, high + 1, size=num_items).astype(np.float64), name=name)
