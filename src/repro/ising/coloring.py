"""Graph k-coloring as a QUBO (one of the COP classes in the paper's Table 1).

One-hot encoding: binary variable ``x[v, c]`` means "vertex v gets colour c".
The objective is a pure penalty

.. math::  A \\sum_v \\Big(1 - \\sum_c x_{vc}\\Big)^2
           + B \\sum_{(u,v) \\in E} \\sum_c x_{uc} x_{vc},

which is zero exactly for proper colourings; any annealer that drives the
QUBO energy to the recorded ``ground_energy`` has found one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ising.qubo import QuboModel


@dataclass
class GraphColoringProblem:
    """A k-coloring instance over a simple undirected graph.

    Parameters
    ----------
    num_nodes:
        Number of vertices.
    edges:
        ``(m, 2)`` endpoint array.
    num_colors:
        Number of available colours ``k``.
    one_hot_weight:
        Penalty ``A`` for the one-colour-per-vertex constraint.
    conflict_weight:
        Penalty ``B`` for adjacent vertices sharing a colour.
    """

    num_nodes: int
    edges: np.ndarray
    num_colors: int
    one_hot_weight: float = 4.0
    conflict_weight: float = 2.0
    name: str = "coloring"
    _edges: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.num_colors < 1:
            raise ValueError("num_colors must be >= 1")
        if self.one_hot_weight <= 0 or self.conflict_weight <= 0:
            raise ValueError("penalty weights must be positive")
        e = np.asarray(self.edges, dtype=np.intp).reshape(-1, 2)
        if e.size and (e.min() < 0 or e.max() >= self.num_nodes):
            raise ValueError("edge endpoints out of range")
        if np.any(e[:, 0] == e[:, 1]):
            raise ValueError("self loops are not allowed")
        self._edges = e

    @property
    def num_variables(self) -> int:
        """Number of binary variables ``n·k`` in the one-hot encoding."""
        return self.num_nodes * self.num_colors

    def variable_index(self, vertex: int, color: int) -> int:
        """Flat index of ``x[vertex, color]``."""
        if not 0 <= vertex < self.num_nodes:
            raise IndexError(f"vertex {vertex} out of range")
        if not 0 <= color < self.num_colors:
            raise IndexError(f"color {color} out of range")
        return vertex * self.num_colors + color

    def to_qubo(self) -> QuboModel:
        """Build the penalty QUBO described in the module docstring.

        The returned model's minimum value is 0 iff a proper colouring with
        every vertex coloured exists (:attr:`ground_energy`).
        """
        nv = self.num_variables
        k = self.num_colors
        Q = np.zeros((nv, nv), dtype=np.float64)
        q = np.zeros(nv, dtype=np.float64)
        offset = 0.0
        A, B = float(self.one_hot_weight), float(self.conflict_weight)
        # A * (1 - sum_c x_vc)^2 = A * (1 - 2 sum x + sum x^2 + 2 sum_{c<c'} x x')
        #                        = A - A sum_c x_vc + 2A sum_{c<c'} x_vc x_vc'.
        for v in range(self.num_nodes):
            offset += A
            for c in range(k):
                q[self.variable_index(v, c)] += -A
            for c in range(k):
                for c2 in range(c + 1, k):
                    i, j = self.variable_index(v, c), self.variable_index(v, c2)
                    Q[i, j] += A
                    Q[j, i] += A
        for u, v in self._edges:
            for c in range(k):
                i, j = self.variable_index(int(u), c), self.variable_index(int(v), c)
                Q[i, j] += B / 2.0
                Q[j, i] += B / 2.0
        return QuboModel(Q, q, offset=offset, name=self.name)

    @property
    def ground_energy(self) -> float:
        """QUBO value of any feasible proper colouring (always 0)."""
        return 0.0

    def decode(self, x) -> np.ndarray:
        """Map a 0/1 vector to a colour per vertex (−1 if none assigned).

        If several colour bits are set for a vertex the lowest colour wins;
        use :meth:`violations` to detect such states.
        """
        arr = np.asarray(x).reshape(self.num_nodes, self.num_colors)
        colors = np.full(self.num_nodes, -1, dtype=np.int64)
        for v in range(self.num_nodes):
            on = np.flatnonzero(arr[v])
            if on.size:
                colors[v] = int(on[0])
        return colors

    def violations(self, x) -> dict[str, int]:
        """Count constraint violations of a raw 0/1 assignment.

        Returns a dict with ``one_hot`` (vertices without exactly one colour)
        and ``conflicts`` (monochromatic edges under :meth:`decode`).
        """
        arr = np.asarray(x).reshape(self.num_nodes, self.num_colors)
        one_hot = int(np.sum(arr.sum(axis=1) != 1))
        colors = self.decode(x)
        conflicts = 0
        for u, v in self._edges:
            cu, cv = colors[int(u)], colors[int(v)]
            if cu != -1 and cu == cv:
                conflicts += 1
        return {"one_hot": one_hot, "conflicts": conflicts}

    def is_proper(self, x) -> bool:
        """Whether ``x`` decodes to a complete proper colouring."""
        v = self.violations(x)
        return v["one_hot"] == 0 and v["conflicts"] == 0
