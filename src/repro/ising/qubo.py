"""QUBO form and exact conversions to/from the Ising model.

Quadratic Unconstrained Binary Optimization:

.. math:: C(x) = x^T Q x + q^T x + c, \\qquad x_i \\in \\{0, 1\\}.

The paper notes (Sec. 2.1) that Ising and QUBO are equivalent under the
variable change ``σ_i = 1 - 2 x_i``; this module implements that change *with
exact constant-offset bookkeeping*, so objective values survive round trips —
a property the test-suite checks with hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ising.model import IsingModel
from repro.ising.sparse import (
    BACKENDS,
    SparseIsingModel,
    dense_couplings,
    recommended_backend,
)
from repro.utils.validation import check_square_symmetric


@dataclass
class QuboModel:
    """A QUBO objective ``C(x) = xᵀQx + qᵀx + offset`` over binary ``x``.

    Parameters
    ----------
    quadratic:
        Symmetric ``(n, n)`` matrix ``Q`` with zero diagonal (diagonal terms
        are linear for binary variables; put them in ``linear``).
    linear:
        Optional length-``n`` vector ``q``.
    offset:
        Constant term.
    name:
        Free-form label used in reports.
    """

    quadratic: np.ndarray
    linear: np.ndarray | None = None
    offset: float = 0.0
    name: str = "qubo"
    _Q: np.ndarray = field(init=False, repr=False)
    _q: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        Q = check_square_symmetric(self.quadratic, "quadratic")
        diag = np.diag(Q).copy()
        n = Q.shape[0]
        if self.linear is None:
            q = np.zeros(n, dtype=np.float64)
        else:
            q = np.asarray(self.linear, dtype=np.float64)
            if q.shape != (n,):
                raise ValueError(f"linear must have shape ({n},), got {q.shape}")
        # For binary variables x_i² = x_i: absorb any diagonal into `linear`.
        if np.any(diag):
            q = q + diag
            Q = Q - np.diag(diag)
        self._Q = Q
        self._q = q
        self.offset = float(self.offset)

    @property
    def num_variables(self) -> int:
        """Number of binary variables ``n``."""
        return self._Q.shape[0]

    @property
    def Q(self) -> np.ndarray:
        """Validated symmetric zero-diagonal quadratic matrix."""
        return self._Q

    @property
    def q(self) -> np.ndarray:
        """Validated linear coefficient vector."""
        return self._q

    def value(self, x) -> float:
        """Objective value of a 0/1 assignment."""
        arr = np.asarray(x, dtype=np.float64)
        if arr.shape != (self.num_variables,):
            raise ValueError(
                f"x must have shape ({self.num_variables},), got {arr.shape}"
            )
        if not np.all(np.isin(arr, (0.0, 1.0))):
            raise ValueError("x entries must be 0/1")
        return float(arr @ self._Q @ arr + self._q @ arr) + self.offset

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_ising(self, backend: str = "auto") -> IsingModel | SparseIsingModel:
        """Exact conversion under ``x_i = (1 - σ_i)/2``.

        Derivation: substituting into ``xᵀQx + qᵀx`` gives
        ``σᵀ(Q/4)σ − σᵀ rowsum(Q)/2 − qᵀσ/2 + const`` (zero-diagonal ``Q``),
        so ``J = Q/4``, ``h = −(rowsum(Q) + q)/2`` and the constant is
        ``sum(Q)/4 + sum(q)/2``.

        ``backend`` selects the coupling representation of the returned
        model (``"dense"``, ``"sparse"``, ``"packed"`` for sign-only
        ``Q`` entries of one magnitude, or the ``"auto"`` density
        heuristic — with sign-only promotion — on the nonzero pattern of
        ``Q``).
        """
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
            )
        # Local import: repro.ising.packed imports this sub-package's
        # sparse module, so a top-level import would be circular via
        # repro.ising.__init__.
        from repro.ising.packed import PackedIsingModel, dyadic_uniform_scale

        J = self._Q / 4.0
        rowsum = self._Q.sum(axis=1)
        h = -(rowsum + self._q) / 2.0
        const = self.offset + float(self._Q.sum()) / 4.0 + float(self._q.sum()) / 2.0
        if backend == "auto":
            pairs = int(np.count_nonzero(self._Q)) // 2  # Q is zero-diagonal
            backend = recommended_backend(
                self.num_variables,
                pairs,
                uniform_signs=dyadic_uniform_scale(J[J != 0.0]) is not None,
            )
        if backend in ("sparse", "packed"):
            sparse_model = SparseIsingModel.from_dense(
                J, h, offset=const, name=self.name
            )
            if backend == "packed":
                return PackedIsingModel.from_sparse(sparse_model)
            return sparse_model
        return IsingModel(J, h, offset=const, name=self.name)

    @classmethod
    def from_ising(cls, model) -> "QuboModel":
        """Exact inverse of :meth:`to_ising` (``σ_i = 1 − 2 x_i``).

        Accepts either coupling backend.  The diagonal of ``J`` contributes
        only the constant ``trace(J)`` because ``σ_i² = 1``.
        """
        # Densification allowlisted: the QUBO container itself stores the
        # dense (n, n) Q matrix, so the inverse transform is O(n²) anyway.
        J_full = dense_couplings(model)  # repro-lint: disable=RPL001
        J = J_full - np.diag(np.diag(J_full))
        trace = float(np.trace(J_full))
        h = model.h
        Q = 4.0 * J
        rowsum = J.sum(axis=1)
        q = -4.0 * rowsum - 2.0 * h
        const = model.offset + trace + float(J.sum()) + float(h.sum())
        return cls(Q, q, offset=const, name=model.name)

    @staticmethod
    def sigma_to_x(sigma) -> np.ndarray:
        """Map a ±1 spin vector to the equivalent 0/1 vector (σ=1 ↦ x=0)."""
        s = np.asarray(sigma)
        return ((1 - s) // 2).astype(np.int8)

    @staticmethod
    def x_to_sigma(x) -> np.ndarray:
        """Map a 0/1 vector to the equivalent ±1 spin vector (x=0 ↦ σ=1)."""
        arr = np.asarray(x)
        return (1 - 2 * arr).astype(np.int8)
