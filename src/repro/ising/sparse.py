"""Sparse Ising backend: CSR couplings with the dense model's exact contract.

G-set-style COP graphs are overwhelmingly sparse (average degree ≈ 6-50 at
hundreds to thousands of nodes), yet a dense ``(n, n)`` coupling matrix costs
O(n²) memory and makes every local-field update an O(n) column gather.
:class:`SparseIsingModel` stores the couplings in CSR form — ``indptr``,
``indices``, ``data`` arrays covering *both* triangles of the symmetric
matrix — so memory is O(nnz) and a single-spin flip touches only the spin's
neighbours.

The class implements the same public contract as
:class:`~repro.ising.model.IsingModel` (``energy``, ``local_fields``,
``delta_energy_single``, ``delta_energy_flips``, ``with_ancilla``,
``scaled``, ``max_abs_coupling``, ``random_configuration``, …), and every
formula mirrors the dense implementation term for term.  For couplings whose
values and partial sums are exactly representable in binary floating point
(integer or dyadic-rational weights — which covers the ±1-weighted Gset
families, where ``J = W/4``) the two backends agree **bit for bit**, so
fixed-seed annealing trajectories coincide exactly; the equivalence suite in
``tests/test_sparse_model.py`` pins this down.  For general float couplings
agreement is to normal floating-point tolerance (summation order differs).

Backend selection
-----------------
:func:`recommended_backend` implements the density-threshold heuristic used
by the Max-Cut/QUBO converters and the high-level solve API: a model is
built sparse when it has at least :data:`SPARSE_MIN_SPINS` spins **and** its
pair density ``m / (n·(n−1)/2)`` is at most
:data:`SPARSE_DENSITY_THRESHOLD`.  Below the size floor the dense matrix
fits in cache and numpy's dense kernels win; above the density ceiling CSR
indirection costs more than it saves.  :func:`as_backend` converts a model
either way, and :func:`dense_couplings` is the escape hatch for consumers
that genuinely need the dense matrix (the crossbar machines, which program
a physical array).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_choice,
    check_count,
    check_index,
    check_permutation,
    check_spin_vector,
    check_square_symmetric,
)

#: Minimum spin count before the auto heuristic considers the sparse backend.
SPARSE_MIN_SPINS = 512

#: Maximum pair density (``m`` over ``n·(n−1)/2``) for the sparse backend.
SPARSE_DENSITY_THRESHOLD = 0.125

BACKENDS = ("auto", "dense", "sparse", "packed")


def recommended_backend(
    num_spins: int, num_pairs: int, uniform_signs: bool = False
) -> str:
    """The density-threshold heuristic: ``"dense"``, ``"sparse"`` or ``"packed"``.

    Parameters
    ----------
    num_spins:
        Number of spins ``n``.
    num_pairs:
        Number of coupled (undirected) spin pairs ``m``.
    uniform_signs:
        True when every off-diagonal coupling shares one (small dyadic)
        magnitude — ±1 edge weights and their scaled embeddings (see
        :func:`repro.ising.packed.packed_scale`).  Whenever the sparse
        heuristic wins *and* the couplings are sign-only, the bit-packed
        backend is recommended instead: its trajectories are bit-identical
        to sparse at a fraction of the replica state traffic.
    """
    n = int(num_spins)
    if n < SPARSE_MIN_SPINS:
        return "dense"
    possible = n * (n - 1) / 2.0
    if possible <= 0:
        return "dense"
    if num_pairs / possible > SPARSE_DENSITY_THRESHOLD:
        return "dense"
    return "packed" if (uniform_signs and num_pairs > 0) else "sparse"


class SparseIsingModel:
    """An Ising Hamiltonian ``E(σ) = σᵀJσ + hᵀσ + offset`` in CSR storage.

    Use the constructors :meth:`from_edges` (COO pair list, each undirected
    pair given once) or :meth:`from_dense` (symmetric matrix) rather than
    ``__init__`` — the raw initialiser expects pre-validated CSR arrays
    covering both triangles.

    Parameters
    ----------
    indptr / indices / data:
        CSR arrays of the full symmetric coupling matrix (both ``(i, j)``
        and ``(j, i)`` stored for every off-diagonal coupling).
    fields:
        Optional length-``n`` external field ``h`` (``None`` means zero).
    offset:
        Constant added to every energy.
    name:
        Free-form label used in reports.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        fields: np.ndarray | None = None,
        offset: float = 0.0,
        name: str = "sparse-ising",
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.intp)
        indices = np.asarray(indices, dtype=np.intp)
        data = np.asarray(data, dtype=np.float64)
        if indptr.ndim != 1 or indptr.shape[0] < 1:
            raise ValueError("indptr must be a 1-D array of length n + 1")
        n = indptr.shape[0] - 1
        if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.shape != data.shape or indices.ndim != 1:
            raise ValueError("indices and data must be matching 1-D arrays")
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("column indices out of range")
        self._n = n
        self._indptr = indptr
        self._indices = indices
        self._data = data
        # Row id of every stored entry — used by the bincount matvec.
        self._rows = np.repeat(np.arange(n, dtype=np.intp), np.diff(indptr))
        diag = np.zeros(n, dtype=np.float64)
        on_diag = self._rows == indices
        diag[self._rows[on_diag]] = data[on_diag]
        self._diag = diag
        if fields is None:
            self._h = np.zeros(n, dtype=np.float64)
        else:
            h = np.asarray(fields, dtype=np.float64)
            if h.shape != (n,):
                raise ValueError(f"fields must have shape ({n},), got {h.shape}")
            self._h = h
        self.offset = float(offset)
        self.name = str(name)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        rows,
        cols,
        values,
        fields=None,
        offset: float = 0.0,
        name: str = "sparse-ising",
    ) -> "SparseIsingModel":
        """Build from a COO pair list with each undirected pair given once.

        Off-diagonal entries are mirrored into both triangles; diagonal
        entries (``rows[k] == cols[k]``) are stored once.  Explicit zeros
        are dropped (they carry no energy and would skew the nonzero-median
        acceptance-gain heuristic).
        """
        n = int(n)
        if n <= 0:
            raise ValueError("n must be positive")
        r = np.atleast_1d(np.asarray(rows, dtype=np.intp))
        c = np.atleast_1d(np.asarray(cols, dtype=np.intp))
        v = np.atleast_1d(np.asarray(values, dtype=np.float64))
        if not (r.shape == c.shape == v.shape) or r.ndim != 1:
            raise ValueError("rows, cols and values must be matching 1-D arrays")
        if r.size and (min(r.min(), c.min()) < 0 or max(r.max(), c.max()) >= n):
            raise ValueError(f"coupling indices out of range [0, {n})")
        key = np.minimum(r, c) * n + np.maximum(r, c)
        if np.unique(key).size != key.size:
            raise ValueError(
                "duplicate couplings: each undirected pair must appear once"
            )
        keep = v != 0.0
        r, c, v = r[keep], c[keep], v[keep]
        off = r != c
        full_r = np.concatenate([r, c[off]])
        full_c = np.concatenate([c, r[off]])
        full_v = np.concatenate([v, v[off]])
        order = np.lexsort((full_c, full_r))
        full_r, full_c, full_v = full_r[order], full_c[order], full_v[order]
        indptr = np.zeros(n + 1, dtype=np.intp)
        indptr[1:] = np.cumsum(np.bincount(full_r, minlength=n))
        return cls(indptr, full_c, full_v, fields, offset=offset, name=name)

    @classmethod
    def from_dense(
        cls,
        couplings,
        fields=None,
        offset: float = 0.0,
        name: str = "sparse-ising",
    ) -> "SparseIsingModel":
        """Build from a symmetric dense matrix, keeping nonzero entries."""
        J = check_square_symmetric(couplings, "couplings")
        n = J.shape[0]
        r, c = np.nonzero(J)  # row-major → already CSR ordered
        indptr = np.zeros(n + 1, dtype=np.intp)
        indptr[1:] = np.cumsum(np.bincount(r, minlength=n))
        return cls(
            indptr,
            c.astype(np.intp),
            J[r, c].astype(np.float64),
            fields,
            offset=offset,
            name=name,
        )

    @classmethod
    def from_ising(cls, model) -> "SparseIsingModel":
        """Convert a dense :class:`~repro.ising.model.IsingModel`."""
        return cls.from_dense(
            model.J,
            model.h.copy() if model.has_fields else None,
            offset=model.offset,
            name=model.name,
        )

    @classmethod
    def random(
        cls,
        n: int,
        degree: float = 6.0,
        coupling_scale: float = 1.0,
        with_fields: bool = False,
        seed=None,
    ) -> "SparseIsingModel":
        """Random sparse model with average degree ``degree`` (tests/demos).

        Couplings are uniform in ``[-coupling_scale, coupling_scale]`` on a
        uniform random edge set; never materialises a dense matrix.
        """
        from repro.ising.gset import random_edge_set  # local import, no cycle

        if n <= 1:
            raise ValueError("n must be at least 2")
        m = min(int(round(degree * n / 2.0)), n * (n - 1) // 2)
        rng = ensure_rng(seed)
        edges, _ = random_edge_set(n, m, seed=rng)
        values = rng.uniform(-coupling_scale, coupling_scale, size=m)
        h = rng.uniform(-coupling_scale, coupling_scale, size=n) if with_fields else None
        return cls.from_edges(
            n, edges[:, 0], edges[:, 1], values, h, name=f"sparse-random-{n}"
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_spins(self) -> int:
        """Number of spins ``n``."""
        return self._n

    @property
    def h(self) -> np.ndarray:
        """The validated external-field vector (do not mutate)."""
        return self._h

    @property
    def has_fields(self) -> bool:
        """Whether any external field is non-zero."""
        return bool(np.any(self._h))

    @property
    def nnz(self) -> int:
        """Stored entries (off-diagonal couplings count twice)."""
        return int(self._data.shape[0])

    @property
    def num_interactions(self) -> int:
        """Number of coupled undirected spin pairs ``m``."""
        return (self.nnz - int(np.count_nonzero(self._diag))) // 2

    @property
    def density(self) -> float:
        """Pair density ``m / (n·(n−1)/2)``."""
        possible = self._n * (self._n - 1) / 2.0
        return self.num_interactions / possible if possible else 0.0

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The raw ``(indptr, indices, data)`` CSR arrays (do not mutate)."""
        return self._indptr, self._indices, self._data

    def content_fingerprint(self) -> str:
        """Content digest of the problem data (CSR arrays, fields, offset).

        O(nnz), never densifies.  Same contract as
        :meth:`repro.ising.model.IsingModel.content_fingerprint`: equal
        iff the stored numbers are byte-identical on the same backend
        (the display ``name`` is excluded); the model half of the
        :class:`~repro.core.plan.PlanCache` key.
        """
        h = hashlib.sha256()
        h.update(
            f"{type(self).__name__}:{self._n}:{self.offset!r}".encode()
        )
        for arr in (self._indptr, self._indices, self._data, self._h):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()

    def max_abs_entry(self) -> float:
        """Largest |J_ij| over *all* stored entries (diagonal included).

        This is what a whole-matrix quantizer scales against
        (:meth:`~repro.circuits.quantize.MatrixQuantizer.lsb_for`), computed
        in O(nnz) without densifying.
        """
        return float(np.max(np.abs(self._data))) if self._data.size else 0.0

    def block_partition(
        self, tile_size: int
    ) -> dict[tuple[int, int], tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Group the stored entries into ``tile_size``-square blocks.

        Returns ``{(bi, bj): (local_rows, local_cols, values)}`` covering
        exactly the blocks that contain at least one nonzero — the registry
        a tiled crossbar instantiates physical arrays from.  Coordinates
        are local to the block (``global = b * tile_size + local``).  One
        O(nnz log nnz) pass; the dense ``(n, n)`` matrix is never formed.
        """
        s = check_count("tile_size", tile_size)
        if self._data.size == 0:
            return {}
        grid = -(-self._n // s)  # ceil division
        block_rows = self._rows // s
        block_cols = self._indices // s
        key = block_rows * grid + block_cols
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_key[1:] != sorted_key[:-1]))
        )
        bounds = np.concatenate((starts, [sorted_key.size]))
        blocks: dict[tuple[int, int], tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for t, lo in enumerate(starts):
            hi = bounds[t + 1]
            bi, bj = divmod(int(sorted_key[lo]), grid)
            idx = order[lo:hi]
            blocks[(bi, bj)] = (
                self._rows[idx] - bi * s,
                self._indices[idx] - bj * s,
                self._data[idx],
            )
        return blocks

    def coupling_diagonal(self) -> np.ndarray:
        """Dense view of ``diag(J)`` (do not mutate)."""
        return self._diag

    def memory_bytes(self) -> int:
        """Bytes held by the coupling storage (CSR arrays + diagonal)."""
        return int(
            self._indptr.nbytes
            + self._indices.nbytes
            + self._data.nbytes
            + self._rows.nbytes
            + self._diag.nbytes
        )

    # ------------------------------------------------------------------
    # Energies
    # ------------------------------------------------------------------
    def _matvec(self, s: np.ndarray) -> np.ndarray:
        """``J @ s`` in O(nnz) via a segmented bincount sum."""
        if self._data.size == 0:
            return np.zeros(self._n, dtype=np.float64)
        return np.bincount(
            self._rows, weights=self._data * s[self._indices], minlength=self._n
        )

    def energy(self, sigma) -> float:
        """Exact energy ``σᵀJσ + hᵀσ + offset`` of a ±1 configuration."""
        s = check_spin_vector(sigma, self._n).astype(np.float64)
        return float(s @ self._matvec(s) + self._h @ s) + self.offset

    def local_fields(self, sigma) -> np.ndarray:
        """Return ``g = J σ`` for the given configuration (O(nnz))."""
        s = check_spin_vector(sigma, self._n).astype(np.float64)
        return self._matvec(s)

    def delta_energy_single(self, sigma, index: int, g: np.ndarray | None = None) -> float:
        """Energy change from flipping the single spin ``index``.

        Mirrors :meth:`IsingModel.delta_energy_single`; without a cached
        ``g`` the cost is O(degree) instead of O(n).
        """
        s = check_spin_vector(sigma, self._n)
        index = check_index("index", index, self._n)
        si = float(s[index])
        if g is None:
            lo, hi = self._indptr[index], self._indptr[index + 1]
            gi = float(
                self._data[lo:hi] @ s[self._indices[lo:hi]].astype(np.float64)
            )
        else:
            gi = float(g[index])
        gi_off = gi - self._diag[index] * si
        return -4.0 * si * gi_off - 2.0 * self._h[index] * si

    def delta_energy_flips(self, sigma, flip_indices) -> float:
        """Energy change from flipping the set ``flip_indices`` simultaneously.

        Same incremental identity as the dense model
        (``ΔE = 4 σ_rᵀ J σ_c + 2 hᵀ σ_c``), evaluated in
        O(Σ degree(f)) over the flipped spins' neighbourhoods.
        """
        s = check_spin_vector(sigma, self._n).astype(np.float64)
        flips = np.atleast_1d(np.asarray(flip_indices, dtype=np.intp))
        if flips.size == 0:
            return 0.0
        if flips.min() < 0 or flips.max() >= self._n:
            raise IndexError("flip index out of range")
        if np.unique(flips).size != flips.size:
            raise ValueError("flip_indices must be unique")
        sigma_new = s.copy()
        sigma_new[flips] *= -1.0
        sigma_c = np.zeros_like(s)
        sigma_c[flips] = sigma_new[flips]
        sigma_r = sigma_new.copy()
        sigma_r[flips] = 0.0
        # y = J σ_c touches only the flipped spins' neighbour lists.
        y = np.zeros(self._n, dtype=np.float64)
        for j in flips:
            lo, hi = self._indptr[j], self._indptr[j + 1]
            y[self._indices[lo:hi]] += self._data[lo:hi] * sigma_c[j]
        cross = float(sigma_r @ y)
        return 4.0 * cross + 2.0 * float(self._h @ sigma_c)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def _canonical_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stored entries with each undirected pair once (row ≤ col)."""
        keep = self._rows <= self._indices
        return self._rows[keep], self._indices[keep], self._data[keep]

    def with_ancilla(self) -> "SparseIsingModel":
        """Fold the external field into couplings via one ancilla spin.

        Same construction as :meth:`IsingModel.with_ancilla`: spin 0 is
        pinned to +1 by convention and ``J'_{0j} = h_j / 2``.
        """
        r, c, v = self._canonical_coo()
        hj = np.flatnonzero(self._h)
        rows = np.concatenate([np.zeros(hj.size, dtype=np.intp), r + 1])
        cols = np.concatenate([hj + 1, c + 1])
        vals = np.concatenate([self._h[hj] / 2.0, v])
        return SparseIsingModel.from_edges(
            self._n + 1, rows, cols, vals, None,
            offset=self.offset, name=f"{self.name}+ancilla",
        )

    def scaled(self, factor: float) -> "SparseIsingModel":
        """Return a copy with ``J``, ``h`` and ``offset`` scaled by ``factor``."""
        return SparseIsingModel(
            self._indptr.copy(),
            self._indices.copy(),
            self._data * factor,
            self._h * factor if self.has_fields else None,
            offset=self.offset * factor,
            name=self.name,
        )

    def permuted(self, perm) -> "SparseIsingModel":
        """Relabel the spins through a permutation without densifying.

        ``perm`` is a :class:`~repro.core.reorder.Permutation` (or a raw
        ``forward`` array with ``forward[old] = new``).  The CSR arrays are
        re-sorted in O(nnz log nnz) and the field vector is gathered once;
        coupling *values* are moved, never recomputed, so
        ``permuted(p).permuted(p.inverse)`` round-trips bit for bit and
        energies are permutation-equivariant (exactly so for dyadic
        couplings, where every sum is order-independent in floating point).
        """
        fwd, bwd = check_permutation(perm, self._n)
        r = fwd[self._rows]
        c = fwd[self._indices]
        order = np.lexsort((c, r))
        indptr = np.zeros(self._n + 1, dtype=np.intp)
        indptr[1:] = np.cumsum(np.bincount(r, minlength=self._n))
        return SparseIsingModel(
            indptr,
            c[order],
            self._data[order],
            self._h[bwd] if self.has_fields else None,
            offset=self.offset,
            name=self.name,
        )

    def max_abs_coupling(self) -> float:
        """Largest |J_ij| off the diagonal (used for quantization scaling)."""
        off = self._data[self._rows != self._indices]
        return float(np.max(np.abs(off))) if off.size else 0.0

    def offdiag_abs_values(self) -> np.ndarray:
        """|J_ij| of all stored off-diagonal entries (both triangles)."""
        return np.abs(self._data[self._rows != self._indices])

    def to_dense(self):
        """Materialise an equivalent dense :class:`IsingModel`."""
        from repro.ising.model import IsingModel  # local import, no cycle

        return IsingModel(
            self.toarray(),
            self._h.copy() if self.has_fields else None,
            offset=self.offset,
            name=self.name,
        )

    def toarray(self) -> np.ndarray:
        """The dense coupling matrix (O(n²) memory — use sparingly)."""
        J = np.zeros((self._n, self._n), dtype=np.float64)
        J[self._rows, self._indices] = self._data
        return J

    # ------------------------------------------------------------------
    # Misc. contract parity
    # ------------------------------------------------------------------
    def random_configuration(self, seed=None) -> np.ndarray:
        """Draw a uniform random ±1 configuration of the right length."""
        rng = ensure_rng(seed)
        return rng.choice(np.array([-1, 1], dtype=np.int8), size=self._n)

    def brute_force_minimum(self) -> tuple[np.ndarray, float]:
        """Exhaustively minimise the Hamiltonian (only for ``n <= 20``)."""
        return self.to_dense().brute_force_minimum()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseIsingModel(n={self._n}, pairs={self.num_interactions}, "
            f"density={self.density:.4f}, name={self.name!r})"
        )


# ----------------------------------------------------------------------
# Backend conversion helpers
# ----------------------------------------------------------------------
def as_backend(model, backend: str = "auto"):
    """Return ``model`` converted to the requested coupling backend.

    ``backend`` is ``"dense"``, ``"sparse"``, ``"packed"`` or ``"auto"``
    (pick by the density heuristic of :func:`recommended_backend`, which
    promotes sparse to packed when all couplings are sign-only).  Models
    already in the requested backend are returned unchanged; requesting
    ``"sparse"`` on a packed model returns the plain CSR twin (so
    backend comparisons measure genuinely unpacked kernels).
    """
    check_choice("backend", backend, BACKENDS)
    # Local import: the packed model subclasses SparseIsingModel, so a
    # module-level import here would be circular.
    from repro.ising.packed import PackedIsingModel, packed_scale

    is_packed = isinstance(model, PackedIsingModel)
    is_sparse = isinstance(model, SparseIsingModel)
    if backend == "auto":
        if is_sparse:
            pairs = model.num_interactions
        else:
            J = model.J
            off = np.count_nonzero(J) - np.count_nonzero(np.diag(J))
            pairs = off // 2
        backend = recommended_backend(
            model.num_spins, pairs, uniform_signs=packed_scale(model) is not None
        )
    if backend == "packed":
        if is_packed:
            return model
        return PackedIsingModel.from_sparse(
            model if is_sparse else SparseIsingModel.from_ising(model)
        )
    if backend == "sparse":
        if is_packed:
            return model.to_sparse()
        return model if is_sparse else SparseIsingModel.from_ising(model)
    return model.to_dense() if is_sparse else model


def dense_couplings(model) -> np.ndarray:
    """The dense coupling matrix of either backend.

    Consumers that physically need the full matrix (crossbar programming,
    quantizer sweeps) call this; everything on the solver path should go
    through :func:`repro.core.coupling.coupling_ops` instead so sparse
    models stay sparse.
    """
    J = getattr(model, "J", None)
    if J is not None:
        return J
    if isinstance(model, SparseIsingModel):
        return model.toarray()
    raise TypeError(
        f"expected an IsingModel or SparseIsingModel, got {type(model).__name__}"
    )
