"""0/1 knapsack as a QUBO (one of the COP classes in the paper's Table 1).

Maximise total value subject to a capacity constraint.  The inequality is
turned into an equality with a binary *log-slack* register (the standard
Glover/Kochenberger construction, also used by the HyCiM baseline [15]):

.. math::  \\min\\; -\\sum_i v_i x_i
           + P\\Big(\\sum_i w_i x_i + \\sum_b 2^b s_b - C\\Big)^2,

where the slack register can represent any value in ``[0, C]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ising.qubo import QuboModel


def _slack_coefficients(capacity: int) -> np.ndarray:
    """Binary coefficients 1,2,4,...,r that exactly cover ``[0, capacity]``.

    The last coefficient is trimmed so the register maximum equals the
    capacity (Glover's bounded-coefficient encoding).
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if capacity == 0:
        return np.zeros(0, dtype=np.float64)
    coeffs = []
    remaining = capacity
    power = 1
    while power <= remaining:
        coeffs.append(power)
        remaining -= power
        power *= 2
    if remaining > 0:
        coeffs.append(remaining)
    return np.asarray(coeffs, dtype=np.float64)


@dataclass
class KnapsackProblem:
    """A 0/1 knapsack instance.

    Parameters
    ----------
    values:
        Item values ``v_i > 0``.
    weights:
        Item weights ``w_i > 0`` (integers).
    capacity:
        Total weight budget ``C`` (integer).
    penalty:
        Constraint penalty ``P``; must exceed ``max(v)`` for feasible optima
        to dominate (a safe default is chosen when ``None``).
    """

    values: np.ndarray
    weights: np.ndarray
    capacity: int
    penalty: float | None = None
    name: str = "knapsack"
    _values: np.ndarray = field(init=False, repr=False)
    _weights: np.ndarray = field(init=False, repr=False)
    _slack: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        v = np.asarray(self.values, dtype=np.float64)
        w = np.asarray(self.weights, dtype=np.float64)
        if v.ndim != 1 or w.shape != v.shape or v.size == 0:
            raise ValueError("values and weights must be equal-length 1-D arrays")
        if np.any(v <= 0) or np.any(w <= 0):
            raise ValueError("values and weights must be positive")
        if int(self.capacity) < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(self.capacity)
        self._values = v
        self._weights = w
        self._slack = _slack_coefficients(self.capacity)
        if self.penalty is None:
            # Any single unit of constraint violation must cost more than the
            # best possible value gain; v_max + 1 is a safe margin.
            self.penalty = float(v.max()) + 1.0
        elif self.penalty <= 0:
            raise ValueError("penalty must be positive")

    @property
    def num_items(self) -> int:
        """Number of items."""
        return self._values.size

    @property
    def num_slack_bits(self) -> int:
        """Number of slack-register bits."""
        return self._slack.size

    @property
    def num_variables(self) -> int:
        """Total binary variables (items + slack bits)."""
        return self.num_items + self.num_slack_bits

    def to_qubo(self) -> QuboModel:
        """Build the penalty QUBO of the module docstring (minimisation)."""
        n = self.num_items
        coeffs = np.concatenate([self._weights, self._slack])
        P = float(self.penalty)
        C = float(self.capacity)
        # P * (coeffs·y - C)^2 = P [ (coeffs·y)^2 - 2C coeffs·y + C² ].
        Q = P * np.outer(coeffs, coeffs)
        diag = np.diag(Q).copy()
        Q -= np.diag(diag)  # x² = x → diagonal becomes linear
        q = diag - 2.0 * P * C * coeffs
        q[:n] += -self._values  # maximise value ⇒ minimise −value
        offset = P * C * C
        return QuboModel(Q, q, offset=offset, name=self.name)

    def decode(self, x) -> np.ndarray:
        """Extract the item-selection bits from a full QUBO assignment."""
        arr = np.asarray(x)
        if arr.shape[0] != self.num_variables:
            raise ValueError(
                f"expected {self.num_variables} variables, got {arr.shape[0]}"
            )
        return arr[: self.num_items].astype(np.int8)

    def total_value(self, selection) -> float:
        """Total value of the selected items."""
        sel = np.asarray(selection, dtype=np.float64)
        return float(self._values @ sel)

    def total_weight(self, selection) -> float:
        """Total weight of the selected items."""
        sel = np.asarray(selection, dtype=np.float64)
        return float(self._weights @ sel)

    def is_feasible(self, selection) -> bool:
        """Whether the selection respects the capacity."""
        return self.total_weight(selection) <= self.capacity + 1e-9

    def brute_force_optimum(self) -> tuple[np.ndarray, float]:
        """Exact optimum by dynamic programming (integer weights).

        Returns ``(selection, value)``.  Weights are cast to int; intended
        for the modest instance sizes used in tests and examples.
        """
        weights = self._weights.astype(np.int64)
        n, C = self.num_items, self.capacity
        best = np.zeros((n + 1, C + 1), dtype=np.float64)
        for i in range(1, n + 1):
            wi = int(weights[i - 1])
            vi = self._values[i - 1]
            best[i] = best[i - 1]
            if wi <= C:
                candidate = best[i - 1, : C - wi + 1] + vi
                improved = candidate > best[i, wi:]
                best[i, wi:][improved] = candidate[improved]
        # Backtrack.
        selection = np.zeros(n, dtype=np.int8)
        c = int(np.argmax(best[n]))
        value = best[n, c]
        for i in range(n, 0, -1):
            if best[i, c] != best[i - 1, c]:
                selection[i - 1] = 1
                c -= int(weights[i - 1])
        return selection, float(value)

    @classmethod
    def random(cls, num_items: int, seed=None, name: str = "knapsack") -> "KnapsackProblem":
        """Random instance with integer weights in [1, 20], values in [1, 30]."""
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(seed)
        weights = rng.integers(1, 21, size=num_items)
        values = rng.integers(1, 31, size=num_items).astype(np.float64)
        capacity = max(1, int(weights.sum() // 2))
        return cls(values, weights.astype(np.float64), capacity, name=name)
