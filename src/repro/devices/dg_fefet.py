"""Double-gate (DG) FeFET compact model (Fig 2c/2d and Fig 6a/6b).

The DG FeFET is an FDSOI FeFET: the ferroelectric sits in the *front* gate
stack while the buried oxide couples a *back* gate (BG) to the channel.  The
BG does not disturb the ferroelectric state — it shifts the effective
threshold electrostatically:

.. math::  V_{TH}^{eff} = V_{TH}^{FE} - \\gamma\\,V_{BG},

with coupling ratio ``γ = C_BOX/(C_BOX + C_ch)``-like.  This gives the cell
its four-input product (Fig 6a):

.. math::  I_{SL} \\approx x \\cdot G \\cdot y \\cdot z,

where ``x`` (front gate, binary), ``y`` (drain line, binary) and ``z`` (back
gate, analog) are inputs and ``G`` is the stored bit.  With ``G = 0`` the
high-``V_TH`` state keeps the cell off for any in-range ``V_BG``; with
``G = 1`` the SL current follows ``V_BG`` (Fig 6b), which is exactly the knob
the in-situ annealing flow uses to realise the fractional factor ``f(T)``.
"""

from __future__ import annotations

import numpy as np

from repro.devices.constants import (
    DEFAULT_BG_COUPLING,
    DEFAULT_MEMORY_WINDOW,
    DEFAULT_READ_VDL,
    DEFAULT_READ_VFG,
    VBG_MAX,
    VBG_MIN,
)
from repro.devices.fefet import FeFET
from repro.devices.preisach import PreisachFerroelectric
from repro.devices.transistor import Transistor
from repro.utils.validation import check_in_range, check_positive


class DGFeFET(FeFET):
    """Double-gate FeFET cell.

    Parameters
    ----------
    bg_coupling:
        Back-gate coupling ratio ``γ`` (ΔV_TH per volt of ``V_BG``).
    vth_low_offset:
        Front-gate read overdrive margin: the low-``V_TH`` state is placed
        so the cell is *just* off at ``V_FG = 1 V, V_BG = 0`` and turns on
        as ``V_BG`` rises — the behaviour of Fig 6b.
    Other parameters are forwarded to :class:`FeFET`.
    """

    def __init__(
        self,
        ferroelectric: PreisachFerroelectric | None = None,
        transistor: Transistor | None = None,
        memory_window: float = DEFAULT_MEMORY_WINDOW,
        vth_mid: float | None = None,
        bg_coupling: float = DEFAULT_BG_COUPLING,
    ) -> None:
        if transistor is None:
            # The cell current scale is set so a '1' cell carries ~10 µA at
            # the top of the back-gate range (Fig 6b).
            transistor = Transistor(i0=4.4e-6)
        if vth_mid is None:
            # Place the low-V_TH state slightly above the 1 V read bias so
            # that V_BG ∈ [0, 0.7] V sweeps the cell from near-off to on.
            vth_mid = 1.08 + DEFAULT_MEMORY_WINDOW / 2.0
        super().__init__(ferroelectric, transistor, memory_window, vth_mid)
        check_positive("bg_coupling", bg_coupling)
        self.bg_coupling = float(bg_coupling)

    # ------------------------------------------------------------------
    # Threshold with back-gate action
    # ------------------------------------------------------------------
    def effective_vth(self, v_bg: float) -> float:
        """Effective threshold seen by the front gate at back-gate ``v_bg``."""
        return self.vth - self.bg_coupling * float(v_bg)

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    def sl_current(self, x_fg, y_dl, v_bg, v_read_fg: float = DEFAULT_READ_VFG,
                   v_read_dl: float = DEFAULT_READ_VDL) -> np.ndarray:
        """Source-line current of the four-input product ``x·G·y·z``.

        Parameters
        ----------
        x_fg:
            Binary front-gate input (0/1); scaled to ``v_read_fg``.
        y_dl:
            Binary drain-line input (0/1); scaled to ``v_read_dl``.
        v_bg:
            Analog back-gate voltage (volts).
        """
        x = np.asarray(x_fg, dtype=np.float64)
        y = np.asarray(y_dl, dtype=np.float64)
        if np.any((x != 0) & (x != 1)) or np.any((y != 0) & (y != 1)):
            raise ValueError("x_fg and y_dl must be binary (0/1)")
        v_g = x * v_read_fg
        v_d = y * v_read_dl
        v_th_eff = self.vth - self.bg_coupling * np.asarray(v_bg, dtype=np.float64)
        return self.transistor.drain_current(v_g, v_d, v_th_eff)

    def id_vfg(self, v_fg_values, v_bg: float, v_d: float = 0.1) -> np.ndarray:
        """``I_D-V_FG`` transfer sweep at a fixed back-gate bias (Fig 2d)."""
        v_fg = np.asarray(v_fg_values, dtype=np.float64)
        return self.transistor.drain_current(v_fg, v_d, self.effective_vth(v_bg))

    def isl_vbg(
        self, v_bg_values, v_read_fg: float = DEFAULT_READ_VFG,
        v_read_dl: float = DEFAULT_READ_VDL,
    ) -> np.ndarray:
        """``I_SL-V_BG`` transfer at full read bias (Fig 6b)."""
        v_bg = np.asarray(v_bg_values, dtype=np.float64)
        return self.transistor.drain_current(
            v_read_fg, v_read_dl, self.vth - self.bg_coupling * v_bg
        )

    def normalized_factor(self, v_bg, v_bg_max: float = VBG_MAX) -> np.ndarray:
        """Normalised ``I_SL`` used as the physical annealing factor.

        Returns ``I_SL(v_bg) / I_SL(v_bg_max)`` for a cell storing '1' at the
        standard read bias — the quantity Fig 6c matches against
        ``f(T) = 1/(−0.006·T + 5) − 0.2``.
        """
        check_in_range("v_bg_max", v_bg_max, VBG_MIN, 10.0)
        i = self.isl_vbg(np.asarray(v_bg, dtype=np.float64))
        i_max = float(self.isl_vbg(np.array([v_bg_max]))[0])
        if i_max <= 0:
            raise ValueError("cell must conduct at v_bg_max to normalise")
        return i / i_max
