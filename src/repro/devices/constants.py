"""Physical constants and default 22 nm-class device parameters.

The defaults are chosen to land the behavioural models inside the paper's
figure envelopes (Fig 2b/2d device curves, Fig 6b cell transfer curve); they
are not extracted from a PDK.  Everything is overridable through the model
constructors.
"""

from __future__ import annotations

#: Boltzmann constant times room temperature over electron charge (volts).
THERMAL_VOLTAGE_300K = 0.02585

#: Default subthreshold ideality factor (SS ≈ n · 60 mV/dec at 300 K).
DEFAULT_IDEALITY = 1.15

#: Default FeFET memory window between the programmed low/high V_TH states
#: (volts).  Fig 2b of the paper shows roughly a 1.1-1.3 V separation for the
#: experimentally measured device of ref [7].
DEFAULT_MEMORY_WINDOW = 1.2

#: Default low / high threshold voltages implied by the window (volts).
DEFAULT_VTH_LOW = -0.1
DEFAULT_VTH_HIGH = DEFAULT_VTH_LOW + DEFAULT_MEMORY_WINDOW

#: Saturation (remnant) polarization of the FE layer, normalised to 1.
#: The compact models work with the *normalised* polarization P/P_s.
SATURATION_POLARIZATION = 1.0

#: Default programming pulse amplitude/width (volts, seconds) — the ±4 V,
#: 1 µs pulses used for the measured FeFET of Fig 2.
DEFAULT_PROGRAM_VOLTAGE = 4.0
DEFAULT_PROGRAM_WIDTH = 1e-6

#: Mean coercive voltage and distribution width of the Preisach hysteron
#: density (volts).
DEFAULT_COERCIVE_VOLTAGE = 1.8
DEFAULT_COERCIVE_SIGMA = 0.45

#: Back-gate to channel coupling ratio of the DG FeFET (ΔV_TH per ΔV_BG).
#: Fig 2d shows the I_D-V_FG family shifting by roughly 1.5-2 V across a
#: V_BG sweep of 8 V → γ ≈ 0.22.
DEFAULT_BG_COUPLING = 0.22

#: Read voltages used by the CiM cell (volts): front gate logic-high, drain
#: line logic-high, and the back-gate analog range of the annealing flow.
DEFAULT_READ_VFG = 1.0
DEFAULT_READ_VDL = 1.0
VBG_MIN = 0.0
VBG_MAX = 0.7
VBG_STEP = 0.01
