"""Programming waveforms: pulse trains and program-and-verify.

Real FeFET arrays are rarely programmed with a single blind pulse — a
program-and-verify loop applies incrementally stronger pulses until the
read current crosses a verify threshold (ISPP: incremental step pulse
programming).  This module provides that loop on top of the compact models,
plus simple pulse-train builders for characterisation sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.fefet import FeFET
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PulseTrain:
    """An amplitude sequence of equal-width gate pulses.

    Parameters
    ----------
    amplitudes:
        Pulse amplitudes in volts, applied in order.
    width:
        Common pulse width in seconds.
    """

    amplitudes: tuple
    width: float = 1e-6

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        if len(self.amplitudes) == 0:
            raise ValueError("pulse train must contain at least one pulse")

    @classmethod
    def staircase(
        cls, start: float, stop: float, steps: int, width: float = 1e-6
    ) -> "PulseTrain":
        """Linearly ramped amplitudes from ``start`` to ``stop``."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        return cls(tuple(np.linspace(start, stop, steps)), width)

    def apply(self, fefet: FeFET) -> list[float]:
        """Apply the train to a FeFET; returns the V_TH after each pulse."""
        return [fefet.apply_gate_pulse(v, self.width) for v in self.amplitudes]


@dataclass
class ProgramVerifyResult:
    """Outcome of a program-and-verify sequence."""

    success: bool
    pulses_used: int
    final_vth: float
    final_current: float
    amplitudes: list


def program_and_verify(
    fefet: FeFET,
    target_bit: int,
    verify_current: float = 1e-6,
    v_read: float = 0.5,
    v_drain: float = 0.1,
    v_start: float = 2.0,
    v_step: float = 0.25,
    max_pulses: int = 12,
    pulse_width: float = 1e-6,
) -> ProgramVerifyResult:
    """ISPP program-and-verify loop.

    Applies pulses of growing magnitude (positive for the low-``V_TH`` '1'
    state, negative for '0') and reads the channel current after each; stops
    as soon as the verify condition holds: read current above
    ``verify_current`` for a '1', below it for a '0'.

    Returns a :class:`ProgramVerifyResult`; ``success`` is False when
    ``max_pulses`` are exhausted without verifying.
    """
    if target_bit not in (0, 1):
        raise ValueError("target_bit must be 0 or 1")
    check_positive("verify_current", verify_current)
    check_positive("v_step", v_step)
    if max_pulses < 1:
        raise ValueError("max_pulses must be >= 1")

    sign = 1.0 if target_bit == 1 else -1.0
    amplitudes: list[float] = []
    for pulse_idx in range(max_pulses):
        amplitude = sign * (v_start + pulse_idx * v_step)
        fefet.apply_gate_pulse(amplitude, pulse_width)
        amplitudes.append(amplitude)
        current = float(fefet.drain_current(v_read, v_drain))
        verified = current > verify_current if target_bit == 1 else current < verify_current
        if verified:
            return ProgramVerifyResult(
                success=True,
                pulses_used=pulse_idx + 1,
                final_vth=fefet.vth,
                final_current=current,
                amplitudes=amplitudes,
            )
    return ProgramVerifyResult(
        success=False,
        pulses_used=max_pulses,
        final_vth=fefet.vth,
        final_current=float(fefet.drain_current(v_read, v_drain)),
        amplitudes=amplitudes,
    )
