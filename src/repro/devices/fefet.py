"""Single-gate FeFET compact model (Fig 2a/2b of the paper).

A FeFET is the Preisach ferroelectric layer stacked on the MOS channel: the
remnant polarization left by a gate pulse shifts the transistor threshold,

.. math::  V_{TH} = V_{TH}^{mid} - \\frac{P}{P_s}\\,\\frac{MW}{2},

so ±saturating pulses program the low/high-``V_TH`` states whose measured
``I_D-V_G`` curves appear in Fig 2b.  Binary storage convention used by the
CiM array: ``G = 1`` ↔ low ``V_TH`` (cell conducts at the read bias),
``G = 0`` ↔ high ``V_TH`` (cell off).
"""

from __future__ import annotations

import numpy as np

from repro.devices.constants import (
    DEFAULT_MEMORY_WINDOW,
    DEFAULT_PROGRAM_VOLTAGE,
    DEFAULT_PROGRAM_WIDTH,
    DEFAULT_VTH_HIGH,
    DEFAULT_VTH_LOW,
)
from repro.devices.preisach import PreisachFerroelectric
from repro.devices.transistor import Transistor
from repro.utils.validation import check_positive


class FeFET:
    """Ferroelectric FET: Preisach FE layer + smooth MOS channel.

    Parameters
    ----------
    ferroelectric:
        The FE layer model (a default-configured one is built when ``None``).
    transistor:
        The channel model (default built when ``None``).
    memory_window:
        ``MW``: threshold separation between fully-up and fully-down
        polarization (volts).
    vth_mid:
        Threshold at zero polarization; defaults to the midpoint of the
        standard low/high states.
    """

    def __init__(
        self,
        ferroelectric: PreisachFerroelectric | None = None,
        transistor: Transistor | None = None,
        memory_window: float = DEFAULT_MEMORY_WINDOW,
        vth_mid: float | None = None,
    ) -> None:
        check_positive("memory_window", memory_window)
        self.ferroelectric = ferroelectric or PreisachFerroelectric()
        # Default current scale puts the low-V_TH ON current near 1e-4 A at
        # V_G = 1.5 V, the envelope of the measured curves in Fig 2b.
        self.transistor = transistor or Transistor(i0=1.0e-6, leakage=1.0e-10)
        self.memory_window = float(memory_window)
        if vth_mid is None:
            self.vth_mid = (DEFAULT_VTH_LOW + DEFAULT_VTH_HIGH) / 2.0
        else:
            self.vth_mid = float(vth_mid)
        self.ferroelectric.reset(-1)  # start in the high-V_TH (erased) state

    # ------------------------------------------------------------------
    # Threshold state
    # ------------------------------------------------------------------
    @property
    def vth(self) -> float:
        """Current threshold voltage implied by the FE polarization."""
        p_norm = self.ferroelectric.polarization() / self.ferroelectric.saturation_polarization
        return self.vth_mid - p_norm * self.memory_window / 2.0

    @property
    def stored_bit(self) -> int:
        """Binary readout convention: 1 for low ``V_TH``, 0 for high."""
        return 1 if self.vth < self.vth_mid else 0

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def apply_gate_pulse(
        self, voltage: float, pulse_width: float = DEFAULT_PROGRAM_WIDTH
    ) -> float:
        """Apply one gate pulse; returns the new threshold voltage."""
        self.ferroelectric.apply(voltage, pulse_width)
        return self.vth

    def program_low_vth(
        self,
        voltage: float = DEFAULT_PROGRAM_VOLTAGE,
        pulse_width: float = DEFAULT_PROGRAM_WIDTH,
    ) -> float:
        """Program the low-``V_TH`` ('1') state with a positive pulse."""
        return self.apply_gate_pulse(abs(voltage), pulse_width)

    def program_high_vth(
        self,
        voltage: float = DEFAULT_PROGRAM_VOLTAGE,
        pulse_width: float = DEFAULT_PROGRAM_WIDTH,
    ) -> float:
        """Program the high-``V_TH`` ('0') state with a negative pulse."""
        return self.apply_gate_pulse(-abs(voltage), pulse_width)

    def program_bit(self, bit: int) -> float:
        """Program a binary value using the default ±4 V / 1 µs pulse."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        return self.program_low_vth() if bit else self.program_high_vth()

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    def drain_current(self, v_g, v_d) -> np.ndarray:
        """Drain current at the current threshold state (source grounded)."""
        return self.transistor.drain_current(v_g, v_d, self.vth)

    def id_vg(self, v_g_values, v_d: float = 0.1) -> np.ndarray:
        """``I_D-V_G`` transfer sweep at fixed drain bias (Fig 2b)."""
        return np.asarray(
            self.transistor.drain_current(np.asarray(v_g_values, dtype=float), v_d, self.vth)
        )
