"""Device-variation models for Monte-Carlo robustness studies.

CiM annealers are claimed to be more robust than dynamical-system Ising
machines precisely because moderate device variation perturbs the sensed
energy rather than the coupling dynamics (paper Sec. 1/2).  This module
provides the variation sources the ablation bench
(`bench_ablation_variability.py`) sweeps:

* **device-to-device** threshold spread: a per-cell ``V_TH`` offset frozen at
  program time;
* **cycle-to-cycle** read noise: a fresh multiplicative current perturbation
  per evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class VariationModel:
    """Variation magnitudes applied by the crossbar device backend.

    Parameters
    ----------
    vth_sigma:
        Device-to-device threshold-voltage standard deviation (volts).
    read_noise_sigma:
        Relative (multiplicative) cycle-to-cycle current noise.
    """

    vth_sigma: float = 0.0
    read_noise_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.vth_sigma < 0 or self.read_noise_sigma < 0:
            raise ValueError("variation magnitudes must be >= 0")

    @property
    def is_ideal(self) -> bool:
        """True when both variation sources are disabled."""
        return self.vth_sigma == 0.0 and self.read_noise_sigma == 0.0

    def sample_vth_offsets(self, shape, seed=None) -> np.ndarray:
        """Frozen per-cell ``V_TH`` offsets (program-time draw)."""
        rng = ensure_rng(seed)
        if self.vth_sigma == 0.0:
            return np.zeros(shape, dtype=np.float64)
        return rng.normal(0.0, self.vth_sigma, size=shape)

    def apply_read_noise(self, currents: np.ndarray, seed=None) -> np.ndarray:
        """Apply one evaluation's multiplicative read noise to ``currents``."""
        if self.read_noise_sigma == 0.0:
            return currents
        rng = ensure_rng(seed)
        factor = rng.normal(1.0, self.read_noise_sigma, size=np.shape(currents))
        return currents * factor
