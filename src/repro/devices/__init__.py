"""Device substrate: behavioural compact models of the paper's transistors.

Substitutes the paper's SPECTRE setup (22 nm BSIM-IMG DG FeFET [34], Preisach
FeFET [35], commercial MOSFET) with Python compact models that reproduce the
device *behaviour* the architecture depends on — binary FE storage, the
four-input product ``I_SL = x·G·y·z`` and back-gate threshold tuning.  See
DESIGN.md §2 for the substitution rationale.
"""

from repro.devices.characterization import (
    DeviceMetrics,
    EnduranceModel,
    RetentionModel,
    annealing_runs_per_lifetime,
    extract_metrics,
)
from repro.devices.constants import (
    DEFAULT_BG_COUPLING,
    DEFAULT_MEMORY_WINDOW,
    DEFAULT_PROGRAM_VOLTAGE,
    DEFAULT_PROGRAM_WIDTH,
    DEFAULT_READ_VDL,
    DEFAULT_READ_VFG,
    DEFAULT_VTH_HIGH,
    DEFAULT_VTH_LOW,
    THERMAL_VOLTAGE_300K,
    VBG_MAX,
    VBG_MIN,
    VBG_STEP,
)
from repro.devices.dg_fefet import DGFeFET
from repro.devices.fefet import FeFET
from repro.devices.preisach import PreisachFerroelectric
from repro.devices.transistor import Transistor
from repro.devices.variability import VariationModel
from repro.devices.waveform import ProgramVerifyResult, PulseTrain, program_and_verify

__all__ = [
    "Transistor",
    "PreisachFerroelectric",
    "FeFET",
    "DGFeFET",
    "VariationModel",
    "PulseTrain",
    "ProgramVerifyResult",
    "program_and_verify",
    "DeviceMetrics",
    "RetentionModel",
    "EnduranceModel",
    "extract_metrics",
    "annealing_runs_per_lifetime",
    "THERMAL_VOLTAGE_300K",
    "DEFAULT_MEMORY_WINDOW",
    "DEFAULT_VTH_LOW",
    "DEFAULT_VTH_HIGH",
    "DEFAULT_PROGRAM_VOLTAGE",
    "DEFAULT_PROGRAM_WIDTH",
    "DEFAULT_BG_COUPLING",
    "DEFAULT_READ_VFG",
    "DEFAULT_READ_VDL",
    "VBG_MIN",
    "VBG_MAX",
    "VBG_STEP",
]
