"""Device characterisation: figure-of-merit extraction, retention, endurance.

Extends the compact models with the standard measurements a device paper
reports (and that the DAC paper leaves implicit):

* :func:`extract_metrics` — memory window, ON/OFF ratio, subthreshold swing
  from transfer-curve sweeps;
* :class:`RetentionModel` — thermally-activated depolarisation: the remnant
  polarization (and hence the stored weight) relaxes as a stretched
  exponential over log-time;
* :class:`EnduranceModel` — wake-up / fatigue over program cycles: the
  memory window first grows slightly (wake-up), then closes (fatigue),
  following the usual log-cycle phenomenology.

The variability ablation answers "does annealing survive a noisy array?";
the retention/endurance bench answers "for how long / how many reprograms".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.fefet import FeFET
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DeviceMetrics:
    """Extracted figures of merit of a programmed FeFET."""

    memory_window: float
    on_off_ratio: float
    subthreshold_swing: float
    on_current: float
    off_current: float


def extract_metrics(
    fefet: FeFET,
    v_read: float = 0.5,
    v_drain: float = 0.1,
) -> DeviceMetrics:
    """Measure the standard figures of merit from programmed states.

    Programs the device to '1' and '0' (leaving it in the '0' state),
    reads both states at ``v_read`` and extracts the swing from the
    low-``V_TH`` subthreshold region.
    """
    fefet.program_bit(1)
    vth_on = fefet.vth
    i_on = float(fefet.drain_current(v_read, v_drain))
    # Subthreshold swing measured two decades below threshold.
    v1, v2 = vth_on - 0.15, vth_on - 0.05
    i1 = float(fefet.drain_current(v1, v_drain))
    i2 = float(fefet.drain_current(v2, v_drain))
    swing = (v2 - v1) / np.log10(i2 / i1) if i2 > i1 > 0 else np.inf

    fefet.program_bit(0)
    vth_off = fefet.vth
    i_off = float(fefet.drain_current(v_read, v_drain))
    return DeviceMetrics(
        memory_window=vth_off - vth_on,
        on_off_ratio=i_on / i_off if i_off > 0 else np.inf,
        subthreshold_swing=float(swing),
        on_current=i_on,
        off_current=i_off,
    )


@dataclass(frozen=True)
class RetentionModel:
    """Stretched-exponential polarization retention.

    ``P(t) = P0 · exp(−(t/τ)^β)`` — the standard HfO₂ FeFET phenomenology;
    with the default ten-year-scale ``τ`` the stored window stays open past
    10⁸ s, matching reported extrapolations.

    Parameters
    ----------
    tau:
        Characteristic relaxation time (seconds).
    beta:
        Stretching exponent in (0, 1].
    """

    tau: float = 3.0e10
    beta: float = 0.25

    def __post_init__(self) -> None:
        check_positive("tau", self.tau)
        if not 0 < self.beta <= 1:
            raise ValueError("beta must be in (0, 1]")

    def polarization_fraction(self, elapsed_seconds) -> np.ndarray:
        """Remaining fraction ``P(t)/P0`` (1 at t = 0, decaying)."""
        t = np.asarray(elapsed_seconds, dtype=np.float64)
        if np.any(t < 0):
            raise ValueError("elapsed time must be >= 0")
        return np.exp(-((t / self.tau) ** self.beta))

    def window_after(self, memory_window: float, elapsed_seconds: float) -> float:
        """Memory window remaining after ``elapsed_seconds``."""
        return memory_window * float(self.polarization_fraction(elapsed_seconds))

    def time_to_fraction(self, fraction: float) -> float:
        """Time at which the polarization decays to ``fraction`` of P0."""
        if not 0 < fraction < 1:
            raise ValueError("fraction must be in (0, 1)")
        return self.tau * (-np.log(fraction)) ** (1.0 / self.beta)


@dataclass(frozen=True)
class EnduranceModel:
    """Wake-up / fatigue of the memory window over program cycles.

    ``MW(N) = MW0 · (1 + w·log10(N+1)) · exp(−(N/N_f)^p)`` — a small
    logarithmic wake-up enhancement followed by fatigue closure around the
    ``N_f`` cycle count (defaults give ~10⁹-cycle-scale endurance, typical
    for reported HfO₂ FeFETs at moderate fields).

    Parameters
    ----------
    wake_up_strength:
        Window gain per decade during wake-up.
    fatigue_cycles:
        Cycle count where fatigue closure sets in.
    fatigue_power:
        Sharpness of the closure.
    """

    wake_up_strength: float = 0.02
    fatigue_cycles: float = 1.0e9
    fatigue_power: float = 0.6

    def __post_init__(self) -> None:
        if self.wake_up_strength < 0:
            raise ValueError("wake_up_strength must be >= 0")
        check_positive("fatigue_cycles", self.fatigue_cycles)
        check_positive("fatigue_power", self.fatigue_power)

    def window_fraction(self, cycles) -> np.ndarray:
        """``MW(N)/MW0`` over program/erase cycle counts."""
        n = np.asarray(cycles, dtype=np.float64)
        if np.any(n < 0):
            raise ValueError("cycles must be >= 0")
        wake_up = 1.0 + self.wake_up_strength * np.log10(n + 1.0)
        fatigue = np.exp(-((n / self.fatigue_cycles) ** self.fatigue_power))
        return wake_up * fatigue

    def cycles_to_fraction(self, fraction: float) -> float:
        """First cycle count where the window falls below ``fraction``.

        Solved numerically on a log grid (the wake-up bump makes the curve
        non-monotone, so closed forms don't apply).
        """
        if not 0 < fraction < 1:
            raise ValueError("fraction must be in (0, 1)")
        grid = np.logspace(0, 14, 2000)
        values = self.window_fraction(grid)
        below = np.flatnonzero(values < fraction)
        if below.size == 0:
            return float("inf")
        return float(grid[below[0]])


def annealing_runs_per_lifetime(
    endurance: EnduranceModel,
    window_fraction_limit: float = 0.5,
    reprograms_per_run: int = 1,
) -> float:
    """How many problem reprograms fit within the array's endurance.

    The in-situ annealer programs the array once per *problem* (reads are
    non-destructive); the array therefore survives roughly
    ``cycles_to_fraction(limit)`` problem loads.
    """
    if reprograms_per_run < 1:
        raise ValueError("reprograms_per_run must be >= 1")
    return endurance.cycles_to_fraction(window_fraction_limit) / reprograms_per_run
