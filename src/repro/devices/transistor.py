"""Smooth all-region MOS transistor I-V core (EKV-style).

Both the FeFET and the DG FeFET compact models ride on the same channel
model: an EKV-flavoured interpolation that is exponential in weak inversion
(subthreshold slope ``n · φ_t · ln 10``) and quadratic in strong inversion,
with drain saturation handled through the forward/reverse current split:

.. math::
    I_D = I_0\\,[F(v_p - v_s) - F(v_p - v_d)], \\qquad
    F(u) = \\ln^2(1 + e^{u/2}),

with normalised voltages ``v = V/φ_t`` and pinch-off ``V_P=(V_G-V_TH)/n``.
This captures everything the architecture needs — ON/OFF ratio, smooth
turn-on used for the fractional-factor mapping, and saturation at the 1 V
drain-line bias — without a full BSIM implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.constants import DEFAULT_IDEALITY, THERMAL_VOLTAGE_300K
from repro.utils.validation import check_positive


def _interp(u: np.ndarray) -> np.ndarray:
    """EKV interpolation function ``F(u) = ln²(1 + e^{u/2})``, overflow-safe."""
    u = np.asarray(u, dtype=np.float64)
    # For u/2 > ~40, ln(1+e^{u/2}) == u/2 to double precision.
    half = u / 2.0
    out = np.where(half > 40.0, half, np.log1p(np.exp(np.minimum(half, 40.0))))
    return out * out


@dataclass(frozen=True)
class Transistor:
    """A minimal smooth-interpolation NFET model.

    Parameters
    ----------
    i0:
        Specific current ``I_0`` (amperes); sets the absolute current scale.
    ideality:
        Subthreshold ideality factor ``n`` (≥ 1).
    thermal_voltage:
        ``φ_t = kT/q`` in volts.
    lambda_out:
        Channel-length-modulation coefficient (1/V); adds the mild slope of
        ``I_D`` vs ``V_DS`` in saturation.
    leakage:
        OFF-state floor current at 1 V drain bias (amperes); models junction
        leakage / the measurement floor visible in Fig 2b, and is what the
        crossbar accumulates from deselected cells.
    """

    i0: float = 1.0e-7
    ideality: float = DEFAULT_IDEALITY
    thermal_voltage: float = THERMAL_VOLTAGE_300K
    lambda_out: float = 0.05
    leakage: float = 1.0e-12

    def __post_init__(self) -> None:
        check_positive("i0", self.i0)
        check_positive("thermal_voltage", self.thermal_voltage)
        if self.ideality < 1.0:
            raise ValueError(f"ideality must be >= 1, got {self.ideality}")
        if self.lambda_out < 0.0:
            raise ValueError("lambda_out must be >= 0")
        if self.leakage < 0.0:
            raise ValueError("leakage must be >= 0")

    def drain_current(self, v_gs, v_ds, v_th) -> np.ndarray:
        """Drain current for gate-source / drain-source bias and threshold.

        All arguments broadcast; the result has the broadcast shape.  Negative
        ``v_ds`` is not supported (source/drain are fixed by the cell wiring).
        """
        v_gs = np.asarray(v_gs, dtype=np.float64)
        v_ds = np.asarray(v_ds, dtype=np.float64)
        v_th = np.asarray(v_th, dtype=np.float64)
        if np.any(v_ds < 0):
            raise ValueError("v_ds must be non-negative in this model")
        phi = self.thermal_voltage
        v_p = (v_gs - v_th) / self.ideality
        forward = _interp(v_p / phi)
        reverse = _interp((v_p - v_ds) / phi)
        current = self.i0 * (forward - reverse) * (1.0 + self.lambda_out * v_ds)
        # Drain-bias-proportional OFF floor; zero at v_ds = 0 so an
        # unselected drain line draws nothing.
        return current + self.leakage * v_ds

    def subthreshold_swing(self) -> float:
        """Subthreshold swing in volts/decade (``n · φ_t · ln 10``)."""
        return self.ideality * self.thermal_voltage * np.log(10.0)

    def on_off_ratio(self, v_read: float, v_ds: float, v_th_on: float, v_th_off: float) -> float:
        """ON/OFF current ratio between two stored thresholds at a read bias."""
        i_on = float(self.drain_current(v_read, v_ds, v_th_on))
        i_off = float(self.drain_current(v_read, v_ds, v_th_off))
        if i_off <= 0:
            return np.inf
        return i_on / i_off
