"""Preisach model of the ferroelectric layer (ref [35] substitution).

The ferroelectric film is described as a population of elementary hysterons:
bistable dipoles that switch *up* when the applied voltage exceeds their
up-threshold ``α`` and *down* below their down-threshold ``β`` (``β < α``).
The normalised polarization is the density-weighted mean of hysteron states.
A Gaussian density centred on ``(+V_c, -V_c)`` reproduces the measured-like
major loop; minor loops, saturation and return-point memory come for free
from the hysteron mechanics (and are verified by the property tests).

A simple nucleation-limited-switching (NLS) knob is included: shorter
programming pulses shift the effective thresholds outward by
``kt · log10(t_ref / t_pulse)``, so sub-reference pulses program less
polarization — enough time dependence for the architecture studies here.
"""

from __future__ import annotations

import numpy as np

from repro.devices.constants import (
    DEFAULT_COERCIVE_SIGMA,
    DEFAULT_COERCIVE_VOLTAGE,
    DEFAULT_PROGRAM_WIDTH,
    SATURATION_POLARIZATION,
)
from repro.utils.validation import check_positive


class PreisachFerroelectric:
    """Hysteron-grid Preisach model of a ferroelectric capacitor.

    Parameters
    ----------
    coercive_voltage:
        Centre ``V_c`` of the hysteron threshold distribution (volts).
    sigma:
        Standard deviation of the threshold distribution (volts).
    grid_points:
        Number of grid points per threshold axis (the Preisach plane is
        discretised on a ``grid_points × grid_points`` triangle).
    v_span:
        Half-width of the modelled threshold range; thresholds live in
        ``[-v_span, +v_span]``.
    saturation_polarization:
        Normalisation of the output polarization (1.0 → P/P_s).
    nls_kt:
        Pulse-width acceleration coefficient (volts per decade); 0 disables
        the time dependence.
    reference_pulse_width:
        Pulse width at which thresholds are exactly the static ones.
    """

    def __init__(
        self,
        coercive_voltage: float = DEFAULT_COERCIVE_VOLTAGE,
        sigma: float = DEFAULT_COERCIVE_SIGMA,
        grid_points: int = 64,
        v_span: float = 6.0,
        saturation_polarization: float = SATURATION_POLARIZATION,
        nls_kt: float = 0.25,
        reference_pulse_width: float = DEFAULT_PROGRAM_WIDTH,
    ) -> None:
        check_positive("coercive_voltage", coercive_voltage)
        check_positive("sigma", sigma)
        check_positive("v_span", v_span)
        check_positive("saturation_polarization", saturation_polarization)
        check_positive("reference_pulse_width", reference_pulse_width)
        if grid_points < 8:
            raise ValueError("grid_points must be at least 8")
        if nls_kt < 0:
            raise ValueError("nls_kt must be >= 0")
        self.coercive_voltage = float(coercive_voltage)
        self.sigma = float(sigma)
        self.grid_points = int(grid_points)
        self.v_span = float(v_span)
        self.saturation_polarization = float(saturation_polarization)
        self.nls_kt = float(nls_kt)
        self.reference_pulse_width = float(reference_pulse_width)

        axis = np.linspace(-self.v_span, self.v_span, self.grid_points)
        alpha, beta = np.meshgrid(axis, axis, indexing="ij")
        valid = alpha > beta  # Preisach triangle: up-threshold above down.
        weight = np.exp(
            -((alpha - self.coercive_voltage) ** 2 + (beta + self.coercive_voltage) ** 2)
            / (2.0 * self.sigma**2)
        )
        weight = np.where(valid, weight, 0.0)
        total = weight.sum()
        if total <= 0:
            raise ValueError("empty hysteron density; check sigma / v_span")
        self._alpha = alpha[valid]
        self._beta = beta[valid]
        self._weight = (weight[valid] / total).astype(np.float64)
        self._state = np.full(self._alpha.shape, -1.0)
        self._history: list[float] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def history(self) -> list[float]:
        """Voltages applied so far (most recent last)."""
        return list(self._history)

    def reset(self, polarization_sign: int = -1) -> None:
        """Saturate the film down (−1, default) or up (+1) and clear history."""
        if polarization_sign not in (-1, 1):
            raise ValueError("polarization_sign must be ±1")
        self._state[:] = float(polarization_sign)
        self._history.clear()

    def polarization(self) -> float:
        """Current normalised polarization ``P ∈ [-P_s, +P_s]``."""
        return float(self.saturation_polarization * (self._weight @ self._state))

    # ------------------------------------------------------------------
    # Excitation
    # ------------------------------------------------------------------
    def _effective_shift(self, pulse_width: float) -> float:
        """NLS threshold shift for a given pulse width (0 at the reference)."""
        if self.nls_kt == 0.0:
            return 0.0
        check_positive("pulse_width", pulse_width)
        return self.nls_kt * np.log10(self.reference_pulse_width / pulse_width)

    def apply(self, voltage: float, pulse_width: float | None = None) -> float:
        """Apply one voltage pulse and return the resulting polarization.

        Hysterons whose up-threshold lies below the (NLS-adjusted) voltage
        switch up; those whose down-threshold lies above it switch down.
        """
        v = float(voltage)
        shift = 0.0 if pulse_width is None else self._effective_shift(pulse_width)
        self._state[self._alpha <= v - shift] = 1.0
        self._state[self._beta >= v + shift] = -1.0
        self._history.append(v)
        return self.polarization()

    def apply_waveform(self, voltages, pulse_width: float | None = None) -> np.ndarray:
        """Apply a sequence of pulses; returns the polarization after each."""
        return np.array([self.apply(v, pulse_width) for v in np.asarray(voltages, dtype=float)])

    # ------------------------------------------------------------------
    # Characterisation helpers
    # ------------------------------------------------------------------
    def major_loop(self, v_max: float = 4.0, points: int = 81) -> tuple[np.ndarray, np.ndarray]:
        """Trace the saturated major hysteresis loop.

        Sweeps ``+v_max → −v_max → +v_max`` after positive saturation and
        returns ``(voltages, polarizations)``.  Leaves the film wherever the
        sweep ends (callers wanting a clean state should :meth:`reset`).
        """
        check_positive("v_max", v_max)
        if points < 3:
            raise ValueError("points must be >= 3")
        down = np.linspace(v_max, -v_max, points)
        up = np.linspace(-v_max, v_max, points)
        self.reset(-1)
        self.apply(v_max)
        p_down = self.apply_waveform(down)
        p_up = self.apply_waveform(up)
        return np.concatenate([down, up]), np.concatenate([p_down, p_up])

    def remnant_after_pulse(self, voltage: float, pulse_width: float | None = None) -> float:
        """Remnant polarization after saturating down then pulsing once.

        This is the quantity a program pulse leaves behind, i.e. what sets the
        FeFET threshold state.
        """
        self.reset(-1)
        self.apply(voltage, pulse_width)
        return self.polarization()
