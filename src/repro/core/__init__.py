"""The paper's core contribution: incremental-E + fractional in-situ annealing.

* :mod:`repro.core.incremental` — the O(n) incremental-E transformation;
* :mod:`repro.core.factors` — fractional factor ``f(T)``, Metropolis
  exponential factor, fitting, and the temperature→V_BG encoder;
* :mod:`repro.core.schedule` — back-gate and conventional schedules;
* :mod:`repro.core.coupling` — backend-agnostic coupling ops (dense/CSR);
* :mod:`repro.core.packed` — popcount/XOR kernels for bit-packed ±1 couplings;
* :mod:`repro.core.reorder` — bandwidth-reducing spin reordering (RCM);
* :mod:`repro.core.partition` — multilevel min-cut tile partitioning;
* :mod:`repro.core.annealer` — Algorithm 1 (in-situ annealing flow);
* :mod:`repro.core.sa` / :mod:`repro.core.mesa` — the baselines' algorithms;
* :mod:`repro.core.sb` — ballistic/discrete simulated bifurcation;
* :mod:`repro.core.plan` — compile/execute split (``SolvePlan``,
  ``PlanCache``): setup once, anneal many times;
* :mod:`repro.core.blockstack` — block-diagonal model union: many small
  jobs advance in ONE batch engine run, results slice out bit-identically;
* :mod:`repro.core.solver` — one-call high-level API.
"""

from repro.core.annealer import InSituAnnealer
from repro.core.blockstack import (
    BLOCK_ALIGN,
    PACK_METHODS,
    BlockSlice,
    BlockStack,
    StackedLane,
    compile_lane,
    run_stacked,
    stack_models,
)
from repro.core.batch import (
    BatchAnnealResult,
    BatchDirectEAnnealer,
    BatchInSituAnnealer,
    BatchMaxCutResult,
)
from repro.core.coupling import (
    DenseCouplingOps,
    FloatBatchState,
    SparseCouplingOps,
    auto_acceptance_scale,
    coupling_ops,
)
from repro.core.factors import (
    ExponentialFactor,
    FractionalFactor,
    VbgEncoder,
    fit_fractional_factor,
)
from repro.core.incremental import (
    apply_flips,
    cross_term,
    decompose,
    delta_energy,
    flip_mask,
    incremental_vectors,
    num_product_terms,
)
from repro.core.mesa import MesaAnnealer
from repro.core.packed import PackedBatchState, PackedCouplingOps
from repro.core.partition import (
    Partitioning,
    partition_model,
    partition_permutation,
)
from repro.core.plan import (
    SOLVE_METHODS,
    PlanCache,
    SolvePlan,
    compile_plan,
)
from repro.core.reorder import (
    REORDER_MODES,
    Permutation,
    count_active_tiles,
    degree_permutation,
    graph_bandwidth,
    rcm_permutation,
    reorder_permutation,
)
from repro.core.results import AnnealResult, MaxCutResult
from repro.core.sa import DirectEAnnealer, estimate_temperature_range
from repro.core.sb import SB_VARIANTS, SbEngine, solve_sb
from repro.core.schedule import (
    ConstantSchedule,
    GeometricSchedule,
    LinearSchedule,
    ReverseVbgSchedule,
    Schedule,
    VbgStepSchedule,
)
from repro.core.solver import solve_ising, solve_maxcut

__all__ = [
    "InSituAnnealer",
    "BatchInSituAnnealer",
    "BatchDirectEAnnealer",
    "BatchAnnealResult",
    "BatchMaxCutResult",
    "DirectEAnnealer",
    "MesaAnnealer",
    "SbEngine",
    "SB_VARIANTS",
    "solve_sb",
    "AnnealResult",
    "MaxCutResult",
    "FractionalFactor",
    "ExponentialFactor",
    "VbgEncoder",
    "fit_fractional_factor",
    "Schedule",
    "ConstantSchedule",
    "GeometricSchedule",
    "LinearSchedule",
    "VbgStepSchedule",
    "ReverseVbgSchedule",
    "estimate_temperature_range",
    "coupling_ops",
    "auto_acceptance_scale",
    "DenseCouplingOps",
    "SparseCouplingOps",
    "PackedCouplingOps",
    "FloatBatchState",
    "PackedBatchState",
    "Permutation",
    "Partitioning",
    "partition_model",
    "partition_permutation",
    "REORDER_MODES",
    "reorder_permutation",
    "rcm_permutation",
    "degree_permutation",
    "graph_bandwidth",
    "count_active_tiles",
    "flip_mask",
    "apply_flips",
    "decompose",
    "incremental_vectors",
    "cross_term",
    "delta_energy",
    "num_product_terms",
    "solve_ising",
    "solve_maxcut",
    "SOLVE_METHODS",
    "SolvePlan",
    "PlanCache",
    "compile_plan",
    "BLOCK_ALIGN",
    "PACK_METHODS",
    "BlockSlice",
    "BlockStack",
    "StackedLane",
    "compile_lane",
    "run_stacked",
    "stack_models",
]
