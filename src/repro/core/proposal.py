"""Flip-set proposal strategies shared by the annealers.

Two hardware-honest ways to "select t elements" (Algorithm 1, line 3):

* ``"scan"`` — walk a fresh random permutation each sweep and take the next
  ``t`` addresses per iteration.  In hardware this is an address counter
  over a shuffled index table: every spin is proposed exactly once per
  sweep, which matters a lot at the paper's tight iteration budgets
  (700 iterations for 800 spins is less than one sweep).
* ``"random"`` — draw ``t`` distinct uniform indices per iteration (the
  textbook Metropolis move; an LFSR in hardware).
"""

from __future__ import annotations

import numpy as np

PROPOSAL_MODES = ("scan", "random")


class FlipSelector:
    """Stateful generator of flip-index sets.

    Parameters
    ----------
    n:
        Number of spins.
    flips:
        ``t``, the number of indices per proposal.
    mode:
        ``"scan"`` or ``"random"`` (see module docstring).
    rng:
        Source of randomness (permutation shuffling / uniform draws).
    index_map:
        Optional length-``n`` array applied to every drawn index before it
        is returned.  Used by reordered solves: indices are drawn in the
        caller's original spin space (so the RNG stream is layout-
        independent) and mapped into the internal ordering here.
    """

    def __init__(
        self,
        n: int,
        flips: int,
        mode: str,
        rng: np.random.Generator,
        index_map: np.ndarray | None = None,
    ) -> None:
        if mode not in PROPOSAL_MODES:
            raise ValueError(f"proposal mode must be one of {PROPOSAL_MODES}")
        if not 1 <= flips <= n:
            raise ValueError(f"flips must be in [1, {n}]")
        self.n = int(n)
        self.flips = int(flips)
        self.mode = mode
        self._rng = rng
        if index_map is not None:
            index_map = np.asarray(index_map, dtype=np.intp)
            if index_map.shape != (self.n,):
                raise ValueError(f"index_map must have shape ({self.n},)")
        self.index_map = index_map
        self._order: np.ndarray | None = None
        self._ptr = 0

    def next(self) -> np.ndarray:
        """Return the next flip-index set (length ``flips``, unique)."""
        if self.mode == "random":
            if self.flips == 1:
                out = np.array([self._rng.integers(self.n)], dtype=np.intp)
            else:
                out = self._rng.choice(
                    self.n, size=self.flips, replace=False
                ).astype(np.intp)
        else:
            # scan mode: consume a permuted order, reshuffling per sweep.
            if self._order is None or self._ptr + self.flips > self.n:
                self._order = self._rng.permutation(self.n)
                self._ptr = 0
            out = self._order[self._ptr : self._ptr + self.flips].astype(np.intp)
            self._ptr += self.flips
        if self.index_map is not None:
            out = self.index_map[out]
        return out
