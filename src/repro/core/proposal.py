"""Flip-set proposal strategies shared by the annealers.

Two hardware-honest ways to "select t elements" (Algorithm 1, line 3):

* ``"scan"`` — walk a fresh random permutation each sweep and take the next
  ``t`` addresses per iteration.  In hardware this is an address counter
  over a shuffled index table: every spin is proposed exactly once per
  sweep, which matters a lot at the paper's tight iteration budgets
  (700 iterations for 800 spins is less than one sweep).
* ``"random"`` — draw ``t`` distinct uniform indices per iteration (the
  textbook Metropolis move; an LFSR in hardware).

When ``n % t != 0`` a flip set straddles two sweeps: it takes the last
``n % t``-ish addresses of one permutation and the first few of the next.
The straddle is resolved without breaking either contract — the next
permutation's head is swapped free of the carried tail (:func:`_join_sweep`)
so every flip set stays duplicate-free *and* every aligned ``n``-window of
the address stream still visits each spin exactly once.  (The previous
implementation reshuffled early and silently dropped the tail, so tail
spins were never proposed in that sweep.)
"""

from __future__ import annotations

import numpy as np

PROPOSAL_MODES = ("scan", "random")


def _join_sweep(perm: np.ndarray, tail: np.ndarray, need: int) -> np.ndarray:
    """Make ``concatenate([tail, perm])`` straddle-safe in place.

    ``tail`` holds the carried remainder of the previous sweep and ``need``
    more indices from ``perm`` complete the straddling flip set.  Any of
    ``perm``'s first ``need`` entries that collide with ``tail`` are swapped
    with later non-colliding entries — always possible because ``perm``
    holds ``n - len(tail)`` non-tail values and ``need <= t - len(tail)``
    with ``t <= n``.  ``perm`` stays a permutation, so the per-sweep
    visit-once contract is untouched.
    """
    if tail.size == 0 or need <= 0:
        return perm
    bad = np.flatnonzero(np.isin(perm[:need], tail))
    if bad.size:
        ok = need + np.flatnonzero(~np.isin(perm[need:], tail))
        swap = ok[: bad.size]
        perm[bad], perm[swap] = perm[swap], perm[bad]
    return perm


def scan_order(
    n: int, flips: int, length: int, rng: np.random.Generator
) -> np.ndarray:
    """A straddle-safe scan stream of ``length`` spin addresses.

    Concatenates fresh per-sweep permutations of ``n`` with
    :func:`_join_sweep` applied at every sweep boundary, so consecutive
    ``flips``-sized chunks are always duplicate-free and every aligned
    ``n``-window visits each spin exactly once.  The batch engine consumes
    this to build its per-replica proposal tensors; for ``flips == 1`` the
    RNG stream is identical to drawing the sweeps one by one.
    """
    sweeps = -(-length // n) + 1
    parts = [rng.permutation(n)]
    pos = n
    for _ in range(sweeps - 1):
        perm = rng.permutation(n)
        off = pos % flips
        if off:
            _join_sweep(perm, parts[-1][n - off :], flips - off)
        parts.append(perm)
        pos += n
    return np.concatenate(parts)[:length].astype(np.intp, copy=False)


def random_flip_sets(
    rng: np.random.Generator, n: int, count: int, flips: int
) -> np.ndarray:
    """``(count, flips)`` uniform flip sets with distinct indices per row.

    Vectorised rejection sampling: draw all rows at once, redraw only the
    rows containing a duplicate.  For the operating regime ``t << n`` the
    expected number of redraw rounds is O(1); a per-row
    ``choice(..., replace=False)`` fallback guarantees termination when
    ``t`` approaches ``n`` (where almost every uniform draw collides).
    """
    out = rng.integers(n, size=(count, flips))
    if flips == 1:
        return out.astype(np.intp, copy=False)
    for _ in range(32):
        srt = np.sort(out, axis=1)
        bad = np.flatnonzero((np.diff(srt, axis=1) == 0).any(axis=1))
        if bad.size == 0:
            return out.astype(np.intp, copy=False)
        out[bad] = rng.integers(n, size=(bad.size, flips))
    srt = np.sort(out, axis=1)
    bad = np.flatnonzero((np.diff(srt, axis=1) == 0).any(axis=1))
    for row in bad:
        out[row] = rng.choice(n, size=flips, replace=False)
    return out.astype(np.intp, copy=False)


class FlipSelector:
    """Stateful generator of flip-index sets.

    Parameters
    ----------
    n:
        Number of spins.
    flips:
        ``t``, the number of indices per proposal.
    mode:
        ``"scan"`` or ``"random"`` (see module docstring).
    rng:
        Source of randomness (permutation shuffling / uniform draws).
    index_map:
        Optional length-``n`` array applied to every drawn index before it
        is returned.  Used by reordered solves: indices are drawn in the
        caller's original spin space (so the RNG stream is layout-
        independent) and mapped into the internal ordering here.
    """

    def __init__(
        self,
        n: int,
        flips: int,
        mode: str,
        rng: np.random.Generator,
        index_map: np.ndarray | None = None,
    ) -> None:
        if mode not in PROPOSAL_MODES:
            raise ValueError(f"proposal mode must be one of {PROPOSAL_MODES}")
        if not 1 <= flips <= n:
            raise ValueError(f"flips must be in [1, {n}]")
        self.n = int(n)
        self.flips = int(flips)
        self.mode = mode
        self._rng = rng
        if index_map is not None:
            index_map = np.asarray(index_map, dtype=np.intp)
            if index_map.shape != (self.n,):
                raise ValueError(f"index_map must have shape ({self.n},)")
        self.index_map = index_map
        self._order: np.ndarray | None = None
        self._ptr = 0

    def next(self) -> np.ndarray:
        """Return the next flip-index set (length ``flips``, unique)."""
        if self.mode == "random":
            if self.flips == 1:
                out = np.array([self._rng.integers(self.n)], dtype=np.intp)
            else:
                out = self._rng.choice(
                    self.n, size=self.flips, replace=False
                ).astype(np.intp)
        else:
            # scan mode: consume per-sweep permutations, carrying any
            # remainder into the next sweep so no spin is ever skipped.
            if self._order is None:
                self._order = self._rng.permutation(self.n)
                self._ptr = 0
            if self._ptr + self.flips > self._order.shape[0]:
                tail = self._order[self._ptr :]
                perm = self._rng.permutation(self.n)
                _join_sweep(perm, tail, self.flips - tail.shape[0])
                self._order = np.concatenate([tail, perm])
                self._ptr = 0
            out = self._order[self._ptr : self._ptr + self.flips].astype(np.intp)
            self._ptr += self.flips
        if self.index_map is not None:
            out = self.index_map[out]
        return out
