"""Block-diagonal model union: many small jobs as one batch engine run.

The serving layer (:mod:`repro.serve`) packs independent solve jobs into
a single rank-``t`` batch step: couplings of ``k`` member models are laid
side by side as the block-diagonal union ``J = diag(J_1, …, J_k)``.
Disjoint blocks never interact — a flip in job ``i``'s block leaves every
other job's local fields untouched — so **one** ``(R, Σ n_i)`` engine
iteration advances all ``k`` tenants simultaneously, and per-job results
slice back out *bit-identically* to ``k`` solo ``solve_ising`` calls.

Bit-identity is the load-bearing contract (the service bench asserts it
before timing anything), and it holds because the stacked runner
replicates each job's solo run exactly:

* :func:`compile_lane` performs a job's RNG draws in the precise order
  the solo batch engine performs them — (SA only) the temperature-range
  probe, the initial ±1 configuration, the proposal tensor, then the
  per-iteration uniforms (``rng.random((iterations, R))`` consumes the
  bit stream exactly like ``iterations`` successive ``rng.random(R)``
  calls) — against the job's own ``ensure_rng(seed)`` stream;
* :func:`run_stacked` re-evaluates the engine's per-iteration formulas
  with per-*(replica, job)* accept decisions: per-block cross terms come
  from the new unsummed
  :meth:`~repro.core.coupling.SparseCouplingOps.batch_cross_term_slots`
  kernel (cross-block couplings are structurally zero, so each block's
  slot group carries exactly the solo contributions), field terms and
  energies are regrouped the same way, and best-state snapshots copy
  *column blocks* (:meth:`record_best_blocks`) instead of whole replica
  rows.

Every block is padded to a 64-spin boundary with isolated, never-proposed
padding spins so the packed backend's word layout slices cleanly; the
union stays :class:`~repro.ising.sparse.SparseIsingModel` (members are
promoted from dense via ``from_ising`` — the union's scatter kernels
collapse duplicate indices, which the dense ops' fancy indexing would
drop) and is itself promoted to
:class:`~repro.ising.packed.PackedIsingModel` when every member is packed
with one shared dyadic magnitude, preserving packed eligibility across
the stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import (
    BatchAnnealResult,
    BatchDirectEAnnealer,
    BatchInSituAnnealer,
)
from repro.core.coupling import coupling_ops
from repro.ising.packed import PackedIsingModel
from repro.ising.sparse import SparseIsingModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_choice, check_count

#: Methods the block-diagonal union can pack: the two flip-proposal batch
#: engines.  SB integrates all positions through one matvec per step and
#: MESA has no batch engine — those run solo (see ``repro.serve``).
PACK_METHODS = ("insitu", "sa")

#: Blocks are padded to this boundary so packed spin words never straddle
#: two jobs (a word-granular best-snapshot then cannot leak across).
BLOCK_ALIGN = 64

_LANE_ENGINES = {
    "insitu": BatchInSituAnnealer,
    "sa": BatchDirectEAnnealer,
}


@dataclass(frozen=True)
class BlockSlice:
    """Column range of one member model inside the union.

    ``start:stop`` are the member's real spins; ``stop:padded_stop`` are
    its isolated padding spins (coupling-free, field-free, never
    proposed, pinned to +1).
    """

    start: int
    stop: int
    padded_stop: int

    @property
    def num_spins(self) -> int:
        """Real (unpadded) spins of the member."""
        return self.stop - self.start


@dataclass(frozen=True)
class BlockStack:
    """A block-diagonal union model plus the member block geometry."""

    model: SparseIsingModel
    blocks: tuple[BlockSlice, ...]

    @property
    def num_members(self) -> int:
        """Number of stacked member models."""
        return len(self.blocks)


def stack_models(models, align: int = BLOCK_ALIGN) -> BlockStack:
    """Stack member models into one block-diagonal union.

    Members may be dense :class:`~repro.ising.model.IsingModel` (converted
    through ``SparseIsingModel.from_ising``), sparse, or packed.  The
    union is sparse CSR; when *every* member is a
    :class:`~repro.ising.packed.PackedIsingModel` with one shared scale
    the union is promoted back to packed (the block-diagonal of ±c
    matrices is itself a ±c matrix), so a stack of packed jobs runs the
    popcount/XOR kernels.  Fields concatenate (zero over padding); member
    ``offset`` values are deliberately *not* merged — the stacked runner
    adds each job's own offset to its energy column.
    """
    members = [
        m if isinstance(m, SparseIsingModel) else SparseIsingModel.from_ising(m)
        for m in models
    ]
    if not members:
        raise ValueError("stack_models needs at least one member model")
    align = check_count("align", align)
    blocks = []
    pos = 0
    for m in members:
        n = m.num_spins
        padded = pos + -(-n // align) * align
        blocks.append(BlockSlice(start=pos, stop=pos + n, padded_stop=padded))
        pos = padded
    total = pos

    count_parts = []
    index_parts = []
    data_parts = []
    has_fields = any(m.has_fields for m in members)
    fields = np.zeros(total, dtype=np.float64) if has_fields else None
    for m, b in zip(members, blocks):
        indptr, indices, data = m.csr_arrays()
        count_parts.append(np.diff(indptr))
        pad_rows = b.padded_stop - b.stop
        if pad_rows:
            count_parts.append(np.zeros(pad_rows, dtype=np.intp))
        index_parts.append(indices + b.start)
        data_parts.append(data)
        if fields is not None:
            fields[b.start:b.stop] = m.h
    union_indptr = np.zeros(total + 1, dtype=np.intp)
    np.cumsum(np.concatenate(count_parts), out=union_indptr[1:])
    union_indices = (
        np.concatenate(index_parts)
        if index_parts else np.empty(0, dtype=np.intp)
    )
    union_data = (
        np.concatenate(data_parts)
        if data_parts else np.empty(0, dtype=np.float64)
    )

    name = f"blockstack-{len(members)}x"
    all_packed = all(isinstance(m, PackedIsingModel) for m in members)
    scales = {m.scale for m in members if isinstance(m, PackedIsingModel)}
    if all_packed and len(scales) == 1:
        try:
            model: SparseIsingModel = PackedIsingModel(
                union_indptr, union_indices, union_data, fields, 0.0, name
            )
        except ValueError:
            # Degenerate members (e.g. coupling-free) can break packed
            # eligibility of the union; the sparse union is always valid.
            model = SparseIsingModel(
                union_indptr, union_indices, union_data, fields, 0.0, name
            )
    else:
        model = SparseIsingModel(
            union_indptr, union_indices, union_data, fields, 0.0, name
        )
    return BlockStack(model=model, blocks=tuple(blocks))


@dataclass
class StackedLane:
    """One job's compiled slot in a stacked run: model + frozen RNG draws.

    Produced by :func:`compile_lane`; all stochastic inputs of the solo
    engine run (initial state, proposal tensor, per-iteration uniforms,
    SA temperature schedule) are materialised here from the job's own
    seed stream, so :func:`run_stacked` is deterministic given its lanes.
    """

    model: SparseIsingModel
    method: str
    iterations: int
    replicas: int
    flips_per_iteration: int
    sigma0: np.ndarray          # (R, n) float ±1, the solo initial draw
    proposals: np.ndarray       # (iterations, R, t) local spin indices
    uniforms: np.ndarray        # (iterations, R) accept draws
    factors: np.ndarray | None          # insitu: f(T) per iteration
    acceptance_scale: float | None      # insitu: the engine's gain
    temperatures: np.ndarray | None     # sa: floored T per iteration


def compile_lane(
    model,
    method: str = "insitu",
    iterations: int = 1000,
    replicas: int = 1,
    flips_per_iteration: int = 1,
    seed=None,
    initial=None,
) -> StackedLane:
    """Freeze one job's solo RNG draws into a :class:`StackedLane`.

    The draws happen in exactly the solo engine's order against
    ``ensure_rng(seed)`` — construct engine (SA's default schedule probes
    ``estimate_temperature_range`` on this stream), initial configuration,
    proposal tensor, then the accept uniforms — so a lane executed through
    :func:`run_stacked` reproduces ``solve_ising(model, method,
    iterations, seed=seed, replicas=replicas,
    flips_per_iteration=flips_per_iteration)`` bit-for-bit.
    ``initial`` follows the engine contract (shape ``(n,)`` or ``(R, n)``,
    entries ±1; validated with the engine's own message).
    """
    check_choice("method", method, PACK_METHODS)
    iterations = check_count(
        "iterations", iterations,
        hint="the annealers need at least one proposal/accept step",
    )
    replicas = check_count(
        "replicas", replicas,
        hint="each replica is one independent trajectory",
    )
    flips_per_iteration = check_count(
        "flips_per_iteration", flips_per_iteration
    )
    rng = ensure_rng(seed)
    # The engine is the source of truth for schedule/scale derivation and
    # the draw order; its internal hooks are reused on purpose so lane
    # compilation can never drift from the solo run() sequence.
    engine = _LANE_ENGINES[method](
        model, replicas=replicas,
        flips_per_iteration=flips_per_iteration, seed=rng,
    )
    schedule = engine._build_schedule(iterations)
    if schedule.iterations != iterations:
        raise ValueError("schedule length does not match iterations")
    temps = schedule.profile()
    sigma0 = engine._initial_sigma(initial, rng)
    proposals = engine._proposal_tensor(iterations)
    # Stream-equivalent to `iterations` successive rng.random(R) calls:
    # Generator.random fills C-order, one bit-stream draw per double.
    uniforms = rng.random((iterations, replicas))
    if method == "insitu":
        # factor.value is an elementwise ufunc expression, so evaluating
        # the whole profile matches the solo per-iteration scalar calls.
        factors = np.asarray(engine.factor.value(temps), dtype=np.float64)
        acceptance_scale = float(engine.acceptance_scale)
        temperatures = None
    else:
        factors = None
        acceptance_scale = None
        # The solo accept rule floors each scalar: max(T, 1e-12).
        temperatures = np.maximum(temps, 1e-12)
    return StackedLane(
        model=model, method=method, iterations=iterations,
        replicas=replicas, flips_per_iteration=engine.flips_per_iteration,
        sigma0=sigma0, proposals=proposals, uniforms=uniforms,
        factors=factors, acceptance_scale=acceptance_scale,
        temperatures=temperatures,
    )


def run_stacked(lanes) -> list[BatchAnnealResult]:
    """Advance every lane simultaneously on the block-diagonal union.

    All lanes must share ``(method, iterations, replicas,
    flips_per_iteration)`` — the serve scheduler groups jobs by exactly
    this key.  Returns one :class:`~repro.core.batch.BatchAnnealResult`
    per lane, bit-identical to the lane's solo solve for every backend
    whose solo kernels agree with the union's sparse/packed kernels
    (always true sparse→sparse and packed→packed; dense members require
    exactly-representable dyadic couplings, the usual backend contract).
    """
    lanes = list(lanes)
    if not lanes:
        raise ValueError("run_stacked needs at least one lane")
    first = lanes[0]
    key = (
        first.method, first.iterations, first.replicas,
        first.flips_per_iteration,
    )
    for lane in lanes[1:]:
        lane_key = (
            lane.method, lane.iterations, lane.replicas,
            lane.flips_per_iteration,
        )
        if lane_key != key:
            raise ValueError(
                "stacked lanes must share (method, iterations, replicas, "
                f"flips_per_iteration); got {lane_key} alongside {key} — "
                "group jobs by these knobs before packing"
            )
    k = len(lanes)
    method, iterations, R, t = key
    stack = stack_models([lane.model for lane in lanes])
    ops = coupling_ops(stack.model)
    blocks = stack.blocks
    starts = np.array([b.start for b in blocks], dtype=np.intp)
    stops = np.array([b.stop for b in blocks], dtype=np.intp)

    # Union initial state: each job's solo draw in its block, padding +1.
    sigma = np.ones((R, stack.model.num_spins), dtype=np.float64)
    for lane, b in zip(lanes, blocks):
        sigma[:, b.start:b.stop] = lane.sigma0
    state = ops.make_batch_state(sigma)
    g = state.fields
    del sigma  # the state owns the replica spins from here on

    # Per-job energies from each job's own arrays (the contiguous field
    # slice reproduces the solo einsum's memory walk).
    energy = np.empty((R, k), dtype=np.float64)
    for j, (lane, b) in enumerate(zip(lanes, blocks)):
        g_j = np.ascontiguousarray(g[:, b.start:b.stop])
        energy[:, j] = (
            np.einsum("rn,rn->r", lane.sigma0, g_j)
            + lane.sigma0 @ lane.model.h
            + lane.model.offset
        )
    best_energy = energy.copy()
    accepted = np.zeros((R, k), dtype=np.int64)

    # Pre-assembled per-iteration tensors: proposals offset into union
    # columns, uniforms / accept parameters laid out per job column.
    props = np.empty((iterations, R, k, t), dtype=np.intp)
    uniforms = np.empty((iterations, R, k), dtype=np.float64)
    for j, (lane, b) in enumerate(zip(lanes, blocks)):
        props[:, :, j, :] = lane.proposals + b.start
        uniforms[:, :, j] = lane.uniforms
    if method == "insitu":
        factors = np.empty((iterations, k), dtype=np.float64)
        scales = np.empty(k, dtype=np.float64)
        for j, lane in enumerate(lanes):
            factors[:, j] = lane.factors
            scales[j] = lane.acceptance_scale
    else:
        temperatures = np.empty((iterations, k), dtype=np.float64)
        for j, lane in enumerate(lanes):
            temperatures[:, j] = lane.temperatures

    h_union = stack.model.h
    fielded = np.array(
        [lane.model.has_fields for lane in lanes], dtype=bool
    )
    any_fields = bool(fielded.any())
    all_fields = bool(fielded.all())

    rows = np.arange(R)[:, None]
    for it in range(iterations):
        idx = props[it].reshape(R, k * t)
        sig_f = state.gather(rows, idx)
        slots = ops.batch_cross_term_slots(g, idx, sig_f)
        # Per-job regroup: each block's t slots sum in solo slot order.
        cross = slots.reshape(R, k, t).sum(axis=2)
        if any_fields:
            field = -(h_union[idx] * sig_f).reshape(R, k, t).sum(axis=2)
            if not all_fields:
                # Field-free jobs use the solo scalar 0.0 exactly (their
                # union column is a sum of signed zeros otherwise).
                field[:, ~fielded] = 0.0
        else:
            field = 0.0
        delta = 4.0 * cross + 2.0 * field
        u = uniforms[it]
        if method == "insitu":
            # Same association as the engines: ((x · f) · scale).
            e_inc = (cross + np.asarray(field) / 2.0) * factors[it] * scales
            accept = (e_inc <= 0.0) | (e_inc <= u)
        else:
            accept = (delta <= 0.0) | (
                u < np.exp(-np.maximum(delta, 0.0) / temperatures[it])
            )
        if accept.any():
            acc_r, acc_j = np.nonzero(accept)
            cols = props[it][acc_r, acc_j]                 # (A, t)
            vals = sig_f.reshape(R, k, t)[acc_r, acc_j]    # (A, t)
            # Duplicate replica rows are safe on the sparse/packed union:
            # different jobs' flips land in disjoint column blocks, so
            # every flat scatter index is unique (and the rank-t path
            # collapses shared-neighbour duplicates via bincount anyway).
            ops.batch_update_fields(g, acc_r, cols, vals)
            state.flip(acc_r, cols, vals)
            energy[acc_r, acc_j] += delta[acc_r, acc_j]
            accepted[acc_r, acc_j] += 1
            improved = energy[acc_r, acc_j] < best_energy[acc_r, acc_j]
            if improved.any():
                imp_r = acc_r[improved]
                imp_j = acc_j[improved]
                best_energy[imp_r, imp_j] = energy[imp_r, imp_j]
                state.record_best_blocks(
                    imp_r, starts[imp_j], stops[imp_j]
                )

    best_sigmas = state.best_sigmas(None)
    final_sigmas = state.final_sigmas(None)
    return [
        BatchAnnealResult(
            best_energies=best_energy[:, j].copy(),
            best_sigmas=best_sigmas[:, b.start:b.stop].copy(),
            final_energies=energy[:, j].copy(),
            final_sigmas=final_sigmas[:, b.start:b.stop].copy(),
            accepted=accepted[:, j].copy(),
            iterations=iterations,
        )
        for j, b in enumerate(blocks)
    ]


__all__ = [
    "BLOCK_ALIGN",
    "PACK_METHODS",
    "BlockSlice",
    "BlockStack",
    "StackedLane",
    "compile_lane",
    "run_stacked",
    "stack_models",
]
