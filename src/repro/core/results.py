"""Result containers shared by every annealer in the library."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class AnnealResult:
    """Outcome of one annealing run.

    Attributes
    ----------
    solver:
        Human-readable solver name.
    sigma:
        Final ±1 configuration.
    energy:
        Final energy in model units (including the model offset).
    best_sigma / best_energy:
        Best configuration seen during the run (equals the final one when
        best-tracking is disabled).
    iterations:
        Number of annealing iterations executed.
    accepted:
        Accepted proposals.
    uphill_accepted:
        Accepted proposals with ``ΔE > 0``.
    uphill_proposals:
        Proposals with ``ΔE > 0`` (each costs the baselines one ``e^x``).
    exponent_evaluations:
        Hardware ``e^x`` evaluations (0 for the in-situ annealer).
    energy_trace:
        Optional per-iteration energy trace (current configuration).
    best_trace:
        Optional per-iteration best-energy trace.
    """

    solver: str
    sigma: np.ndarray
    energy: float
    best_sigma: np.ndarray
    best_energy: float
    iterations: int
    accepted: int
    uphill_accepted: int
    uphill_proposals: int
    exponent_evaluations: int = 0
    energy_trace: np.ndarray | None = None
    best_trace: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def acceptance_rate(self) -> float:
        """Accepted / proposed."""
        return self.accepted / self.iterations if self.iterations else 0.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.solver}: best E = {self.best_energy:.6g} "
            f"(final {self.energy:.6g}) after {self.iterations} iterations, "
            f"acceptance {self.acceptance_rate:.1%}"
        )


class CutNormalization:
    """Shared cut-normalisation scaffolding for Max-Cut result containers.

    Expects ``best_cut`` and ``reference_cut`` on the subclass (fields or
    properties); keeps the paper's normalisation guard and ≥ 0.9 success
    criterion in one place for the single-run and replica-batch results.
    """

    @property
    def normalized_cut(self) -> float | None:
        """``best_cut / reference_cut`` (Fig 10's y-axis), if a reference is set."""
        if self.reference_cut in (None, 0):
            return None
        return self.best_cut / self.reference_cut

    def is_success(self, threshold: float = 0.9) -> bool | None:
        """The paper's success criterion: normalised cut ≥ ``threshold``."""
        norm = self.normalized_cut
        return None if norm is None else bool(norm >= threshold)


@dataclass
class MaxCutResult(CutNormalization):
    """A :class:`AnnealResult` interpreted against a Max-Cut instance.

    Attributes
    ----------
    anneal:
        The underlying annealing result.
    cut / best_cut:
        Final and best cut values.
    reference_cut:
        Best-known (or proxy-optimal) cut used for normalisation, if given.
    """

    anneal: AnnealResult
    cut: float
    best_cut: float
    reference_cut: float | None = None

    def summary(self) -> str:
        """One-line human-readable summary."""
        norm = self.normalized_cut
        norm_txt = f", normalised {norm:.3f}" if norm is not None else ""
        return f"{self.anneal.solver}: best cut {self.best_cut:g}{norm_txt}"
