"""Multi-Epoch Simulated Annealing (MESA), the enhancement of ref [7].

The FeFET CiM annealer the paper compares against introduced MESA: the run
is split into epochs; each epoch is a full SA cooling pass, and subsequent
epochs restart from the best configuration found so far with a reduced
starting temperature.  The re-heating lets the solver hop out of the basin
a single cooling pass settles into, while the epoch-over-epoch decay keeps
later passes increasingly local.

Included here as an extension baseline for the solver-efficiency ablations.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import AnnealResult
from repro.core.sa import DirectEAnnealer, estimate_temperature_range
from repro.core.schedule import GeometricSchedule
from repro.ising.model import IsingModel
from repro.ising.sparse import SparseIsingModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_count, check_permutation


class MesaAnnealer:
    """Multi-epoch SA wrapper around :class:`DirectEAnnealer`.

    Parameters
    ----------
    model:
        The Ising model to minimise (dense or sparse backend — the inner
        SA passes inherit backend transparency from
        :class:`DirectEAnnealer`).
    epochs:
        Number of cooling passes.
    epoch_decay:
        Multiplier applied to the starting temperature of each new epoch.
    permutation:
        Optional :class:`~repro.core.reorder.Permutation` declaring that
        ``model`` is a relabelled view of the caller's problem; forwarded
        to the temperature auto-tuner and every inner SA pass, so the
        whole multi-epoch trajectory is layout-independent (epoch restarts
        hand the best-so-far configuration around in the caller's original
        ordering either way).
    flips_per_iteration / seed:
        Forwarded to the inner SA passes.
    """

    name = "MESA annealer"

    def __init__(
        self,
        model: IsingModel | SparseIsingModel,
        epochs: int = 4,
        epoch_decay: float = 0.5,
        flips_per_iteration: int = 1,
        permutation=None,
        seed=None,
    ) -> None:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not 0.0 < epoch_decay <= 1.0:
            raise ValueError("epoch_decay must be in (0, 1]")
        self.model = model
        self.epochs = int(epochs)
        self.epoch_decay = float(epoch_decay)
        self.flips_per_iteration = check_count(
            "flips_per_iteration", flips_per_iteration
        )
        self.permutation = permutation
        if permutation is not None:
            check_permutation(permutation, model.num_spins)
        self._rng = ensure_rng(seed)

    def run(self, iterations: int, initial=None) -> AnnealResult:
        """Run ``epochs`` cooling passes sharing the iteration budget."""
        iterations = check_count("iterations", iterations)
        if iterations < self.epochs:
            raise ValueError("iterations must be >= epochs")
        per_epoch = iterations // self.epochs
        t_start, t_end = estimate_temperature_range(
            self.model, seed=self._rng, permutation=self.permutation
        )

        sigma = initial
        best_sigma = None
        best_energy = np.inf
        accepted = 0
        uphill_accepted = 0
        uphill_proposals = 0
        exponent_evaluations = 0
        last: AnnealResult | None = None

        for epoch in range(self.epochs):
            budget = per_epoch if epoch < self.epochs - 1 else iterations - per_epoch * (
                self.epochs - 1
            )
            start = max(t_start * self.epoch_decay**epoch, t_end)
            schedule = GeometricSchedule(budget, start, t_end)
            inner = DirectEAnnealer(
                self.model,
                flips_per_iteration=self.flips_per_iteration,
                schedule=schedule,
                permutation=self.permutation,
                seed=self._rng,
            )
            last = inner.run(budget, initial=sigma)
            accepted += last.accepted
            uphill_accepted += last.uphill_accepted
            uphill_proposals += last.uphill_proposals
            exponent_evaluations += last.exponent_evaluations
            if last.best_energy < best_energy:
                best_energy = last.best_energy
                best_sigma = last.best_sigma.copy()
            # Next epoch re-heats from the best configuration so far.
            sigma = best_sigma

        assert last is not None
        return AnnealResult(
            solver=self.name,
            sigma=last.sigma,
            energy=last.energy,
            best_sigma=best_sigma,
            best_energy=float(best_energy),
            iterations=iterations,
            accepted=accepted,
            uphill_accepted=uphill_accepted,
            uphill_proposals=uphill_proposals,
            exponent_evaluations=exponent_evaluations,
            metadata={"epochs": self.epochs, "epoch_decay": self.epoch_decay},
        )
