"""The incremental-E transformation (paper Sec. 3.2, Fig 4/5).

Given the current spin vector ``σ`` and a set ``F`` of spins to flip, define

* ``σ_f`` — the 0/1 flip mask (1 on ``F``),
* ``σ_new = σ ∘ (1 − 2 σ_f)`` — the proposed configuration,
* ``σ_c = σ_new ∘ σ_f`` — flipped entries of ``σ_new``, zero elsewhere,
* ``σ_r = σ_new ∘ (1 − σ_f)`` — unflipped entries, zero elsewhere.

Then (Eq. 9) the energy difference of a symmetric-``J`` Hamiltonian is

.. math::  \\Delta E = E(\\sigma_{new}) - E(\\sigma) = 4\\,\\sigma_r^T J \\sigma_c,

with only ``(n − |F|)·|F|`` product terms instead of the ``n²`` of the
direct-E recomputation.  External fields add ``2 hᵀ σ_c`` (handled by
:meth:`repro.ising.IsingModel.delta_energy_flips`, or exactly absorbed into
``J`` by :meth:`~repro.ising.IsingModel.with_ancilla`).

These helpers are shared by the software annealers and the hardware
machines so both sides of the repo agree on the transformation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_spin_vector


def flip_mask(n: int, flip_indices) -> np.ndarray:
    """Build the 0/1 flip mask ``σ_f`` for the index set ``F``."""
    flips = np.atleast_1d(np.asarray(flip_indices, dtype=np.intp))
    if flips.size and (flips.min() < 0 or flips.max() >= n):
        raise IndexError("flip index out of range")
    if np.unique(flips).size != flips.size:
        raise ValueError("flip indices must be unique")
    mask = np.zeros(n, dtype=np.int8)
    mask[flips] = 1
    return mask


def apply_flips(sigma, sigma_f) -> np.ndarray:
    """Compute ``σ_new = σ ∘ (1 − 2 σ_f)`` (Algorithm 1, line 4)."""
    s = check_spin_vector(sigma)
    mask = np.asarray(sigma_f, dtype=np.int8)
    if mask.shape != s.shape:
        raise ValueError("sigma_f must match sigma's shape")
    return (s * (1 - 2 * mask)).astype(np.int8)


def decompose(sigma_new, sigma_f) -> tuple[np.ndarray, np.ndarray]:
    """Split ``σ_new`` into ``(σ_r, σ_c)`` (Algorithm 1, line 5).

    Returns ``σ_r`` (unflipped entries kept, flipped zeroed) and ``σ_c``
    (flipped entries kept, others zeroed); both in {−1, 0, +1}.
    """
    s_new = check_spin_vector(sigma_new).astype(np.float64)
    mask = np.asarray(sigma_f, dtype=np.float64)
    if mask.shape != s_new.shape:
        raise ValueError("sigma_f must match sigma_new's shape")
    sigma_c = s_new * mask
    sigma_r = s_new * (1.0 - mask)
    return sigma_r, sigma_c


def incremental_vectors(sigma, flip_indices) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One-call convenience: ``(σ_new, σ_r, σ_c)`` for a flip set."""
    s = check_spin_vector(sigma)
    mask = flip_mask(s.shape[0], flip_indices)
    sigma_new = apply_flips(s, mask)
    sigma_r, sigma_c = decompose(sigma_new, mask)
    return sigma_new, sigma_r, sigma_c


def cross_term(J: np.ndarray, sigma_r: np.ndarray, sigma_c: np.ndarray) -> float:
    """The VMV core ``σ_rᵀ J σ_c``, evaluated sparsely over ``F``.

    Cost is ``O(n · |F|)``: one matrix column per flipped spin.
    """
    cols = np.flatnonzero(sigma_c)
    if cols.size == 0:
        return 0.0
    partial = J[:, cols] @ sigma_c[cols]
    return float(sigma_r @ partial)


def delta_energy(model, sigma, flip_indices) -> float:
    """ΔE via the incremental identity (including any field term).

    Works for both coupling backends: dense models go through the explicit
    ``σ_r``/``σ_c`` decomposition and :func:`cross_term`; sparse models
    delegate to their own O(Σ degree) ``delta_energy_flips``.
    """
    s = check_spin_vector(sigma, model.num_spins)
    J = getattr(model, "J", None)
    if J is None:
        return float(model.delta_energy_flips(s, flip_indices))
    _, sigma_r, sigma_c = incremental_vectors(s, flip_indices)
    value = cross_term(J, sigma_r, sigma_c)
    return 4.0 * value + 2.0 * float(model.h @ sigma_c)


def num_product_terms(n: int, flips: int) -> tuple[int, int]:
    """Product-term counts ``(direct, incremental)`` of Fig 5.

    Direct-E evaluates ``n²`` terms; incremental-E ``(n − |F|)·|F|``.
    """
    if n <= 0 or flips < 0 or flips > n:
        raise ValueError("need 0 <= flips <= n and n > 0")
    return n * n, (n - flips) * flips
