"""Backend-agnostic coupling access for the annealer hot loops.

The three solver families (:mod:`~repro.core.annealer`, :mod:`~repro.core.sa`,
:mod:`~repro.core.mesa`) and the multi-replica batch engine
(:mod:`~repro.core.batch`) need exactly five operations on the coupling
matrix:

* ``local_fields(σ)`` — the cached state ``g = J σ``;
* ``diag()`` — ``diag(J)`` for the self-coupling correction;
* ``cross_term(g, F, σ_F)`` — the incremental-E core ``σ_rᵀ J σ_c``
  evaluated from the cached fields;
* ``update_fields(g, F, σ_F)`` — the rank-``|F|`` in-place update after an
  accepted flip;
* the batch (R-replica) variants of the first three: ``batch_local_fields``
  for the initial ``(R, n)`` state, ``batch_cross_term`` for per-replica
  rank-``t`` flip sets, and ``batch_update_fields`` applying the accepted
  replicas' rank-``t`` updates in one scatter.

The simulated-bifurcation engines (:mod:`~repro.core.sb`) add one more
pair: ``matvec(x)`` / ``batch_matvec(X)``, the plain coupling product
``J x`` for *arbitrary real* inputs (continuous bSB positions or dSB sign
readouts) — dense matrix product on one side, CSR ``bincount`` SpMV on
the other, never densifying.

The batch engine additionally owns a full replica spin tensor whose
layout is backend business, not engine business: ``make_batch_state``
returns the spin-state adapter (:class:`FloatBatchState` here, the
bit-packed :class:`~repro.core.packed.PackedBatchState` on the packed
backend) through which the engine gathers proposed spins, applies
accepted flips, and snapshots per-replica bests.

:func:`coupling_ops` wraps a model in the matching adapter:
:class:`DenseCouplingOps` reproduces the seed's dense numpy expressions
verbatim, :class:`SparseCouplingOps` evaluates the same formulas over CSR
neighbour lists in O(degree) per flip, and
:class:`~repro.core.packed.PackedCouplingOps` runs popcount/XOR kernels
over bit-packed ±1 couplings.  Because all adapters compute the
identical mathematical expressions (and identical floating-point values
whenever sums are exactly representable), a solver is backend-transparent:
hand it any model type and fixed-seed trajectories coincide.
"""

from __future__ import annotations

import numpy as np

from repro.ising.model import IsingModel
from repro.ising.packed import PackedIsingModel
from repro.ising.sparse import SparseIsingModel


class FloatBatchState:
    """Replica spin state as the historical float ±1 ``(R, n)`` tensor.

    The batch engine's spin-state protocol: ``fields`` caches the
    ``(R, n)`` local fields, ``gather``/``flip`` read and toggle proposed
    spins, ``record_best`` snapshots improved replicas, and the readout
    methods return int8 configurations (optionally permutation-mapped).
    Each operation is expression-for-expression the engine's historical
    inline code, so dense/sparse fixed-seed trajectories — and the golden
    rows pinned on them — are unchanged by the state abstraction.
    """

    def __init__(self, ops, sigma: np.ndarray) -> None:
        self._sigma = sigma
        #: Cached ``(R, n)`` local fields ``g_r = J σ_r`` (C-contiguous
        #: per the batch_local_fields producer contract).
        self.fields = ops.batch_local_fields(sigma)
        self._best = sigma.copy()

    def gather(self, rows: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Current values of spins ``idx[r]`` per replica (±1.0 float)."""
        return self._sigma[rows, idx]

    def flip(self, acc: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> None:
        """Negate spins ``cols[a]`` of accepted replicas ``acc``."""
        self._sigma[acc[:, None], cols] = -vals

    def record_best(self, improved: np.ndarray) -> None:
        """Snapshot the current state of improved replicas."""
        self._best[improved] = self._sigma[improved]

    def record_best_blocks(
        self, rows: np.ndarray, starts: np.ndarray, stops: np.ndarray
    ) -> None:
        """Snapshot column ranges ``[starts[a], stops[a])`` of ``rows[a]``.

        The block-stacked runner (:mod:`repro.core.blockstack`) packs many
        independent jobs side by side in one replica row, so a best-state
        improvement belongs to *one column block*, not the whole row —
        :meth:`record_best` would overwrite other jobs' snapshots.
        ``rows`` may repeat (several jobs of one replica improving in the
        same iteration): the ranges are disjoint per replica, so the flat
        copy below touches each destination element once.
        """
        widths = (stops - starts).astype(np.intp)
        total = int(widths.sum())
        if total == 0:
            return
        offsets = np.concatenate(([0], np.cumsum(widths)[:-1]))
        n = self._sigma.shape[1]
        flat = (
            np.repeat(rows * n + starts - offsets, widths)
            + np.arange(total)
        )
        # Aliasing audited: _sigma enters C-contiguous (the engine
        # re-contiguates permutation gathers) and _best is its .copy().
        self._best.reshape(-1)[flat] = self._sigma.reshape(-1)[flat]  # repro-lint: disable=RPL004

    def _readout(self, sigma: np.ndarray, fwd: np.ndarray | None) -> np.ndarray:
        if fwd is not None:
            sigma = sigma[:, fwd]
        return sigma.astype(np.int8)

    def final_sigmas(self, fwd: np.ndarray | None) -> np.ndarray:
        """The current replica spins as ``(R, n)`` int8."""
        return self._readout(self._sigma, fwd)

    def best_sigmas(self, fwd: np.ndarray | None) -> np.ndarray:
        """The per-replica best snapshots as ``(R, n)`` int8."""
        return self._readout(self._best, fwd)

    def memory_bytes(self) -> int:
        """Bytes held by the spin tensors and the field cache."""
        return int(
            self._sigma.nbytes + self._best.nbytes + self.fields.nbytes
        )


class DenseCouplingOps:
    """Coupling operations over a dense symmetric matrix (the seed's path)."""

    kind = "dense"

    def __init__(self, model: IsingModel) -> None:
        self._J = model.J
        self._diag = np.diag(self._J).copy()

    def diag(self) -> np.ndarray:
        """``diag(J)`` as a dense vector."""
        return self._diag

    def local_fields(self, sigma: np.ndarray) -> np.ndarray:
        """``g = J σ`` (O(n²))."""
        return self._J @ sigma

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``J x`` for an arbitrary real vector (O(n²)).

        Unlike :meth:`local_fields` the input is not restricted to ±1 spin
        vectors — the simulated-bifurcation engines drive this with
        continuous positions (bSB) as well as sign readouts (dSB).
        """
        return self._J @ x

    def batch_matvec(self, x: np.ndarray) -> np.ndarray:
        """``(R, n)`` products ``J x_r`` for a batch of real vectors."""
        return x @ self._J  # J symmetric, so the row-major product works

    def cross_term(self, g: np.ndarray, flips: np.ndarray, sig_f: np.ndarray) -> float:
        """``σ_rᵀ J σ_c`` from the cached local fields (O(n·|F|))."""
        if flips.shape[0] == 1:
            j0 = int(flips[0])
            return float(-sig_f[0] * (g[j0] - self._diag[j0] * sig_f[0]))
        sub = self._J[np.ix_(flips, flips)] @ sig_f
        return float(-(sig_f * (g[flips] - sub)).sum())

    def update_fields(self, g: np.ndarray, flips: np.ndarray, sig_f: np.ndarray) -> None:
        """In-place ``g ← g − 2 J[:, F] σ_F`` after an accepted flip."""
        g -= 2.0 * (self._J[:, flips] @ sig_f)

    def batch_local_fields(self, sigma: np.ndarray) -> np.ndarray:
        """``(R, n)`` local fields ``σ J`` for a replica batch."""
        return sigma @ self._J  # J symmetric, so the row-major product works

    def batch_cross_term(
        self, g: np.ndarray, idx: np.ndarray, sig_f: np.ndarray
    ) -> np.ndarray:
        """``(R,)`` cross terms ``σ_rᵀ J σ_c`` for per-replica flip sets.

        ``idx`` and ``sig_f`` are ``(R, t)``: replica ``r`` proposes the
        flip set ``idx[r]`` (unique indices) currently valued ``sig_f[r]``.
        Same formula as :meth:`cross_term` per replica, evaluated
        array-wide; the ``t == 1`` fast path reuses the cached diagonal.
        """
        return self.batch_cross_term_slots(g, idx, sig_f).sum(axis=1)

    def batch_cross_term_slots(
        self, g: np.ndarray, idx: np.ndarray, sig_f: np.ndarray
    ) -> np.ndarray:
        """``(R, t)`` per-slot cross-term contributions, before the sum.

        :meth:`batch_cross_term` is exactly ``slots.sum(axis=1)`` (IEEE
        negation is exact and sign-symmetric under rounding, so negating
        per slot and summing matches negating the sum bit-for-bit).  The
        block-stacked runner consumes the unsummed slots to regroup them
        per member block.
        """
        rows = np.arange(idx.shape[0])[:, None]
        g_f = g[rows, idx]
        if idx.shape[1] == 1:
            return -(sig_f * (g_f - self._diag[idx] * sig_f))
        sub = np.einsum(
            "rkl,rl->rk", self._J[idx[:, :, None], idx[:, None, :]], sig_f
        )
        return -(sig_f * (g_f - sub))

    def batch_update_fields(
        self, g: np.ndarray, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
    ) -> None:
        """Per-replica rank-``t`` field update for accepted replicas.

        ``rows`` (A,) are accepted replica indices; ``cols`` / ``vals`` are
        ``(A, t)`` flip sets and pre-flip spin values (1-D accepted for the
        legacy single-flip call shape).  Loops over the ``t`` flip slots —
        each slot is one column gather per accepted replica, so memory
        stays O(A·n) with no ``(n, A, t)`` intermediate.
        """
        if cols.ndim == 1:
            g[rows] -= 2.0 * (self._J[:, cols].T * vals[:, None])
            return
        for k in range(cols.shape[1]):
            g[rows] -= 2.0 * (self._J[:, cols[:, k]].T * vals[:, k][:, None])

    def offdiag_abs_values(self) -> np.ndarray:
        """|J_ij| of all off-diagonal entries (both triangles)."""
        n = self._J.shape[0]
        return np.abs(self._J[~np.eye(n, dtype=bool)])

    def make_batch_state(self, sigma: np.ndarray) -> FloatBatchState:
        """Replica spin-state adapter for the batch engine (float layout)."""
        return FloatBatchState(self, sigma)

    def memory_bytes(self) -> int:
        """Bytes held by the coupling storage."""
        return int(self._J.nbytes)


class SparseCouplingOps:
    """Coupling operations over CSR storage: O(degree) per flipped spin."""

    kind = "sparse"

    def __init__(self, model: SparseIsingModel) -> None:
        self._model = model
        self._indptr, self._indices, self._data = model.csr_arrays()
        self._diag = model.coupling_diagonal()
        self._n = model.num_spins

    def diag(self) -> np.ndarray:
        """``diag(J)`` as a dense vector."""
        return self._diag

    def local_fields(self, sigma: np.ndarray) -> np.ndarray:
        """``g = J σ`` (O(nnz))."""
        return self._model._matvec(sigma)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``J x`` via the CSR ``bincount`` SpMV (O(nnz), no densification).

        The kernel places no ±1 restriction on ``x``, so the SB engines'
        continuous positions go through the same code path as spin
        readouts; for dyadic couplings *and* dyadic inputs every partial
        sum is exact and the result is bit-identical to the dense product.
        """
        return self._model._matvec(x)

    def batch_matvec(self, x: np.ndarray) -> np.ndarray:
        """``(R, n)`` products ``J x_r`` per replica (O(R·nnz))."""
        # Same per-replica bincount kernel (and C-order guarantee) as
        # batch_local_fields — see _batch_local_fields_loop.
        return self._batch_local_fields_loop(x)

    def _gather_rows(self, spins: np.ndarray):
        """Concatenated neighbour lists of ``spins`` without a Python loop.

        Returns ``(counts, nbr, w)``: per-spin neighbour counts and the
        flat column-index / value arrays of all their CSR rows, in order.
        O(Σ degree) time and memory.
        """
        starts = self._indptr[spins]
        counts = self._indptr[spins + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.intp)
            return counts, empty, np.empty(0, dtype=np.float64)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        pos = np.repeat(starts - offsets, counts) + np.arange(total)
        return counts, self._indices[pos], self._data[pos]

    def cross_term(self, g: np.ndarray, flips: np.ndarray, sig_f: np.ndarray) -> float:
        """``σ_rᵀ J σ_c`` from the cached local fields (O(Σ degree))."""
        if flips.shape[0] == 1:
            j0 = int(flips[0])
            return float(-sig_f[0] * (g[j0] - self._diag[j0] * sig_f[0]))
        # sub[k] = Σ_l J[f_k, f_l] σ_F[l]: intersect each flipped row's
        # neighbour list with the flip set via binary search.
        t = flips.shape[0]
        order = np.argsort(flips)
        sorted_flips = flips[order]
        sub = np.zeros(t, dtype=np.float64)
        for k in range(t):
            lo, hi = self._indptr[flips[k]], self._indptr[flips[k] + 1]
            nbr = self._indices[lo:hi]
            loc = np.searchsorted(sorted_flips, nbr)
            loc = np.minimum(loc, t - 1)
            hit = sorted_flips[loc] == nbr
            if hit.any():
                sub[k] = self._data[lo:hi][hit] @ sig_f[order[loc[hit]]]
        return float(-(sig_f * (g[flips] - sub)).sum())

    def update_fields(self, g: np.ndarray, flips: np.ndarray, sig_f: np.ndarray) -> None:
        """In-place rank-``|F|`` field update touching only neighbours."""
        for j, s in zip(flips, sig_f):
            lo, hi = self._indptr[j], self._indptr[j + 1]
            g[self._indices[lo:hi]] -= 2.0 * (self._data[lo:hi] * s)

    def batch_local_fields(self, sigma: np.ndarray) -> np.ndarray:
        """``(R, n)`` local fields for a replica batch (O(R·nnz)).

        Dispatches to the per-replica ``bincount`` kernel.  Benchmarked
        against the one-shot segmented reduction
        (:meth:`batch_local_fields_reduction`,
        ``benchmarks/bench_batch_fields.py``): the loop's cache-resident
        per-replica working set (one ``n``-vector and the shared CSR
        arrays) wins 3-7× at every measured size up to R=100 / n=10k,
        because the reduction materialises — then re-reads — an
        ``(R, nnz)`` intermediate that is pure extra memory traffic.
        """
        return self._batch_local_fields_loop(sigma)

    def batch_local_fields_reduction(self, sigma: np.ndarray) -> np.ndarray:
        """``(R, n)`` local fields via one segmented reduction.

        A single prefix-sum difference over the ``(R, nnz)`` gather — no
        Python-level replica loop.  Empty rows subtract equal prefix
        values and come out exactly 0; for dyadic couplings every partial
        sum is exact, so the result is bit-identical to the looped kernel
        (asserted by the bench and the equivalence tests).  Kept as the
        measured alternative: on current numpy/hardware the looped kernel
        is faster, so :meth:`batch_local_fields` does not dispatch here.
        """
        if self._data.size == 0:
            return np.zeros_like(sigma, dtype=np.float64)
        contrib = sigma[:, self._indices] * self._data
        prefix = np.zeros((sigma.shape[0], self._data.size + 1), dtype=np.float64)
        np.cumsum(contrib, axis=1, out=prefix[:, 1:])
        # ascontiguousarray: mixed basic+advanced indexing returns an
        # F-ordered array, whose .reshape(-1) in batch_update_fields would
        # silently copy instead of aliasing g.
        return np.ascontiguousarray(
            prefix[:, self._indptr[1:]] - prefix[:, self._indptr[:-1]]
        )

    def _batch_local_fields_loop(self, sigma: np.ndarray) -> np.ndarray:
        """Per-replica bincount kernel (the measured-fastest path)."""
        # Explicit C order: zeros_like would inherit the layout of e.g. a
        # permutation-gathered sigma ([:, bwd] returns F order), and an
        # F-ordered g turns the reshape(-1) in batch_update_fields into a
        # silent copy that drops the scatter-update.
        g = np.zeros(sigma.shape, dtype=np.float64)
        for r in range(sigma.shape[0]):
            g[r] = self._model._matvec(sigma[r])
        return g

    def batch_cross_term(
        self, g: np.ndarray, idx: np.ndarray, sig_f: np.ndarray
    ) -> np.ndarray:
        """``(R,)`` cross terms for per-replica rank-``t`` flip sets.

        Same mathematics as :meth:`cross_term` per replica: for each
        flipped spin, the contribution of *other* flipped spins in the same
        replica is subtracted from the cached field.  The flip-set
        intersection runs as one global binary search — each replica's flip
        set is sorted and keyed by ``r·n + spin``, so every gathered
        neighbour of every flipped spin resolves against a single sorted
        key array.  O(Σ degree · log t) time, O(Σ degree) memory; the
        coupling matrix is never densified.
        """
        return self.batch_cross_term_slots(g, idx, sig_f).sum(axis=1)

    def batch_cross_term_slots(
        self, g: np.ndarray, idx: np.ndarray, sig_f: np.ndarray
    ) -> np.ndarray:
        """``(R, t)`` per-slot cross-term contributions, before the sum.

        Same split as the dense twin: :meth:`batch_cross_term` is exactly
        ``slots.sum(axis=1)``.  For flip sets whose members live in
        mutually uncoupled column blocks (the block-stacked union), each
        slot's ``sub`` only sees flips of its own block, so regrouped
        per-block sums reproduce the member models' solo cross terms.
        """
        R, t = idx.shape
        rows = np.arange(R)[:, None]
        g_f = g[rows, idx]
        if t == 1:
            return -(sig_f * (g_f - self._diag[idx] * sig_f))
        order = np.argsort(idx, axis=1)
        sorted_idx = np.take_along_axis(idx, order, axis=1)
        sorted_sig = np.take_along_axis(sig_f, order, axis=1).ravel()
        keys = (rows * self._n + sorted_idx).ravel()
        counts, nbr, w = self._gather_rows(idx.ravel())
        sub = np.zeros(R * t, dtype=np.float64)
        if nbr.size:
            rep = np.repeat(np.repeat(np.arange(R), t), counts)
            nbr_keys = rep * self._n + nbr
            loc = np.minimum(np.searchsorted(keys, nbr_keys), keys.size - 1)
            hit = keys[loc] == nbr_keys
            if hit.any():
                seg = np.repeat(np.arange(R * t), counts)
                sub = np.bincount(
                    seg[hit],
                    weights=w[hit] * sorted_sig[loc[hit]],
                    minlength=R * t,
                )
        return -(sig_f * (g_f - sub.reshape(R, t)))

    def batch_update_fields(
        self, g: np.ndarray, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
    ) -> None:
        """Per-replica rank-``t`` update via a flat scatter-subtract.

        ``rows`` (A,) are accepted replica indices; ``cols`` / ``vals`` are
        ``(A, t)`` (1-D accepted for the legacy single-flip call shape).
        O(Σ degree · log) time and memory — neighbour lists only, no
        ``(n, n)`` or ``(A, t, n)`` intermediate.
        """
        if cols.ndim == 2 and cols.shape[1] == 1:
            cols, vals = cols[:, 0], vals[:, 0]
        if cols.ndim == 1:
            counts, nbr, w = self._gather_rows(cols)
            if nbr.size == 0:
                return
            flat = np.repeat(rows, counts) * self._n + nbr
            # `rows` are distinct replicas and neighbour lists have unique
            # columns, so the flat indices are unique and fancy -= is safe.
            # Aliasing audited: every producer of g returns C order
            # (_batch_local_fields_loop zeros in C order explicitly;
            # the reduction kernel runs through ascontiguousarray).
            g.reshape(-1)[flat] -= 2.0 * w * np.repeat(vals, counts)  # repro-lint: disable=RPL004
            return
        t = cols.shape[1]
        counts, nbr, w = self._gather_rows(cols.ravel())
        if nbr.size == 0:
            return
        flat = np.repeat(np.repeat(rows, t), counts) * self._n + nbr
        contrib = w * np.repeat(vals.ravel(), counts)
        # Two flipped spins of one replica may share a neighbour, giving
        # duplicate flat indices that a fancy -= would silently drop:
        # collapse duplicates with a segment sum first.
        # Aliasing audited: g is C-contiguous by the same producer
        # contract as the rank-1 path above.
        uniq, inv = np.unique(flat, return_inverse=True)
        g.reshape(-1)[uniq] -= 2.0 * np.bincount(inv, weights=contrib)  # repro-lint: disable=RPL004

    def offdiag_abs_values(self) -> np.ndarray:
        """|J_ij| of all stored off-diagonal entries (both triangles)."""
        return self._model.offdiag_abs_values()

    def make_batch_state(self, sigma: np.ndarray) -> FloatBatchState:
        """Replica spin-state adapter for the batch engine (float layout)."""
        return FloatBatchState(self, sigma)

    def memory_bytes(self) -> int:
        """Bytes held by the coupling storage."""
        return self._model.memory_bytes()


def coupling_ops(model):
    """Wrap ``model`` in the coupling-operation adapter for its backend."""
    if isinstance(model, PackedIsingModel):
        # Local import: repro.core.packed subclasses SparseCouplingOps,
        # so a module-level import would be circular.
        from repro.core.packed import PackedCouplingOps

        return PackedCouplingOps(model)
    if isinstance(model, SparseIsingModel):
        return SparseCouplingOps(model)
    if isinstance(model, IsingModel) or getattr(model, "J", None) is not None:
        return DenseCouplingOps(model)
    raise TypeError(
        f"expected an IsingModel or SparseIsingModel, got {type(model).__name__}"
    )


def auto_acceptance_scale(model) -> float:
    """Read-out gain making the typical coupling magnitude ~O(1).

    Backend-agnostic version of the seed's ``_auto_scale``: both adapters
    feed the same multiset of nonzero off-diagonal |J_ij| into the median,
    so the gain — and therefore the annealing trajectory — is identical for
    dense and sparse models of the same Hamiltonian.  Chosen so a minimal
    uphill move stays rejected until the fractional factor has decayed well
    below 0.1 (the gain ablation bench sweeps this).
    """
    off = coupling_ops(model).offdiag_abs_values()
    nonzero = off[off > 0]
    if nonzero.size == 0:
        return 1.0
    return 15.0 / float(np.median(nonzero))
