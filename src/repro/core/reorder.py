"""Bandwidth-reducing spin reordering ahead of crossbar tiling.

The tiled crossbar (:class:`~repro.arch.tiling.TiledCrossbar`) pays only
for (row-block, col-block) tiles that contain nonzeros, so its cost is set
by the *ordering* of the spins, not just the edge count: a degree-6 graph
in a banded (circulant) ordering occupies ~3 block diagonals, while the
same graph with scattered labels lights up nearly the whole ``grid²``
tile grid.  This module recovers the banded layout: a pure-numpy Reverse
Cuthill–McKee pass (BFS from a pseudo-peripheral vertex, George–Liu
refinement, children ordered by ascending degree, order reversed) plus a
greedy degree-ordering fallback, both operating directly on
:class:`~repro.ising.sparse.SparseIsingModel` CSR arrays — the dense
``(n, n)`` matrix is never formed.

The result is a :class:`Permutation` carrying the forward/backward index
maps, the bandwidth before/after, and an exact
:meth:`~Permutation.estimated_active_tiles` predictor of the tile count a
:class:`~repro.arch.tiling.TiledCrossbar` would instantiate after
reordering (exact because the tile registry and the estimate both count
the nonzero-block set of the same stored entries).

Transparency contract
---------------------
Reordering is an *internal layout* optimisation: the annealers accept a
``permutation`` and keep their entire observable behaviour — RNG stream,
proposal order, returned configurations — in the caller's original
ordering (proposal indices are drawn in original space and mapped through
``forward``; results are mapped back through the inverse).  For dyadic
couplings (all ±1-weighted G-sets) every floating-point sum involved is
exact in any summation order, so a reordered solve is **bit-identical**
to the unreordered one; ``tests/test_reorder.py`` pins this down.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_choice, check_count, check_permutation

#: Valid values of the public ``reorder=`` knob.  ``"partition"`` is the
#: multilevel min-cut block layout of :mod:`repro.core.partition` (for
#: clustered instances; requires a ``tile_size`` to size the blocks to).
REORDER_MODES = ("none", "rcm", "partition", "auto")

#: Strategies :func:`reorder_permutation` can be asked for explicitly
#: (``"degree"`` is the greedy fallback ``"auto"`` considers).
REORDER_STRATEGIES = REORDER_MODES + ("degree",)


class Permutation:
    """A spin relabelling ``new = forward[old]`` with layout metrics.

    Parameters
    ----------
    forward:
        Length-``n`` integer array mapping original spin index → reordered
        position.
    bandwidth_before / bandwidth_after:
        Matrix bandwidth ``max |i − j|`` over the stored couplings in the
        original and reordered labelling (``None`` when not computed).
    structure:
        Optional ``(rows, cols)`` arrays of the stored coupling entries in
        the *original* labelling — required by
        :meth:`estimated_active_tiles`.
    strategy:
        Label of the producing heuristic (``"rcm"``, ``"degree"``,
        ``"identity"``, …) — reported in the crossbar mapping summary.
    """

    def __init__(
        self,
        forward,
        bandwidth_before: int | None = None,
        bandwidth_after: int | None = None,
        structure: tuple[np.ndarray, np.ndarray] | None = None,
        strategy: str = "custom",
    ) -> None:
        forward = np.asarray(forward, dtype=np.intp)
        fwd, bwd = check_permutation(forward, forward.shape[0])
        self.forward = fwd
        self.backward = bwd
        self.bandwidth_before = (
            None if bandwidth_before is None else int(bandwidth_before)
        )
        self.bandwidth_after = (
            None if bandwidth_after is None else int(bandwidth_after)
        )
        self._structure = structure
        self.strategy = str(strategy)

    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int, structure=None) -> "Permutation":
        """The do-nothing permutation on ``n`` spins."""
        fwd = np.arange(int(n), dtype=np.intp)
        bw = None
        if structure is not None:
            bw = _bandwidth_of(structure[0], structure[1])
        return cls(fwd, bw, bw, structure=structure, strategy="identity")

    @property
    def n(self) -> int:
        """Number of spins the permutation acts on."""
        return self.forward.shape[0]

    def __len__(self) -> int:
        return self.n

    @property
    def is_identity(self) -> bool:
        """Whether the permutation leaves every spin in place."""
        return bool(np.array_equal(self.forward, np.arange(self.n)))

    @property
    def inverse(self) -> "Permutation":
        """The inverse relabelling (reordered position → original index)."""
        structure = None
        if self._structure is not None:
            rows, cols = self._structure
            structure = (self.forward[rows], self.forward[cols])
        return Permutation(
            self.backward,
            bandwidth_before=self.bandwidth_after,
            bandwidth_after=self.bandwidth_before,
            structure=structure,
            strategy=f"inverse({self.strategy})",
        )

    # ------------------------------------------------------------------
    def permute_vector(self, x: np.ndarray) -> np.ndarray:
        """Map a per-spin vector from original to reordered layout."""
        return np.asarray(x)[self.backward]

    def restore_vector(self, x: np.ndarray) -> np.ndarray:
        """Map a per-spin vector from reordered back to original layout."""
        return np.asarray(x)[self.forward]

    def estimated_active_tiles(self, tile_size: int) -> int:
        """Tiles a :class:`TiledCrossbar` instantiates after reordering.

        Counts the distinct ``tile_size``-square blocks hit by the stored
        coupling entries under this permutation — exactly the nonzero-block
        registry ``block_partition`` builds, so the prediction matches the
        machine's ``num_tiles`` (the occupancy regression test pins this).
        """
        s = check_count("tile_size", tile_size)
        if self._structure is None:
            raise ValueError(
                "permutation carries no coupling structure; build it via "
                "reorder_permutation()/rcm_permutation() to estimate tiles"
            )
        rows, cols = self._structure
        if rows.size == 0:
            return 0
        grid = -(-self.n // s)
        keys = (self.forward[rows] // s) * grid + self.forward[cols] // s
        return int(np.unique(keys).size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bw = ""
        if self.bandwidth_before is not None and self.bandwidth_after is not None:
            bw = f", bandwidth {self.bandwidth_before}->{self.bandwidth_after}"
        return f"Permutation(n={self.n}, strategy={self.strategy!r}{bw})"


# ----------------------------------------------------------------------
# Structure extraction
# ----------------------------------------------------------------------
def _structure_of(model) -> tuple[int, np.ndarray, np.ndarray]:
    """``(n, rows, cols)`` of the stored coupling entries, both triangles.

    Sparse models hand over their CSR arrays directly (O(nnz), no dense
    matrix); dense models scan ``np.nonzero(J)``.
    """
    csr = getattr(model, "csr_arrays", None)
    if csr is not None:
        indptr, indices, _ = csr()
        n = model.num_spins
        rows = np.repeat(np.arange(n, dtype=np.intp), np.diff(indptr))
        return n, rows, indices
    J = getattr(model, "J", None)
    if J is None:
        raise TypeError(
            f"expected an IsingModel or SparseIsingModel, got "
            f"{type(model).__name__}"
        )
    rows, cols = np.nonzero(J)
    return J.shape[0], rows.astype(np.intp), cols.astype(np.intp)


def _bandwidth_of(rows: np.ndarray, cols: np.ndarray) -> int:
    """Matrix bandwidth ``max |i − j|`` of a stored-entry set (0 if empty)."""
    if rows.size == 0:
        return 0
    return int(np.max(np.abs(rows - cols)))


def graph_bandwidth(model) -> int:
    """Bandwidth of the model's coupling matrix in its current labelling."""
    _, rows, cols = _structure_of(model)
    return _bandwidth_of(rows, cols)


def count_active_tiles(model, tile_size: int) -> int:
    """Nonzero ``tile_size``-square blocks in the model's current labelling.

    The identity-ordering baseline :meth:`Permutation.estimated_active_tiles`
    is compared against — equals ``TiledCrossbar(model, tile_size).num_tiles``
    without building any tile.
    """
    s = check_count("tile_size", tile_size)
    n, rows, cols = _structure_of(model)
    if rows.size == 0:
        return 0
    grid = -(-n // s)
    return int(np.unique((rows // s) * grid + cols // s).size)


# ----------------------------------------------------------------------
# BFS machinery (vectorised per level)
# ----------------------------------------------------------------------
def _adjacency_gather(
    indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated neighbour lists of ``nodes`` plus each entry's parent rank.

    Returns ``(neighbours, parent_rank)`` where ``parent_rank[k]`` is the
    position in ``nodes`` whose adjacency produced ``neighbours[k]`` — the
    key the Cuthill–McKee child ordering groups by.
    """
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.intp)
        return empty, empty
    seg_starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.intp) - np.repeat(seg_starts, counts)
    flat = indices[np.repeat(indptr[nodes], counts) + offsets]
    parent = np.repeat(np.arange(nodes.size, dtype=np.intp), counts)
    return flat, parent


def _bfs_level_sets(
    indptr: np.ndarray,
    indices: np.ndarray,
    start: int,
    mark: np.ndarray,
    token: int,
) -> list[np.ndarray]:
    """Level structure of the BFS from ``start``.

    ``mark``/``token`` implement O(1)-reset visited tracking: a node is
    visited iff ``mark[node] == token``, so repeated BFS passes (the
    pseudo-peripheral search) never re-allocate or clear an ``n``-array.
    """
    mark[start] = token
    frontier = np.array([start], dtype=np.intp)
    levels = [frontier]
    while True:
        nbr, _ = _adjacency_gather(indptr, indices, frontier)
        fresh = nbr[mark[nbr] != token]
        if fresh.size == 0:
            return levels
        fresh = np.unique(fresh)
        mark[fresh] = token
        levels.append(fresh)
        frontier = fresh


def _pseudo_peripheral(
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    start: int,
    mark: np.ndarray,
    token: int,
) -> tuple[int, int]:
    """George–Liu pseudo-peripheral vertex of ``start``'s component.

    Repeatedly re-roots the BFS at a minimum-degree vertex of the deepest
    level until the eccentricity stops growing.  Returns the chosen root
    and the next unused visited-token.
    """
    levels = _bfs_level_sets(indptr, indices, start, mark, token)
    token += 1
    while True:
        last = levels[-1]
        candidate = int(last[np.argmin(degrees[last])])
        if candidate == start:
            return start, token
        new_levels = _bfs_level_sets(indptr, indices, candidate, mark, token)
        token += 1
        if len(new_levels) <= len(levels):
            return start, token
        start, levels = candidate, new_levels


def _cm_component(
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    root: int,
    visited: np.ndarray,
) -> np.ndarray:
    """Cuthill–McKee ordering of ``root``'s component (marks ``visited``).

    Each level's fresh nodes are grouped by the rank of the parent that
    discovered them (earliest parent wins a shared child) and sorted by
    ascending degree within a group, with the node id as the deterministic
    tie-break — the classic CM child order, vectorised per level.
    """
    visited[root] = True
    frontier = np.array([root], dtype=np.intp)
    order = [frontier]
    while True:
        nbr, parent = _adjacency_gather(indptr, indices, frontier)
        keep = ~visited[nbr]
        nbr, parent = nbr[keep], parent[keep]
        if nbr.size == 0:
            return np.concatenate(order)
        # First occurrence per node by parent rank …
        by_node = np.lexsort((parent, nbr))
        nbr, parent = nbr[by_node], parent[by_node]
        first = np.concatenate(([True], nbr[1:] != nbr[:-1]))
        nodes, parent = nbr[first], parent[first]
        # … then the CM order: (parent rank, degree, node id).
        level = nodes[np.lexsort((nodes, degrees[nodes], parent))]
        visited[level] = True
        order.append(level)
        frontier = level


def _csr_adjacency(model) -> tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(n, indptr, indices, rows, cols)`` adjacency of either backend."""
    n, rows, cols = _structure_of(model)
    csr = getattr(model, "csr_arrays", None)
    if csr is not None:
        indptr, indices, _ = csr()
        return n, indptr, indices, rows, cols
    # Dense path: rows from np.nonzero are already CSR (row-major) ordered.
    indptr = np.zeros(n + 1, dtype=np.intp)
    indptr[1:] = np.cumsum(np.bincount(rows, minlength=n))
    return n, indptr, cols, rows, cols


# ----------------------------------------------------------------------
# Reordering passes
# ----------------------------------------------------------------------
def rcm_permutation(model) -> Permutation:
    """Reverse Cuthill–McKee reordering of a coupling graph.

    Components are processed in ascending order of their minimum degree
    (isolated spins first), each from a George–Liu pseudo-peripheral root;
    the concatenated Cuthill–McKee order is reversed at the end.  Pure
    numpy over the CSR arrays — O(nnz) work per BFS sweep, never a dense
    matrix.
    """
    n, indptr, indices, rows, cols = _csr_adjacency(model)
    degrees = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    mark = np.full(n, -1, dtype=np.int64)
    token = 0
    # Component roots scanned through a degree-presorted node list with a
    # moving pointer: amortised O(n log n) even for thousands of singleton
    # components (a per-component flatnonzero scan would be O(n²)).
    by_degree = np.argsort(degrees, kind="stable")
    ptr = 0
    pieces: list[np.ndarray] = []
    while ptr < n:
        if visited[by_degree[ptr]]:
            ptr += 1
            continue
        start = int(by_degree[ptr])
        root, token = _pseudo_peripheral(
            indptr, indices, degrees, start, mark, token
        )
        pieces.append(_cm_component(indptr, indices, degrees, root, visited))
    cm = np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.intp)
    rcm = cm[::-1]  # rcm[k] = original spin placed at position k
    forward = np.empty(n, dtype=np.intp)
    forward[rcm] = np.arange(n, dtype=np.intp)
    return Permutation(
        forward,
        bandwidth_before=_bandwidth_of(rows, cols),
        bandwidth_after=_bandwidth_of(forward[rows], forward[cols]),
        structure=(rows, cols),
        strategy="rcm",
    )


def degree_permutation(model) -> Permutation:
    """Greedy ascending-degree ordering (the ``auto`` fallback).

    Sorting spins by degree clusters the dense rows; it cannot follow
    graph structure like RCM, but it is a cheap O(n log n) improvement for
    graphs whose degree distribution — not topology — drives the fill.
    """
    n, indptr, _, rows, cols = _csr_adjacency(model)
    order = np.argsort(np.diff(indptr), kind="stable")
    forward = np.empty(n, dtype=np.intp)
    forward[order] = np.arange(n, dtype=np.intp)
    return Permutation(
        forward,
        bandwidth_before=_bandwidth_of(rows, cols),
        bandwidth_after=_bandwidth_of(forward[rows], forward[cols]),
        structure=(rows, cols),
        strategy="degree",
    )


def reorder_permutation(
    model, mode: str = "rcm", tile_size: int | None = None
) -> Permutation | None:
    """Resolve the ``reorder`` knob to a permutation (or ``None``).

    ``"rcm"`` / ``"partition"`` / ``"degree"`` return their pass
    unconditionally (an explicit request is honoured even when it does not
    improve the layout; ``"partition"`` needs ``tile_size`` to size its
    blocks to the tile grid).  ``"auto"`` scores candidates — by
    :meth:`~Permutation.estimated_active_tiles` when ``tile_size`` is
    given (the tiled-machine objective; RCM **and** the multilevel min-cut
    partition both compete, exact tile counts decide), by bandwidth
    otherwise (partition is not considered: without a tile grid a block
    layout has nothing to optimise) — tries the greedy degree fallback
    when the structural passes fail to improve, and returns ``None``
    (keep the identity ordering) unless the winner *strictly* beats the
    current labelling.  Every candidate pass is deterministic, so the
    scorer picks the same winner on every run.
    """
    check_choice("reorder", mode, REORDER_STRATEGIES)
    if mode == "none":
        return None
    if mode in ("partition", "auto") and tile_size is not None:
        tile_size = check_count("tile_size", tile_size)
    if mode == "rcm":
        return rcm_permutation(model)
    if mode == "partition":
        if tile_size is None:
            raise ValueError(
                "reorder='partition' sizes its blocks to the tile grid and "
                "needs tile_size=...; use reorder='rcm' (bandwidth) for "
                "untiled layouts"
            )
        # Local import: repro.core.partition builds on this module.
        from repro.core.partition import partition_permutation

        return partition_permutation(model, tile_size)
    if mode == "degree":
        return degree_permutation(model)
    # auto
    if tile_size is not None:

        def score(perm: Permutation) -> int:
            return perm.estimated_active_tiles(tile_size)

        identity_score = count_active_tiles(model, tile_size)
    else:

        def score(perm: Permutation) -> int:
            return perm.bandwidth_after

        identity_score = graph_bandwidth(model)
    best = rcm_permutation(model)
    if tile_size is not None:
        from repro.core.partition import partition_permutation

        candidate = partition_permutation(model, tile_size)
        if score(candidate) < score(best):
            best = candidate
    if score(best) >= identity_score:
        fallback = degree_permutation(model)
        if score(fallback) < score(best):
            best = fallback
    if score(best) >= identity_score:
        return None
    return best
