"""The in-situ annealing flow — Algorithm 1 of the paper.

Each iteration: select ``t = |F|`` spins, form ``σ_new``/``σ_r``/``σ_c``,
evaluate ``E_inc = σ_rᵀJσ_c · f(T)`` (in hardware: one crossbar activation),
then accept when ``E_inc ≤ 0`` or when ``E_inc ≤ rand(0, 1)``; finally step
the temperature along the back-gate schedule.

This module is the *software reference*: it computes exactly what the
behavioural crossbar computes, but with O(t) local-field arithmetic per
proposal so the 3000-spin / 100 000-iteration benches run in seconds.  The
hardware-in-the-loop variant (:mod:`repro.arch.cim_annealer`) plugs a
crossbar in through the ``evaluator`` hook and inherits the identical
proposal/acceptance logic, so software and hardware trajectories coincide
for ideal arrays.

Reproduction notes (DESIGN.md §2):

* the run tracks the best configuration seen — the controller keeps the
  running energy up to date at O(1)/iteration anyway (``E ← E + ΔE``);
* ``acceptance_scale`` is the sensed-value gain of the read-out chain (the
  comparison against ``rand(0,1)`` happens in normalised hardware units, so
  the current-to-digital scaling is a free design parameter; ``"auto"``
  picks a gain that makes the smallest coupling step significant).
"""

from __future__ import annotations

import numpy as np

from repro.core.coupling import auto_acceptance_scale, coupling_ops
from repro.core.factors import FractionalFactor, VbgEncoder
from repro.core.proposal import FlipSelector
from repro.core.results import AnnealResult
from repro.core.schedule import Schedule, VbgStepSchedule
from repro.ising.model import IsingModel
from repro.ising.sparse import SparseIsingModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_count,
    check_permutation,
    check_spin_vector,
)


class InSituAnnealer:
    """Algorithm 1: tunable back-gate in-situ annealing.

    Parameters
    ----------
    model:
        The Ising model to minimise (fields are folded in exactly through
        the ``2hᵀσ_c`` term).  Either backend works — a dense
        :class:`~repro.ising.model.IsingModel` or a
        :class:`~repro.ising.sparse.SparseIsingModel`; trajectories
        coincide across backends for a fixed seed.
    flips_per_iteration:
        ``t = |F|``, the constant flip-set size (paper keeps it constant so
        the VMV stays O(n)).
    factor:
        The fractional annealing factor; default is the published one.
    schedule:
        Back-gate schedule; default walks 0.7 V → 0 V evenly over the run.
    encoder:
        Optional :class:`VbgEncoder` realising ``f`` through a device
        transfer curve (adds the 10 mV quantisation of the real rail).
    acceptance_scale:
        Read-out gain applied to ``E_inc`` before the ``rand`` comparison,
        or ``"auto"``.
    evaluator:
        Optional hardware hook ``evaluator(sigma, flips, sigma_r, sigma_c,
        v_bg) -> sensed value`` replacing the exact ``σ_rᵀJσ_c · f``
        computation (used by the CiM machine).
    proposal:
        ``"scan"`` (default) walks a per-sweep random permutation — the
        hardware-natural sequential address counter, which guarantees every
        spin is visited once per sweep; ``"random"`` draws flip sets
        independently each iteration (classic Metropolis).  The proposal
        ablation bench quantifies the difference.
    iteration_hook:
        Optional callable ``hook(iteration, delta_e, accepted, temperature)``
        fired after each accept decision; the hardware machines use it to
        book per-iteration costs.
    permutation:
        Optional :class:`~repro.core.reorder.Permutation` (or raw
        ``forward`` array) declaring that ``model`` is a relabelled view of
        the caller's problem.  Proposal indices and the initial
        configuration are drawn in the caller's *original* spin space and
        mapped through the permutation, and the returned configurations are
        mapped back — so the RNG stream, accept decisions and results are
        layout-independent (bit-identical to the unpermuted solve for
        dyadic couplings, where all sums are exact in any order).
    track_best / record_trace:
        Bookkeeping switches.
    seed:
        RNG seed (flip selection and acceptance draws).
    """

    name = "in-situ CiM annealer"

    def __init__(
        self,
        model: IsingModel | SparseIsingModel,
        flips_per_iteration: int = 1,
        factor: FractionalFactor | None = None,
        schedule: Schedule | None = None,
        encoder: VbgEncoder | None = None,
        acceptance_scale: float | str = "auto",
        evaluator=None,
        proposal: str = "scan",
        iteration_hook=None,
        permutation=None,
        track_best: bool = True,
        record_trace: bool = False,
        seed=None,
    ) -> None:
        self.model = model
        self.n = model.num_spins
        self._ops = coupling_ops(model)
        t = check_count("flips_per_iteration", flips_per_iteration)
        if t > self.n:
            raise ValueError(f"flips_per_iteration must be in [1, {self.n}]")
        self.flips_per_iteration = t
        self.factor = factor or FractionalFactor()
        self.schedule = schedule
        self.encoder = encoder
        if acceptance_scale == "auto":
            self.acceptance_scale = auto_acceptance_scale(model)
        else:
            self.acceptance_scale = float(acceptance_scale)
            if self.acceptance_scale <= 0:
                raise ValueError("acceptance_scale must be positive")
        self.evaluator = evaluator
        self.proposal = proposal
        self.iteration_hook = iteration_hook
        self.permutation = permutation
        if permutation is None:
            self._fwd = self._bwd = None
        else:
            self._fwd, self._bwd = check_permutation(permutation, self.n)
        self.track_best = bool(track_best)
        self.record_trace = bool(record_trace)
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    def _build_schedule(self, iterations: int) -> Schedule:
        if self.schedule is not None:
            if self.schedule.iterations != iterations:
                raise ValueError(
                    "schedule length does not match requested iterations"
                )
            return self.schedule
        return VbgStepSchedule(iterations, factor=self.factor)

    def _factor_at(self, temperature: float) -> float:
        if self.encoder is not None:
            return self.encoder.realized_factor(temperature)
        return float(self.factor.value(np.asarray(temperature)))

    # ------------------------------------------------------------------
    def run(self, iterations: int, initial=None) -> AnnealResult:
        """Execute the annealing flow and return the result.

        Parameters
        ----------
        iterations:
            Number of proposal/accept iterations (the paper's per-size
            budgets live in ``repro.ising.PAPER_ITERATIONS``).
        initial:
            Optional starting ±1 configuration (default: uniform random).
        """
        iterations = check_count(
            "iterations", iterations,
            hint="the annealers need at least one proposal/accept step",
        )
        schedule = self._build_schedule(iterations)
        rng = self._rng
        ops = self._ops
        h = self.model.h
        t = self.flips_per_iteration

        if initial is None:
            sigma = self.model.random_configuration(rng).astype(np.float64)
        else:
            sigma = check_spin_vector(initial, self.n).astype(np.float64)
        if self._bwd is not None:
            # Both the random draw and a caller-supplied `initial` are in
            # the original spin space; gather into the internal ordering.
            sigma = sigma[self._bwd]
        g = ops.local_fields(sigma)
        energy = float(sigma @ g + h @ sigma) + self.model.offset
        best_energy = energy
        best_sigma = sigma.copy()

        accepted = 0
        uphill_accepted = 0
        uphill_proposals = 0
        trace = np.empty(iterations, dtype=np.float64) if self.record_trace else None
        best_trace = np.empty(iterations, dtype=np.float64) if self.record_trace else None
        vbg_fn = getattr(schedule, "vbg", None)
        has_fields = self.model.has_fields
        selector = FlipSelector(self.n, t, self.proposal, rng, index_map=self._fwd)

        for it in range(iterations):
            temperature = schedule.temperature(it)
            f_value = self._factor_at(temperature)
            flips = selector.next()

            # σ_rᵀ J σ_c through the cached local fields: for each flipped
            # column j, subtract the contribution of other flipped rows.
            sig_f = sigma[flips]
            cross = ops.cross_term(g, flips, sig_f)
            field_term = float(-(h[flips] * sig_f).sum()) if has_fields else 0.0
            delta_e = 4.0 * cross + 2.0 * field_term

            if self.evaluator is not None:
                # σ_r/σ_c built in place (no validation — sigma is ±1 by
                # construction); equivalent to `incremental_vectors`.
                sigma_c = np.zeros(self.n, dtype=np.float64)
                sigma_c[flips] = -sig_f
                sigma_r = sigma.copy()
                sigma_r[flips] = 0.0
                # The BG encoder picks the rail level realising f(T) on the
                # physical transfer curve (paper Fig 3c); without one, fall
                # back to the schedule's raw V_BG walk / linear map.
                if self.encoder is not None:
                    v_bg = self.encoder.encode(temperature)
                elif vbg_fn is not None:
                    v_bg = float(vbg_fn(it))
                else:
                    v_bg = float(self.factor.vbg_for_temperature(temperature))
                sensed = self.evaluator(sigma, flips, sigma_r, sigma_c, v_bg)
                # Field contribution scaled like the sensed part (a field is
                # physically an ancilla row passing through the same array).
                e_inc = (sensed + field_term / 2.0 * f_value) * self.acceptance_scale
            else:
                e_inc = (cross + field_term / 2.0) * f_value * self.acceptance_scale

            if delta_e > 0:
                uphill_proposals += 1
            accept = e_inc <= 0.0 or e_inc <= rng.random()
            if accept:
                accepted += 1
                if delta_e > 0:
                    uphill_accepted += 1
                # Rank-t update of state, fields and running energy.
                ops.update_fields(g, flips, sig_f)
                sigma[flips] = -sig_f
                energy += delta_e
                if self.track_best and energy < best_energy:
                    best_energy = energy
                    best_sigma = sigma.copy()
            if self.iteration_hook is not None:
                self.iteration_hook(it, delta_e, accept, temperature)
            if trace is not None:
                trace[it] = energy
                best_trace[it] = best_energy

        if not self.track_best or energy < best_energy:
            best_energy = energy
            best_sigma = sigma.copy()
        if self._fwd is not None:
            # Hand configurations back in the caller's original ordering.
            sigma = sigma[self._fwd]
            best_sigma = best_sigma[self._fwd]
        return AnnealResult(
            solver=self.name,
            sigma=sigma.astype(np.int8),
            energy=energy,
            best_sigma=best_sigma.astype(np.int8),
            best_energy=best_energy,
            iterations=iterations,
            accepted=accepted,
            uphill_accepted=uphill_accepted,
            uphill_proposals=uphill_proposals,
            exponent_evaluations=0,
            energy_trace=trace,
            best_trace=best_trace,
            metadata={
                "flips_per_iteration": t,
                "acceptance_scale": self.acceptance_scale,
                "factor": self.factor,
                "proposal": self.proposal,
            },
        )
