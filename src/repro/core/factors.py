"""Annealing factors: the paper's fractional ``f(T)`` and the baselines' ``e^x``.

The direct-E annealers accept an uphill move with the Metropolis probability
``exp(−ΔE/T)``.  The paper replaces that with the first-order surrogate
(Eq. 10-11): the hardware senses ``E_inc = σ_rᵀJσ_c · f(T)`` and accepts when
``E_inc ≤ rand(0,1)``, with the *fractional factor*

.. math::  f(T) = \\frac{a}{b\\,T + c} + d,

whose published parameterisation is ``a=1, b=−0.006, c=5, d=−0.2`` (Fig 6c),
rising from ``f(0) = 0`` to ``f ≈ 1`` at the top of the temperature range.
``f`` is realised physically as the normalised DG FeFET SL current, with the
temperature encoder mapping ``T`` onto the back-gate voltage grid
(``V_BG ∈ [0, 0.7] V``, 10 mV steps) — :class:`VbgEncoder` builds that
lookup against any cell/crossbar transfer curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.devices.constants import VBG_MAX, VBG_MIN, VBG_STEP
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FractionalFactor:
    """The fractional annealing factor ``f(T) = a/(bT + c) + d``.

    Defaults are the paper's published fit.  The factor must satisfy the
    paper's two constraints on the temperature range ``[0, t_max]``:
    (i) ``f(T) ≥ 0`` and (ii) ``f`` monotonically increasing in ``T``.
    """

    a: float = 1.0
    b: float = -0.006
    c: float = 5.0
    d: float = -0.2

    def __post_init__(self) -> None:
        if self.a == 0.0:
            raise ValueError("parameter a must be non-zero")
        if self.c == 0.0:
            raise ValueError("parameter c must be non-zero")
        t_max = self.t_max
        if not np.isfinite(t_max) or t_max <= 0:
            raise ValueError("factor never reaches 1; check parameters")
        grid = self.value(np.linspace(0.0, t_max, 64))
        if np.any(grid < -1e-9):
            raise ValueError("f(T) must be non-negative on [0, t_max]")
        if np.any(np.diff(grid) < -1e-9):
            raise ValueError("f(T) must be non-decreasing on [0, t_max]")

    @property
    def t_max(self) -> float:
        """Temperature at which ``f`` reaches 1 (top of the paper's range).

        Solves ``a/(b·t + c) + d = 1``; with the published parameters this is
        ``≈ 694``, the value mapped onto ``V_BG = 0.7 V``.
        """
        denom = self.a / (1.0 - self.d)
        return (denom - self.c) / self.b

    def value(self, temperature) -> np.ndarray:
        """Evaluate ``f(T)`` (clamped below at 0, as currents cannot go negative)."""
        t = np.asarray(temperature, dtype=np.float64)
        raw = self.a / (self.b * t + self.c) + self.d
        return np.maximum(raw, 0.0)

    def vbg_for_temperature(self, temperature) -> np.ndarray:
        """Linear temperature → back-gate mapping of Sec. 3.4.

        ``T ∈ [0, t_max]`` maps onto ``V_BG ∈ [V_MIN, V_MAX]``, before any
        encoder snapping to the 10 mV grid.
        """
        t = np.asarray(temperature, dtype=np.float64)
        frac = np.clip(t / self.t_max, 0.0, 1.0)
        return VBG_MIN + frac * (VBG_MAX - VBG_MIN)

    def temperature_for_vbg(self, v_bg) -> np.ndarray:
        """Inverse of :meth:`vbg_for_temperature`."""
        v = np.asarray(v_bg, dtype=np.float64)
        frac = np.clip((v - VBG_MIN) / (VBG_MAX - VBG_MIN), 0.0, 1.0)
        return frac * self.t_max


@dataclass(frozen=True)
class ExponentialFactor:
    """The Metropolis acceptance factor ``exp(−ΔE/T)`` of the baselines."""

    floor_temperature: float = 1e-12

    def acceptance(self, delta_e, temperature) -> np.ndarray:
        """Acceptance probability for an energy increase at temperature T."""
        d = np.asarray(delta_e, dtype=np.float64)
        t = max(float(temperature), self.floor_temperature)
        return np.where(d <= 0.0, 1.0, np.exp(-np.maximum(d, 0.0) / t))

    def first_order(self, delta_e, temperature) -> np.ndarray:
        """The paper's linearisation ``1 − ΔE/T`` (Eq. 10), clipped to [0, 1]."""
        d = np.asarray(delta_e, dtype=np.float64)
        t = max(float(temperature), self.floor_temperature)
        return np.clip(1.0 - d / t, 0.0, 1.0)


def fit_fractional_factor(
    temperatures, targets, initial: FractionalFactor | None = None
) -> FractionalFactor:
    """Least-squares fit of ``a, b, c, d`` to target factor values.

    Used to re-derive the published parameters from the DG FeFET transfer
    curve (bench Fig 6c) and for the factor-parameter ablation.
    """
    t = np.asarray(temperatures, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64)
    if t.shape != y.shape or t.size < 4:
        raise ValueError("need matching arrays with at least 4 samples")
    guess = initial or FractionalFactor()
    x0 = np.array([guess.a, guess.b, guess.c, guess.d])

    def residual(params):
        a, b, c, d = params
        denom = b * t + c
        if np.any(np.abs(denom) < 1e-9):
            return np.full_like(t, 1e6)
        return a / denom + d - y

    fit = least_squares(residual, x0)
    a, b, c, d = fit.x
    return FractionalFactor(a=float(a), b=float(b), c=float(c), d=float(d))


class VbgEncoder:
    """The temperature encoder: T → quantised ``V_BG`` level (Fig 3c).

    Given the physical normalised transfer curve ``g(V_BG)`` of a '1' cell
    (``crossbar.factor`` or ``cell.normalized_factor``), the encoder picks,
    for each temperature, the 10 mV grid level whose ``g`` best matches the
    requested ``f(T)`` — i.e. it *inverts the device curve*, which is how the
    BG encoder mates the analytic factor to the array's real current.

    Parameters
    ----------
    factor:
        The analytic :class:`FractionalFactor` to realise.
    transfer:
        Callable ``g(v_bg) → normalised current``; identity-like default
        uses the factor's own linear V_BG map (ideal encoder).
    step / v_min / v_max:
        The DAC grid (defaults: the paper's 0 → 0.7 V, 10 mV).
    """

    def __init__(
        self,
        factor: FractionalFactor,
        transfer=None,
        step: float = VBG_STEP,
        v_min: float = VBG_MIN,
        v_max: float = VBG_MAX,
    ) -> None:
        check_positive("step", step)
        if v_max <= v_min:
            raise ValueError("v_max must exceed v_min")
        self.factor = factor
        self.levels = np.arange(v_min, v_max + step / 2.0, step)
        if transfer is None:
            # Ideal encoder: the linear map back through f itself.
            self._transfer_values = factor.value(factor.temperature_for_vbg(self.levels))
        else:
            self._transfer_values = np.array([float(transfer(v)) for v in self.levels])
        if np.any(np.diff(self._transfer_values) < -1e-6):
            raise ValueError("transfer curve must be non-decreasing in V_BG")

    @property
    def num_levels(self) -> int:
        """Number of grid levels (71 for the paper's range)."""
        return self.levels.size

    def encode(self, temperature: float) -> float:
        """Grid ``V_BG`` whose transfer value best matches ``f(T)``."""
        target = float(self.factor.value(np.asarray(float(temperature))))
        idx = int(np.argmin(np.abs(self._transfer_values - target)))
        return float(self.levels[idx])

    def realized_factor(self, temperature: float) -> float:
        """The factor value actually produced at the encoded level."""
        target = float(self.factor.value(np.asarray(float(temperature))))
        idx = int(np.argmin(np.abs(self._transfer_values - target)))
        return float(self._transfer_values[idx])

    def encoding_error(self, temperatures) -> np.ndarray:
        """|realised − requested| factor error over a temperature grid."""
        t = np.atleast_1d(np.asarray(temperatures, dtype=np.float64))
        return np.array(
            [abs(self.realized_factor(x) - float(self.factor.value(np.asarray(x)))) for x in t]
        )
