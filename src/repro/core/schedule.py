"""Temperature / back-gate schedules for the annealing flows.

The proposed annealer walks the back-gate voltage down a 10 mV grid
(Sec. 3.4): ``V_BG`` starts at 0.7 V, holds each level for a preset number
of iterations, and the run terminates when it reaches 0 V.  The direct-E
baselines use conventional temperature schedules (geometric by default).

All schedules map ``iteration → temperature``; the V_BG schedule also
exposes the voltage grid so the hardware machine can count DAC updates.
"""

from __future__ import annotations

import numpy as np

from repro.core.factors import FractionalFactor
from repro.devices.constants import VBG_MAX, VBG_MIN, VBG_STEP
from repro.utils.validation import check_positive


class Schedule:
    """Base interface: ``temperature(iteration)`` over a fixed length."""

    def __init__(self, iterations: int) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = int(iterations)

    def temperature(self, iteration: int) -> float:
        """Temperature at a (0-based) iteration index."""
        raise NotImplementedError

    def profile(self) -> np.ndarray:
        """The full temperature trace, length ``iterations``.

        The built-in schedules override this with a vectorised evaluation
        that is bit-identical to the per-iteration loop; this generic
        fallback keeps third-party subclasses working unchanged.
        """
        return np.array([self.temperature(i) for i in range(self.iterations)])


class ConstantSchedule(Schedule):
    """Fixed temperature — useful for equilibrium tests."""

    def __init__(self, iterations: int, temperature: float) -> None:
        super().__init__(iterations)
        self._t = float(temperature)
        if self._t < 0:
            raise ValueError("temperature must be >= 0")

    def temperature(self, iteration: int) -> float:
        self._check(iteration)
        return self._t

    def profile(self) -> np.ndarray:
        return np.full(self.iterations, self._t)

    def _check(self, iteration: int) -> None:
        if not 0 <= iteration < self.iterations:
            raise IndexError(f"iteration {iteration} outside schedule")


class GeometricSchedule(Schedule):
    """Classic SA cooling ``T_i = T_0 · α^i`` clipped below at ``t_end``."""

    def __init__(
        self, iterations: int, t_start: float, t_end: float, alpha: float | None = None
    ) -> None:
        super().__init__(iterations)
        check_positive("t_start", t_start)
        check_positive("t_end", t_end)
        if t_end > t_start:
            raise ValueError("t_end must not exceed t_start")
        self.t_start = float(t_start)
        self.t_end = float(t_end)
        if alpha is None:
            # Reach t_end exactly on the final iteration.
            span = max(self.iterations - 1, 1)
            alpha = (self.t_end / self.t_start) ** (1.0 / span)
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self._temps: np.ndarray | None = None

    def _temperatures(self) -> np.ndarray:
        # One vectorised evaluation shared by temperature() and profile():
        # numpy's pow and Python's ** can differ in the last ulp, so a
        # single cached array is the only way both access paths stay
        # bit-identical.  Built lazily; O(iterations) floats.
        if self._temps is None:
            powers = self.alpha ** np.arange(self.iterations)
            self._temps = np.maximum(self.t_start * powers, self.t_end)
        return self._temps

    def temperature(self, iteration: int) -> float:
        if not 0 <= iteration < self.iterations:
            raise IndexError(f"iteration {iteration} outside schedule")
        return float(self._temperatures()[iteration])

    def profile(self) -> np.ndarray:
        return self._temperatures().copy()


class LinearSchedule(Schedule):
    """Linear ramp from ``t_start`` down to ``t_end``."""

    def __init__(self, iterations: int, t_start: float, t_end: float = 0.0) -> None:
        super().__init__(iterations)
        if t_start < t_end:
            raise ValueError("t_start must be >= t_end")
        self.t_start = float(t_start)
        self.t_end = float(t_end)

    def temperature(self, iteration: int) -> float:
        if not 0 <= iteration < self.iterations:
            raise IndexError(f"iteration {iteration} outside schedule")
        if self.iterations == 1:
            return self.t_start
        frac = iteration / (self.iterations - 1)
        return self.t_start + (self.t_end - self.t_start) * frac

    def profile(self) -> np.ndarray:
        if self.iterations == 1:
            return np.array([self.t_start])
        frac = np.arange(self.iterations) / (self.iterations - 1)
        return self.t_start + (self.t_end - self.t_start) * frac


class VbgStepSchedule(Schedule):
    """The paper's tunable-BG schedule (Sec. 3.4).

    ``V_BG`` starts at ``v_start`` and steps down by ``step`` after every
    ``hold`` iterations ("T decreases only after a pre-set number of
    iterations"); once it reaches ``v_end`` it stays there for the remainder
    ("once V_BG reaches 0 V it remains at zero, terminating the annealing").
    Temperatures are recovered through the factor's linear V_BG ↔ T map.

    Parameters
    ----------
    iterations:
        Total annealing iterations.
    factor:
        The fractional factor providing the V_BG ↔ T correspondence.
    v_start / v_end / step:
        Grid walk parameters (defaults: 0.7 V → 0 V in 10 mV steps).
    hold:
        Iterations per level; default spreads the full walk evenly over the
        run so the last level is reached at the end.  When the run is
        shorter than the grid (``iterations < num_levels``) the default
        compresses the grid instead — ``iterations`` evenly spaced levels
        with the final one pinned to ``v_end`` — so every run, however
        short, still terminates at the terminal voltage as the paper's
        schedule contract requires ("terminates when V_BG reaches 0 V").
        An explicit ``hold`` takes the walk as given and may truncate.
    """

    def __init__(
        self,
        iterations: int,
        factor: FractionalFactor | None = None,
        v_start: float = VBG_MAX,
        v_end: float = VBG_MIN,
        step: float = VBG_STEP,
        hold: int | None = None,
    ) -> None:
        super().__init__(iterations)
        check_positive("step", step)
        if not v_end <= v_start:
            raise ValueError("v_start must be >= v_end")
        self.factor = factor or FractionalFactor()
        self.v_start = float(v_start)
        self.v_end = float(v_end)
        self.step = float(step)
        levels = int(round((self.v_start - self.v_end) / self.step)) + 1
        self.num_levels = max(levels, 1)
        if hold is None:
            if self.iterations < self.num_levels:
                # The walk cannot fit one iteration per grid level.  The
                # old default (hold = max(1, iterations // num_levels) = 1)
                # silently truncated the walk partway down, so a short run
                # never reached v_end.  Compress the grid instead: one
                # level per iteration, step scaled so the final level lands
                # exactly on v_end (a 1-iteration run sits at v_end).
                self.num_levels = self.iterations
                if self.num_levels > 1:
                    self.step = (self.v_start - self.v_end) / (self.num_levels - 1)
                else:
                    self.v_start = self.v_end
                hold = 1
            else:
                hold = self.iterations // self.num_levels
        if hold < 1:
            raise ValueError("hold must be >= 1")
        self.hold = int(hold)

    def vbg(self, iteration: int) -> float:
        """Back-gate voltage at a (0-based) iteration."""
        if not 0 <= iteration < self.iterations:
            raise IndexError(f"iteration {iteration} outside schedule")
        level = min(iteration // self.hold, self.num_levels - 1)
        return max(self.v_start - level * self.step, self.v_end)

    def temperature(self, iteration: int) -> float:
        return float(self.factor.temperature_for_vbg(self.vbg(iteration)))

    def vbg_profile(self) -> np.ndarray:
        """Full V_BG trace, length ``iterations`` (vectorised).

        Same level arithmetic as :meth:`vbg` evaluated array-wide —
        integer floor-divide, multiply, clamp — so it is bit-identical to
        the per-iteration loop.
        """
        level = np.minimum(
            np.arange(self.iterations) // self.hold, self.num_levels - 1
        )
        return np.maximum(self.v_start - level * self.step, self.v_end)

    def profile(self) -> np.ndarray:
        # temperature_for_vbg is a linear elementwise map, so evaluating it
        # on the whole V_BG trace is bit-identical to the scalar loop.
        return np.asarray(
            self.factor.temperature_for_vbg(self.vbg_profile()), dtype=np.float64
        )

    def dac_updates(self) -> int:
        """Number of BG rail reprogrammings over the run (level changes)."""
        profile = self.vbg_profile()
        return int(np.count_nonzero(np.diff(profile))) + 1  # +1 initial set


class ReverseVbgSchedule(VbgStepSchedule):
    """Metropolis-consistent variant: ``V_BG`` walks *up* from 0 V to 0.7 V.

    Under the published acceptance rule (reject uphill when
    ``E_inc > rand``), a rising factor suppresses uphill moves over time —
    matching conventional cooling.  Provided for the schedule-direction
    ablation (see DESIGN.md §2).
    """

    def vbg(self, iteration: int) -> float:
        if not 0 <= iteration < self.iterations:
            raise IndexError(f"iteration {iteration} outside schedule")
        level = min(iteration // self.hold, self.num_levels - 1)
        return min(self.v_end + level * self.step, self.v_start)

    def vbg_profile(self) -> np.ndarray:
        level = np.minimum(
            np.arange(self.iterations) // self.hold, self.num_levels - 1
        )
        return np.minimum(self.v_end + level * self.step, self.v_start)
