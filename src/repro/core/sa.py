"""Direct-E simulated annealing — the algorithm of the baseline annealers.

The CiM/FPGA and CiM/ASIC baselines (paper Fig 1b, Sec. 4) run conventional
SA: each iteration recomputes the *full* energy ``E_new = σ_newᵀJσ_new`` on
the crossbar (O(n²) product terms), takes ``ΔE = E_new − E`` in digital, and
accepts uphill moves with probability ``exp(−ΔE/T)`` evaluated on dedicated
exponent hardware [18].

This software reference computes ΔE with the cheap local-field identity
(mathematically identical — the O(n²) cost is a *hardware* property that
the architecture ledgers account for), counts the uphill proposals that
trigger ``e^x`` evaluations, and uses a standard auto-tuned geometric
cooling schedule.
"""

from __future__ import annotations

import numpy as np

from repro.core.coupling import coupling_ops
from repro.core.proposal import FlipSelector
from repro.core.results import AnnealResult
from repro.core.schedule import GeometricSchedule, Schedule
from repro.ising.model import IsingModel
from repro.ising.sparse import SparseIsingModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_count,
    check_permutation,
    check_spin_vector,
)


def estimate_temperature_range(
    model: IsingModel | SparseIsingModel,
    samples: int = 200,
    p_start: float = 0.8,
    p_end: float = 0.002,
    seed=None,
    permutation=None,
) -> tuple[float, float]:
    """Standard SA temperature auto-tuning.

    Samples single-flip |ΔE| from a random configuration and picks
    ``T_start``/``T_end`` so a mean uphill move is accepted with probability
    ``p_start`` at the beginning and ``p_end`` at the end.  When ``model``
    is a relabelled view (see :class:`DirectEAnnealer`'s ``permutation``),
    the configuration and sample indices are drawn in the original spin
    space and mapped through the permutation, so the estimate — and the
    RNG stream — match the unpermuted model's exactly.
    """
    if not 0 < p_end < p_start < 1:
        raise ValueError("need 0 < p_end < p_start < 1")
    rng = ensure_rng(seed)
    sigma = model.random_configuration(rng)
    idx = rng.integers(model.num_spins, size=samples)
    if permutation is not None:
        fwd, bwd = check_permutation(permutation, model.num_spins)
        sigma = sigma[bwd]
        idx = fwd[idx]
    g = model.local_fields(sigma)
    deltas = np.array(
        [model.delta_energy_single(sigma, int(i), g) for i in idx]
    )
    positive = np.abs(deltas[deltas != 0])
    mean_up = float(positive.mean()) if positive.size else 1.0
    t_start = mean_up / np.log(1.0 / p_start)
    t_end = mean_up / np.log(1.0 / p_end)
    return max(t_start, 1e-9), max(min(t_end, t_start), 1e-12)


class DirectEAnnealer:
    """Metropolis simulated annealing with the direct-E transformation.

    Parameters
    ----------
    model:
        The Ising model to minimise — dense
        :class:`~repro.ising.model.IsingModel` or
        :class:`~repro.ising.sparse.SparseIsingModel` backend.
    flips_per_iteration:
        Spins flipped per proposal (baselines use 1, the classic move).
    schedule:
        Cooling schedule; default is an auto-tuned geometric one.
    proposal:
        ``"random"`` (default — textbook Metropolis, as in the baseline
        annealers) or ``"scan"``.
    iteration_hook:
        Optional ``hook(iteration, delta_e, accepted, temperature)`` fired
        after each accept decision (hardware cost booking).
    permutation:
        Optional :class:`~repro.core.reorder.Permutation` declaring that
        ``model`` is a relabelled view of the caller's problem; proposals
        and the initial configuration are drawn in the original spin space
        and results are mapped back (see
        :class:`repro.core.annealer.InSituAnnealer`).
    track_best / record_trace / seed:
        As in :class:`repro.core.annealer.InSituAnnealer`.
    """

    name = "direct-E SA annealer"

    def __init__(
        self,
        model: IsingModel | SparseIsingModel,
        flips_per_iteration: int = 1,
        schedule: Schedule | None = None,
        proposal: str = "random",
        iteration_hook=None,
        permutation=None,
        track_best: bool = True,
        record_trace: bool = False,
        seed=None,
    ) -> None:
        self.model = model
        self.n = model.num_spins
        self._ops = coupling_ops(model)
        t = check_count("flips_per_iteration", flips_per_iteration)
        if t > self.n:
            raise ValueError(f"flips_per_iteration must be in [1, {self.n}]")
        self.flips_per_iteration = t
        self.schedule = schedule
        self.proposal = proposal
        self.iteration_hook = iteration_hook
        self.permutation = permutation
        if permutation is None:
            self._fwd = self._bwd = None
        else:
            self._fwd, self._bwd = check_permutation(permutation, self.n)
        self.track_best = bool(track_best)
        self.record_trace = bool(record_trace)
        self._rng = ensure_rng(seed)

    def _build_schedule(self, iterations: int) -> Schedule:
        if self.schedule is not None:
            if self.schedule.iterations != iterations:
                raise ValueError("schedule length does not match iterations")
            return self.schedule
        t_start, t_end = estimate_temperature_range(
            self.model, seed=self._rng, permutation=self.permutation
        )
        return GeometricSchedule(iterations, t_start, t_end)

    def run(self, iterations: int, initial=None) -> AnnealResult:
        """Execute the SA run and return the result."""
        iterations = check_count(
            "iterations", iterations,
            hint="the annealers need at least one proposal/accept step",
        )
        schedule = self._build_schedule(iterations)
        rng = self._rng
        ops = self._ops
        h = self.model.h
        t = self.flips_per_iteration
        has_fields = self.model.has_fields

        if initial is None:
            sigma = self.model.random_configuration(rng).astype(np.float64)
        else:
            sigma = check_spin_vector(initial, self.n).astype(np.float64)
        if self._bwd is not None:
            # Both the random draw and a caller-supplied `initial` are in
            # the original spin space; gather into the internal ordering.
            sigma = sigma[self._bwd]
        g = ops.local_fields(sigma)
        energy = float(sigma @ g + h @ sigma) + self.model.offset
        best_energy = energy
        best_sigma = sigma.copy()

        accepted = 0
        uphill_accepted = 0
        uphill_proposals = 0
        exponent_evaluations = 0
        trace = np.empty(iterations, dtype=np.float64) if self.record_trace else None
        best_trace = np.empty(iterations, dtype=np.float64) if self.record_trace else None
        selector = FlipSelector(self.n, t, self.proposal, rng, index_map=self._fwd)

        for it in range(iterations):
            temperature = schedule.temperature(it)
            flips = selector.next()
            sig_f = sigma[flips]
            cross = ops.cross_term(g, flips, sig_f)
            field_term = float(-(h[flips] * sig_f).sum()) if has_fields else 0.0
            delta_e = 4.0 * cross + 2.0 * field_term

            if delta_e <= 0.0:
                accept = True
            else:
                uphill_proposals += 1
                exponent_evaluations += 1
                accept = rng.random() < np.exp(-delta_e / max(temperature, 1e-12))
            if accept:
                accepted += 1
                if delta_e > 0:
                    uphill_accepted += 1
                ops.update_fields(g, flips, sig_f)
                sigma[flips] = -sig_f
                energy += delta_e
                if self.track_best and energy < best_energy:
                    best_energy = energy
                    best_sigma = sigma.copy()
            if self.iteration_hook is not None:
                self.iteration_hook(it, delta_e, accept, temperature)
            if trace is not None:
                trace[it] = energy
                best_trace[it] = best_energy

        if not self.track_best or energy < best_energy:
            best_energy = energy
            best_sigma = sigma.copy()
        if self._fwd is not None:
            # Hand configurations back in the caller's original ordering.
            sigma = sigma[self._fwd]
            best_sigma = best_sigma[self._fwd]
        return AnnealResult(
            solver=self.name,
            sigma=sigma.astype(np.int8),
            energy=energy,
            best_sigma=best_sigma.astype(np.int8),
            best_energy=best_energy,
            iterations=iterations,
            accepted=accepted,
            uphill_accepted=uphill_accepted,
            uphill_proposals=uphill_proposals,
            exponent_evaluations=exponent_evaluations,
            energy_trace=trace,
            best_trace=best_trace,
            metadata={"flips_per_iteration": t, "proposal": self.proposal},
        )
