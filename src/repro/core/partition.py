"""Multilevel min-cut partitioning sized to the crossbar tile grid.

PR 3's RCM pass closes the *banded* case: when an instance has a hidden
band, a bandwidth-reducing relabelling compacts its tile program.  But
community-structured (clustered) graphs have no good bandwidth ordering —
the community interconnect is an expander, and minimising ``max |i − j|``
is the wrong objective when the real hardware cost is the number of active
``tile_size``-square blocks the machine must program.  This module attacks
that count directly: partition the coupling graph into
``k = ceil(n / tile_size)`` balanced blocks of minimum edge cut, then lay
the blocks out contiguously so every block occupies exactly one tile row
band.  Intra-block couplings land on the ``k`` diagonal tiles; only
cut edges light additional tiles, so a min-cut partition is a
min-active-tile layout for clustered instances.

The partitioner is the classic multilevel scheme, pure numpy over the
:class:`~repro.ising.sparse.SparseIsingModel` CSR arrays (the dense
``(n, n)`` matrix is never formed):

1. **Coarsening** — heavy-edge matching: visit vertices in ascending
   degree order, match each with its unmatched neighbour of largest
   coupling magnitude (vertex-weight capped so coarse vertices stay
   packable), contract matched pairs and aggregate parallel edges, until
   the graph is a small multiple of ``k`` or shrinkage stalls.
2. **Initial partition** — greedy graph growing on the coarsest graph:
   grow each block from a minimum-degree seed, repeatedly absorbing the
   unassigned vertex with the strongest connection to the growing block,
   until the block reaches its weight target.
3. **Uncoarsening + refinement** — project the assignment back one level
   at a time and run boundary Fiduccia–Mattheyses passes: every boundary
   vertex's best move enters a max-gain bucket queue; moves are applied
   highest-gain first (negative gains allowed, so the pass can climb out
   of local minima), each mover is locked and its neighbours' gains are
   recomputed, and the pass rolls back to the best prefix seen.  At the
   finest level a rebalancing sweep restores the *exact* block sizes the
   tile grid requires.

The result is a :class:`Partitioning` (block assignment, edge cut,
balance, exact active-tile count) whose :meth:`~Partitioning.
to_permutation` exports a block-contiguous
:class:`~repro.core.reorder.Permutation` — fully compatible with PR 3's
transparency contract, so partitioned solves are bit-identical in the
caller's index space for exactly-representable couplings.

Everything is deterministic: no RNG is consumed anywhere, so the
``reorder="auto"`` scorer (exact active-tile count, RCM vs partition)
picks the same winner on every run.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.reorder import Permutation, _bandwidth_of
from repro.utils.validation import check_count

#: Stop coarsening once the graph has at most this many vertices per block.
COARSEN_VERTICES_PER_BLOCK = 8

#: Never coarsen below this many vertices regardless of the block count.
COARSEN_FLOOR = 64

#: Abandon coarsening when a level shrinks the graph by less than this.
COARSEN_STALL_RATIO = 0.95

#: Boundary-FM passes per uncoarsening level (each stops early when a
#: pass yields no gain).
REFINE_PASSES = 3

#: FM moves allowed past the best prefix before a pass gives up.
FM_STALL_LIMIT = 48


# ----------------------------------------------------------------------
# Weighted adjacency extraction
# ----------------------------------------------------------------------
def _weighted_adjacency(
    model,
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray, tuple[np.ndarray, np.ndarray]]:
    """``(n, indptr, indices, weights, structure)`` of the couplings.

    The adjacency weights are ``|J_ij|`` with the diagonal dropped — the
    cut objective cares about the presence and magnitude of a coupling,
    not its sign, and a self-coupling always lands on its own block's
    diagonal tile whatever the partition.  ``structure`` is the full
    stored-entry ``(rows, cols)`` set (diagonal included) for the
    exported permutation's exact tile-count prediction — extracted in the
    same single pass.  Sparse models hand over CSR directly; dense models
    scan ``np.nonzero``.
    """
    csr = getattr(model, "csr_arrays", None)
    if csr is not None:
        indptr, indices, data = csr()
        n = model.num_spins
        rows = np.repeat(np.arange(n, dtype=np.intp), np.diff(indptr))
    else:
        J = getattr(model, "J", None)
        if J is None:
            raise TypeError(
                f"expected an IsingModel or SparseIsingModel, got "
                f"{type(model).__name__}"
            )
        n = J.shape[0]
        rows, indices = np.nonzero(J)
        rows = rows.astype(np.intp)
        indices = indices.astype(np.intp)
        data = J[rows, indices]
    structure = (rows, indices)
    off = rows != indices
    rows, cols, w = rows[off], indices[off], np.abs(data[off])
    indptr = np.zeros(n + 1, dtype=np.intp)
    indptr[1:] = np.cumsum(np.bincount(rows, minlength=n))
    return n, indptr, cols, w, structure


# ----------------------------------------------------------------------
# Coarsening: heavy-edge matching
# ----------------------------------------------------------------------
def _heavy_edge_matching(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    vweights: np.ndarray,
    cap: int,
) -> np.ndarray:
    """Coarse-vertex map from one greedy heavy-edge matching sweep.

    Vertices are visited in ascending degree order (low-degree vertices
    have the fewest matching options, so they choose first); each
    unmatched vertex matches its unmatched neighbour of maximum coupling
    magnitude whose combined vertex weight stays within ``cap``.  Returns
    ``cmap`` with ``cmap[v]`` the coarse id of ``v`` — matched pairs share
    an id, ids are dense and ordered by each group's minimum member.
    """
    n = vweights.shape[0]
    match = np.full(n, -1, dtype=np.intp)
    order = np.argsort(np.diff(indptr), kind="stable")
    for v in order:
        if match[v] >= 0:
            continue
        lo, hi = indptr[v], indptr[v + 1]
        nbrs = indices[lo:hi]
        ok = (match[nbrs] < 0) & (nbrs != v) & (
            vweights[nbrs] + vweights[v] <= cap
        )
        if not ok.any():
            match[v] = v
            continue
        cand = nbrs[ok]
        # Heaviest edge first, smallest vertex id as the tie-break.
        pick = cand[np.lexsort((cand, -weights[lo:hi][ok]))[0]]
        match[v] = pick
        match[pick] = v
    rep = np.minimum(np.arange(n, dtype=np.intp), match)
    reps = np.unique(rep)
    cmap = np.searchsorted(reps, rep).astype(np.intp)
    return cmap


def _contract(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    vweights: np.ndarray,
    cmap: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Build the coarse graph induced by ``cmap`` (parallel edges summed)."""
    nc = int(cmap.max()) + 1 if cmap.size else 0
    n = vweights.shape[0]
    rows = np.repeat(np.arange(n, dtype=np.intp), np.diff(indptr))
    cu, cv = cmap[rows], cmap[indices]
    keep = cu != cv  # contracted pairs' internal edges disappear
    key = cu[keep] * nc + cv[keep]
    uniq, inv = np.unique(key, return_inverse=True)
    w = np.bincount(inv, weights=weights[keep], minlength=uniq.size)
    c_rows = (uniq // nc).astype(np.intp)
    c_cols = (uniq % nc).astype(np.intp)
    c_indptr = np.zeros(nc + 1, dtype=np.intp)
    c_indptr[1:] = np.cumsum(np.bincount(c_rows, minlength=nc))
    c_vweights = np.bincount(cmap, weights=vweights, minlength=nc).astype(
        np.intp
    )
    return c_indptr, c_cols, w, c_vweights


# ----------------------------------------------------------------------
# Initial partition: greedy graph growing
# ----------------------------------------------------------------------
def _greedy_grow(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    vweights: np.ndarray,
    targets: np.ndarray,
) -> np.ndarray:
    """Grow ``len(targets)`` blocks to their weight targets, greedily.

    The first block starts from the unassigned vertex of minimum weighted
    degree; every block repeatedly absorbs the unassigned vertex with the
    largest total connection to everything assigned so far (smallest
    index on ties; a fresh minimum-degree seed when the frontier is empty
    — disconnected components).  The frontier is *not* reset between
    blocks, so the growth is one continuous sweep: a cluster entered by
    block ``b`` is finished by blocks ``b+1, b+2, …`` before the sweep
    moves on, keeping every cluster in a few consecutive blocks instead
    of being scavenged piecemeal by far-apart ones.  A block stops
    growing once its weight reaches its target; the final block absorbs
    the remainder.
    """
    n = vweights.shape[0]
    k = targets.shape[0]
    assign = np.full(n, -1, dtype=np.intp)
    wdegree = np.zeros(n, dtype=np.float64)
    np.add.at(
        wdegree, np.repeat(np.arange(n, dtype=np.intp), np.diff(indptr)), weights
    )
    conn = np.zeros(n, dtype=np.float64)
    unassigned = np.ones(n, dtype=bool)
    left = n
    # Candidate selection runs off a lazy max-heap keyed by (−conn, index):
    # conn only ever grows during the sweep, so an entry is current exactly
    # when its stored value matches conn[v], and every update pushes a
    # fresh entry — O(nnz log n) overall instead of an O(n) argmax per
    # absorbed vertex.  The (−conn, v) ordering reproduces the argmax
    # tie-break (largest connection, smallest index) exactly.
    heap: list[tuple[float, int]] = []
    seed_order = np.argsort(wdegree, kind="stable")
    seed_ptr = 0
    for b in range(k - 1):
        if left == 0:
            break
        grown = 0
        while grown < targets[b] and left > 0:
            remaining = targets[b] - grown
            v = -1
            stash: list[tuple[float, int]] = []
            while heap:
                negc, u = heap[0]
                if not unassigned[u] or -negc != conn[u]:
                    heapq.heappop(heap)  # stale entry
                    continue
                if vweights[u] > remaining:
                    # Strongest-connected candidate that doesn't fit the
                    # block — set it aside; it stays eligible later.
                    stash.append(heapq.heappop(heap))
                    continue
                v = u
                heapq.heappop(heap)
                break
            if v < 0 and stash:
                # Nothing on the frontier fits: overshoot with the
                # strongest-connected live candidate (first stashed).
                v = stash.pop(0)[1]
            for entry in stash:
                heapq.heappush(heap, entry)
            if v < 0:
                # Frontier empty (seed, or a fresh component): the
                # unassigned vertex of minimum weighted degree.
                while seed_ptr < n and not unassigned[seed_order[seed_ptr]]:
                    seed_ptr += 1
                v = int(seed_order[seed_ptr])
            assign[v] = b
            unassigned[v] = False
            left -= 1
            grown += int(vweights[v])
            lo, hi = indptr[v], indptr[v + 1]
            nbr = indices[lo:hi]
            np.add.at(conn, nbr, weights[lo:hi])
            for u in nbr:
                if unassigned[u]:
                    heapq.heappush(heap, (-conn[u], int(u)))
    assign[unassigned] = k - 1
    return assign


# ----------------------------------------------------------------------
# Refinement: boundary FM with gain buckets
# ----------------------------------------------------------------------
class _GainBuckets:
    """Max-gain bucket queue with lazy invalidation.

    Entries are ``(vertex, target_block, stamp)`` grouped into buckets by
    exact gain value; a heap over the bucket keys serves the maximum-gain
    bucket in O(log #gains).  Stale entries (vertex re-stamped or locked
    since push) are discarded by the caller on pop — the classic FM
    bucket structure, generalised to float gains.
    """

    def __init__(self) -> None:
        self._buckets: dict[float, list[tuple[int, int, int]]] = {}
        self._heap: list[float] = []

    def push(self, gain: float, vertex: int, target: int, stamp: int) -> None:
        bucket = self._buckets.get(gain)
        if bucket is None:
            self._buckets[gain] = bucket = []
            heapq.heappush(self._heap, -gain)
        bucket.append((vertex, target, stamp))

    def pop(self) -> tuple[float, int, int, int] | None:
        """Highest-gain entry (LIFO within a bucket), or ``None``."""
        while self._heap:
            gain = -self._heap[0]
            bucket = self._buckets.get(gain)
            if bucket:
                return (gain,) + bucket.pop()
            heapq.heappop(self._heap)
            self._buckets.pop(gain, None)
        return None


def _pair_counts(
    indptr: np.ndarray,
    indices: np.ndarray,
    assign: np.ndarray,
    k: int,
) -> dict[tuple[int, int], int]:
    """Edge count per unordered block pair — the active-tile bookkeeping.

    ``M[(a, b)]`` (``a <= b``) is the number of couplings between blocks
    ``a`` and ``b``; a pair is an active tile pair exactly while its
    count is positive.  Kept as a dict so the cost stays O(active pairs),
    never O(k²).
    """
    n = assign.shape[0]
    rows = np.repeat(np.arange(n, dtype=np.intp), np.diff(indptr))
    half = rows < indices  # each undirected coupling once
    a = assign[rows[half]]
    b = assign[indices[half]]
    keys = np.minimum(a, b) * k + np.maximum(a, b)
    uniq, counts = np.unique(keys, return_counts=True)
    return {
        (int(q) // k, int(q) % k): int(c) for q, c in zip(uniq, counts)
    }


def _vertex_conn(
    v: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    assign: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(blocks, counts, weight_sums)`` of v's neighbourhood by block.

    Two bincount scatters over the vertex's neighbour list: O(degree + k)
    with a small constant — the fastest form for the realistic regime
    where the block count ``k`` is at most a few thousand (tile sides
    ≥ 64 at the 100k-node scale).
    """
    lo, hi = indptr[v], indptr[v + 1]
    blocks = assign[indices[lo:hi]]
    cnt = np.bincount(blocks, minlength=k)
    wsum = np.bincount(blocks, weights=weights[lo:hi], minlength=k)
    uniq = np.flatnonzero(cnt)
    return uniq, cnt[uniq], wsum[uniq]


def _tile_delta(
    own: int,
    target: int,
    nb_blocks: np.ndarray,
    nb_counts: np.ndarray,
    M: dict[tuple[int, int], int],
) -> int:
    """Active-tile gain of moving a vertex ``own`` → ``target``.

    ``nb_blocks``/``nb_counts`` describe the vertex's neighbour blocks;
    the move shifts every incident coupling from an ``(own, D)`` pair to
    a ``(target, D)`` pair.  The gain is the number of tile slots whose
    pair count drops to zero minus the number newly raised from zero
    (off-diagonal pairs weigh 2 — both triangles are programmed).
    """
    delta: dict[tuple[int, int], int] = {}
    for D, c in zip(nb_blocks, nb_counts):
        D, c = int(D), int(c)
        ka = (own, D) if own <= D else (D, own)
        kb = (target, D) if target <= D else (D, target)
        delta[ka] = delta.get(ka, 0) - c
        delta[kb] = delta.get(kb, 0) + c
    gain = 0
    for key, d in delta.items():
        if d == 0:
            continue
        before = M.get(key, 0)
        after = before + d
        weight = 1 if key[0] == key[1] else 2
        if before > 0 and after == 0:
            gain += weight
        elif before == 0 and after > 0:
            gain -= weight
    return gain


def _apply_move(
    v: int,
    target: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    assign: np.ndarray,
    M: dict[tuple[int, int], int],
) -> None:
    """Reassign ``v`` to ``target`` and keep the pair counts exact.

    Must be called *before* mutating ``assign[v]`` elsewhere; applying the
    reverse move (in reverse order) restores ``M`` bit for bit, which is
    what the FM rollback relies on.
    """
    own = int(assign[v])
    lo, hi = indptr[v], indptr[v + 1]
    blocks = assign[indices[lo:hi]]
    uniq, counts = np.unique(blocks, return_counts=True)
    for D, c in zip(uniq, counts):
        D, c = int(D), int(c)
        ka = (own, D) if own <= D else (D, own)
        kb = (target, D) if target <= D else (D, target)
        M[ka] = M.get(ka, 0) - c
        if M[ka] == 0:
            del M[ka]
        M[kb] = M.get(kb, 0) + c
        if M[kb] == 0:
            del M[kb]
    assign[v] = target


#: Secondary-objective weight: the edge-cut tie-break is squashed into
#: (−0.5, 0.5) so it can order moves of equal tile gain but never
#: override a tile-count difference.
_TIE_BREAK_SCALE = 0.5


def _best_move(
    v: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    assign: np.ndarray,
    vweights: np.ndarray,
    block_weight: np.ndarray,
    caps: np.ndarray,
    M: dict[tuple[int, int], int],
) -> tuple[float, int] | None:
    """``(gain, target)`` of v's best feasible move, or ``None``.

    The primary gain is the *active-tile* reduction (:func:`_tile_delta`
    — the tiled machine's true cost); the squashed edge-cut improvement
    breaks ties, so of two tile-neutral moves the one that concentrates
    coupling weight wins (those are the moves that later kill a pair).
    Only boundary moves are produced (the target must hold at least one
    of v's neighbours) and only into blocks with spare capacity; the
    lowest block id wins residual ties.
    """
    if indptr[v] == indptr[v + 1]:
        return None
    nb_blocks, nb_counts, nb_wsums = _vertex_conn(
        v, indptr, indices, weights, assign, block_weight.shape[0]
    )
    own = int(assign[v])
    own_pos = np.searchsorted(nb_blocks, own)
    w_own = (
        float(nb_wsums[own_pos])
        if own_pos < nb_blocks.size and nb_blocks[own_pos] == own
        else 0.0
    )
    best: tuple[float, int] | None = None
    for i, B in enumerate(nb_blocks):
        B = int(B)
        if B == own or block_weight[B] + vweights[v] > caps[B]:
            continue
        wgain = float(nb_wsums[i]) - w_own
        gain = _tile_delta(own, B, nb_blocks, nb_counts, M) + (
            _TIE_BREAK_SCALE * (wgain / (1.0 + abs(wgain)))
        )
        if best is None or gain > best[0]:
            best = (gain, B)
    return best


def _fm_pass(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    vweights: np.ndarray,
    assign: np.ndarray,
    block_weight: np.ndarray,
    caps: np.ndarray,
    M: dict[tuple[int, int], int],
) -> float:
    """One boundary Fiduccia–Mattheyses pass; returns the realised gain.

    Applies moves highest-gain first (negative gains allowed, so the pass
    can climb through tile-neutral territory), locking each mover and
    re-queueing its neighbours, and rolls ``assign`` — and the pair
    counts ``M`` — back to the best prefix seen.  Block weights never
    exceed ``caps``.
    """
    n = assign.shape[0]
    stamp = np.zeros(n, dtype=np.int64)
    locked = np.zeros(n, dtype=bool)
    buckets = _GainBuckets()

    def requeue(v: int) -> None:
        move = _best_move(
            v, indptr, indices, weights, assign, vweights, block_weight,
            caps, M,
        )
        if move is not None:
            buckets.push(move[0], v, move[1], int(stamp[v]))

    # Only boundary vertices can move; find them in one vectorised sweep
    # instead of probing all n (interior vertices would all return None).
    rows = np.repeat(np.arange(n, dtype=np.intp), np.diff(indptr))
    for v in np.unique(rows[assign[rows] != assign[indices]]):
        requeue(int(v))
    moves: list[tuple[int, int, int]] = []
    # Prefix quality is tracked lexicographically — tile gain first, the
    # edge-cut tie-break strictly second — so a run of tie-break-positive
    # moves can never outvote a net tile loss into the kept prefix.
    tiles = 0
    tie = 0.0
    best_tiles = 0
    best_tie = 0.0
    best_len = 0
    while True:
        entry = buckets.pop()
        if entry is None:
            break
        _, v, target, st = entry
        if locked[v] or st != stamp[v]:
            continue
        if block_weight[target] + vweights[v] > caps[target]:
            # Target filled up since the push; the recomputed best move is
            # feasibility-checked, so this cannot spin on a full block.
            stamp[v] += 1
            requeue(v)
            continue
        frm = int(assign[v])
        # The queued gain orders the pops but may be stale (pair counts
        # shift under moves of non-adjacent vertices), so the prefix
        # ledger books the delta recomputed against the *current* M —
        # that keeps the rollback invariant exact.
        nb_blocks, nb_counts, nb_wsums = _vertex_conn(
            v, indptr, indices, weights, assign, block_weight.shape[0]
        )
        move_tiles = _tile_delta(frm, target, nb_blocks, nb_counts, M)
        wgain = 0.0
        for i, B in enumerate(nb_blocks):
            if B == target:
                wgain += float(nb_wsums[i])
            elif B == frm:
                wgain -= float(nb_wsums[i])
        _apply_move(v, target, indptr, indices, assign, M)
        block_weight[frm] -= vweights[v]
        block_weight[target] += vweights[v]
        locked[v] = True
        moves.append((v, frm, target))
        tiles += move_tiles
        tie += _TIE_BREAK_SCALE * (wgain / (1.0 + abs(wgain)))
        if tiles > best_tiles or (tiles == best_tiles and tie > best_tie):
            best_tiles = tiles
            best_tie = tie
            best_len = len(moves)
        if len(moves) - best_len > FM_STALL_LIMIT:
            break
        lo, hi = indptr[v], indptr[v + 1]
        for u in indices[lo:hi]:
            if locked[u]:
                continue
            stamp[u] += 1
            requeue(int(u))
    # Undo in reverse order so each reverse move sees the assignment state
    # it was originally applied under — that makes the pair-count rollback
    # exact.
    for v, frm, _ in reversed(moves[best_len:]):
        block_weight[assign[v]] -= vweights[v]
        block_weight[frm] += vweights[v]
        _apply_move(v, frm, indptr, indices, assign, M)
    return best_tiles + best_tie


def _best_drain_move(
    v: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    assign: np.ndarray,
    sizes: np.ndarray,
    targets: np.ndarray,
    M: dict[tuple[int, int], int],
) -> tuple[float, int] | None:
    """Best over→under move for ``v``; ``None`` if its block isn't over-full.

    Same gain as :func:`_best_move` (tile delta + squashed cut
    tie-break), but targets are restricted to under-full blocks.  When no
    under-full block touches ``v``'s neighbourhood, the lowest-id
    under-full block is evaluated anyway — draining must always be able
    to make progress.
    """
    own = int(assign[v])
    if sizes[own] <= targets[own]:
        return None
    nb_blocks, nb_counts, nb_wsums = _vertex_conn(
        v, indptr, indices, weights, assign, sizes.shape[0]
    )
    own_pos = np.searchsorted(nb_blocks, own)
    w_own = (
        float(nb_wsums[own_pos])
        if own_pos < nb_blocks.size and nb_blocks[own_pos] == own
        else 0.0
    )
    best: tuple[float, int] | None = None
    for i, B in enumerate(nb_blocks):
        B = int(B)
        if B == own or sizes[B] >= targets[B]:
            continue
        wgain = float(nb_wsums[i]) - w_own
        gain = _tile_delta(own, B, nb_blocks, nb_counts, M) + (
            _TIE_BREAK_SCALE * (wgain / (1.0 + abs(wgain)))
        )
        if best is None or gain > best[0]:
            best = (gain, B)
    if best is None:
        under = np.flatnonzero(sizes < targets)
        if under.size == 0:
            return None
        B = int(under[0])
        wgain = -w_own
        best = (
            _tile_delta(own, B, nb_blocks, nb_counts, M)
            + _TIE_BREAK_SCALE * (wgain / (1.0 + abs(wgain))),
            B,
        )
    return best


def _rebalance_exact(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    assign: np.ndarray,
    targets: np.ndarray,
    M: dict[tuple[int, int], int],
) -> None:
    """Restore the exact block sizes the tile grid requires (finest level).

    Drains over-full blocks into under-full ones, always applying the
    least-damaging move first — the same tile-delta gain the FM pass
    maximises, served from the same gain buckets, so a community whose
    blocks ended slightly over target slides its surplus into its *own*
    under-full partner block instead of scattering it across the grid.
    Every move shrinks the total overflow by one, so the drain terminates
    with ``sizes == targets`` exactly.
    """
    k = targets.shape[0]
    sizes = np.bincount(assign, minlength=k)
    n = assign.shape[0]
    stamp = np.zeros(n, dtype=np.int64)
    while int(np.sum(np.maximum(sizes - targets, 0))) > 0:
        buckets = _GainBuckets()
        moved = False
        for v in np.flatnonzero(sizes[assign] > targets[assign]):
            move = _best_drain_move(
                int(v), indptr, indices, weights, assign, sizes, targets, M
            )
            if move is not None:
                buckets.push(move[0], int(v), move[1], int(stamp[v]))
        while True:
            entry = buckets.pop()
            if entry is None:
                break
            _, v, target, st = entry
            if st != stamp[v]:
                continue
            own = int(assign[v])
            if sizes[own] <= targets[own] or sizes[target] >= targets[target]:
                # The world changed since the push — requeue afresh.
                stamp[v] += 1
                move = _best_drain_move(
                    v, indptr, indices, weights, assign, sizes, targets, M
                )
                if move is not None:
                    buckets.push(move[0], v, move[1], int(stamp[v]))
                continue
            _apply_move(v, target, indptr, indices, assign, M)
            sizes[own] -= 1
            sizes[target] += 1
            moved = True
            lo, hi = indptr[v], indptr[v + 1]
            for u in indices[lo:hi]:
                u = int(u)
                stamp[u] += 1
                move = _best_drain_move(
                    u, indptr, indices, weights, assign, sizes, targets, M
                )
                if move is not None:
                    buckets.push(move[0], u, move[1], int(stamp[u]))
        if not moved:  # pragma: no cover - defensive; a move always exists
            break


# ----------------------------------------------------------------------
# The Partitioning object
# ----------------------------------------------------------------------
class Partitioning:
    """A balanced block assignment of the spins, sized to the tile grid.

    Parameters
    ----------
    assignment:
        Length-``n`` integer array mapping spin → block id in
        ``[0, num_blocks)``.
    tile_size:
        Tile side the partition is sized to; ``num_blocks`` is
        ``ceil(n / tile_size)`` and every block except the last holds
        exactly ``tile_size`` spins.
    edge_cut:
        Total ``|J_ij|`` over couplings crossing blocks (each undirected
        pair once).
    structure:
        ``(rows, cols)`` arrays of the stored coupling entries in the
        original labelling (diagonal included) — carried into the
        exported permutation for exact tile-count prediction.
    """

    def __init__(
        self,
        assignment: np.ndarray,
        tile_size: int,
        edge_cut: float,
        structure: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        assignment = np.asarray(assignment, dtype=np.intp)
        if assignment.ndim != 1 or assignment.size == 0:
            raise ValueError("assignment must be a non-empty 1-D array")
        self.tile_size = check_count(
            "tile_size", tile_size,
            hint="the partition is sized to the tile grid",
        )
        n = assignment.shape[0]
        self.num_blocks = -(-n // self.tile_size)
        if assignment.min() < 0 or assignment.max() >= self.num_blocks:
            raise ValueError(
                f"block ids must lie in [0, {self.num_blocks})"
            )
        self.assignment = assignment
        self.edge_cut = float(edge_cut)
        self._structure = structure
        self._permutation: Permutation | None = None

    @property
    def n(self) -> int:
        """Number of spins partitioned."""
        return self.assignment.shape[0]

    def block_sizes(self) -> np.ndarray:
        """Spins per block, length ``num_blocks``."""
        return np.bincount(self.assignment, minlength=self.num_blocks)

    def block_targets(self) -> np.ndarray:
        """The tile-aligned size every block must hold exactly."""
        targets = np.full(self.num_blocks, self.tile_size, dtype=np.intp)
        targets[-1] = self.n - (self.num_blocks - 1) * self.tile_size
        return targets

    @property
    def balance(self) -> float:
        """Largest block size over its target (1.0 = perfectly balanced)."""
        return float(np.max(self.block_sizes() / self.block_targets()))

    @property
    def is_tile_aligned(self) -> bool:
        """Whether every block holds exactly its tile-aligned target."""
        return bool(np.array_equal(self.block_sizes(), self.block_targets()))

    def to_permutation(self) -> Permutation:
        """The block-contiguous layout: block ``b`` occupies positions
        ``[b·tile_size, b·tile_size + size_b)``.

        Spins keep their original relative order within a block, so the
        map is deterministic.  The returned
        :class:`~repro.core.reorder.Permutation` carries the coupling
        structure, making :meth:`Permutation.estimated_active_tiles`
        exact, and obeys the same transparency contract as every other
        reordering (solves stay bit-identical in the caller's index
        space for exactly-representable couplings).
        """
        if self._permutation is not None:
            return self._permutation
        if not self.is_tile_aligned:
            raise ValueError(
                "partition blocks are not tile-aligned; sizes "
                f"{self.block_sizes().tolist()} vs targets "
                f"{self.block_targets().tolist()}"
            )
        order = np.argsort(self.assignment, kind="stable")
        forward = np.empty(self.n, dtype=np.intp)
        forward[order] = np.arange(self.n, dtype=np.intp)
        bw_before = bw_after = None
        if self._structure is not None:
            rows, cols = self._structure
            bw_before = _bandwidth_of(rows, cols)
            bw_after = _bandwidth_of(forward[rows], forward[cols])
        self._permutation = Permutation(
            forward,
            bandwidth_before=bw_before,
            bandwidth_after=bw_after,
            structure=self._structure,
            strategy="partition",
        )
        return self._permutation

    def estimated_active_tiles(self, tile_size: int | None = None) -> int:
        """Tiles a :class:`TiledCrossbar` instantiates under this layout.

        Exact by the same construction as
        :meth:`Permutation.estimated_active_tiles` (both count the
        nonzero-block set of the stored entries); defaults to the tile
        size the partition was built for.
        """
        s = self.tile_size if tile_size is None else check_count(
            "tile_size", tile_size
        )
        return self.to_permutation().estimated_active_tiles(s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Partitioning(n={self.n}, blocks={self.num_blocks}, "
            f"tile_size={self.tile_size}, edge_cut={self.edge_cut:g}, "
            f"balance={self.balance:.3f})"
        )


# ----------------------------------------------------------------------
# The multilevel driver
# ----------------------------------------------------------------------
def _edge_cut(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    assign: np.ndarray,
) -> float:
    """Total |J| over cut couplings (both triangles stored → halve)."""
    n = assign.shape[0]
    rows = np.repeat(np.arange(n, dtype=np.intp), np.diff(indptr))
    return float(weights[assign[rows] != assign[indices]].sum() / 2.0)


def partition_model(model, tile_size: int) -> Partitioning:
    """Multilevel min-cut partition of a coupling graph, tile-aligned.

    Runs the full coarsen → grow → refine pipeline described in the
    module docstring and returns a :class:`Partitioning` whose blocks
    hold exactly ``tile_size`` spins each (the last block takes the
    remainder).  Deterministic — repeated calls return the identical
    assignment.
    """
    s = check_count("tile_size", tile_size)
    n, indptr, indices, weights, structure = _weighted_adjacency(model)
    if n == 0:
        raise ValueError("model has no spins; nothing to partition")
    k = -(-n // s)
    if k <= 1:
        return Partitioning(
            np.zeros(n, dtype=np.intp), s,
            edge_cut=0.0, structure=structure,
        )
    targets = np.full(k, s, dtype=np.intp)
    targets[-1] = n - (k - 1) * s

    # --- coarsen -------------------------------------------------------
    levels: list[tuple[np.ndarray, ...]] = []
    cur = (indptr, indices, weights, np.ones(n, dtype=np.intp))
    goal = max(COARSEN_FLOOR, COARSEN_VERTICES_PER_BLOCK * k)
    # A tight weight cap (coarse vertices hold at most tile_size/32 fine
    # spins) keeps the coarse granularity fine enough for the growing
    # pass to tile cluster boundaries onto block targets exactly, instead
    # of leaking blob-sized remnants into far-away blocks (measured at
    # ~15-30% of the final tile count with an 8× coarser cap).
    cap = max(2, s // 32)
    while cur[3].shape[0] > goal:
        cmap = _heavy_edge_matching(*cur, cap=cap)
        nc = int(cmap.max()) + 1
        if nc > COARSEN_STALL_RATIO * cur[3].shape[0]:
            break
        levels.append(cur + (cmap,))
        cur = _contract(*cur, cmap=cmap)

    # --- initial partition on the coarsest graph -----------------------
    assign = _greedy_grow(*cur, targets=targets)

    # --- uncoarsen + refine --------------------------------------------
    chain = levels[::-1]
    for level in [None] + chain:
        if level is not None:
            # Project onto the next finer graph: a fine vertex inherits
            # its coarse representative's block.
            fine_indptr, fine_indices, fine_weights, fine_vw, cmap = level
            assign = assign[cmap]
            cur = (fine_indptr, fine_indices, fine_weights, fine_vw)
        # The balance slack must admit moving this level's heaviest vertex,
        # or coarse-level refinement is a no-op; the excess is worked off
        # as the vertices get finer, and the finest level ends exact.
        slack = max(s // 16, 2 * int(cur[3].max()))
        caps = targets + slack
        block_weight = np.bincount(
            assign, weights=cur[3], minlength=k
        ).astype(np.intp)
        M = _pair_counts(cur[0], cur[1], assign, k)
        for _ in range(REFINE_PASSES):
            gained = _fm_pass(
                cur[0], cur[1], cur[2], cur[3], assign, block_weight, caps, M
            )
            if gained <= 0.0:
                break

    # --- exact tile alignment at the finest level ----------------------
    # M is the finest level's pair-count state after the last FM pass.
    _rebalance_exact(indptr, indices, weights, assign, targets, M)
    return Partitioning(
        assign, s,
        edge_cut=_edge_cut(indptr, indices, weights, assign),
        structure=structure,
    )


def partition_permutation(model, tile_size: int) -> Permutation:
    """The block-contiguous min-cut layout of ``model`` in one call.

    Convenience wrapper: :func:`partition_model` followed by
    :meth:`Partitioning.to_permutation` — what the ``reorder="partition"``
    knob resolves to.
    """
    return partition_model(model, tile_size).to_permutation()
