"""High-level solve API: one call from problem to solution.

These wrappers pick reasonable defaults for the solver families
(in-situ fractional, direct-E SA, MESA, simulated bifurcation), validate
their inputs at the boundary (so misuse fails with an actionable message
instead of deep inside an annealer loop), run them, and translate
energies back into problem-domain quantities (cut values for Max-Cut).

Since the compile/execute split, each call is literally
``compile_plan(...)`` + ``plan.execute(...)`` from
:mod:`repro.core.plan` — every expensive setup step (backend promotion,
the reorder/partition layout race, ancilla fold, quantization, tile
programming) lives in the plan compiler, and callers who solve one
instance repeatedly should hold the :class:`~repro.core.plan.SolvePlan`
(or a :class:`~repro.core.plan.PlanCache`) and re-execute it instead of
paying compilation per call.

Coupling backends
-----------------
Every solver family accepts any coupling backend — the dense
:class:`~repro.ising.model.IsingModel`, the CSR
:class:`~repro.ising.sparse.SparseIsingModel`, or the bit-packed
sign-only :class:`~repro.ising.packed.PackedIsingModel` — transparently.
The ``backend`` knob on :func:`solve_ising` / :func:`solve_maxcut`
converts on the way in: ``"dense"`` / ``"sparse"`` / ``"packed"`` force a
representation, ``"auto"`` applies the density-threshold heuristic of
:func:`repro.ising.sparse.recommended_backend` (sparse from
``SPARSE_MIN_SPINS`` spins up when the pair density is at most
``SPARSE_DENSITY_THRESHOLD``, promoted to packed when all couplings share
one ±magnitude).  For integer or dyadic-rational couplings —
which includes every ±1-weighted G-set instance, where ``J = W/4`` — all
floating-point sums are exact and fixed-seed trajectories coincide bit for
bit across backends.  For arbitrary float couplings the backends compute
the same mathematics in different summation orders, so individual
accept decisions (and hence trajectories) may diverge; pass an explicit
``backend`` when exact run-to-run reproducibility across releases matters
for such models.
"""

from __future__ import annotations

from repro.core.batch import BatchAnnealResult, BatchMaxCutResult
from repro.core.plan import (  # noqa: F401  (re-exported: historical home)
    SOLVE_METHODS,
    _check_solve_args,
    compile_plan,
)
from repro.core.results import AnnealResult, MaxCutResult
from repro.ising.maxcut import MaxCutProblem
from repro.ising.model import IsingModel
from repro.ising.sparse import SparseIsingModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_real


def solve_ising(
    model: IsingModel | SparseIsingModel,
    method: str = "insitu",
    iterations: int = 1000,
    seed=None,
    backend: str | None = None,
    tile_size: int | None = None,
    reorder: str | None = None,
    replicas: int | None = None,
    **solver_kwargs,
) -> AnnealResult | BatchAnnealResult:
    """Minimise an Ising model with the selected annealer.

    A thin wrapper over the compile/execute split: the call compiles a
    :class:`~repro.core.plan.SolvePlan` and executes it once.  To solve
    the same instance many times, call
    :func:`~repro.core.plan.compile_plan` yourself (or go through a
    :class:`~repro.core.plan.PlanCache`) and re-execute the plan — the
    results are bit-identical to repeated ``solve_ising`` calls for
    exactly-representable couplings, without re-paying setup.

    Parameters
    ----------
    model:
        The model to minimise — either coupling backend.
    method:
        ``"insitu"`` (the paper's flow), ``"sa"`` (direct-E Metropolis
        baseline), ``"mesa"`` (multi-epoch SA of ref [7]) or ``"sb"``
        (ballistic/discrete simulated bifurcation,
        :class:`~repro.core.sb.SbEngine` — one coupling matvec per step;
        pass ``variant="ballistic"`` for bSB, default is dSB).
    iterations:
        Annealing iterations (must be >= 1; validated here so the error is
        raised at the API boundary).
    seed:
        RNG seed.  One generator is threaded through plan compilation
        (crossbar programming, when it draws at all) and execution, so a
        fixed seed reproduces the historical single-phase trajectories
        exactly.
    backend:
        Optional coupling-backend override: ``"dense"``, ``"sparse"``,
        ``"packed"`` or ``"auto"`` (density heuristic with sign-only
        promotion).  ``None`` (default) keeps the model's current
        representation — ``solve_ising`` takes an already-built Ising
        model, so whoever built it chose a backend on purpose and a
        default conversion would silently override that choice.  (This
        deliberately diverges from :func:`solve_maxcut`, which *builds*
        the model and therefore defaults to ``backend="auto"``.)  The
        resolved representation is reported by
        :meth:`SolvePlan.summary() <repro.core.plan.SolvePlan.summary>`.
        Choose sparse for large low-density instances (packed when the
        couplings are sign-only); fixed-seed trajectories are
        backend-independent for exactly-representable couplings (see
        module docstring).
    tile_size:
        When given (and ``method="insitu"``), the solve runs on the
        hardware-instrumented tiled crossbar machine
        (:class:`~repro.arch.cim_annealer.InSituCimAnnealer`) with
        ``tile_size``-row arrays: sparse models are sharded straight from
        CSR, so 100k+-node low-degree instances never densify.  Energies
        are then those of the *stored* (k-bit-quantized) image — exact for
        dyadic couplings such as ±1-weighted G-sets.  Pass
        ``crossbar_backend="device"`` for the compact-model tile
        evaluation (``backend`` here always means the coupling backend).
        With ``method="sb"`` the SB inner loop's matvec is served by the
        same tiled grid's digitally-combined behavioral MVM
        (:meth:`~repro.arch.tiling.TiledCrossbar.batch_matvec`) — and
        ``replicas`` is allowed, time-multiplexed over the grid.
    replicas:
        When given, run ``replicas`` independent annealing replicas at once
        through the vectorised batch engines
        (:class:`~repro.core.batch.BatchInSituAnnealer` /
        :class:`~repro.core.batch.BatchDirectEAnnealer`) and return a
        :class:`~repro.core.batch.BatchAnnealResult` with per-replica
        energies and configurations — the paper's 100-run Monte-Carlo
        protocol in one call.  Supports ``method`` ``"insitu"``, ``"sa"``
        and ``"sb"`` (MESA has no batch engine),
        ``flips_per_iteration >= 1`` (flip methods) and ``reorder``;
        incompatible with ``tile_size`` except under ``method="sb"``,
        whose replica batch time-multiplexes over the tile grid.
    reorder:
        Spin-reordering pass applied before solving: ``"none"`` (default),
        ``"rcm"`` (Reverse Cuthill–McKee, for banded structure),
        ``"partition"`` (multilevel min-cut blocks sized to the tile grid
        — clustered/community instances; requires ``tile_size``) or
        ``"auto"`` (reorder only when it strictly improves the layout —
        on the tiled machine RCM and the partition layout compete on
        exact active-tile count, the software solvers score by bandwidth,
        with a greedy degree-ordering fallback).  Reordering is
        transparent: proposals are drawn in the original spin space and
        solutions are mapped back through the inverse permutation, so
        results are bit-identical to the unreordered solve for dyadic
        couplings (see :mod:`repro.core.reorder` and
        :mod:`repro.core.partition`).
    solver_kwargs:
        Forwarded to the solver constructor (e.g. ``flips_per_iteration``).
    """
    iterations = _check_solve_args(model, method, iterations)
    # One generator for both phases: compilation consumes programming
    # draws (device backend / variation models) and execution consumes
    # the proposal/accept stream — exactly the historical shared-stream
    # order, so fixed-seed regressions stay bit-identical.
    rng = ensure_rng(seed)
    plan = compile_plan(
        model, method=method, backend=backend, tile_size=tile_size,
        reorder=reorder, replicas=replicas, seed=rng, **solver_kwargs
    )
    return plan.execute(iterations, seed=rng)


def solve_maxcut(
    problem: MaxCutProblem,
    method: str = "insitu",
    iterations: int = 1000,
    seed=None,
    reference_cut: float | None = None,
    backend: str = "auto",
    tile_size: int | None = None,
    reorder: str | None = None,
    replicas: int | None = None,
    **solver_kwargs,
) -> MaxCutResult | BatchMaxCutResult:
    """Solve a Max-Cut instance and report cut values.

    ``reference_cut`` (the best-known value, e.g. from
    :func:`repro.analysis.reference.reference_cut`) enables the normalised
    cut and the paper's ≥ 0.9 success criterion on the result object.

    ``backend`` selects the coupling representation of the underlying
    Ising model (see :meth:`MaxCutProblem.to_ising`); the default
    ``"auto"`` builds large sparse instances — the whole G-set suite —
    on the CSR backend, bit-packed when the edge weights share one
    ±magnitude (every ±1 G-set).  The default differs from
    :func:`solve_ising` on purpose: this function *builds* the Ising
    model from the problem, so there is no caller-chosen representation
    to respect and the heuristic pick is the right one, whereas
    ``solve_ising(backend=None)`` keeps whatever backend the caller
    constructed.  ``tile_size`` routes the solve through the tiled
    crossbar machine and ``reorder`` applies a bandwidth-reducing spin
    relabelling ahead of tiling (see :func:`solve_ising`; the returned
    partition is always in the problem's original node order).

    ``replicas`` runs the paper's R-run Monte-Carlo protocol through the
    vectorised batch engines and returns a
    :class:`~repro.core.batch.BatchMaxCutResult` carrying per-replica best
    cuts (see :func:`solve_ising`).
    """
    if getattr(problem, "num_nodes", None) is None:
        raise ValueError(
            f"problem must be a MaxCutProblem, got {type(problem).__name__}"
        )
    if reference_cut is not None:
        # Validated at the boundary: a non-numeric reference used to slip
        # through and only explode later inside normalized_cut.
        reference_cut = check_real("reference_cut", reference_cut)
    model = problem.to_ising(backend=backend)
    result = solve_ising(
        model, method=method, iterations=iterations, seed=seed,
        tile_size=tile_size, reorder=reorder, replicas=replicas,
        **solver_kwargs
    )
    if replicas is not None:
        return BatchMaxCutResult(
            anneal=result,
            best_cuts=result.best_cuts(problem),
            reference_cut=reference_cut,
        )
    return MaxCutResult(
        anneal=result,
        cut=problem.cut_from_energy(result.energy),
        best_cut=problem.cut_from_energy(result.best_energy),
        reference_cut=reference_cut,
    )
