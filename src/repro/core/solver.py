"""High-level solve API: one call from problem to solution.

These wrappers pick reasonable defaults for the three solver families
(in-situ fractional, direct-E SA, MESA), validate their inputs at the
boundary (so misuse fails with an actionable message instead of deep inside
an annealer loop), run them, and translate energies back into
problem-domain quantities (cut values for Max-Cut).

Coupling backends
-----------------
Every solver family accepts any coupling backend — the dense
:class:`~repro.ising.model.IsingModel`, the CSR
:class:`~repro.ising.sparse.SparseIsingModel`, or the bit-packed
sign-only :class:`~repro.ising.packed.PackedIsingModel` — transparently.
The ``backend`` knob on :func:`solve_ising` / :func:`solve_maxcut`
converts on the way in: ``"dense"`` / ``"sparse"`` / ``"packed"`` force a
representation, ``"auto"`` applies the density-threshold heuristic of
:func:`repro.ising.sparse.recommended_backend` (sparse from
``SPARSE_MIN_SPINS`` spins up when the pair density is at most
``SPARSE_DENSITY_THRESHOLD``, promoted to packed when all couplings share
one ±magnitude).  For integer or dyadic-rational couplings —
which includes every ±1-weighted G-set instance, where ``J = W/4`` — all
floating-point sums are exact and fixed-seed trajectories coincide bit for
bit across backends.  For arbitrary float couplings the backends compute
the same mathematics in different summation orders, so individual
accept decisions (and hence trajectories) may diverge; pass an explicit
``backend`` when exact run-to-run reproducibility across releases matters
for such models.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.annealer import InSituAnnealer
from repro.core.batch import (
    BatchAnnealResult,
    BatchDirectEAnnealer,
    BatchInSituAnnealer,
    BatchMaxCutResult,
)
from repro.core.mesa import MesaAnnealer
from repro.core.reorder import REORDER_MODES, reorder_permutation
from repro.core.results import AnnealResult, MaxCutResult
from repro.core.sa import DirectEAnnealer
from repro.ising.maxcut import MaxCutProblem
from repro.ising.model import IsingModel
from repro.ising.sparse import SparseIsingModel, as_backend
from repro.utils.validation import check_choice, check_count, check_real

_SOLVERS = {
    "insitu": InSituAnnealer,
    "sa": DirectEAnnealer,
    "mesa": MesaAnnealer,
}

_BATCH_SOLVERS = {
    "insitu": BatchInSituAnnealer,
    "sa": BatchDirectEAnnealer,
}

#: Every accepted ``method=`` spelling: the sequential flip solvers plus
#: the simulated-bifurcation family (dispatched through repro.core.sb,
#: which serves both the single-run and the replica-batch shape).
SOLVE_METHODS = tuple(sorted([*_SOLVERS, "sb"]))


def _check_solve_args(model, method: str, iterations) -> int:
    """Boundary validation shared by the solve entry points.

    Returns the validated iteration count.  Raises ``ValueError`` with an
    actionable message for unknown methods, non-positive / boolean
    iteration budgets and empty models — the failure modes that previously
    surfaced as opaque errors (or, for ``iterations=True``, a silent
    1-iteration run) deep inside the annealer loops.
    """
    check_choice("method", method, SOLVE_METHODS)
    iterations = check_count(
        "iterations", iterations,
        hint="the annealers need at least one proposal/accept step",
    )
    num_spins = getattr(model, "num_spins", None)
    if num_spins is None:
        raise ValueError(
            f"model must be an IsingModel or SparseIsingModel, got "
            f"{type(model).__name__}"
        )
    if num_spins < 1:
        raise ValueError(
            "model has no spins; build it from a non-empty problem"
        )
    return iterations


def _strip_ancilla(result: AnnealResult) -> AnnealResult:
    """Undo the ancilla fold: pin spin 0 to +1 and drop it.

    A global flip leaves a couplings-only energy invariant, so flipping a
    configuration whose ancilla landed on −1 changes nothing but restores
    the ``σ_0 = +1`` convention the fold encodes fields under.
    """
    sigma = result.sigma if result.sigma[0] == 1 else -result.sigma
    best = result.best_sigma if result.best_sigma[0] == 1 else -result.best_sigma
    return replace(result, sigma=sigma[1:], best_sigma=best[1:])


def _strip_ancilla_batch(result: BatchAnnealResult) -> BatchAnnealResult:
    """Per-replica ancilla strip for the batch result shape."""

    def pin(sigmas):
        # Multiplying each row by its own ancilla sign pins σ_0 = +1
        # (energies are global-flip invariant for couplings-only models).
        return (sigmas * sigmas[:, :1])[:, 1:]

    return replace(
        result,
        best_sigmas=pin(result.best_sigmas),
        final_sigmas=pin(result.final_sigmas),
    )


def _solve_tiled(
    model, iterations, seed, tile_size, reorder, solver_kwargs
) -> AnnealResult:
    """Route a solve through the tiled in-situ CiM machine.

    The crossbar machines store couplings only, so a model with fields is
    folded through an ancilla spin on the way in and the ancilla is
    stripped from the returned configurations.

    ``solve_ising``'s own ``backend`` kwarg names the *coupling* backend,
    so the machine's crossbar simulation backend travels under
    ``crossbar_backend`` in ``solver_kwargs`` (``"behavioral"`` default,
    ``"device"`` for the compact-model evaluation).
    """
    # Local import: repro.arch layers on top of repro.core.
    from repro.arch.cim_annealer import InSituCimAnnealer

    if "crossbar_backend" in solver_kwargs:
        solver_kwargs = dict(solver_kwargs)
        solver_kwargs["backend"] = solver_kwargs.pop("crossbar_backend")
    work = model.with_ancilla() if model.has_fields else model
    machine = InSituCimAnnealer(
        work, tile_size=tile_size, reorder=reorder, seed=seed, **solver_kwargs
    )
    result = machine.run(iterations).anneal
    if work is not model:
        result = _strip_ancilla(result)
    return result


def _solve_sb_tiled(
    model, iterations, seed, tile_size, reorder, replicas, solver_kwargs
) -> AnnealResult | BatchAnnealResult:
    """Route an SB solve through the tiled crossbar's behavioral MVM.

    The coupling matrix is sharded over the tile grid exactly as the
    in-situ machine does (couplings only — fields fold through an
    ancilla spin; optional reordering ahead of tiling), and the SB inner
    loop's matvec is served by
    :meth:`~repro.arch.tiling.TiledCrossbar.batch_matvec` — the
    digitally-combined partial products of the programmed tiles.
    Energies are those of the *stored* (k-bit-quantized) image, exact
    for dyadic couplings, matching the in-situ tiled convention.
    """
    # Local import: repro.arch layers on top of repro.core.
    from repro.arch.tiling import TiledCrossbar
    from repro.core.sb import solve_sb

    work = model.with_ancilla() if model.has_fields else model
    perm = None
    if reorder != "none":
        perm = reorder_permutation(work, reorder, tile_size=tile_size)
    hw = work.permuted(perm) if perm is not None else work
    matrix = hw if isinstance(hw, SparseIsingModel) else hw.J
    crossbar = TiledCrossbar(matrix, tile_size=tile_size)
    stored = crossbar.stored_model(offset=hw.offset, name=f"{hw.name}@tiled")
    result = solve_sb(
        stored, iterations, seed=seed, replicas=replicas, permutation=perm,
        matvec=crossbar.batch_matvec, **solver_kwargs
    )
    if work is not model:
        result = (
            _strip_ancilla(result)
            if replicas is None
            else _strip_ancilla_batch(result)
        )
    return result


def solve_ising(
    model: IsingModel | SparseIsingModel,
    method: str = "insitu",
    iterations: int = 1000,
    seed=None,
    backend: str | None = None,
    tile_size: int | None = None,
    reorder: str | None = None,
    replicas: int | None = None,
    **solver_kwargs,
) -> AnnealResult | BatchAnnealResult:
    """Minimise an Ising model with the selected annealer.

    Parameters
    ----------
    model:
        The model to minimise — either coupling backend.
    method:
        ``"insitu"`` (the paper's flow), ``"sa"`` (direct-E Metropolis
        baseline), ``"mesa"`` (multi-epoch SA of ref [7]) or ``"sb"``
        (ballistic/discrete simulated bifurcation,
        :class:`~repro.core.sb.SbEngine` — one coupling matvec per step;
        pass ``variant="ballistic"`` for bSB, default is dSB).
    iterations:
        Annealing iterations (must be >= 1; validated here so the error is
        raised at the API boundary).
    seed:
        RNG seed.
    backend:
        Optional coupling-backend override: ``"dense"``, ``"sparse"``,
        ``"packed"`` or ``"auto"`` (density heuristic with sign-only
        promotion).  ``None`` (default) keeps the model's current
        representation.  Choose sparse for large low-density instances
        (packed when the couplings are sign-only); fixed-seed
        trajectories are backend-independent for exactly-representable
        couplings (see module docstring).
    tile_size:
        When given (and ``method="insitu"``), the solve runs on the
        hardware-instrumented tiled crossbar machine
        (:class:`~repro.arch.cim_annealer.InSituCimAnnealer`) with
        ``tile_size``-row arrays: sparse models are sharded straight from
        CSR, so 100k+-node low-degree instances never densify.  Energies
        are then those of the *stored* (k-bit-quantized) image — exact for
        dyadic couplings such as ±1-weighted G-sets.  Pass
        ``crossbar_backend="device"`` for the compact-model tile
        evaluation (``backend`` here always means the coupling backend).
        With ``method="sb"`` the SB inner loop's matvec is served by the
        same tiled grid's digitally-combined behavioral MVM
        (:meth:`~repro.arch.tiling.TiledCrossbar.batch_matvec`) — and
        ``replicas`` is allowed, time-multiplexed over the grid.
    replicas:
        When given, run ``replicas`` independent annealing replicas at once
        through the vectorised batch engines
        (:class:`~repro.core.batch.BatchInSituAnnealer` /
        :class:`~repro.core.batch.BatchDirectEAnnealer`) and return a
        :class:`~repro.core.batch.BatchAnnealResult` with per-replica
        energies and configurations — the paper's 100-run Monte-Carlo
        protocol in one call.  Supports ``method`` ``"insitu"``, ``"sa"``
        and ``"sb"`` (MESA has no batch engine),
        ``flips_per_iteration >= 1`` (flip methods) and ``reorder``;
        incompatible with ``tile_size`` except under ``method="sb"``,
        whose replica batch time-multiplexes over the tile grid.
    reorder:
        Spin-reordering pass applied before solving: ``"none"`` (default),
        ``"rcm"`` (Reverse Cuthill–McKee, for banded structure),
        ``"partition"`` (multilevel min-cut blocks sized to the tile grid
        — clustered/community instances; requires ``tile_size``) or
        ``"auto"`` (reorder only when it strictly improves the layout —
        on the tiled machine RCM and the partition layout compete on
        exact active-tile count, the software solvers score by bandwidth,
        with a greedy degree-ordering fallback).  Reordering is
        transparent: proposals are drawn in the original spin space and
        solutions are mapped back through the inverse permutation, so
        results are bit-identical to the unreordered solve for dyadic
        couplings (see :mod:`repro.core.reorder` and
        :mod:`repro.core.partition`).
    solver_kwargs:
        Forwarded to the solver constructor (e.g. ``flips_per_iteration``).
    """
    iterations = _check_solve_args(model, method, iterations)
    reorder = check_choice(
        "reorder", "none" if reorder is None else reorder, REORDER_MODES
    )
    if reorder != "none" and "permutation" in solver_kwargs:
        raise ValueError(
            "pass either reorder= or an explicit permutation=, not both"
        )
    if backend is not None:
        model = as_backend(model, backend)
    if replicas is not None:
        # Validated here at the boundary — a bool or non-integer count
        # used to slip past solve_ising into the engine constructors.
        replicas = check_count(
            "replicas", replicas,
            hint="each replica is one independent trajectory",
        )
        if method != "sb" and method not in _BATCH_SOLVERS:
            raise ValueError(
                f"replicas only applies to methods "
                f"{sorted([*_BATCH_SOLVERS, 'sb'])}, got method={method!r} "
                f"(MESA has no batch engine)"
            )
        if tile_size is not None and method != "sb":
            raise ValueError(
                "replicas cannot be combined with tile_size; the tiled "
                "crossbar machine runs one replica per programmed array "
                "(method='sb' time-multiplexes replicas over the grid)"
            )
    if tile_size is not None:
        tile_size = check_count(
            "tile_size", tile_size, minimum=2,
            hint="a physical tile needs at least 2 rows",
        )
        if method not in ("insitu", "sb"):
            raise ValueError(
                f"tile_size is a crossbar-machine knob and only applies to "
                f"method='insitu' or method='sb', got method={method!r}"
            )
        if method == "sb":
            return _solve_sb_tiled(
                model, iterations, seed, tile_size, reorder, replicas,
                solver_kwargs,
            )
        return _solve_tiled(
            model, iterations, seed, tile_size, reorder, solver_kwargs
        )
    if reorder != "none":
        perm = reorder_permutation(model, reorder)
        if perm is not None:
            # model.permuted(perm) must always travel with permutation=perm
            # so proposals/results stay in the caller's spin space; shared
            # by the replica-batch and sequential dispatches below.
            model = model.permuted(perm)
            solver_kwargs = dict(solver_kwargs, permutation=perm)
    if method == "sb":
        from repro.core.sb import solve_sb

        return solve_sb(
            model, iterations, seed=seed, replicas=replicas, **solver_kwargs
        )
    if replicas is not None:
        engine = _BATCH_SOLVERS[method](
            model, replicas=replicas, seed=seed, **solver_kwargs
        )
        return engine.run(iterations)
    solver = _SOLVERS[method](model, seed=seed, **solver_kwargs)
    return solver.run(iterations)


def solve_maxcut(
    problem: MaxCutProblem,
    method: str = "insitu",
    iterations: int = 1000,
    seed=None,
    reference_cut: float | None = None,
    backend: str = "auto",
    tile_size: int | None = None,
    reorder: str | None = None,
    replicas: int | None = None,
    **solver_kwargs,
) -> MaxCutResult | BatchMaxCutResult:
    """Solve a Max-Cut instance and report cut values.

    ``reference_cut`` (the best-known value, e.g. from
    :func:`repro.analysis.reference.reference_cut`) enables the normalised
    cut and the paper's ≥ 0.9 success criterion on the result object.

    ``backend`` selects the coupling representation of the underlying
    Ising model (see :meth:`MaxCutProblem.to_ising`); the default
    ``"auto"`` builds large sparse instances — the whole G-set suite —
    on the CSR backend, bit-packed when the edge weights share one
    ±magnitude (every ±1 G-set).  ``tile_size`` routes the solve through the tiled
    crossbar machine and ``reorder`` applies a bandwidth-reducing spin
    relabelling ahead of tiling (see :func:`solve_ising`; the returned
    partition is always in the problem's original node order).

    ``replicas`` runs the paper's R-run Monte-Carlo protocol through the
    vectorised batch engines and returns a
    :class:`~repro.core.batch.BatchMaxCutResult` carrying per-replica best
    cuts (see :func:`solve_ising`).
    """
    if getattr(problem, "num_nodes", None) is None:
        raise ValueError(
            f"problem must be a MaxCutProblem, got {type(problem).__name__}"
        )
    if reference_cut is not None:
        # Validated at the boundary: a non-numeric reference used to slip
        # through and only explode later inside normalized_cut.
        reference_cut = check_real("reference_cut", reference_cut)
    model = problem.to_ising(backend=backend)
    result = solve_ising(
        model, method=method, iterations=iterations, seed=seed,
        tile_size=tile_size, reorder=reorder, replicas=replicas,
        **solver_kwargs
    )
    if replicas is not None:
        return BatchMaxCutResult(
            anneal=result,
            best_cuts=result.best_cuts(problem),
            reference_cut=reference_cut,
        )
    return MaxCutResult(
        anneal=result,
        cut=problem.cut_from_energy(result.energy),
        best_cut=problem.cut_from_energy(result.best_energy),
        reference_cut=reference_cut,
    )
