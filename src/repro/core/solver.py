"""High-level solve API: one call from problem to solution.

These wrappers pick reasonable defaults for the three solver families
(in-situ fractional, direct-E SA, MESA), run them, and translate energies
back into problem-domain quantities (cut values for Max-Cut).
"""

from __future__ import annotations

from repro.core.annealer import InSituAnnealer
from repro.core.mesa import MesaAnnealer
from repro.core.results import AnnealResult, MaxCutResult
from repro.core.sa import DirectEAnnealer
from repro.ising.maxcut import MaxCutProblem
from repro.ising.model import IsingModel

_SOLVERS = {
    "insitu": InSituAnnealer,
    "sa": DirectEAnnealer,
    "mesa": MesaAnnealer,
}


def solve_ising(
    model: IsingModel,
    method: str = "insitu",
    iterations: int = 1000,
    seed=None,
    **solver_kwargs,
) -> AnnealResult:
    """Minimise an Ising model with the selected annealer.

    Parameters
    ----------
    model:
        The model to minimise.
    method:
        ``"insitu"`` (the paper's flow), ``"sa"`` (direct-E Metropolis
        baseline) or ``"mesa"`` (multi-epoch SA of ref [7]).
    iterations:
        Annealing iterations.
    seed:
        RNG seed.
    solver_kwargs:
        Forwarded to the solver constructor (e.g. ``flips_per_iteration``).
    """
    if method not in _SOLVERS:
        raise ValueError(
            f"unknown method {method!r}; choose from {sorted(_SOLVERS)}"
        )
    solver = _SOLVERS[method](model, seed=seed, **solver_kwargs)
    return solver.run(iterations)


def solve_maxcut(
    problem: MaxCutProblem,
    method: str = "insitu",
    iterations: int = 1000,
    seed=None,
    reference_cut: float | None = None,
    **solver_kwargs,
) -> MaxCutResult:
    """Solve a Max-Cut instance and report cut values.

    ``reference_cut`` (the best-known value, e.g. from
    :func:`repro.analysis.reference.reference_cut`) enables the normalised
    cut and the paper's ≥ 0.9 success criterion on the result object.
    """
    model = problem.to_ising()
    result = solve_ising(
        model, method=method, iterations=iterations, seed=seed, **solver_kwargs
    )
    return MaxCutResult(
        anneal=result,
        cut=problem.cut_from_energy(result.energy),
        best_cut=problem.cut_from_energy(result.best_energy),
        reference_cut=reference_cut,
    )
