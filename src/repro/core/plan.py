"""Compile/execute split: reusable solve plans and a fingerprint-keyed cache.

The in-situ annealer's economics — one expensive crossbar programming pass
amortised over many cheap anneal runs — used to be invisible in the API:
every ``solve_ising`` call re-derived the coupling backend, re-ran the
reorder/partition layout race, re-folded fields through the ancilla spin,
and re-quantized/re-programmed the tile grid.  This module makes the
split explicit:

* :func:`compile_plan` runs all of the setup once and returns an
  immutable :class:`SolvePlan` — the resolved backend model, the
  ancilla-folded work model, the layout
  :class:`~repro.core.reorder.Permutation`, and (on the tiled paths) the
  programmed :class:`~repro.arch.tiling.TiledCrossbar` with its
  quantized stored image;
* :meth:`SolvePlan.execute` runs one anneal against the compiled
  artifacts — cheap, repeatable, and bit-identical to a from-scratch
  ``solve_ising`` call for exactly-representable (dyadic) couplings;
* :class:`PlanCache` is an LRU over compiled plans keyed by a content
  fingerprint of the couplings plus the solve knobs, so repeat instances
  skip the layout race, quantization and tile programming entirely.

``solve_ising``/``solve_maxcut`` are thin wrappers over this module, and
this module is the *single owner* of the solve-setup primitives
(``with_ancilla`` fold/strip and the ``reorder_permutation`` layout
race) — repro-lint rule RPL007 bans calling them from any other library
module, because three divergent copies of this logic is exactly the bug
class the compile/execute split removed.

Randomness contract
-------------------
Compilation is deterministic on the default path (behavioral crossbar
backend, no variation model): programming draws no randomness, so a plan
compiled once and executed with fresh seeds is bit-identical to cold
solves with those seeds.  With ``variation=`` or the device crossbar
backend the programming pass *does* consume the stream; ``solve_ising``
threads one generator through both phases to reproduce the legacy
shared-stream trajectories exactly, while a cached plan freezes its
programming draw — re-executing reuses the same programmed array, as
real hardware would.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.core.annealer import InSituAnnealer
from repro.core.batch import (
    BatchAnnealResult,
    BatchDirectEAnnealer,
    BatchInSituAnnealer,
)
from repro.core.mesa import MesaAnnealer
from repro.core.reorder import REORDER_MODES, Permutation, reorder_permutation
from repro.core.results import AnnealResult
from repro.core.sa import DirectEAnnealer
from repro.ising.model import IsingModel
from repro.ising.packed import PackedIsingModel
from repro.ising.sparse import SparseIsingModel, as_backend
from repro.utils.validation import check_choice, check_count

_SOLVERS = {
    "insitu": InSituAnnealer,
    "sa": DirectEAnnealer,
    "mesa": MesaAnnealer,
}

_BATCH_SOLVERS = {
    "insitu": BatchInSituAnnealer,
    "sa": BatchDirectEAnnealer,
}

#: Every accepted ``method=`` spelling: the sequential flip solvers plus
#: the simulated-bifurcation family (dispatched through repro.core.sb,
#: which serves both the single-run and the replica-batch shape).
SOLVE_METHODS = tuple(sorted([*_SOLVERS, "sb"]))


def _check_solve_args(model, method: str, iterations) -> int:
    """Boundary validation shared by the solve entry points.

    Returns the validated iteration count.  Raises ``ValueError`` with an
    actionable message for unknown methods, non-positive / boolean
    iteration budgets and empty models — the failure modes that previously
    surfaced as opaque errors (or, for ``iterations=True``, a silent
    1-iteration run) deep inside the annealer loops.
    """
    check_choice("method", method, SOLVE_METHODS)
    iterations = check_count(
        "iterations", iterations,
        hint="the annealers need at least one proposal/accept step",
    )
    _check_model(model)
    return iterations


def _check_model(model) -> None:
    num_spins = getattr(model, "num_spins", None)
    if num_spins is None:
        raise ValueError(
            f"model must be an IsingModel or SparseIsingModel, got "
            f"{type(model).__name__}"
        )
    if num_spins < 1:
        raise ValueError(
            "model has no spins; build it from a non-empty problem"
        )


def _strip_ancilla(result: AnnealResult) -> AnnealResult:
    """Undo the ancilla fold: pin spin 0 to +1 and drop it.

    A global flip leaves a couplings-only energy invariant, so flipping a
    configuration whose ancilla landed on −1 changes nothing but restores
    the ``σ_0 = +1`` convention the fold encodes fields under.
    """
    from dataclasses import replace

    sigma = result.sigma if result.sigma[0] == 1 else -result.sigma
    best = result.best_sigma if result.best_sigma[0] == 1 else -result.best_sigma
    return replace(result, sigma=sigma[1:], best_sigma=best[1:])


def _strip_ancilla_batch(result: BatchAnnealResult) -> BatchAnnealResult:
    """Per-replica ancilla strip for the batch result shape."""
    from dataclasses import replace

    def pin(sigmas):
        # Multiplying each row by its own ancilla sign pins σ_0 = +1
        # (energies are global-flip invariant for couplings-only models).
        return (sigmas * sigmas[:, :1])[:, 1:]

    return replace(
        result,
        best_sigmas=pin(result.best_sigmas),
        final_sigmas=pin(result.final_sigmas),
    )


def fold_fields(model):
    """Ancilla fold for the crossbar paths: ``(work_model, folded)``.

    Crossbar machines store couplings only, so a fielded model is folded
    through an ancilla spin on the way in (``σ_0`` pinned to +1); the
    matching strip happens in :meth:`SolvePlan.execute`.
    """
    if model.has_fields:
        return model.with_ancilla(), True
    return model, False


def resolve_layout(model, reorder, tile_size=None):
    """Run the layout race for a validated ``reorder`` mode.

    The single call site of :func:`~repro.core.reorder.reorder_permutation`
    in the library (RPL007): ``"none"``/``None`` short-circuits to no
    permutation, everything else delegates — ``"auto"`` races RCM against
    the min-cut partition by exact active-tile count when ``tile_size`` is
    given and may still return ``None`` when nothing strictly improves on
    the identity layout.
    """
    if reorder is None or reorder == "none":
        return None
    return reorder_permutation(model, reorder, tile_size=tile_size)


def _backend_name(model) -> str:
    """The coupling-backend spelling of a model's concrete class."""
    if isinstance(model, PackedIsingModel):
        return "packed"
    if isinstance(model, SparseIsingModel):
        return "sparse"
    return "dense"


def _freeze(value):
    """A deterministic, hashable image of a solve-knob value.

    Plain scalars/strings pass through; containers freeze recursively;
    numpy arrays hash by content.  Arbitrary objects (factors, schedules,
    variation models) key by ``repr`` — dataclass-style reprs are
    content-stable, while a default object repr keys by identity, which
    can only cause a spurious cache *miss*, never a wrong hit.
    """
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(
            np.ascontiguousarray(value).tobytes()
        ).hexdigest()
        return ("ndarray", value.shape, str(value.dtype), digest)
    if isinstance(value, Permutation):
        return _freeze(np.asarray(value.forward))
    if isinstance(value, (str, int, float, bool, type(None))):
        return (type(value).__name__, value)
    return ("repr", type(value).__name__, repr(value))


def _plan_fingerprint(
    model, method, backend, tile_size, reorder, replicas, solver_kwargs
) -> str:
    """Cache key: coupling content digest + every compile-relevant knob.

    The seed is deliberately *not* part of the key — on the default
    (draw-free) programming path a compiled plan is seed-independent, and
    re-executing a cached plan under fresh seeds is the whole point.
    """
    h = hashlib.sha256()
    h.update(model.content_fingerprint().encode())
    knobs = (
        method,
        backend,
        tile_size,
        "none" if reorder is None else reorder,
        replicas,
        _freeze(solver_kwargs),
    )
    h.update(repr(knobs).encode())
    return h.hexdigest()


#: Solver kwargs consumed at compile time on the tiled in-situ path: they
#: configure the crossbar programming pass, not the per-run annealer.
#: ``crossbar_backend`` is renamed on the way in because ``solve_ising``'s
#: own ``backend`` kwarg names the *coupling* backend.
_PROGRAM_KWARGS = ("config", "variation", "permutation")


class SolvePlan:
    """An immutable compiled solve: setup artifacts plus an execute hook.

    Produced by :func:`compile_plan`; treat every attribute as read-only.
    ``execute`` may be called any number of times — each call runs a
    fresh anneal (new RNG stream, fresh ledger on the machine paths)
    against the shared compiled artifacts.

    Attributes
    ----------
    model:
        The backend-resolved model in the caller's spin order.
    work:
        The model the hardware actually stores: ancilla-folded when the
        input carried external fields (``folded`` is then True).
    permutation:
        The internal layout :class:`~repro.core.reorder.Permutation`, or
        ``None`` for the identity layout.
    run_kwargs:
        Engine keyword arguments replayed on every execute.
    fingerprint:
        The cache key :class:`PlanCache` files this plan under.
    """

    __slots__ = (
        "method", "model", "work", "folded", "requested_backend",
        "resolved_backend", "tile_size", "reorder", "permutation",
        "replicas", "run_kwargs", "fingerprint",
        "_kind", "_engine_model", "_program", "_crossbar",
    )

    def __init__(
        self, *, method, model, work, folded, requested_backend,
        resolved_backend, tile_size, reorder, permutation, replicas,
        run_kwargs, fingerprint, kind, engine_model, program=None,
        crossbar=None,
    ) -> None:
        self.method = method
        self.model = model
        self.work = work
        self.folded = folded
        self.requested_backend = requested_backend
        self.resolved_backend = resolved_backend
        self.tile_size = tile_size
        self.reorder = reorder
        self.permutation = permutation
        self.replicas = replicas
        self.run_kwargs = run_kwargs
        self.fingerprint = fingerprint
        self._kind = kind
        self._engine_model = engine_model
        self._program = program
        self._crossbar = crossbar

    def __repr__(self) -> str:  # compact: artifacts are heavyweight
        return (
            f"SolvePlan(method={self.method!r}, "
            f"backend={self.resolved_backend!r}, n={self.model.num_spins}, "
            f"kind={self._kind!r}, fingerprint={self.fingerprint[:12]!r})"
        )

    # ------------------------------------------------------------------
    def execute(self, iterations, seed=None) -> AnnealResult | BatchAnnealResult:
        """Run one anneal against the compiled artifacts.

        Parameters
        ----------
        iterations:
            Annealing iterations (validated here, like ``solve_ising``).
        seed:
            RNG seed (or Generator) for this run's proposal/accept
            stream.  Executes are independent: two executes with the
            same seed return bit-identical results on the default
            (draw-free programming) path.
        """
        iterations = check_count(
            "iterations", iterations,
            hint="the annealers need at least one proposal/accept step",
        )
        if self._kind == "tiled-insitu":
            # Local import: repro.arch layers on top of repro.core.
            from repro.arch.cim_annealer import InSituCimAnnealer

            machine = InSituCimAnnealer(
                program=self._program, seed=seed, **self.run_kwargs
            )
            result = machine.run(iterations).anneal
            return _strip_ancilla(result) if self.folded else result
        if self._kind == "tiled-sb":
            from repro.core.sb import solve_sb

            result = solve_sb(
                self._engine_model, iterations, seed=seed,
                replicas=self.replicas, permutation=self.permutation,
                matvec=self._crossbar.batch_matvec, **self.run_kwargs
            )
            if self.folded:
                result = (
                    _strip_ancilla(result)
                    if self.replicas is None
                    else _strip_ancilla_batch(result)
                )
            return result
        if self.method == "sb":
            from repro.core.sb import solve_sb

            return solve_sb(
                self._engine_model, iterations, seed=seed,
                replicas=self.replicas, **self.run_kwargs
            )
        if self.replicas is not None:
            engine = _BATCH_SOLVERS[self.method](
                self._engine_model, replicas=self.replicas, seed=seed,
                **self.run_kwargs
            )
            return engine.run(iterations)
        solver = _SOLVERS[self.method](
            self._engine_model, seed=seed, **self.run_kwargs
        )
        return solver.run(iterations)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Provenance of the compiled plan, resolved knobs included.

        Reports the backend that *actually* ran (``solve_ising`` defaults
        ``backend=None`` — keep the caller's representation — while
        ``solve_maxcut`` defaults ``"auto"``; this is where the
        resolution becomes visible), the layout the race picked, and the
        tiled-grid geometry when a crossbar was programmed.
        """
        info = {
            "method": self.method,
            "backend": self.resolved_backend,
            "num_spins": self.model.num_spins,
            "folded_fields": self.folded,
            "reorder": self.reorder,
            "ordering": (
                self.permutation.strategy
                if self.permutation is not None else "identity"
            ),
            "tile_size": self.tile_size,
            "replicas": self.replicas,
            "fingerprint": self.fingerprint[:12],
        }
        if self._crossbar is not None:
            info["tiles"] = self._crossbar.num_tiles
            info["grid_tiles"] = self._crossbar.grid_tiles
            info["bits"] = self._crossbar.bits
        return info


def compile_plan(
    model: IsingModel | SparseIsingModel,
    method: str = "insitu",
    backend: str | None = None,
    tile_size: int | None = None,
    reorder: str | None = None,
    replicas: int | None = None,
    seed=None,
    **solver_kwargs,
) -> SolvePlan:
    """Compile a model + solve knobs into a reusable :class:`SolvePlan`.

    Performs every expensive, run-independent piece of a solve — coupling
    backend promotion, the reorder/partition layout race, the ancilla
    fold, quantization and tile programming — and returns the artifacts
    bundled with an :meth:`~SolvePlan.execute` hook.  Knobs and
    validation messages match :func:`~repro.core.solver.solve_ising`
    exactly (it is now a thin wrapper over this function); ``seed`` only
    matters here when crossbar programming itself draws randomness
    (``variation=`` or ``crossbar_backend="device"``).
    """
    check_choice("method", method, SOLVE_METHODS)
    _check_model(model)
    reorder = check_choice(
        "reorder", "none" if reorder is None else reorder, REORDER_MODES
    )
    if reorder != "none" and "permutation" in solver_kwargs:
        raise ValueError(
            "pass either reorder= or an explicit permutation=, not both"
        )
    fingerprint = _plan_fingerprint(
        model, method, backend, tile_size, reorder, replicas, solver_kwargs
    )
    requested_backend = backend
    if backend is not None:
        model = as_backend(model, backend)
    if replicas is not None:
        # Validated here at the boundary — a bool or non-integer count
        # used to slip past solve_ising into the engine constructors.
        replicas = check_count(
            "replicas", replicas,
            hint="each replica is one independent trajectory",
        )
        if method != "sb" and method not in _BATCH_SOLVERS:
            raise ValueError(
                f"replicas only applies to methods "
                f"{sorted([*_BATCH_SOLVERS, 'sb'])}, got method={method!r} "
                f"(MESA has no batch engine)"
            )
        if tile_size is not None and method != "sb":
            raise ValueError(
                "replicas cannot be combined with tile_size; the tiled "
                "crossbar machine runs one replica per programmed array "
                "(method='sb' time-multiplexes replicas over the grid)"
            )
    if tile_size is not None:
        tile_size = check_count(
            "tile_size", tile_size, minimum=2,
            hint="a physical tile needs at least 2 rows",
        )
        if method not in ("insitu", "sb"):
            raise ValueError(
                f"tile_size is a crossbar-machine knob and only applies to "
                f"method='insitu' or method='sb', got method={method!r}"
            )
    elif reorder == "partition":
        # Solve-boundary check (this used to fail deep inside the layout
        # race): the partition layout is defined by the tile grid.
        raise ValueError(
            "reorder='partition' sizes its min-cut blocks to the tile "
            "grid and needs tile_size=...; pass both knobs together "
            "(or use reorder='rcm'/'auto' for an untiled solve)"
        )
    resolved_backend = _backend_name(model)

    if tile_size is not None and method == "insitu":
        work, folded = fold_fields(model)
        run_kwargs = dict(solver_kwargs)
        program_kwargs = {}
        if "crossbar_backend" in run_kwargs:
            program_kwargs["backend"] = run_kwargs.pop("crossbar_backend")
        for key in _PROGRAM_KWARGS:
            if key in run_kwargs:
                program_kwargs[key] = run_kwargs.pop(key)
        # Local import: repro.arch layers on top of repro.core.
        from repro.arch.cim_annealer import compile_cim_program

        program = compile_cim_program(
            work, tile_size=tile_size, reorder=reorder, seed=seed,
            **program_kwargs
        )
        return SolvePlan(
            method=method, model=model, work=work, folded=folded,
            requested_backend=requested_backend,
            resolved_backend=resolved_backend, tile_size=tile_size,
            reorder=reorder, permutation=program.permutation,
            replicas=replicas, run_kwargs=run_kwargs,
            fingerprint=fingerprint, kind="tiled-insitu",
            engine_model=program.annealer_model, program=program,
            crossbar=program.crossbar,
        )

    if tile_size is not None:  # method == "sb"
        # Local import: repro.arch layers on top of repro.core.
        from repro.arch.tiling import TiledCrossbar

        work, folded = fold_fields(model)
        perm = resolve_layout(work, reorder, tile_size=tile_size)
        hw = work.permuted(perm) if perm is not None else work
        matrix = hw if isinstance(hw, SparseIsingModel) else hw.J
        crossbar = TiledCrossbar(matrix, tile_size=tile_size)
        stored = crossbar.stored_model(
            offset=hw.offset, name=f"{hw.name}@tiled"
        )
        return SolvePlan(
            method=method, model=model, work=work, folded=folded,
            requested_backend=requested_backend,
            resolved_backend=resolved_backend, tile_size=tile_size,
            reorder=reorder, permutation=perm, replicas=replicas,
            run_kwargs=dict(solver_kwargs), fingerprint=fingerprint,
            kind="tiled-sb", engine_model=stored, crossbar=crossbar,
        )

    perm = resolve_layout(model, reorder)
    run_kwargs = dict(solver_kwargs)
    engine_model = model
    if perm is not None:
        # model.permuted(perm) must always travel with permutation=perm
        # so proposals/results stay in the caller's spin space; shared
        # by the replica-batch and sequential execute dispatches.
        engine_model = model.permuted(perm)
        run_kwargs["permutation"] = perm
    return SolvePlan(
        method=method, model=model, work=model, folded=False,
        requested_backend=requested_backend,
        resolved_backend=resolved_backend, tile_size=None,
        reorder=reorder, permutation=perm, replicas=replicas,
        run_kwargs=run_kwargs, fingerprint=fingerprint, kind="software",
        engine_model=engine_model,
    )


class PlanCache:
    """LRU cache of compiled :class:`SolvePlan` artifacts.

    Keyed by :meth:`content fingerprint
    <repro.ising.sparse.SparseIsingModel.content_fingerprint>` of the
    coupling data plus every compile-relevant solve knob — any coupling
    edit or knob change is a miss, a byte-identical repeat instance is a
    hit that skips the layout race, quantization and tile programming.
    This is the mechanism a serving layer needs to autotune per cache
    miss and reuse per hit.

    The seed is not part of the key (see :func:`compile_plan`'s
    randomness contract); plans whose programming pass drew randomness
    are reused as-programmed, like the physical array they model.

    The cache is thread-safe: one lock guards the LRU map and the
    counters, and :meth:`get_or_compile` holds it across the whole
    lookup-compile-insert sequence.  Compiles therefore serialize — a
    deliberate trade: concurrent misses on the *same* instance would
    otherwise compile the plan twice and race the insert, and the serve
    scheduler (the concurrent caller this exists for) runs solves on a
    worker thread while accepting submissions on the event loop.
    """

    def __init__(self, maxsize: int = 16) -> None:
        self.maxsize = check_count(
            "maxsize", maxsize, hint="an LRU cache needs at least one slot"
        )
        self._plans: OrderedDict[str, SolvePlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._plans

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        with self._lock:
            self._plans.clear()

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus current occupancy."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._plans),
                "maxsize": self.maxsize,
            }

    def get_or_compile(
        self,
        model,
        method: str = "insitu",
        backend: str | None = None,
        tile_size: int | None = None,
        reorder: str | None = None,
        replicas: int | None = None,
        seed=None,
        **solver_kwargs,
    ) -> SolvePlan:
        """Return the cached plan for this instance+knobs, compiling on miss.

        Arguments mirror :func:`compile_plan`.  On a hit the stored plan
        is returned untouched (and refreshed in LRU order); ``seed`` is
        only consulted when a miss triggers compilation.
        """
        key = _plan_fingerprint(
            model, method, backend, tile_size, reorder, replicas,
            solver_kwargs,
        )
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.misses += 1
            plan = compile_plan(
                model, method=method, backend=backend, tile_size=tile_size,
                reorder=reorder, replicas=replicas, seed=seed,
                **solver_kwargs
            )
            self._plans[key] = plan
            if len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.evictions += 1
            return plan


__all__ = [
    "SOLVE_METHODS",
    "SolvePlan",
    "PlanCache",
    "compile_plan",
    "fold_fields",
    "resolve_layout",
]
