"""Popcount/XOR coupling kernels over the bit-packed ±1 backend.

:class:`PackedCouplingOps` plugs a
:class:`~repro.ising.packed.PackedIsingModel` into the
:func:`~repro.core.coupling.coupling_ops` contract.  It inherits every
O(degree) incremental kernel from
:class:`~repro.core.coupling.SparseCouplingOps` — the model legitimately
retains its float CSR arrays, and those kernels touch O(Σ degree) data
per iteration, which profiling shows is *not* where replica time goes —
and replaces the two places the full spin state is traversed:

* ``local_fields`` / ``batch_local_fields`` run the cumulative-popcount
  kernel (:meth:`~repro.ising.packed.PackedIsingModel.packed_fields`)
  over bit-packed spin rows instead of a float ``bincount`` SpMV;
* ``make_batch_state`` hands the batch engine a
  :class:`PackedBatchState` holding the replica spin tensor as uint64
  words — flips become XOR masks and best-state snapshots copy word
  rows, cutting the engine's per-iteration state traffic 64×.  (PR 4
  profiling: at n=100k, R=100 the float engine spends ~6.5 of 8.4
  seconds per 500 iterations on ``best_sigma[improved] = sigma[...]``
  row copies and the float gathers around them, not in the coupling
  kernels.)

Both replacements compute exactly the floats the sparse kernels compute
(every value is a small-integer multiple of the shared dyadic magnitude
``c`` — see :mod:`repro.ising.packed`), so fixed-seed trajectories stay
bit-identical to the sparse backend.
"""

from __future__ import annotations

import numpy as np

from repro.core.coupling import SparseCouplingOps
from repro.ising.packed import (
    PackedIsingModel,
    pack_spin_rows,
    unpack_spin_rows,
)

_U64_ONE = np.uint64(1)


class PackedBatchState:
    """Replica spin state as a ``(R, ceil(n/64))`` uint64 word tensor.

    Implements the batch engine's spin-state protocol (see
    :class:`~repro.core.coupling.FloatBatchState` for the float twin):
    ``fields`` is the cached ``(R, n)`` float local-field tensor,
    ``gather`` reads proposed spins (as ±1.0 float64, the exact values
    the float state would hand over), ``flip`` toggles accepted spins
    with XOR masks, ``record_best`` snapshots improved replicas by
    copying word rows (64× less traffic than float rows), and the
    readout methods unpack to the engine's int8 contract.
    """

    def __init__(self, model: PackedIsingModel, sigma: np.ndarray) -> None:
        self._n = int(sigma.shape[1])
        self._num_words = model.num_spin_words
        self._words = pack_spin_rows(sigma)
        replicas = sigma.shape[0]
        fields = np.empty((replicas, self._n), dtype=np.float64)
        for r in range(replicas):
            model.packed_fields(self._words[r], fields[r])
        #: Cached ``(R, n)`` local fields ``g_r = J σ_r`` (C-contiguous;
        #: the engine hands this to the inherited float field-update
        #: kernels, whose values are exact multiples of the dyadic scale).
        self.fields = fields
        self._best = self._words.copy()

    def gather(self, rows: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Current values of spins ``idx[r]`` per replica, as ±1.0 float."""
        bits = (
            self._words[rows, idx >> 6] >> (idx & 63).astype(np.uint64)
        ) & _U64_ONE
        return bits.astype(np.float64) * 2.0 - 1.0

    def flip(self, acc: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> None:
        """Toggle spins ``cols[a]`` of accepted replicas ``acc`` (XOR).

        ``vals`` (the pre-flip values, consumed by the float twin's
        scatter) is unused: XOR toggles a spin bit regardless of its
        current value, which is exactly the flip semantics.
        """
        del vals
        flat = (acc[:, None] * self._num_words + (cols >> 6)).ravel()
        masks = (_U64_ONE << (cols & 63).astype(np.uint64)).ravel()
        # XOR accumulates duplicate indices correctly under ufunc.at
        # (unlike fancy assignment), so two flipped spins landing in the
        # same word both toggle.  Aliasing audited: _words is produced by
        # pack_spin_rows (np.zeros + in-place |=), which is C-contiguous
        # by construction, so reshape(-1) is a view of the state tensor.
        np.bitwise_xor.at(self._words.reshape(-1), flat, masks)  # repro-lint: disable=RPL004

    def record_best(self, improved: np.ndarray) -> None:
        """Snapshot the current state of improved replicas (word rows)."""
        self._best[improved] = self._words[improved]

    def record_best_blocks(
        self, rows: np.ndarray, starts: np.ndarray, stops: np.ndarray
    ) -> None:
        """Snapshot column ranges ``[starts[a], stops[a])`` of ``rows[a]``.

        Word-granular twin of
        :meth:`~repro.core.coupling.FloatBatchState.record_best_blocks`:
        the covered word range ``[starts >> 6, ceil(stops / 64))`` is
        copied, so callers must hand in ranges whose word cover does not
        cross into a neighbouring block — the block-stacked union pads
        every block to a 64-spin boundary for exactly this reason (the
        spill-over columns are the block's own padding spins).
        """
        word_lo = (starts >> 6).astype(np.intp)
        word_hi = ((stops + 63) >> 6).astype(np.intp)
        widths = word_hi - word_lo
        total = int(widths.sum())
        if total == 0:
            return
        offsets = np.concatenate(([0], np.cumsum(widths)[:-1]))
        flat = (
            np.repeat(rows * self._num_words + word_lo - offsets, widths)
            + np.arange(total)
        )
        # Aliasing audited: _words comes from pack_spin_rows (np.zeros +
        # in-place |=, C-contiguous by construction) and _best is its copy.
        self._best.reshape(-1)[flat] = self._words.reshape(-1)[flat]  # repro-lint: disable=RPL004

    def _readout(self, words: np.ndarray, fwd: np.ndarray | None) -> np.ndarray:
        sigma = unpack_spin_rows(words, self._n)
        return sigma if fwd is None else sigma[:, fwd]

    def final_sigmas(self, fwd: np.ndarray | None) -> np.ndarray:
        """Unpack the current replica spins to ``(R, n)`` int8."""
        return self._readout(self._words, fwd)

    def best_sigmas(self, fwd: np.ndarray | None) -> np.ndarray:
        """Unpack the per-replica best snapshots to ``(R, n)`` int8."""
        return self._readout(self._best, fwd)

    def memory_bytes(self) -> int:
        """Bytes held by the packed spin tensors and the field cache."""
        return int(self._words.nbytes + self._best.nbytes + self.fields.nbytes)


class PackedCouplingOps(SparseCouplingOps):
    """Coupling operations over the bit-packed sign-only backend.

    The incremental kernels (``cross_term`` / ``update_fields`` and their
    batch variants, ``matvec`` / ``batch_matvec`` for the SB engines,
    ``diag`` / ``offdiag_abs_values``) are inherited from
    :class:`~repro.core.coupling.SparseCouplingOps` and stay exact on the
    retained float CSR arrays; the full-state traversals dispatch to the
    popcount kernel and the packed replica state.
    """

    kind = "packed"

    def __init__(self, model: PackedIsingModel) -> None:
        super().__init__(model)
        self._packed = model

    def local_fields(self, sigma: np.ndarray) -> np.ndarray:
        """``g = J σ`` via cumulative popcount (O(nnz) bit traffic).

        ``sigma`` must be a ±1 spin vector (the ``local_fields``
        contract); arbitrary real inputs go through the inherited
        :meth:`~repro.core.coupling.SparseCouplingOps.matvec`.
        """
        words = pack_spin_rows(np.asarray(sigma)[None, :])[0]
        out = np.empty(self._n, dtype=np.float64)
        return self._packed.packed_fields(words, out)

    def batch_local_fields(self, sigma: np.ndarray) -> np.ndarray:
        """``(R, n)`` local fields via per-replica popcount.

        Returns a C-contiguous tensor (same producer contract as the
        sparse kernels: the field-update scatter aliases it through
        ``reshape(-1)``).
        """
        words = pack_spin_rows(sigma)
        g = np.empty(sigma.shape, dtype=np.float64)
        for r in range(sigma.shape[0]):
            self._packed.packed_fields(words[r], g[r])
        return g

    def make_batch_state(self, sigma: np.ndarray) -> PackedBatchState:
        """Bit-packed replica spin state for the batch engine."""
        return PackedBatchState(self._packed, sigma)

    def memory_bytes(self) -> int:
        """Bytes held by the coupling storage incl. packed structures."""
        return self._packed.memory_bytes()
