"""Simulated-bifurcation (SB) solvers on the coupling-ops stack.

The ferroelectric CiM device lineage has a sibling machine that runs
simulated bifurcation instead of single-flip annealing on the same
crossbar (arXiv 2512.17165): each step evaluates one coupling
matrix–vector product and updates every spin's continuous position at
once.  This module implements the two standard Goto-style variants:

* **bSB** (ballistic): the matvec sees the continuous positions ``x``;
* **dSB** (discrete): the matvec sees the sign readout ``sign(x)`` —
  the stronger Max-Cut heuristic of the two, and the default.

Both integrate the same symplectic-Euler system for ``R`` replicas held
as ``(R, n)`` position/momentum tensors::

    y ← y + dt · [ (a(t) − a0) · x − c0 · (2 J z + h) ]     z = x or sign(x)
    x ← x + dt · a0 · y

with a linear bifurcation-parameter ramp ``a(t): 0 → a0`` and perfectly
inelastic walls: any position crossing ``|x| > 1`` is clamped to the wall
and its momentum zeroed.  ``−(2 J x + h)`` is the exact downhill gradient
of the model energy ``E(σ) = σᵀJσ + hᵀσ``, so minimising ``E`` needs no
sign gymnastics.  The inner loop costs exactly one
:meth:`~repro.core.coupling.DenseCouplingOps.batch_matvec` per step — the
op this PR adds to both coupling backends — so SB inherits the dense /
CSR backend transparency, O(nnz) sparse evaluation and (through
``matvec=``) the tiled crossbar's digitally-combined behavioral MVM.

Reproducibility contract: every non-matvec operation is elementwise, so
for dyadic couplings the dSB trajectory (whose matvec inputs are always
±1) is bit-identical across the dense, sparse and behavioral-tiled
backends; bSB feeds continuous positions whose summation order differs
per backend, so it is bit-identical only while all partial sums are
exactly representable (tests pin both regimes).

Like the flip engines, an optional ``permutation`` declares the model a
relabelled view of the caller's problem: initial positions are drawn in
the caller's original spin space and every returned configuration is
mapped back, so reordered SB solves are layout-independent.

``accepted`` in the returned results counts *wall-contact steps* per
replica (iterations in which at least one position hit the inelastic
wall) — SB has no Metropolis accept/reject, and the wall-hit count is
the closest dynamical analogue of annealing activity.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import BatchAnnealResult
from repro.core.coupling import coupling_ops
from repro.core.results import AnnealResult
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_count, check_permutation, check_positive

#: Accepted spellings of the two variants (canonical names first).
SB_VARIANTS = ("ballistic", "discrete", "bsb", "dsb")

_CANONICAL = {
    "ballistic": "ballistic",
    "bsb": "ballistic",
    "discrete": "discrete",
    "dsb": "discrete",
}

_LABEL = {"ballistic": "bSB", "discrete": "dSB"}


def _sign_readout(x: np.ndarray) -> np.ndarray:
    """±1 spin readout of a position tensor (``sign(0) → +1``)."""
    return np.where(x < 0.0, -1.0, 1.0)


class SbEngine:
    """Batched ballistic / discrete simulated bifurcation.

    Parameters
    ----------
    model:
        The Ising model to minimise — either coupling backend (fields
        supported through the gradient term).
    replicas:
        Number of independent trajectories ``R`` advanced as one
        ``(R, n)`` tensor.
    variant:
        ``"discrete"``/``"dsb"`` (default) or ``"ballistic"``/``"bsb"``.
        The two differ *only* in what the matvec sees (§ module doc).
    dt:
        Symplectic-Euler time step (dyadic default keeps elementwise
        updates exactly representable as long as the inputs are).
    a0:
        Final value of the bifurcation-parameter ramp ``a(t)``.
    c0:
        Coupling strength; ``"auto"`` (default) uses Goto's scaling
        ``0.5 / (rms(2 J_offdiag) · √n)`` over the nonzero off-diagonal
        couplings — the same multiset on both backends, so the auto
        value is backend-independent for dyadic couplings.
    best_every:
        Best-energy readout period.  Defaults to 1 for dSB (its readout
        energy falls out of the step's own matvec for free) and 10 for
        bSB (each readout costs one extra matvec).  The final state is
        always evaluated.
    permutation:
        Optional :class:`~repro.core.reorder.Permutation` (or raw
        forward array) declaring ``model`` a relabelled view; positions
        are drawn and returned in the caller's original spin space.
    matvec:
        Optional override serving the batched coupling product — a
        callable mapping ``(R, n) → (R, n)``.  The tiled-machine path
        passes :meth:`~repro.arch.tiling.TiledCrossbar.batch_matvec`
        here so the SB inner loop runs on the digitally-combined
        behavioral MVM of the crossbar grid.
    seed:
        RNG seed (numpy Generator protocol, as everywhere else).
    """

    def __init__(
        self,
        model,
        replicas: int = 1,
        variant: str = "discrete",
        dt: float = 0.5,
        a0: float = 1.0,
        c0: float | str = "auto",
        best_every: int | None = None,
        permutation=None,
        matvec=None,
        seed=None,
    ) -> None:
        if not isinstance(variant, str) or variant not in _CANONICAL:
            raise ValueError(
                f"unknown variant {variant!r}; choose from {sorted(SB_VARIANTS)}"
            )
        self.variant = _CANONICAL[variant]
        self.model = model
        self.n = model.num_spins
        if self.n < 1:
            raise ValueError("model has no spins; build it from a non-empty problem")
        self.replicas = check_count("replicas", replicas)
        self.dt = check_positive("dt", dt)
        self.a0 = check_positive("a0", a0)
        self._ops = coupling_ops(model)
        self._matvec = matvec if matvec is not None else self._ops.batch_matvec
        if c0 == "auto":
            self.c0 = self._auto_c0()
        else:
            self.c0 = check_positive("c0", c0)
        if best_every is None:
            best_every = 1 if self.variant == "discrete" else 10
        self.best_every = check_count("best_every", best_every)
        self.permutation = permutation
        if permutation is None:
            self._fwd = self._bwd = None
        else:
            self._fwd, self._bwd = check_permutation(permutation, self.n)
        self._rng = ensure_rng(seed)

    @property
    def variant_label(self) -> str:
        """Conventional short name: ``"bSB"`` or ``"dSB"``."""
        return _LABEL[self.variant]

    def _auto_c0(self) -> float:
        """Goto's coupling-strength scaling from the nonzero |J_ij|.

        Both coupling adapters feed the same multiset of nonzero
        off-diagonal magnitudes in (and squares of dyadic values sum
        exactly, order-independently), so the auto value — hence the
        whole trajectory — is backend-independent for dyadic couplings.
        """
        off = self._ops.offdiag_abs_values()
        nonzero = off[off > 0]
        if nonzero.size == 0:
            return 1.0
        rms = float(np.sqrt(np.mean((2.0 * nonzero) ** 2)))
        return 0.5 / (rms * float(np.sqrt(self.n)))

    def _initial_positions(self, initial, rng) -> np.ndarray:
        """(R, n) start positions in the caller's original spin space.

        ``None`` draws uniformly from ``[-0.1, 0.1)``; a ±1 configuration
        of shape ``(n,)`` or ``(R, n)`` seeds positions at a tenth of the
        wall, biasing trajectories toward that configuration's basin.
        """
        R, n = self.replicas, self.n
        if initial is None:
            return rng.uniform(-0.1, 0.1, size=(R, n))
        base = np.asarray(initial, dtype=np.float64)
        if base.shape == (n,):
            base = np.tile(base, (R, 1))
        elif base.shape != (R, n):
            raise ValueError(f"initial must have shape ({n},) or ({R}, {n})")
        if not np.all(np.isin(base, (-1.0, 1.0))):
            raise ValueError(
                "initial entries must be ±1 spins (positions are seeded at "
                "0.1·initial inside the inelastic walls)"
            )
        return 0.1 * base

    def run(self, iterations: int, initial=None) -> BatchAnnealResult:
        """Integrate all replicas for ``iterations`` symplectic steps."""
        iterations = check_count(
            "iterations", iterations,
            hint="the annealers need at least one proposal/accept step",
        )
        rng = self._rng
        R, n = self.replicas, self.n
        h = self.model.h
        has_fields = self.model.has_fields
        offset = self.model.offset
        discrete = self.variant == "discrete"
        dt, a0, c0 = self.dt, self.a0, self.c0

        x = self._initial_positions(initial, rng)
        y = rng.uniform(-0.1, 0.1, size=(R, n))
        if self._bwd is not None:
            # Draws happen in the caller's original spin space; gather
            # into the internal (permuted) ordering the matvec serves.
            x = np.ascontiguousarray(x[:, self._bwd])
            y = np.ascontiguousarray(y[:, self._bwd])

        # Linear pump ramp a(t): 0 → a0, hitting a0 exactly on the last step.
        pump = a0 * (np.arange(iterations) / max(iterations - 1, 1))

        best_energy = np.full(R, np.inf)
        best_sigma = _sign_readout(x)
        accepted = np.zeros(R, dtype=np.int64)

        def readout_energy(sigma, fields):
            e = np.einsum("rn,rn->r", sigma, fields)
            if has_fields:
                e = e + sigma @ h
            return e + offset

        def track_best(sigma, e):
            better = e < best_energy
            if better.any():
                best_energy[better] = e[better]
                best_sigma[better] = sigma[better]

        for it in range(iterations):
            z = _sign_readout(x) if discrete else x
            f = self._matvec(z)  # (R, n) = J z — the step's one matvec
            if discrete:
                # dSB's readout energy falls out of the step's matvec.
                track_best(z, readout_energy(z, f))
            elif it % self.best_every == 0:
                sigma = _sign_readout(x)
                track_best(sigma, readout_energy(sigma, self._matvec(sigma)))
            grad = 2.0 * f + h if has_fields else 2.0 * f
            y += dt * ((pump[it] - a0) * x - c0 * grad)
            x += (dt * a0) * y
            wall = np.abs(x) > 1.0
            if wall.any():
                x[wall] = np.sign(x[wall])
                y[wall] = 0.0
                accepted += wall.any(axis=1)

        # Evaluate the final state (the loop's readouts are pre-update).
        sigma = _sign_readout(x)
        energy = readout_energy(sigma, self._matvec(sigma))
        track_best(sigma, energy)

        if self._fwd is not None:
            sigma = sigma[:, self._fwd]
            best_sigma = best_sigma[:, self._fwd]
        return BatchAnnealResult(
            best_energies=best_energy,
            best_sigmas=best_sigma.astype(np.int8),
            final_energies=energy,
            final_sigmas=sigma.astype(np.int8),
            accepted=accepted,
            iterations=iterations,
        )


def solve_sb(
    model,
    iterations: int,
    seed=None,
    replicas: int | None = None,
    permutation=None,
    matvec=None,
    **engine_kwargs,
) -> AnnealResult | BatchAnnealResult:
    """Run SB and shape the result like the other solver families.

    ``replicas=None`` runs a single trajectory and returns an
    :class:`~repro.core.results.AnnealResult`; an integer returns the
    per-replica :class:`~repro.core.batch.BatchAnnealResult`.  This is
    the dispatch target of ``solve_ising(method="sb")`` — via
    :meth:`repro.core.plan.SolvePlan.execute`, which replays this call
    per run against a pre-compiled model/layout (and, on the tiled path,
    a pre-programmed crossbar's ``batch_matvec``); everything here is
    run-time work, so it is safe to invoke repeatedly on one plan.
    """
    engine = SbEngine(
        model,
        replicas=1 if replicas is None else replicas,
        permutation=permutation,
        matvec=matvec,
        seed=seed,
        **engine_kwargs,
    )
    batch = engine.run(iterations)
    if replicas is not None:
        return batch
    return AnnealResult(
        solver=f"simulated bifurcation ({engine.variant_label})",
        sigma=batch.final_sigmas[0],
        energy=float(batch.final_energies[0]),
        best_sigma=batch.best_sigmas[0],
        best_energy=float(batch.best_energies[0]),
        iterations=batch.iterations,
        accepted=int(batch.accepted[0]),
        uphill_accepted=0,
        uphill_proposals=0,
        metadata={
            "variant": engine.variant,
            "dt": engine.dt,
            "a0": engine.a0,
            "c0": engine.c0,
        },
    )
