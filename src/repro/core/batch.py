"""Vectorised multi-replica in-situ annealing.

The paper's evaluation runs 100 independent annealing runs per instance
(Sec. 4.1).  Running them one by one in Python pays the interpreter
overhead 100×; this module advances ``R`` independent replicas of
Algorithm 1 *simultaneously* with array-wide numpy operations — one
gather/scatter per iteration regardless of R — which speeds Monte-Carlo
protocols up by one to two orders of magnitude.

Semantics match :class:`~repro.core.annealer.InSituAnnealer` with
``flips_per_iteration=1`` (the default operating point): same proposal
modes, same factor/schedule handling, same acceptance rule, per-replica
independent randomness.  (Replica r of a batch is *not* bit-identical to a
sequential run with seed r — RNG streams differ — but the ensembles are
statistically equivalent, which is what Monte-Carlo experiments consume.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coupling import auto_acceptance_scale, coupling_ops
from repro.core.factors import FractionalFactor, VbgEncoder
from repro.core.schedule import Schedule, VbgStepSchedule
from repro.ising.model import IsingModel
from repro.ising.sparse import SparseIsingModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_count


@dataclass
class BatchAnnealResult:
    """Outcome of a replica batch.

    Attributes
    ----------
    best_energies / best_sigmas:
        Per-replica best energy (R,) and configuration (R, n).
    final_energies / final_sigmas:
        Per-replica final state.
    accepted:
        Per-replica acceptance counts.
    iterations:
        Iterations executed (same for all replicas).
    """

    best_energies: np.ndarray
    best_sigmas: np.ndarray
    final_energies: np.ndarray
    final_sigmas: np.ndarray
    accepted: np.ndarray
    iterations: int

    @property
    def num_replicas(self) -> int:
        """Number of replicas ``R``."""
        return self.best_energies.shape[0]

    def best_cuts(self, problem) -> np.ndarray:
        """Per-replica best cut values for a Max-Cut problem."""
        return np.array(
            [problem.cut_from_energy(float(e)) for e in self.best_energies]
        )


class _BatchEngine:
    """Shared vectorised state machine for the batch annealers.

    Subclasses provide the per-iteration accept mask through
    :meth:`_accept`; everything else (state, local-field caching, proposal
    generation, best tracking) is common.
    """

    def _proposal_matrix(self, iterations: int) -> np.ndarray:
        """(iterations, R) spin indices — scan sweeps or uniform draws."""
        rng = self._rng
        if self.proposal == "random":
            return rng.integers(self.n, size=(iterations, self.replicas))
        sweeps = -(-iterations // self.n) + 1
        orders = np.stack(
            [
                np.concatenate([rng.permutation(self.n) for _ in range(sweeps)])
                for _ in range(self.replicas)
            ],
            axis=1,
        )
        return orders[:iterations]

    def _accept(self, cross, field_term, delta_e, temperature, u) -> np.ndarray:
        raise NotImplementedError

    def run(self, iterations: int, initial=None) -> BatchAnnealResult:
        """Advance all replicas for ``iterations`` steps."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        schedule = self._build_schedule(iterations)
        if schedule.iterations != iterations:
            raise ValueError("schedule length does not match iterations")
        rng = self._rng
        ops = coupling_ops(self.model)
        h = self.model.h
        has_fields = self.model.has_fields
        J_diag = ops.diag()
        R, n = self.replicas, self.n

        if initial is None:
            sigma = rng.choice(np.array([-1.0, 1.0]), size=(R, n))
        else:
            base = np.asarray(initial, dtype=np.float64)
            if base.shape == (n,):
                sigma = np.tile(base, (R, 1))
            elif base.shape == (R, n):
                sigma = base.copy()
            else:
                raise ValueError(f"initial must have shape ({n},) or ({R}, {n})")
        g = ops.batch_local_fields(sigma)  # (R, n)
        energy = np.einsum("rn,rn->r", sigma, g) + sigma @ h + self.model.offset
        best_energy = energy.copy()
        best_sigma = sigma.copy()
        accepted = np.zeros(R, dtype=np.int64)
        proposals = self._proposal_matrix(iterations)
        rows = np.arange(R)

        for it in range(iterations):
            temperature = schedule.temperature(it)
            idx = proposals[it]
            sig_f = sigma[rows, idx]
            cross = -sig_f * (g[rows, idx] - J_diag[idx] * sig_f)
            field_term = -h[idx] * sig_f if has_fields else 0.0
            delta_e = 4.0 * cross + 2.0 * field_term
            u = rng.random(R)
            accept = self._accept(cross, field_term, delta_e, temperature, u)
            if accept.any():
                acc = np.flatnonzero(accept)
                cols = idx[acc]
                ops.batch_update_fields(g, acc, cols, sig_f[acc])
                sigma[acc, cols] = -sig_f[acc]
                energy[acc] += delta_e[acc]
                accepted[acc] += 1
                improved = acc[energy[acc] < best_energy[acc]]
                if improved.size:
                    best_energy[improved] = energy[improved]
                    best_sigma[improved] = sigma[improved]

        return BatchAnnealResult(
            best_energies=best_energy,
            best_sigmas=best_sigma.astype(np.int8),
            final_energies=energy,
            final_sigmas=sigma.astype(np.int8),
            accepted=accepted,
            iterations=iterations,
        )


class BatchInSituAnnealer(_BatchEngine):
    """R-replica vectorised in-situ annealer (single-flip moves).

    Parameters
    ----------
    model:
        The Ising model (fields supported; dense or sparse backend).
    replicas:
        Number of independent replicas ``R``.
    factor / schedule / encoder / acceptance_scale / proposal / seed:
        As in :class:`~repro.core.annealer.InSituAnnealer`.
    """

    def __init__(
        self,
        model: IsingModel | SparseIsingModel,
        replicas: int,
        factor: FractionalFactor | None = None,
        schedule: Schedule | None = None,
        encoder: VbgEncoder | None = None,
        acceptance_scale: float | str = "auto",
        proposal: str = "scan",
        seed=None,
    ) -> None:
        if proposal not in ("scan", "random"):
            raise ValueError("proposal must be 'scan' or 'random'")
        self.model = model
        self.n = model.num_spins
        self.replicas = check_count("replicas", replicas)
        self.factor = factor or FractionalFactor()
        self.schedule = schedule
        self.encoder = encoder
        if acceptance_scale == "auto":
            self.acceptance_scale = auto_acceptance_scale(model)
        else:
            self.acceptance_scale = float(acceptance_scale)
            if self.acceptance_scale <= 0:
                raise ValueError("acceptance_scale must be positive")
        self.proposal = proposal
        self._rng = ensure_rng(seed)

    def _factor_at(self, temperature: float) -> float:
        if self.encoder is not None:
            return self.encoder.realized_factor(temperature)
        return float(self.factor.value(np.asarray(temperature)))

    def _build_schedule(self, iterations: int) -> Schedule:
        return self.schedule or VbgStepSchedule(iterations, factor=self.factor)

    def _accept(self, cross, field_term, delta_e, temperature, u) -> np.ndarray:
        f_value = self._factor_at(temperature) * self.acceptance_scale
        e_inc = (cross + np.asarray(field_term) / 2.0) * f_value
        return (e_inc <= 0.0) | (e_inc <= u)


class BatchDirectEAnnealer(_BatchEngine):
    """R-replica vectorised direct-E Metropolis SA (single-flip moves).

    The baseline algorithm at batch throughput — lets the 100-run Fig 10
    protocol run for both solver families.  Parameters mirror
    :class:`~repro.core.sa.DirectEAnnealer`.
    """

    def __init__(
        self,
        model: IsingModel | SparseIsingModel,
        replicas: int,
        schedule: Schedule | None = None,
        proposal: str = "random",
        seed=None,
    ) -> None:
        if proposal not in ("scan", "random"):
            raise ValueError("proposal must be 'scan' or 'random'")
        self.model = model
        self.n = model.num_spins
        self.replicas = check_count("replicas", replicas)
        self.schedule = schedule
        self.proposal = proposal
        self._rng = ensure_rng(seed)

    def _build_schedule(self, iterations: int) -> Schedule:
        if self.schedule is not None:
            return self.schedule
        from repro.core.sa import estimate_temperature_range
        from repro.core.schedule import GeometricSchedule

        t_start, t_end = estimate_temperature_range(self.model, seed=self._rng)
        return GeometricSchedule(iterations, t_start, t_end)

    def _accept(self, cross, field_term, delta_e, temperature, u) -> np.ndarray:
        t = max(float(temperature), 1e-12)
        return (delta_e <= 0.0) | (u < np.exp(-np.maximum(delta_e, 0.0) / t))
