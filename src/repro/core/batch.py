"""Vectorised multi-replica in-situ annealing.

The paper's evaluation runs 100 independent annealing runs per instance
(Sec. 4.1).  Running them one by one in Python pays the interpreter
overhead 100×; this module advances ``R`` independent replicas of
Algorithm 1 *simultaneously* with array-wide numpy operations — one
gather/scatter per iteration regardless of R — which speeds Monte-Carlo
protocols up by one to two orders of magnitude.

Semantics match the sequential annealers for any constant flip-set size
``t = flips_per_iteration >= 1`` (Algorithm 1 is defined for constant
``t = |F|``): same proposal modes, same factor/schedule handling, same
acceptance rule, per-replica independent randomness, and the same
rank-``t`` incremental-E mathematics — each replica of a batch is
bit-identical to a straight-line per-replica reference loop over the
*sequential* coupling ops whenever sums are exact (dyadic couplings;
``tests/test_batch_multiflip.py`` pins this on both backends).  (Replica
r of a batch is *not* bit-identical to a sequential run with seed r — RNG
streams differ — but the ensembles are statistically equivalent, which is
what Monte-Carlo experiments consume.)

Like the sequential annealers, the engines accept a ``permutation``
declaring the model a relabelled view of the caller's problem: proposals
and initial configurations are drawn in the caller's original spin space
and mapped through the permutation, and all returned configurations are
mapped back — so reordered replica solves are layout-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coupling import auto_acceptance_scale, coupling_ops
from repro.core.factors import FractionalFactor, VbgEncoder
from repro.core.proposal import PROPOSAL_MODES, random_flip_sets, scan_order
from repro.core.results import CutNormalization
from repro.core.schedule import Schedule, VbgStepSchedule
from repro.ising.model import IsingModel
from repro.ising.sparse import SparseIsingModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_count, check_permutation


@dataclass
class BatchAnnealResult:
    """Outcome of a replica batch.

    Attributes
    ----------
    best_energies / best_sigmas:
        Per-replica best energy (R,) and configuration (R, n).
    final_energies / final_sigmas:
        Per-replica final state.
    accepted:
        Per-replica acceptance counts.
    iterations:
        Iterations executed (same for all replicas).
    """

    best_energies: np.ndarray
    best_sigmas: np.ndarray
    final_energies: np.ndarray
    final_sigmas: np.ndarray
    accepted: np.ndarray
    iterations: int

    @property
    def num_replicas(self) -> int:
        """Number of replicas ``R``."""
        return self.best_energies.shape[0]

    @property
    def best_replica(self) -> int:
        """Index of the replica holding the overall best energy."""
        return int(np.argmin(self.best_energies))

    @property
    def best_energy(self) -> float:
        """The overall best energy across replicas."""
        return float(self.best_energies[self.best_replica])

    @property
    def best_sigma(self) -> np.ndarray:
        """The overall best configuration across replicas."""
        return self.best_sigmas[self.best_replica]

    def best_cuts(self, problem) -> np.ndarray:
        """Per-replica best cut values for a Max-Cut problem."""
        return np.array(
            [problem.cut_from_energy(float(e)) for e in self.best_energies]
        )


@dataclass
class BatchMaxCutResult(CutNormalization):
    """A :class:`BatchAnnealResult` interpreted against a Max-Cut instance.

    Attributes
    ----------
    anneal:
        The underlying replica-batch result.
    best_cuts:
        Per-replica best cut values (R,).
    reference_cut:
        Best-known cut used for normalisation, if given
        (``normalized_cut`` / ``is_success`` shared with
        :class:`~repro.core.results.MaxCutResult`).
    """

    anneal: BatchAnnealResult
    best_cuts: np.ndarray
    reference_cut: float | None = None

    @property
    def best_cut(self) -> float:
        """The best cut over all replicas (the protocol's reported value)."""
        return float(np.max(self.best_cuts))

    def summary(self) -> str:
        """One-line human-readable summary."""
        norm = self.normalized_cut
        norm_txt = f", normalised {norm:.3f}" if norm is not None else ""
        return (
            f"{self.anneal.num_replicas} replicas: best cut {self.best_cut:g} "
            f"(mean {float(np.mean(self.best_cuts)):g}){norm_txt}"
        )


class _BatchEngine:
    """Shared vectorised state machine for the batch annealers.

    Subclasses provide the per-iteration accept mask through
    :meth:`_accept`; everything else (state, local-field caching, rank-t
    proposal generation, best tracking, permutation mapping) is common.
    """

    def _init_common(
        self, model, replicas, flips_per_iteration, proposal, permutation, seed
    ) -> None:
        if proposal not in PROPOSAL_MODES:
            raise ValueError("proposal must be 'scan' or 'random'")
        self.model = model
        self.n = model.num_spins
        self.replicas = check_count("replicas", replicas)
        t = check_count("flips_per_iteration", flips_per_iteration)
        if t > self.n:
            raise ValueError(
                f"flips_per_iteration must be in [1, {self.n}], got {t}"
            )
        self.flips_per_iteration = t
        self.proposal = proposal
        self.permutation = permutation
        if permutation is None:
            self._fwd = self._bwd = None
        else:
            self._fwd, self._bwd = check_permutation(permutation, self.n)
        self._rng = ensure_rng(seed)

    def _proposal_tensor(self, iterations: int) -> np.ndarray:
        """(iterations, R, t) spin indices — scan sweeps or uniform draws.

        Indices are unique within each ``(iteration, replica)`` flip set
        and drawn in the caller's original spin space (mirroring
        :class:`~repro.core.proposal.FlipSelector` semantics, including the
        straddle-safe per-sweep carry); :meth:`run` maps them through the
        permutation.  For ``t == 1`` the RNG stream is identical to the
        historical single-flip engine.
        """
        rng = self._rng
        R, t = self.replicas, self.flips_per_iteration
        if self.proposal == "random":
            if t == 1:
                return rng.integers(self.n, size=(iterations, R))[..., None]
            flat = random_flip_sets(rng, self.n, iterations * R, t)
            return flat.reshape(iterations, R, t)
        streams = [
            scan_order(self.n, t, iterations * t, rng).reshape(iterations, t)
            for _ in range(R)
        ]
        return np.stack(streams, axis=1)

    def _accept(self, cross, field_term, delta_e, temperature, u) -> np.ndarray:
        raise NotImplementedError

    def _initial_sigma(self, initial, rng) -> np.ndarray:
        """Validated (R, n) ±1 start state, in the caller's original space."""
        R, n = self.replicas, self.n
        if initial is None:
            return rng.choice(np.array([-1.0, 1.0]), size=(R, n))
        base = np.asarray(initial, dtype=np.float64)
        if base.shape == (n,):
            sigma = np.tile(base, (R, 1))
        elif base.shape == (R, n):
            # C order even for an F-ordered caller array: the sparse
            # field-update scatter aliases g through reshape(-1).
            sigma = np.ascontiguousarray(base)
            sigma = sigma.copy() if sigma is base else sigma
        else:
            raise ValueError(f"initial must have shape ({n},) or ({R}, {n})")
        bad = ~np.isin(sigma, (-1.0, 1.0))
        if bad.any():
            r, j = np.argwhere(bad)[0]
            raise ValueError(
                f"initial entries must be ±1; replica {r} has "
                f"{sigma[r, j]!r} at spin {j} (a non-spin value would corrupt "
                f"the cached local fields and return wrong energies)"
            )
        return sigma

    def run(self, iterations: int, initial=None) -> BatchAnnealResult:
        """Advance all replicas for ``iterations`` steps.

        Parameters
        ----------
        iterations:
            Proposal/accept steps (validated like the solve API — bools and
            non-positive counts are rejected with an actionable error).
        initial:
            Optional ±1 start configuration, shape (n,) (broadcast to all
            replicas) or (R, n) (one per replica), in the caller's original
            spin space when a permutation is set.
        """
        iterations = check_count(
            "iterations", iterations,
            hint="the annealers need at least one proposal/accept step",
        )
        schedule = self._build_schedule(iterations)
        if schedule.iterations != iterations:
            raise ValueError("schedule length does not match iterations")
        rng = self._rng
        ops = coupling_ops(self.model)
        h = self.model.h
        has_fields = self.model.has_fields
        R, n = self.replicas, self.n

        sigma = self._initial_sigma(initial, rng)
        if self._bwd is not None:
            # The random draw and a caller-supplied `initial` are in the
            # original spin space; gather into the internal ordering.  The
            # gather returns an F-ordered view — restore C order so the
            # cached-field scatter updates alias instead of copying.
            sigma = np.ascontiguousarray(sigma[:, self._bwd])
        # The replica spin tensor's layout is the backend's business:
        # FloatBatchState keeps the historical float (R, n) tensor
        # (dense/sparse trajectories byte-for-byte unchanged),
        # PackedBatchState holds uint64 words with XOR flips.  The
        # initial-energy einsum runs on the float draw before any flip,
        # so it is valid for every state layout.
        state = ops.make_batch_state(sigma)
        g = state.fields  # (R, n)
        energy = np.einsum("rn,rn->r", sigma, g) + sigma @ h + self.model.offset
        best_energy = energy.copy()
        accepted = np.zeros(R, dtype=np.int64)
        del sigma  # the state owns the replica spins from here on
        proposals = self._proposal_tensor(iterations)
        if self._fwd is not None:
            proposals = self._fwd[proposals]
        rows = np.arange(R)[:, None]

        for it in range(iterations):
            temperature = schedule.temperature(it)
            idx = proposals[it]  # (R, t)
            sig_f = state.gather(rows, idx)
            cross = ops.batch_cross_term(g, idx, sig_f)
            field_term = -(h[idx] * sig_f).sum(axis=1) if has_fields else 0.0
            delta_e = 4.0 * cross + 2.0 * field_term
            u = rng.random(R)
            accept = self._accept(cross, field_term, delta_e, temperature, u)
            if accept.any():
                acc = np.flatnonzero(accept)
                cols = idx[acc]
                vals = sig_f[acc]
                ops.batch_update_fields(g, acc, cols, vals)
                state.flip(acc, cols, vals)
                energy[acc] += delta_e[acc]
                accepted[acc] += 1
                improved = acc[energy[acc] < best_energy[acc]]
                if improved.size:
                    best_energy[improved] = energy[improved]
                    state.record_best(improved)

        # Readouts hand configurations back in the caller's original
        # ordering (the state applies the forward permutation, if any).
        return BatchAnnealResult(
            best_energies=best_energy,
            best_sigmas=state.best_sigmas(self._fwd),
            final_energies=energy,
            final_sigmas=state.final_sigmas(self._fwd),
            accepted=accepted,
            iterations=iterations,
        )


class BatchInSituAnnealer(_BatchEngine):
    """R-replica vectorised in-situ annealer (rank-``t`` moves).

    Parameters
    ----------
    model:
        The Ising model (fields supported; dense or sparse backend).
    replicas:
        Number of independent replicas ``R``.
    flips_per_iteration:
        ``t = |F|``, the constant flip-set size shared by all replicas
        (as in :class:`~repro.core.annealer.InSituAnnealer`).
    factor / schedule / encoder / acceptance_scale / proposal / seed:
        As in :class:`~repro.core.annealer.InSituAnnealer`.
    permutation:
        Optional :class:`~repro.core.reorder.Permutation` (or raw forward
        array) declaring ``model`` a relabelled view; proposals and
        configurations stay in the caller's original spin space.
    """

    def __init__(
        self,
        model: IsingModel | SparseIsingModel,
        replicas: int,
        flips_per_iteration: int = 1,
        factor: FractionalFactor | None = None,
        schedule: Schedule | None = None,
        encoder: VbgEncoder | None = None,
        acceptance_scale: float | str = "auto",
        proposal: str = "scan",
        permutation=None,
        seed=None,
    ) -> None:
        self._init_common(
            model, replicas, flips_per_iteration, proposal, permutation, seed
        )
        self.factor = factor or FractionalFactor()
        self.schedule = schedule
        self.encoder = encoder
        if acceptance_scale == "auto":
            self.acceptance_scale = auto_acceptance_scale(model)
        else:
            self.acceptance_scale = float(acceptance_scale)
            if self.acceptance_scale <= 0:
                raise ValueError("acceptance_scale must be positive")

    def _factor_at(self, temperature: float) -> float:
        if self.encoder is not None:
            return self.encoder.realized_factor(temperature)
        return float(self.factor.value(np.asarray(temperature)))

    def _build_schedule(self, iterations: int) -> Schedule:
        return self.schedule or VbgStepSchedule(iterations, factor=self.factor)

    def _accept(self, cross, field_term, delta_e, temperature, u) -> np.ndarray:
        # Same association as the sequential rule — (x · f) · scale, not
        # x · (f · scale) — so accept decisions match the sequential
        # annealer to the last ulp at the comparison boundary.
        f_value = self._factor_at(temperature)
        e_inc = (
            (cross + np.asarray(field_term) / 2.0)
            * f_value
            * self.acceptance_scale
        )
        return (e_inc <= 0.0) | (e_inc <= u)


class BatchDirectEAnnealer(_BatchEngine):
    """R-replica vectorised direct-E Metropolis SA (rank-``t`` moves).

    The baseline algorithm at batch throughput — lets the 100-run Fig 10
    protocol run for both solver families.  Parameters mirror
    :class:`~repro.core.sa.DirectEAnnealer` (plus ``replicas`` and
    ``permutation`` as in :class:`BatchInSituAnnealer`).
    """

    def __init__(
        self,
        model: IsingModel | SparseIsingModel,
        replicas: int,
        flips_per_iteration: int = 1,
        schedule: Schedule | None = None,
        proposal: str = "random",
        permutation=None,
        seed=None,
    ) -> None:
        self._init_common(
            model, replicas, flips_per_iteration, proposal, permutation, seed
        )
        self.schedule = schedule

    def _build_schedule(self, iterations: int) -> Schedule:
        if self.schedule is not None:
            return self.schedule
        from repro.core.sa import estimate_temperature_range
        from repro.core.schedule import GeometricSchedule

        t_start, t_end = estimate_temperature_range(
            self.model, seed=self._rng, permutation=self.permutation
        )
        return GeometricSchedule(iterations, t_start, t_end)

    def _accept(self, cross, field_term, delta_e, temperature, u) -> np.ndarray:
        t = max(float(temperature), 1e-12)
        return (delta_e <= 0.0) | (u < np.exp(-np.maximum(delta_e, 0.0) / t))
