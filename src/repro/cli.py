"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands
--------
``generate``  write a synthetic Gset-class instance to a file
``solve``     solve a Gset-format Max-Cut instance with a chosen annealer
``compare``   run all three machines on an instance and print the ledgers
``curves``    print the device transfer curves behind Fig 2/6
``suite``     list the 30-instance paper evaluation suite
``serve``     run the multi-tenant batching solver service (JSON lines/TCP)
``submit``    submit one instance to a running service (or query stats)
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_generate(args) -> int:
    from repro.ising import generate_random, generate_skew, generate_toroidal, write_gset

    if args.family == "random":
        problem = generate_random(args.nodes, args.edges, args.weighted, args.seed)
    elif args.family == "skew":
        problem = generate_skew(args.nodes, args.edges, args.weighted, args.seed)
    else:
        side = int(round(args.nodes**0.5))
        problem = generate_toroidal(side, args.nodes // side, args.weighted, args.seed)
    write_gset(problem, args.output)
    print(f"wrote {problem.name}: n={problem.num_nodes} m={problem.num_edges} "
          f"-> {args.output}")
    return 0


def _cmd_solve(args) -> int:
    from repro.analysis import compute_reference_cut
    from repro.core import solve_maxcut
    from repro.ising import parse_gset

    problem = parse_gset(args.instance, name=args.instance)
    reference = None
    if args.reference:
        reference = compute_reference_cut(problem, restarts=2)
    if args.method == "sb":
        # SB integrates positions instead of proposing flip sets, so the
        # flip-count knob does not apply; the variant knob does.
        solver_kwargs = {"variant": args.sb_variant}
    else:
        solver_kwargs = {"flips_per_iteration": args.flips}
    if args.repeat != 1:
        return _solve_repeat(args, problem, reference, solver_kwargs)
    result = solve_maxcut(
        problem,
        method=args.method,
        iterations=args.iterations,
        seed=args.seed,
        reference_cut=reference,
        backend=args.backend,
        tile_size=args.tile_size,
        reorder=args.reorder,
        replicas=args.replicas,
        **solver_kwargs,
    )
    print(result.summary())
    if reference is not None:
        print(f"reference cut {reference:g}; success(≥0.9): {result.is_success()}")
    if args.partition:
        left, right = problem.partition(result.anneal.best_sigma)
        print(f"partition sizes: {len(left)} / {len(right)}")
    return 0


def _solve_repeat(args, problem, reference, solver_kwargs) -> int:
    """Seed-sweep on one compiled plan: setup once, anneal ``--repeat`` times.

    The expensive half of a solve (backend promotion, layout race,
    quantization, tile programming) runs once in ``compile_plan``; every
    run then replays ``plan.execute`` under seeds ``seed .. seed+N-1``.
    Results are bit-identical to N independent ``repro solve`` calls with
    those seeds for exactly-representable couplings.
    """
    from repro.core import compile_plan
    from repro.utils.validation import check_count

    repeat = check_count(
        "repeat", args.repeat, hint="a seed sweep needs at least one run"
    )
    model = problem.to_ising(backend=args.backend)
    plan = compile_plan(
        model,
        method=args.method,
        tile_size=args.tile_size,
        reorder=args.reorder,
        replicas=args.replicas,
        seed=args.seed,
        **solver_kwargs,
    )
    print("plan: " + ", ".join(f"{k}={v}" for k, v in plan.summary().items()))
    cuts = []
    best_sigma = None
    for i in range(repeat):
        seed = args.seed + i
        result = plan.execute(args.iterations, seed=seed)
        if args.replicas is not None:
            run_cuts = result.best_cuts(problem)
            run_cut = float(run_cuts.max())
            run_sigma = result.best_sigmas[int(np.argmax(run_cuts))]
        else:
            run_cut = problem.cut_from_energy(result.best_energy)
            run_sigma = result.best_sigma
        if not cuts or run_cut > max(cuts):
            best_sigma = run_sigma
        cuts.append(run_cut)
        print(f"run {i + 1}/{repeat}: seed={seed} best cut {run_cut:g}")
    best = max(cuts)
    mean = sum(cuts) / len(cuts)
    print(f"repeat sweep: best cut {best:g}, mean {mean:g} over {repeat} runs")
    if reference is not None:
        print(f"reference cut {reference:g}; "
              f"success(≥0.9): {best >= 0.9 * reference}")
    if args.partition:
        left, right = problem.partition(best_sigma)
        print(f"partition sizes: {len(left)} / {len(right)}")
    return 0


def _cmd_compare(args) -> int:
    from repro.arch import DirectECimAnnealer, HardwareConfig, InSituCimAnnealer
    from repro.ising import parse_gset
    from repro.utils.tables import render_table
    from repro.utils.units import format_energy, format_time

    problem = parse_gset(args.instance, name=args.instance)
    model = problem.to_ising()
    machines = {
        "This work": InSituCimAnnealer(model, seed=args.seed),
        "CiM/FPGA": DirectECimAnnealer(model, HardwareConfig.baseline_fpga(), seed=args.seed),
        "CiM/ASIC": DirectECimAnnealer(model, HardwareConfig.baseline_asic(), seed=args.seed),
    }
    rows = []
    ours_energy = ours_time = None
    for label, machine in machines.items():
        result = machine.run(args.iterations)
        cut = problem.cut_from_energy(result.anneal.best_energy)
        if ours_energy is None:
            ours_energy, ours_time = result.annealing_energy, result.annealing_time
        rows.append(
            (
                label,
                f"{cut:g}",
                format_energy(result.annealing_energy),
                format_time(result.annealing_time),
                f"{result.annealing_energy / ours_energy:.0f}x",
                f"{result.annealing_time / ours_time:.2f}x",
            )
        )
    print(render_table(
        ["machine", "best cut", "energy", "time", "E ratio", "t ratio"],
        rows,
        title=f"{problem.name} — {args.iterations} iterations",
    ))
    return 0


def _cmd_curves(args) -> int:
    from repro.devices import DGFeFET, FeFET
    from repro.utils.tables import render_series

    if args.device == "fefet":
        fefet = FeFET()
        vg = np.linspace(-0.5, 1.5, args.points)
        fefet.program_bit(1)
        on = fefet.id_vg(vg)
        fefet.program_bit(0)
        off = fefet.id_vg(vg)
        print(render_series(
            "V_G (V)", [float(v) for v in vg],
            {"low-VTH (A)": on.tolist(), "high-VTH (A)": off.tolist()},
            title="FeFET I_D-V_G (Fig 2b)", float_fmt="{:.3e}",
        ))
    else:
        cell = DGFeFET()
        cell.program_bit(1)
        vbg = np.linspace(0.0, 0.7, args.points)
        isl = cell.isl_vbg(vbg)
        norm = cell.normalized_factor(vbg)
        print(render_series(
            "V_BG (V)", [float(v) for v in vbg],
            {"I_SL (A)": isl.tolist(), "normalised": norm.tolist()},
            title="DG FeFET I_SL-V_BG (Fig 6b/6c)", float_fmt="{:.3e}",
        ))
    return 0


def _cmd_suite(args) -> int:
    from repro.ising import paper_instance_suite
    from repro.utils.tables import render_table

    rows = [
        (s.name, s.nodes, s.family, s.edges, s.weighted, s.seed, s.iterations)
        for s in paper_instance_suite()
    ]
    print(render_table(
        ["name", "nodes", "family", "edges", "±1", "seed", "iterations"],
        rows,
        title="Paper evaluation suite (30 instances)",
    ))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.protocol import start_server
    from repro.serve.service import SolverService, service_config

    config = service_config(
        max_queue=args.max_queue,
        max_batch_jobs=args.max_batch_jobs,
        gather_window=args.gather_window,
        plan_cache_size=args.plan_cache_size,
    )

    async def run() -> None:
        async with SolverService(config) as service:
            server = await start_server(service, args.host, args.port)
            addr = server.sockets[0].getsockname()
            print(f"repro serve listening on {addr[0]}:{addr[1]} "
                  f"(max_queue={config.max_queue}, "
                  f"max_batch_jobs={config.max_batch_jobs}, "
                  f"gather_window={config.gather_window}s)")
            async with server:
                await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("repro serve: stopped")
    return 0


def _cmd_submit(args) -> int:
    from repro.serve.protocol import request

    if args.stats:
        response = request({"op": "stats"}, args.host, args.port)
        if not response.get("ok"):
            print(f"error: {response.get('error')}", file=sys.stderr)
            return 2
        for key, value in response["stats"].items():
            print(f"{key}: {value}")
        return 0
    if args.instance is None:
        print("error: provide an instance file (or --stats)", file=sys.stderr)
        return 2
    with open(args.instance, encoding="utf-8") as handle:
        source = handle.read()
    payload = {
        "op": "solve",
        "job_id": args.job_id if args.job_id else args.instance,
        "gset": source,
        "method": args.method,
        "iterations": args.iterations,
        "replicas": args.replicas,
        "flips": args.flips,
        "seed": args.seed,
        "backend": args.backend,
    }
    response = request(payload, args.host, args.port)
    if not response.get("ok"):
        print(f"error: {response.get('error')}", file=sys.stderr)
        return 2
    print(f"{response['job_id']}: best_cut={response['best_cut']:g} "
          f"best_energy={response['best_energy']:g} "
          f"replicas={response['replicas']} "
          f"{'packed' if response['packed'] else 'solo'} "
          f"batch_size={response['batch_size']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ferroelectric CiM in-situ annealer (DAC 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a Gset-class instance")
    gen.add_argument("output", help="output path (Gset text format)")
    gen.add_argument("--nodes", type=int, default=800)
    gen.add_argument("--edges", type=int, default=19_176)
    gen.add_argument("--family", choices=("random", "skew", "toroidal"), default="random")
    gen.add_argument("--weighted", action="store_true", help="±1 edge weights")
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    solve = sub.add_parser("solve", help="solve a Gset-format instance")
    solve.add_argument("instance", help="path to a Gset file")
    solve.add_argument("--method", choices=("insitu", "sa", "mesa", "sb"),
                       default="insitu",
                       help="annealer family (sb = simulated bifurcation: "
                            "one coupling matvec per step, all spins move "
                            "at once — strongest on dense-ish instances)")
    solve.add_argument("--sb-variant", choices=("ballistic", "discrete"),
                       default="discrete", metavar="V",
                       help="SB flavour when --method sb: 'discrete' (dSB, "
                            "default) feeds the matvec sign readouts, "
                            "'ballistic' (bSB) feeds continuous positions")
    solve.add_argument("--backend", choices=("auto", "dense", "sparse", "packed"),
                       default="auto",
                       help="coupling backend (auto = density heuristic, "
                            "promoting to bit-packed 'packed' when all "
                            "couplings share one ±magnitude; packed is "
                            "bit-identical to sparse at a fraction of the "
                            "replica state traffic)")
    solve.add_argument("--tile-size", type=int, default=None, metavar="S",
                       help="solve on the tiled crossbar machine with S-row "
                            "arrays (insitu and sb; sparse models shard "
                            "from CSR without densifying)")
    solve.add_argument("--reorder",
                       choices=("none", "rcm", "partition", "auto"),
                       default="none",
                       help="spin reordering ahead of tiling (rcm = "
                            "Reverse Cuthill-McKee for banded structure; "
                            "partition = multilevel min-cut blocks for "
                            "clustered structure, needs --tile-size; auto "
                            "scores both by active-tile count and keeps "
                            "the winner only when it shrinks the layout); "
                            "solutions are mapped back to the input order")
    solve.add_argument("--iterations", type=int, default=10_000)
    solve.add_argument("--flips", type=int, default=1,
                       help="flip-set size t per proposal (sequential and "
                            "replica-batch paths alike)")
    solve.add_argument("--replicas", type=int, default=None, metavar="R",
                       help="run R vectorised annealing replicas at once "
                            "(insitu/sa/sb; reports best and mean cut over "
                            "the batch)")
    solve.add_argument("--repeat", type=int, default=1, metavar="N",
                       help="compile the solve once and execute it N times "
                            "under seeds seed..seed+N-1 (plan reuse: the "
                            "layout race, quantization and tile programming "
                            "are paid once; per-run results are bit-"
                            "identical to N separate solves)")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--reference", action="store_true",
                       help="also compute a best-known reference cut")
    solve.add_argument("--partition", action="store_true",
                       help="print the partition sizes")
    solve.set_defaults(func=_cmd_solve)

    cmp_ = sub.add_parser("compare", help="run the three machines on an instance")
    cmp_.add_argument("instance", help="path to a Gset file")
    cmp_.add_argument("--iterations", type=int, default=1_000)
    cmp_.add_argument("--seed", type=int, default=0)
    cmp_.set_defaults(func=_cmd_compare)

    curves = sub.add_parser("curves", help="print device transfer curves")
    curves.add_argument("--device", choices=("fefet", "dgfefet"), default="dgfefet")
    curves.add_argument("--points", type=int, default=15)
    curves.set_defaults(func=_cmd_curves)

    suite = sub.add_parser("suite", help="list the paper evaluation suite")
    suite.set_defaults(func=_cmd_suite)

    serve = sub.add_parser(
        "serve", help="run the multi-tenant batching solver service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7421)
    serve.add_argument("--max-queue", type=int, default=256, metavar="N",
                       help="bounded job-queue depth (backpressure past it)")
    serve.add_argument("--max-batch-jobs", type=int, default=64, metavar="K",
                       help="most jobs packed into one block-stacked run")
    serve.add_argument("--gather-window", type=float, default=0.002,
                       metavar="SEC",
                       help="how long to gather more jobs after the first "
                            "before launching a batch")
    serve.add_argument("--plan-cache-size", type=int, default=32, metavar="N",
                       help="LRU slots of the solo-path plan cache")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit an instance to a running service"
    )
    submit.add_argument("instance", nargs="?", default=None,
                        help="path to a Gset file (omit with --stats)")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7421)
    submit.add_argument("--job-id", default=None,
                        help="job id echoed in results/errors "
                             "(default: the instance path)")
    submit.add_argument("--method", choices=("insitu", "sa", "sb"),
                        default="insitu")
    submit.add_argument("--iterations", type=int, default=1000)
    submit.add_argument("--replicas", type=int, default=1, metavar="R",
                        help="independent trajectories (per-job cap applies)")
    submit.add_argument("--flips", type=int, default=1, metavar="T",
                        help="spin-flip proposals per iteration (rank-T)")
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--backend",
                        choices=("auto", "dense", "sparse", "packed"),
                        default="auto")
    submit.add_argument("--stats", action="store_true",
                        help="print service/plan-cache counters and exit")
    submit.set_defaults(func=_cmd_submit)
    return parser


def main(argv=None) -> int:
    """CLI entry point.

    Validation errors from the solve API (bad iteration counts, unknown
    methods/backends, malformed instances) surface as a one-line message
    and exit code 2 instead of a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
