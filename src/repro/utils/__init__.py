"""Shared utilities: seeded RNG handling, units, validation and tables.

These helpers are deliberately small and dependency-free so that every other
sub-package (``ising``, ``devices``, ``circuits``, ``core``, ``arch``,
``analysis``) can build on them without import cycles.
"""

from repro.utils.guards import forbid_densification
from repro.utils.rng import RngLike, ensure_rng, spawn_rng
from repro.utils.units import (
    FEMTO,
    GIGA,
    KILO,
    MEGA,
    MICRO,
    MILLI,
    NANO,
    PICO,
    format_energy,
    format_time,
    from_si,
    to_si,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_spin_vector,
    check_square_symmetric,
)

__all__ = [
    "RngLike",
    "ensure_rng",
    "forbid_densification",
    "spawn_rng",
    "FEMTO",
    "PICO",
    "NANO",
    "MICRO",
    "MILLI",
    "KILO",
    "MEGA",
    "GIGA",
    "from_si",
    "to_si",
    "format_energy",
    "format_time",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_spin_vector",
    "check_square_symmetric",
]
