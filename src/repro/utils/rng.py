"""Random-number-generator plumbing.

Every stochastic component in the library accepts either ``None`` (fresh
entropy), an integer seed, or an existing :class:`numpy.random.Generator`.
Routing all of them through :func:`ensure_rng` keeps experiments reproducible:
a bench that passes ``seed=7`` gets the same instance set, the same annealing
trajectory and the same device-variation draw on every run.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

#: Anything :func:`ensure_rng` accepts.  A real union (not a string
#: constant) so type checkers resolve it through the package's
#: ``py.typed`` marker.
RngLike: TypeAlias = (
    int | np.random.Generator | np.random.SeedSequence | None
)


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so callers can share
        streams).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {type(seed).__name__!r}")


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent child generators.

    Used by the experiment runner so that per-run streams do not depend on how
    many iterations earlier runs consumed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
