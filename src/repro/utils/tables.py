"""Plain-text table rendering for benches and the CLI.

The benchmark harness regenerates the paper's tables and figure series as
aligned ASCII tables; this module is the single place that formats them so
all benches produce a consistent look.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    Returns the table as a single string (callers ``print`` it).
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(
    x_label: str,
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render one or more y-series against a shared x axis (a 'figure').

    This is how benches print the data behind the paper's line plots
    (e.g. Fig 8b energy-vs-iteration trends).
    """
    headers = [x_label, *series.keys()]
    columns = [x_values, *series.values()]
    lengths = {len(c) for c in columns}
    if len(lengths) != 1:
        raise ValueError(f"all series must share the x grid, got lengths {lengths}")
    rows = list(zip(*columns))
    return render_table(headers, rows, title=title, float_fmt=float_fmt)
