"""SI-prefix constants and human-readable formatting of energies/times.

All internal bookkeeping in :mod:`repro.arch` is done in base SI units
(joules, seconds, volts, amperes).  These helpers convert to and from the
prefixed figures used in the paper (pJ, nJ, µJ, ns, µs, ms).
"""

from __future__ import annotations

FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

_PREFIXES = [
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "µ"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
]


def to_si(value: float, prefix: float) -> float:
    """Convert ``value`` expressed in ``prefix`` units to base SI units.

    Example: ``to_si(0.25, PICO)`` → ``2.5e-13`` (0.25 pJ in joules).
    """
    return value * prefix


def from_si(value: float, prefix: float) -> float:
    """Convert a base-SI ``value`` into ``prefix`` units.

    Example: ``from_si(2.5e-13, PICO)`` → ``0.25``.
    """
    return value / prefix


def _format_quantity(value: float, unit: str) -> str:
    """Render ``value`` (base SI) with the best-matching SI prefix."""
    if value == 0:
        return f"0 {unit}"
    magnitude = abs(value)
    best_scale, best_prefix = _PREFIXES[0]
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            best_scale, best_prefix = scale, prefix
    return f"{value / best_scale:.3g} {best_prefix}{unit}"


def format_energy(joules: float) -> str:
    """Format an energy in joules, e.g. ``format_energy(2.5e-9) == '2.5 nJ'``."""
    return _format_quantity(joules, "J")


def format_time(seconds: float) -> str:
    """Format a time in seconds, e.g. ``format_time(4.6e-3) == '4.6 ms'``."""
    return _format_quantity(seconds, "s")
