"""Argument-validation helpers shared across the library.

The device and circuit models are easy to misuse silently (e.g. passing a
0/1 vector where a ±1 spin vector is expected).  These checks raise early
with actionable messages instead of producing subtly wrong physics.
"""

from __future__ import annotations

import operator

import numpy as np


def check_positive(name: str, value: float, allow_zero: bool = False) -> float:
    """Validate that a scalar parameter is positive (or non-negative)."""
    value = float(value)
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_count(name: str, value, minimum: int = 1, hint: str = "") -> int:
    """Validate an integer count parameter (iterations, replicas, …).

    Rejects ``bool`` explicitly — ``True`` is an ``int`` subclass and used
    to slip through ``operator.index`` as a silent count of 1 — and accepts
    integer-valued floats (``1e4``) for convenience.  Raises ``ValueError``
    with an actionable message otherwise.
    """
    if isinstance(value, bool):
        raise ValueError(
            f"{name} must be an integer, got {value!r} (a bool would silently "
            f"run as {int(value)}); pass an explicit count"
        )
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    try:
        value = operator.index(value)
    except TypeError:
        raise ValueError(f"{name} must be an integer, got {value!r}") from None
    if value < minimum:
        suffix = f"; {hint}" if hint else ""
        raise ValueError(f"{name} must be >= {minimum}, got {value}{suffix}")
    return value


def check_index(name: str, value, n: int) -> int:
    """Validate a spin/array index parameter against ``[0, n)``.

    Same bool/non-integer rejection as :func:`check_count` — ``True``
    used to slip through ``0 <= index < n`` and silently flip spin 1 —
    but with the half-open range bound of an index rather than a count's
    minimum.  Type misuse raises ``ValueError`` (matching the other
    ``check_*`` helpers); an integer outside ``[0, n)`` raises
    ``IndexError`` (matching Python indexing semantics).
    """
    if isinstance(value, bool):
        raise ValueError(
            f"{name} must be an integer index, got {value!r} (a bool would "
            f"silently act as index {int(value)}); pass an explicit index"
        )
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    try:
        value = operator.index(value)
    except TypeError:
        raise ValueError(
            f"{name} must be an integer index, got {value!r}"
        ) from None
    if not 0 <= value < n:
        raise IndexError(f"{name} must be in [0, {n}), got {value}")
    return value


def check_real(name: str, value) -> float:
    """Validate a real-number parameter (reference cuts, thresholds, …).

    Mirrors :func:`check_count`'s message shape: rejects ``bool`` (which
    would silently act as 0.0/1.0), strings and anything else that is not
    a real number, and rejects non-finite values (a NaN reference would
    poison every normalised quantity downstream without an error).
    """
    if isinstance(value, bool):
        raise ValueError(
            f"{name} must be a number, got {value!r} (a bool would silently "
            f"act as {float(value):g}); pass an explicit value"
        )
    if isinstance(value, str) or isinstance(value, complex):
        raise ValueError(f"{name} must be a number, got {value!r}")
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be a number, got {value!r}") from None
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_choice(name: str, value, choices) -> str:
    """Validate a string-valued mode parameter against its choice set.

    Raises ``ValueError`` naming the full choice set — unknown mode names
    (``backend="csr"``, ``reorder="zigzag"``) fail at the API boundary
    with the valid spellings instead of deep inside a dispatch table.
    """
    if not isinstance(value, str) or value not in choices:
        raise ValueError(
            f"unknown {name} {value!r}; choose from {sorted(choices)}"
        )
    return value


def check_permutation(perm, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Validate a spin permutation and return ``(forward, backward)`` arrays.

    ``perm`` is either a raw array-like or any object exposing a
    ``forward`` attribute (e.g. :class:`repro.core.reorder.Permutation`).
    ``forward[old] = new`` maps original spin indices to reordered
    positions; ``backward`` is its inverse (``backward[new] = old``).
    """
    fwd = np.asarray(getattr(perm, "forward", perm), dtype=np.intp)
    if fwd.ndim != 1 or fwd.shape[0] != n:
        raise ValueError(
            f"permutation must be a 1-D array of length {n}, got shape "
            f"{fwd.shape}"
        )
    if fwd.size and (fwd.min() < 0 or fwd.max() >= n):
        raise ValueError(f"permutation entries must lie in [0, {n})")
    if np.any(np.bincount(fwd, minlength=n) != 1):
        raise ValueError(
            "permutation must map each spin to a distinct position "
            "(duplicate or missing targets found)"
        )
    bwd = np.empty(n, dtype=np.intp)
    bwd[fwd] = np.arange(n, dtype=np.intp)
    return fwd, bwd


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    value = float(value)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_spin_vector(sigma, n: int | None = None) -> np.ndarray:
    """Validate and return a ±1 spin vector as an ``int8`` array.

    Parameters
    ----------
    sigma:
        Array-like of ±1 entries.
    n:
        Expected length; checked when given.
    """
    arr = np.asarray(sigma)
    if arr.ndim != 1:
        raise ValueError(f"spin vector must be 1-D, got shape {arr.shape}")
    if n is not None and arr.shape[0] != n:
        raise ValueError(f"spin vector must have length {n}, got {arr.shape[0]}")
    if not np.all(np.isin(arr, (-1, 1))):
        bad = arr[~np.isin(arr, (-1, 1))]
        raise ValueError(f"spin vector entries must be ±1, found {bad[:5]!r}")
    return arr.astype(np.int8, copy=False)


def check_square_symmetric(matrix, name: str = "J", atol: float = 1e-9) -> np.ndarray:
    """Validate and return a square symmetric float matrix.

    The incremental-E identity (Eq. 9 of the paper) requires a symmetric
    coupling matrix; silently accepting an asymmetric one would make the
    CiM result disagree with the direct energy difference.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    if not np.allclose(arr, arr.T, atol=atol):
        raise ValueError(f"{name} must be symmetric (|J - J.T| <= {atol})")
    return arr
