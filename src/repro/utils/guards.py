"""Runtime guards for the repository's correctness contracts.

:func:`forbid_densification` is the runtime twin of the static RPL001
lint rule: where the linter bans densifying *call sites* at review time,
the guard traps densifying *code paths* at run time.  The scaling
benches run entire solves under it, and the serving layer can wrap
request handling the same way so a future refactor cannot silently
reintroduce an O(n²) materialisation on a hot path.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import ExitStack, contextmanager
from unittest import mock


@contextmanager
def forbid_densification(trap_matrix_hat: bool = True) -> Iterator[None]:
    """Trap every path that could materialise an ``(n, n)`` dense array.

    While the context is active, ``SparseIsingModel.toarray`` (the dense
    coupling matrix) raises ``AssertionError``, and
    ``TiledCrossbar.matrix_hat`` (the dense stored image) raises too
    unless ``trap_matrix_hat=False`` (for callers that never build a
    tiled machine).  The patches are process-global for the duration of
    the context — use it around a bounded unit of work (a solve, a
    request, a bench protocol), not around concurrent mixed workloads
    that legitimately densify elsewhere.
    """
    # Local imports: utils must stay dependency-free at import time
    # (repro.arch/repro.ising layer on top of repro.utils).
    from repro.arch import TiledCrossbar
    from repro.ising.sparse import SparseIsingModel

    def _no_toarray(self):
        raise AssertionError(
            "SparseIsingModel.toarray() called under forbid_densification() "
            "— the dense coupling matrix must never be materialised on "
            "this path"
        )

    def _no_matrix_hat(self):
        raise AssertionError(
            "TiledCrossbar.matrix_hat assembled under forbid_densification() "
            "— the dense stored image must never be materialised on this "
            "path"
        )

    patches = [mock.patch.object(SparseIsingModel, "toarray", _no_toarray)]
    if trap_matrix_hat:
        patches.append(
            mock.patch.object(
                TiledCrossbar, "matrix_hat", property(_no_matrix_hat)
            )
        )
    with ExitStack() as stack:
        for patch in patches:
            stack.enter_context(patch)
        yield
