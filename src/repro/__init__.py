"""repro — Ferroelectric compute-in-memory in-situ annealer (DAC 2025 repro).

A full-stack Python reproduction of *"Device-Algorithm Co-Design of
Ferroelectric Compute-in-Memory In-Situ Annealer for Combinatorial
Optimization Problems"* (Qian et al., DAC 2025):

* :mod:`repro.ising` — Ising/QUBO substrate and the paper's COP families
  (Max-Cut, graph coloring, knapsack, number partitioning) plus Gset-style
  instance generation.
* :mod:`repro.devices` — behavioural compact models of the FeFET (Preisach)
  and the double-gate FeFET whose four-input product enables in-situ E_inc.
* :mod:`repro.circuits` — crossbar array, SAR ADC, drivers, exponent units
  and interconnect parasitics.
* :mod:`repro.core` — the paper's contribution: incremental-E transformation,
  fractional annealing factor, in-situ annealing flow (Algorithm 1) and the
  direct-E baselines.
* :mod:`repro.arch` — energy/latency-instrumented annealer machines
  (proposed CiM in-situ annealer, CiM/FPGA and CiM/ASIC baselines).
* :mod:`repro.analysis` — metrics, reference solutions and experiment
  runners used by the benchmark harness.

Quickstart::

    from repro import MaxCutProblem, solve_maxcut
    problem = MaxCutProblem.random(64, 256, seed=1)
    result = solve_maxcut(problem, iterations=2000, seed=2)
    print(result.best_cut, result.normalized_cut)
"""

from repro.ising import (
    GraphColoringProblem,
    IsingModel,
    KnapsackProblem,
    MaxCutProblem,
    NumberPartitioningProblem,
    QuboModel,
)

__version__ = "1.0.0"

__all__ = [
    "IsingModel",
    "QuboModel",
    "MaxCutProblem",
    "GraphColoringProblem",
    "KnapsackProblem",
    "NumberPartitioningProblem",
    "solve_ising",
    "solve_maxcut",
    "compile_plan",
    "SolvePlan",
    "PlanCache",
    "__version__",
]


def __getattr__(name):
    # Lazy imports for the high-level solver API keep `import repro` light
    # and avoid import cycles while the sub-packages load each other.
    if name in ("solve_ising", "solve_maxcut"):
        from repro.core import solver

        return getattr(solver, name)
    if name in ("compile_plan", "SolvePlan", "PlanCache"):
        from repro.core import plan

        return getattr(plan, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
