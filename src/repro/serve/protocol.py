"""JSON-lines TCP front end for the solver service.

One request per line, one JSON response per line.  Requests are
pipelined: each line is handled as its own task, so a client may queue
many ``solve`` requests on one connection and responses stream back as
batches complete (responses carry the request's ``job_id`` and may
arrive out of order).

Operations
----------
``{"op": "ping"}``
    Liveness probe → ``{"ok": true}``.
``{"op": "stats"}``
    Service + plan-cache counters → ``{"ok": true, "stats": {...}}``.
``{"op": "solve", "job_id": ..., "gset": "<instance text>", ...}``
    Solve a Max-Cut instance given inline in G-set format (first line
    ``n m``, then ``u v w`` edges, 1-based).  Optional knobs mirror
    ``repro submit``: ``method``, ``iterations``, ``replicas``,
    ``flips``, ``seed``, ``backend``.  The response reports the best
    replica's energy, cut value and ±1 configuration.

Errors return ``{"ok": false, "error": "..."}`` with the job id inside
the message (the boundary validators prefix it).
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.ising.gset import parse_gset
from repro.serve.jobs import job_request
from repro.serve.service import SolverService

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7421


async def handle_request(service: SolverService, payload: dict) -> dict:
    """Dispatch one decoded request against the service."""
    op = payload.get("op")
    if op == "ping":
        return {"ok": True}
    if op == "stats":
        return {"ok": True, "stats": service.stats()}
    if op == "solve":
        return await _handle_solve(service, payload)
    return {
        "ok": False,
        "error": f"unknown op {op!r}; choose from ['ping', 'solve', 'stats']",
    }


async def _handle_solve(service: SolverService, payload: dict) -> dict:
    job_id = payload.get("job_id")
    try:
        source = payload.get("gset")
        if not isinstance(source, str) or not source.strip():
            raise ValueError(
                f"job {job_id!r}: 'gset' must carry the instance text "
                f"(first line 'n m', then 'u v w' edge lines)"
            )
        problem = parse_gset(
            source, name=str(job_id) if job_id is not None else "gset"
        )
        model = problem.to_ising(backend=payload.get("backend", "auto"))
        job = job_request(
            str(job_id) if job_id is not None else "",
            model,
            method=payload.get("method", "insitu"),
            iterations=payload.get("iterations", 1000),
            replicas=payload.get("replicas", 1),
            flips_per_iteration=payload.get("flips", 1),
            seed=payload.get("seed"),
        )
        result = await service.submit(job)
    except (ValueError, RuntimeError) as exc:
        return {"ok": False, "error": str(exc), "job_id": job_id}
    best = result.best_replica
    return {
        "ok": True,
        "job_id": result.job_id,
        "best_energy": float(result.best_energies[best]),
        "best_cut": float(
            problem.cut_from_energy(float(result.best_energies[best]))
        ),
        "best_sigma": [int(s) for s in result.best_sigmas[best]],
        "replicas": int(result.best_energies.shape[0]),
        "accepted": [int(a) for a in result.accepted],
        "iterations": result.iterations,
        "packed": result.packed,
        "batch_size": result.batch_size,
    }


async def _handle_connection(
    service: SolverService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    write_lock = asyncio.Lock()
    pending: set[asyncio.Task] = set()

    async def respond(payload: dict) -> None:
        response = await handle_request(service, payload)
        line = json.dumps(response).encode() + b"\n"
        async with write_lock:
            writer.write(line)
            await writer.drain()

    try:
        while True:
            raw = await reader.readline()
            if not raw:
                break
            raw = raw.strip()
            if not raw:
                continue
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                await respond_error(
                    writer, write_lock, f"invalid JSON line: {exc}"
                )
                continue
            if not isinstance(payload, dict):
                await respond_error(
                    writer, write_lock,
                    "each request line must be a JSON object",
                )
                continue
            # Pipelined: each request resolves independently so long
            # solves never block a ping/stats probe on the same socket.
            task = asyncio.ensure_future(respond(payload))
            pending.add(task)
            task.add_done_callback(pending.discard)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def respond_error(
    writer: asyncio.StreamWriter, write_lock: asyncio.Lock, message: str
) -> None:
    """Write one protocol-level error line."""
    line = json.dumps({"ok": False, "error": message}).encode() + b"\n"
    async with write_lock:
        writer.write(line)
        await writer.drain()


async def start_server(
    service: SolverService,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> asyncio.AbstractServer:
    """Bind the JSON-lines endpoint (service must already be started)."""
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )


def request(payload: dict, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT) -> dict:
    """Blocking one-shot client: send one request line, read one response.

    Used by ``repro submit``; a trivial reference implementation of the
    wire format for other clients.
    """
    with socket.create_connection((host, port)) as conn:
        conn.sendall(json.dumps(payload).encode() + b"\n")
        with conn.makefile("r", encoding="utf-8") as stream:
            line = stream.readline()
    if not line:
        raise RuntimeError(f"no response from {host}:{port}")
    return json.loads(line)


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "handle_request",
    "request",
    "start_server",
]
