"""Multi-tenant async solver service with cross-request replica packing.

``repro.serve`` turns the library into a service: concurrent clients
submit small independent Ising/Max-Cut jobs, a bounded queue applies
backpressure, and a batching scheduler packs compatible jobs into ONE
rank-``t`` batch engine run over the block-diagonal union of their
couplings (:mod:`repro.core.blockstack`).  Per-job results are sliced
back out bit-identically to solo :func:`~repro.core.solver.solve_ising`
calls — packing is a pure throughput optimisation, never a semantics
change.

Layer map
---------
:mod:`repro.serve.jobs`
    :func:`job_request` — the validated API boundary (per-job replica
    cap, ±1 initial states, serve-method choices; errors name the job
    id) — plus the :class:`SolveJob`/:class:`JobResult` dataclasses.
:mod:`repro.serve.service`
    :class:`SolverService` — bounded ``asyncio`` queue, gather-window
    batching scheduler, single-worker solve executor, solo fallback via
    a shared (thread-safe) :class:`~repro.core.plan.PlanCache`, and a
    stats surface.
:mod:`repro.serve.protocol`
    JSON-lines TCP front end (``repro serve``) and the tiny client used
    by ``repro submit``.
"""

from repro.serve.jobs import (
    MAX_JOB_REPLICAS,
    SERVE_METHODS,
    JobResult,
    SolveJob,
    job_request,
)
from repro.serve.service import ServiceConfig, SolverService, service_config

__all__ = [
    "MAX_JOB_REPLICAS",
    "SERVE_METHODS",
    "JobResult",
    "ServiceConfig",
    "SolveJob",
    "SolverService",
    "job_request",
    "service_config",
]
