"""Serve-side job/result dataclasses and the validated request boundary.

:func:`job_request` is the single entrance for work into the service —
every knob is validated *here*, with the same validators and message
shapes as the solve API (``check_count`` / ``check_choice`` /
``check_spin_vector``), and every rejection is prefixed with the job id
so a client multiplexing hundreds of submissions can attribute the
failure.  Past this boundary the scheduler and the batch runners assume
well-formed jobs.

The per-job replica cap (:data:`MAX_JOB_REPLICAS`) is a fairness knob,
not an engine limit: one tenant asking for thousands of replicas would
monopolise the shared batch run (every lane in a block-stacked batch
shares one replica count).  Larger sweeps split across jobs, which the
scheduler happily packs back together.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blockstack import PACK_METHODS
from repro.utils.validation import (
    check_choice,
    check_count,
    check_spin_vector,
)

#: Documented per-job replica ceiling (see module docstring).  Jobs over
#: the cap are rejected at the boundary with an error naming the job id.
MAX_JOB_REPLICAS = 64

#: Methods the service accepts.  ``insitu``/``sa`` are packable
#: (:data:`~repro.core.blockstack.PACK_METHODS`); ``sb`` always runs
#: solo through the plan cache (it integrates all positions every step,
#: so block-stacking buys it nothing).
SERVE_METHODS = ("insitu", "sa", "sb")


@dataclass(frozen=True)
class SolveJob:
    """One validated unit of work, produced by :func:`job_request`."""

    job_id: str
    model: object
    method: str
    iterations: int
    replicas: int
    flips_per_iteration: int
    seed: int | None
    initial: np.ndarray | None
    backend: str | None

    @property
    def packable(self) -> bool:
        """Whether the scheduler may block-stack this job."""
        return self.method in PACK_METHODS

    @property
    def pack_key(self) -> tuple:
        """Batch-compatibility key: lanes must share exactly these knobs."""
        return (
            self.method, self.iterations, self.replicas,
            self.flips_per_iteration,
        )


@dataclass(frozen=True)
class JobResult:
    """Per-job solve outcome, shaped like the solo replica-batch result.

    The array fields mirror :class:`~repro.core.batch.BatchAnnealResult`
    (per-replica bests/finals/acceptance) and are bit-identical to
    ``solve_ising(model, method, iterations, seed=seed,
    replicas=replicas, flips_per_iteration=…)`` whether the job was
    block-stack packed or ran solo; ``packed``/``batch_size`` report how
    it was actually executed.
    """

    job_id: str
    best_energies: np.ndarray
    best_sigmas: np.ndarray
    final_energies: np.ndarray
    final_sigmas: np.ndarray
    accepted: np.ndarray
    iterations: int
    packed: bool
    batch_size: int

    @property
    def best_replica(self) -> int:
        """Index of the replica holding the overall best energy."""
        return int(np.argmin(self.best_energies))

    @property
    def best_energy(self) -> float:
        """Overall best energy across the job's replicas."""
        return float(self.best_energies[self.best_replica])

    @property
    def best_sigma(self) -> np.ndarray:
        """Configuration of the overall best replica."""
        return self.best_sigmas[self.best_replica]


def _check_model(model) -> None:
    num_spins = getattr(model, "num_spins", None)
    if num_spins is None:
        raise ValueError(
            f"model must be an IsingModel or SparseIsingModel, got "
            f"{type(model).__name__}"
        )
    if num_spins < 1:
        raise ValueError(
            "model has no spins; build it from a non-empty problem"
        )


def job_request(
    job_id: str,
    model,
    method: str = "insitu",
    iterations: int = 1000,
    replicas: int = 1,
    flips_per_iteration: int = 1,
    seed: int | None = None,
    initial=None,
    backend: str | None = None,
) -> SolveJob:
    """Validate one solve request into an immutable :class:`SolveJob`.

    Raises ``ValueError`` with the offending job id prefixed on any bad
    knob — the same message bodies the solve API produces, so a client
    that knows ``solve_ising``'s errors recognises the service's.

    Parameters mirror :func:`~repro.core.solver.solve_ising` with two
    serve-specific deltas: ``replicas`` is capped at
    :data:`MAX_JOB_REPLICAS` per job, and ``seed`` must be a plain
    integer (or None) so jobs stay serializable and replayable.
    """
    if not isinstance(job_id, str) or not job_id:
        raise ValueError(
            f"job_id must be a non-empty string, got {job_id!r}"
        )
    try:
        method = check_choice("method", method, SERVE_METHODS)
        _check_model(model)
        iterations = check_count(
            "iterations", iterations,
            hint="the annealers need at least one proposal/accept step",
        )
        replicas = check_count(
            "replicas", replicas,
            hint="each replica is one independent trajectory",
        )
        if replicas > MAX_JOB_REPLICAS:
            raise ValueError(
                f"replicas must be at most {MAX_JOB_REPLICAS} per job, "
                f"got {replicas}; split larger replica sweeps across "
                f"jobs — the scheduler packs them back into one batch run"
            )
        flips_per_iteration = check_count(
            "flips_per_iteration", flips_per_iteration
        )
        n = model.num_spins
        if flips_per_iteration > n:
            raise ValueError(
                f"flips_per_iteration must be in [1, {n}], "
                f"got {flips_per_iteration}"
            )
        if method == "sb" and flips_per_iteration != 1:
            raise ValueError(
                f"flips_per_iteration only applies to methods "
                f"{sorted(PACK_METHODS)}; method='sb' integrates every "
                f"position each step"
            )
        if seed is not None and not isinstance(seed, (int, np.integer)):
            raise ValueError(
                f"seed must be an integer or None for served jobs "
                f"(kept serializable/replayable), got {type(seed).__name__}"
            )
        if backend is not None:
            backend = check_choice(
                "backend", backend, ("auto", "dense", "sparse", "packed")
            )
        if initial is not None:
            if method == "sb":
                raise ValueError(
                    f"initial only applies to methods "
                    f"{sorted(PACK_METHODS)}; method='sb' draws its own "
                    f"continuous positions"
                )
            arr = np.asarray(initial, dtype=np.float64)
            if arr.ndim == 1:
                check_spin_vector(arr, n)
            elif arr.ndim == 2:
                if arr.shape != (replicas, n):
                    raise ValueError(
                        f"initial must have shape ({n},) or "
                        f"({replicas}, {n}), got {arr.shape}"
                    )
                for row in arr:
                    check_spin_vector(row, n)
            else:
                raise ValueError(
                    f"initial must have shape ({n},) or "
                    f"({replicas}, {n}), got {arr.shape}"
                )
            initial = arr
    except ValueError as exc:
        raise ValueError(f"job {job_id!r}: {exc}") from None
    return SolveJob(
        job_id=job_id, model=model, method=method, iterations=iterations,
        replicas=replicas, flips_per_iteration=flips_per_iteration,
        seed=None if seed is None else int(seed), initial=initial,
        backend=backend,
    )


__all__ = [
    "MAX_JOB_REPLICAS",
    "SERVE_METHODS",
    "JobResult",
    "SolveJob",
    "job_request",
]
