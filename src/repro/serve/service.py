"""The batching solver service: bounded queue → scheduler → batch runs.

:class:`SolverService` is the asyncio core of ``repro.serve``:

* ``submit`` places a validated :class:`~repro.serve.jobs.SolveJob` on a
  *bounded* queue — when the queue is full the awaiting submit is the
  backpressure (``submit_nowait`` raises instead, for clients that
  prefer load-shedding to waiting);
* one scheduler task drains the queue in batches: it takes the first
  job, then gathers more for at most ``gather_window`` seconds (or until
  ``max_batch_jobs``), groups the packable ones by their
  :attr:`~repro.serve.jobs.SolveJob.pack_key`, and runs each group as
  ONE block-stacked batch (:func:`~repro.core.blockstack.run_stacked`);
* solves execute on a single worker thread
  (``run_in_executor``) so the event loop keeps accepting submissions —
  jobs arriving *during* a batch run accumulate into the next batch,
  which is what makes packing effective under sustained load;
* jobs that cannot pack (method ``sb``, or a group of one) fall back to
  solo execution through a shared thread-safe
  :class:`~repro.core.plan.PlanCache`, so repeat instances skip
  compilation; the cache's hit/miss/eviction counters surface in
  :meth:`SolverService.stats`.

Either way the result handed back for a job is bit-identical to the solo
``solve_ising(model, method, iterations, seed=seed, replicas=…,
flips_per_iteration=…)`` call — the packing contract
:mod:`repro.core.blockstack` verifies.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.blockstack import compile_lane, run_stacked
from repro.core.plan import PlanCache
from repro.ising.sparse import as_backend
from repro.serve.jobs import JobResult, SolveJob
from repro.utils.validation import check_count, check_real

_STOP = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Validated service knobs; build via :func:`service_config`."""

    max_queue: int
    max_batch_jobs: int
    gather_window: float
    plan_cache_size: int


def service_config(
    max_queue: int = 256,
    max_batch_jobs: int = 64,
    gather_window: float = 0.002,
    plan_cache_size: int = 32,
) -> ServiceConfig:
    """Validate service knobs into a :class:`ServiceConfig`.

    ``max_queue`` bounds admitted-but-unscheduled jobs (the backpressure
    depth), ``max_batch_jobs`` caps one batch run, ``gather_window`` is
    how long (seconds) the scheduler waits for more jobs after the first
    before launching a batch, and ``plan_cache_size`` sizes the shared
    solo-path :class:`~repro.core.plan.PlanCache`.
    """
    max_queue = check_count(
        "max_queue", max_queue,
        hint="the queue must admit at least one job",
    )
    max_batch_jobs = check_count(
        "max_batch_jobs", max_batch_jobs,
        hint="a batch holds at least one job",
    )
    gather_window = check_real("gather_window", gather_window)
    if gather_window < 0.0:
        raise ValueError(
            f"gather_window must be >= 0 seconds, got {gather_window!r}"
        )
    plan_cache_size = check_count(
        "plan_cache_size", plan_cache_size,
        hint="an LRU cache needs at least one slot",
    )
    return ServiceConfig(
        max_queue=max_queue, max_batch_jobs=max_batch_jobs,
        gather_window=gather_window, plan_cache_size=plan_cache_size,
    )


class ServiceOverloadedError(RuntimeError):
    """Raised by ``submit_nowait`` when the bounded queue is full."""


class SolverService:
    """Asyncio solver service with cross-request replica packing.

    Use as an async context manager (``async with SolverService() as
    svc``) or call :meth:`start`/:meth:`stop` explicitly.  ``submit``
    returns when the job's batch has run; results resolve out of
    submission order when batches interleave.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else service_config()
        self.plan_cache = PlanCache(maxsize=self.config.plan_cache_size)
        self._queue: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.max_queue
        )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-solver"
        )
        self._scheduler_task: asyncio.Task | None = None
        self._closed = False
        self._jobs_done = 0
        self._batches = 0
        self._packed_jobs = 0
        self._solo_jobs = 0
        self._failed_jobs = 0

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Start the scheduler task (idempotent)."""
        if self._scheduler_task is None:
            self._closed = False
            self._scheduler_task = asyncio.ensure_future(self._scheduler())

    async def stop(self) -> None:
        """Reject new submits, drain queued work, stop the scheduler."""
        if self._scheduler_task is None:
            return
        self._closed = True
        await self._queue.put(_STOP)
        await self._scheduler_task
        self._scheduler_task = None
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> SolverService:
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- submission ----------------------------------------------------
    async def submit(self, job: SolveJob) -> JobResult:
        """Queue a job and await its result (awaits when the queue is full)."""
        fut = self._admit(job)
        await self._queue.put((job, fut))
        return await fut

    async def submit_nowait(self, job: SolveJob) -> JobResult:
        """Queue a job, raising :class:`ServiceOverloadedError` when full."""
        fut = self._admit(job)
        try:
            self._queue.put_nowait((job, fut))
        except asyncio.QueueFull:
            fut.cancel()
            raise ServiceOverloadedError(
                f"job {job.job_id!r}: queue is full "
                f"({self.config.max_queue} jobs); retry later or use "
                f"submit() for backpressure"
            ) from None
        return await fut

    def _admit(self, job: SolveJob) -> asyncio.Future:
        if self._closed or self._scheduler_task is None:
            raise RuntimeError(
                f"job {job.job_id!r}: service is not running; "
                f"submit inside `async with SolverService()` "
                f"(or between start() and stop())"
            )
        if not isinstance(job, SolveJob):
            raise ValueError(
                "submit takes a SolveJob; build one with job_request(...)"
            )
        return asyncio.get_running_loop().create_future()

    # -- observability -------------------------------------------------
    def stats(self) -> dict:
        """Service counters plus the shared plan cache's counters."""
        return {
            "jobs": self._jobs_done,
            "failed_jobs": self._failed_jobs,
            "batches": self._batches,
            "packed_jobs": self._packed_jobs,
            "solo_jobs": self._solo_jobs,
            "queue_depth": self._queue.qsize(),
            "max_queue": self.config.max_queue,
            "max_batch_jobs": self.config.max_batch_jobs,
            "gather_window": self.config.gather_window,
            "plan_cache": self.plan_cache.stats(),
        }

    # -- scheduler -----------------------------------------------------
    async def _scheduler(self) -> None:
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is _STOP:
                break
            batch = [item]
            deadline = loop.time() + self.config.gather_window
            while len(batch) < self.config.max_batch_jobs:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    # Window elapsed: still sweep up anything already
                    # queued — packing them is free.
                    try:
                        nxt = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                else:
                    try:
                        nxt = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                if nxt is _STOP:
                    stopping = True
                    break
                batch.append(nxt)
            jobs = [job for job, _ in batch]
            outcomes = await loop.run_in_executor(
                self._executor, self._solve_batch, jobs
            )
            self._batches += 1
            for (_, fut), outcome in zip(batch, outcomes):
                self._jobs_done += 1
                if isinstance(outcome, JobResult):
                    if outcome.packed:
                        self._packed_jobs += 1
                    else:
                        self._solo_jobs += 1
                    if not fut.cancelled():
                        fut.set_result(outcome)
                else:
                    self._failed_jobs += 1
                    if not fut.cancelled():
                        fut.set_exception(outcome)

    # -- solving (worker thread) ---------------------------------------
    def _solve_batch(self, jobs: list[SolveJob]) -> list:
        """Solve one gathered batch; returns JobResult or Exception per job."""
        outcomes: list = [None] * len(jobs)
        groups: dict[tuple, list[int]] = {}
        solo: list[int] = []
        for i, job in enumerate(jobs):
            if job.packable:
                groups.setdefault(job.pack_key, []).append(i)
            else:
                solo.append(i)
        for idxs in groups.values():
            if len(idxs) == 1 and jobs[idxs[0]].initial is None:
                # A group of one gains nothing from stacking; run it
                # through the plan cache so repeat instances hit.
                solo.append(idxs[0])
                continue
            lanes = []
            lane_idxs = []
            for i in idxs:
                try:
                    lanes.append(self._compile_lane(jobs[i]))
                    lane_idxs.append(i)
                except Exception as exc:  # noqa: BLE001 — reported per job
                    outcomes[i] = exc
            if not lanes:
                continue
            try:
                results = run_stacked(lanes)
            except Exception as exc:  # noqa: BLE001 — reported per job
                for i in lane_idxs:
                    outcomes[i] = exc
                continue
            for i, res in zip(lane_idxs, results):
                # A group that degenerated to one lane (peers failed
                # compile, or a warm-started singleton) is not "packed".
                outcomes[i] = self._as_result(
                    jobs[i], res, packed=len(lanes) > 1,
                    batch_size=len(lanes),
                )
        for i in solo:
            try:
                outcomes[i] = self._solve_solo(jobs[i])
            except Exception as exc:  # noqa: BLE001 — reported per job
                outcomes[i] = exc
        return outcomes

    def _compile_lane(self, job: SolveJob):
        model = job.model
        if job.backend is not None:
            model = as_backend(model, job.backend)
        return compile_lane(
            model, method=job.method, iterations=job.iterations,
            replicas=job.replicas,
            flips_per_iteration=job.flips_per_iteration,
            seed=job.seed, initial=job.initial,
        )

    def _solve_solo(self, job: SolveJob) -> JobResult:
        if job.initial is not None:
            # Plans replay fixed run kwargs and carry no initial state;
            # a single-lane stacked run makes the same engine draws.
            res = run_stacked([self._compile_lane(job)])[0]
            return self._as_result(job, res, packed=False, batch_size=1)
        solver_kwargs = {}
        if job.method != "sb":
            solver_kwargs["flips_per_iteration"] = job.flips_per_iteration
        plan = self.plan_cache.get_or_compile(
            job.model, method=job.method, backend=job.backend,
            replicas=job.replicas, **solver_kwargs
        )
        res = plan.execute(job.iterations, seed=job.seed)
        return self._as_result(job, res, packed=False, batch_size=1)

    @staticmethod
    def _as_result(job: SolveJob, res, packed: bool, batch_size: int) -> JobResult:
        return JobResult(
            job_id=job.job_id,
            best_energies=res.best_energies,
            best_sigmas=res.best_sigmas,
            final_energies=res.final_energies,
            final_sigmas=res.final_sigmas,
            accepted=res.accepted,
            iterations=res.iterations,
            packed=packed,
            batch_size=batch_size,
        )


__all__ = [
    "ServiceConfig",
    "ServiceOverloadedError",
    "SolverService",
    "service_config",
]
