"""Analysis layer: metrics, reference solutions, experiment orchestration.

The benchmark harness is a thin shell over this package: every figure/table
of the paper's evaluation maps to a runner + report function here.
"""

from repro.analysis.metrics import (
    SUCCESS_THRESHOLD,
    RunStatistics,
    cost_to_solution,
    is_success,
    iterations_to_target,
    normalized_cut,
    success_rate,
)
from repro.analysis.reference import (
    compute_reference_cut,
    exact_bipartite_optimum,
    instance_fingerprint,
    reference_cut,
)
from repro.analysis.report import (
    PAPER_ENERGY_REDUCTIONS,
    PAPER_SUCCESS,
    PAPER_TIME_REDUCTIONS,
    hardware_table,
    quality_table,
    table1,
)
from repro.analysis.runner import (
    HardwareGroupResult,
    QualityGroupResult,
    default_machines,
    reduction_ratios,
    run_hardware_experiment,
    run_quality_experiment,
)

__all__ = [
    "SUCCESS_THRESHOLD",
    "RunStatistics",
    "normalized_cut",
    "is_success",
    "success_rate",
    "iterations_to_target",
    "cost_to_solution",
    "reference_cut",
    "compute_reference_cut",
    "exact_bipartite_optimum",
    "instance_fingerprint",
    "run_quality_experiment",
    "run_hardware_experiment",
    "reduction_ratios",
    "default_machines",
    "QualityGroupResult",
    "HardwareGroupResult",
    "hardware_table",
    "quality_table",
    "table1",
    "PAPER_ENERGY_REDUCTIONS",
    "PAPER_TIME_REDUCTIONS",
    "PAPER_SUCCESS",
]
