"""Rendering of experiment results into the paper's tables and figures.

Turns the runner outputs into the exact text artifacts the benches print:
Fig 8a/9a group tables with reduction multipliers, Fig 10 quality bars, and
the Table 1 solver-summary rows (literature rows reproduced as constants
from the paper).
"""

from __future__ import annotations

from repro.analysis.runner import HardwareGroupResult, QualityGroupResult
from repro.utils.tables import render_table
from repro.utils.units import format_energy, format_time

#: Paper-reported reduction multipliers (Fig 8a / 9a annotations), used in
#: the benches' paper-vs-measured comparison columns.
PAPER_ENERGY_REDUCTIONS = {
    800: {"CiM/FPGA": 732.0, "CiM/ASIC": 401.0},
    1000: {"CiM/FPGA": 833.0, "CiM/ASIC": 505.0},
    2000: {"CiM/FPGA": 1300.0, "CiM/ASIC": 1005.0},
    3000: {"CiM/FPGA": 1716.0, "CiM/ASIC": 1503.0},
}
PAPER_TIME_REDUCTIONS = {
    800: {"CiM/FPGA": 8.01, "CiM/ASIC": 7.98},
    1000: {"CiM/FPGA": 8.05, "CiM/ASIC": 8.02},
    2000: {"CiM/FPGA": 8.10, "CiM/ASIC": 8.04},
    3000: {"CiM/FPGA": 8.15, "CiM/ASIC": 8.08},
}

#: Fig 10 paper headline: average success rates.
PAPER_SUCCESS = {"This work": 0.98, "CiM/FPGA & CiM/ASIC": 0.50}

#: Table 1 literature rows (reproduced verbatim from the paper).
TABLE1_LITERATURE = [
    # reference, COP, complexity, e^x, device, problem size, time, energy, success
    ("[39] memristor Hopfield", "Max-Cut", "O(n²)", "yes", "memristor", 60, "6.6 µs", "0.07 µJ", "65 %"),
    ("[7] FeFET CiM annealer", "Graph Coloring", "O(n²)", "yes", "FeFET", 21, "5.1 µs", "0.2 µJ", "—"),
    ("[13] ReRAM SA co-opt", "Knapsack", "O(n²)", "yes", "RRAM", 10, "3.8 µs", "—", "92.4 %"),
    ("[15] HyCiM", "Quadratic Knapsack", "O(n²)", "yes", "FeFET", 100, "1.3 ms", "2.1 µJ", "98.54 %"),
    ("[14] C-Nash", "Nash Equilibrium", "O(n²)", "yes", "FeFET", 104, "0.08 s", "—", "81.9 %"),
]


def hardware_table(
    results: dict[int, dict[str, HardwareGroupResult]],
    ratios: dict[int, dict[str, dict[str, float]]],
    quantity: str,
    paper: dict[int, dict[str, float]],
) -> str:
    """Fig 8a/9a as a table: per-group cost plus measured-vs-paper ratios.

    ``quantity`` is ``"energy"`` or ``"time"``.
    """
    if quantity not in ("energy", "time"):
        raise ValueError("quantity must be 'energy' or 'time'")
    fmt = format_energy if quantity == "energy" else format_time
    rows = []
    for nodes, group in sorted(results.items()):
        for label, res in group.items():
            stats = res.energy if quantity == "energy" else res.time
            ratio = ratios.get(nodes, {}).get(label, {}).get(quantity)
            paper_ratio = paper.get(nodes, {}).get(label)
            rows.append(
                (
                    nodes,
                    label,
                    fmt(stats.mean),
                    f"{ratio:.0f}x" if ratio and quantity == "energy" else (
                        f"{ratio:.2f}x" if ratio else "1x (ref)"
                    ),
                    (
                        f"{paper_ratio:.0f}x"
                        if paper_ratio and quantity == "energy"
                        else (f"{paper_ratio:.2f}x" if paper_ratio else "—")
                    ),
                )
            )
    header = [
        "nodes",
        "machine",
        f"mean {quantity}/run",
        "measured reduction",
        "paper reduction",
    ]
    title = (
        "Fig 8a — average annealing energy"
        if quantity == "energy"
        else "Fig 9a — average annealing time"
    )
    return render_table(header, rows, title=title)


def quality_table(results: dict[int, dict[str, QualityGroupResult]]) -> str:
    """Fig 10 as a table: normalised cuts and success rates per group."""
    rows = []
    for nodes, group in sorted(results.items()):
        for label, res in group.items():
            rows.append(
                (
                    nodes,
                    label,
                    f"{res.mean_normalized:.3f}",
                    f"{min(res.normalized_cuts):.3f}",
                    f"{res.success:.0%}",
                )
            )
    # Overall averages (the paper's 98 % vs 50 % headline).
    labels = {label for group in results.values() for label in group}
    summary_rows = []
    for label in sorted(labels):
        rates = [results[n][label].success for n in results if label in results[n]]
        paper = PAPER_SUCCESS.get(label)
        summary_rows.append(
            (
                "avg",
                label,
                "—",
                "—",
                f"{sum(rates) / len(rates):.0%}"
                + (f" (paper {paper:.0%})" if paper is not None else ""),
            )
        )
    return render_table(
        ["nodes", "solver", "mean norm. cut", "min norm. cut", "success ≥0.9"],
        rows + summary_rows,
        title="Fig 10 — normalised cut values and success rates",
    )


def table1(this_work_row: dict) -> str:
    """Table 1: solver summary with literature rows + this work.

    ``this_work_row`` needs keys ``problem_size``, ``time_to_solution``,
    ``energy_to_solution`` and ``success_rate`` (measured values).
    """
    rows = [
        lit
        for lit in TABLE1_LITERATURE
    ]
    rows.append(
        (
            "This work (reproduction)",
            "Max-Cut",
            "O(n)",
            "no",
            "DG FeFET",
            this_work_row["problem_size"],
            format_time(this_work_row["time_to_solution"]),
            format_energy(this_work_row["energy_to_solution"]),
            f"{this_work_row['success_rate']:.0%}",
        )
    )
    return render_table(
        [
            "solver",
            "COP",
            "complexity",
            "e^x",
            "device",
            "size",
            "time-to-sol",
            "energy-to-sol",
            "success",
        ],
        rows,
        title="Table 1 — summary of COP solvers",
    )
