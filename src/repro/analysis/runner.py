"""Experiment runners for the paper's 30-instance evaluation protocol.

Two orchestrations cover Sec. 4:

* :func:`run_quality_experiment` — Fig 10: Monte-Carlo runs of each solver
  on each instance group, producing normalised cuts and success rates;
* :func:`run_hardware_experiment` — Fig 8/9: instrumented machine runs
  producing per-group energy/time averages and reduction ratios.

Both honour the paper's per-size iteration budgets and accept reduced
instance/run counts so the default benches stay fast (``REPRO_FULL=1``
restores the full protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import SUCCESS_THRESHOLD, RunStatistics
from repro.analysis.reference import reference_cut
from repro.arch.baselines import DirectECimAnnealer
from repro.arch.cim_annealer import InSituCimAnnealer
from repro.arch.hardware import HardwareConfig
from repro.core.solver import solve_maxcut
from repro.ising.gset import GsetSpec, build_instance, suite_by_size
from repro.utils.rng import ensure_rng


@dataclass
class QualityGroupResult:
    """Fig 10 data for one node-count group and one solver."""

    nodes: int
    solver: str
    normalized_cuts: list[float] = field(default_factory=list)
    cuts: list[float] = field(default_factory=list)
    references: list[float] = field(default_factory=list)

    @property
    def success(self) -> float:
        """Fraction of runs reaching the 90 % threshold."""
        arr = np.asarray(self.normalized_cuts)
        return float(np.mean(arr >= SUCCESS_THRESHOLD))

    @property
    def mean_normalized(self) -> float:
        """Group-average normalised cut."""
        return float(np.mean(self.normalized_cuts))


def run_quality_experiment(
    specs: list[GsetSpec],
    methods: dict[str, dict] | None = None,
    runs_per_instance: int = 10,
    seed: int = 0,
    reference_cache=None,
) -> dict[int, dict[str, QualityGroupResult]]:
    """Monte-Carlo solution-quality protocol (Fig 10).

    Parameters
    ----------
    specs:
        Instance specs (typically :func:`repro.ising.paper_instance_suite`
        or a subset).
    methods:
        Mapping solver-label → kwargs for :func:`solve_maxcut` (must include
        ``method``); default compares the in-situ annealer with direct-E SA.
    runs_per_instance:
        Monte-Carlo runs per instance (paper: 100).
    seed:
        Base seed; every (instance, run, method) gets an independent stream.
    reference_cache:
        Forwarded to :func:`reference_cut` (``None`` → default cache file).

    Returns ``{nodes: {solver_label: QualityGroupResult}}``.
    """
    if methods is None:
        methods = {
            "This work": {"method": "insitu"},
            "CiM/FPGA & CiM/ASIC": {"method": "sa"},
        }
    groups = suite_by_size(specs)
    rng = ensure_rng(seed)
    out: dict[int, dict[str, QualityGroupResult]] = {}
    for nodes, group_specs in groups.items():
        out[nodes] = {
            label: QualityGroupResult(nodes=nodes, solver=label) for label in methods
        }
        for spec in group_specs:
            problem = build_instance(spec)
            kwargs_cache = {} if reference_cache is None else {"cache_path": reference_cache}
            ref = reference_cut(problem, **kwargs_cache)
            for run in range(runs_per_instance):
                run_seed = int(rng.integers(2**62))
                for label, kwargs in methods.items():
                    result = solve_maxcut(
                        problem,
                        iterations=spec.iterations,
                        seed=run_seed,
                        reference_cut=ref,
                        **kwargs,
                    )
                    bucket = out[nodes][label]
                    bucket.cuts.append(result.best_cut)
                    bucket.references.append(ref)
                    bucket.normalized_cuts.append(result.best_cut / ref)
    return out


@dataclass
class HardwareGroupResult:
    """Fig 8/9 data for one node-count group and one machine."""

    nodes: int
    machine: str
    energies: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    cuts: list[float] = field(default_factory=list)

    @property
    def energy(self) -> RunStatistics:
        """Per-run annealing-energy statistics (joules)."""
        return RunStatistics.from_values(self.energies)

    @property
    def time(self) -> RunStatistics:
        """Per-run annealing-time statistics (seconds)."""
        return RunStatistics.from_values(self.times)


def default_machines() -> dict[str, dict]:
    """The paper's three machines as runner factory descriptions."""
    return {
        "This work": {"kind": "insitu"},
        "CiM/FPGA": {"kind": "direct", "config": HardwareConfig.baseline_fpga()},
        "CiM/ASIC": {"kind": "direct", "config": HardwareConfig.baseline_asic()},
    }


def _build_machine(description: dict, model, seed):
    description = dict(description)
    kind = description.pop("kind")
    if kind == "insitu":
        return InSituCimAnnealer(model, seed=seed, **description)
    if kind == "direct":
        return DirectECimAnnealer(model, seed=seed, **description)
    raise ValueError(f"unknown machine kind {kind!r}")


def run_hardware_experiment(
    specs: list[GsetSpec],
    machines: dict[str, dict] | None = None,
    runs_per_instance: int = 2,
    seed: int = 0,
) -> dict[int, dict[str, HardwareGroupResult]]:
    """Instrumented machine protocol (Fig 8a/9a).

    Returns ``{nodes: {machine_label: HardwareGroupResult}}`` with per-run
    annealing energy/time (programming excluded, as in the paper).
    """
    machines = machines or default_machines()
    groups = suite_by_size(specs)
    rng = ensure_rng(seed)
    out: dict[int, dict[str, HardwareGroupResult]] = {}
    for nodes, group_specs in groups.items():
        out[nodes] = {
            label: HardwareGroupResult(nodes=nodes, machine=label) for label in machines
        }
        for spec in group_specs:
            problem = build_instance(spec)
            model = problem.to_ising()
            for run in range(runs_per_instance):
                run_seed = int(rng.integers(2**62))
                for label, description in machines.items():
                    machine = _build_machine(description, model, run_seed)
                    result = machine.run(spec.iterations)
                    bucket = out[nodes][label]
                    bucket.energies.append(result.annealing_energy)
                    bucket.times.append(result.annealing_time)
                    bucket.cuts.append(
                        problem.cut_from_energy(result.anneal.best_energy)
                    )
    return out


def reduction_ratios(
    hardware_results: dict[int, dict[str, HardwareGroupResult]],
    reference_machine: str = "This work",
) -> dict[int, dict[str, dict[str, float]]]:
    """Energy/time reduction of every machine relative to the reference.

    Returns ``{nodes: {machine: {"energy": ×, "time": ×}}}`` — the
    multipliers annotated on the paper's Fig 8a/9a bars.
    """
    out: dict[int, dict[str, dict[str, float]]] = {}
    for nodes, group in hardware_results.items():
        if reference_machine not in group:
            raise KeyError(f"reference machine {reference_machine!r} missing")
        ref = group[reference_machine]
        ref_e = ref.energy.mean
        ref_t = ref.time.mean
        out[nodes] = {}
        for label, res in group.items():
            if label == reference_machine:
                continue
            out[nodes][label] = {
                "energy": res.energy.mean / ref_e if ref_e > 0 else float("inf"),
                "time": res.time.mean / ref_t if ref_t > 0 else float("inf"),
            }
    return out
