"""Reference ("best-known") cut values for normalisation.

The paper normalises cut values against "the true optimal value".  True
optima are unavailable for synthetic 800-3000-node instances, so this module
computes a *best-known proxy* the standard way: the maximum cut found by a
battery of long multi-restart runs (both solver families, 20× the paper's
iteration budget each).  Two refinements:

* bipartite instances with non-negative weights (the unweighted toroidal
  G48-class) have a closed-form optimum — the total edge weight — which is
  used exactly;
* values are cached on disk keyed by a fingerprint of the instance, so the
  expensive battery runs once per instance ever.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import networkx as nx
import numpy as np

from repro.core.solver import solve_maxcut
from repro.ising.maxcut import MaxCutProblem

#: Default on-disk cache (repo-local so benches are reproducible offline).
DEFAULT_CACHE = Path(__file__).resolve().parents[3] / "benchmarks" / "reference_cache.json"


def instance_fingerprint(problem: MaxCutProblem) -> str:
    """Stable content hash of an instance (edges + weights + size)."""
    digest = hashlib.sha256()
    digest.update(str(problem.num_nodes).encode())
    digest.update(np.ascontiguousarray(problem.edge_array).tobytes())
    digest.update(np.ascontiguousarray(problem.weight_array).tobytes())
    return digest.hexdigest()[:16]


def exact_bipartite_optimum(problem: MaxCutProblem) -> float | None:
    """Closed-form optimum for bipartite graphs with non-negative weights.

    A bipartition cuts *every* edge, which is optimal when no weight is
    negative.  Returns ``None`` when the closed form does not apply.
    """
    if np.any(problem.weight_array < 0):
        return None
    if problem.num_edges == 0:
        return 0.0
    if not nx.is_bipartite(problem.to_networkx()):
        return None
    return problem.total_weight


def compute_reference_cut(
    problem: MaxCutProblem,
    restarts: int = 3,
    iterations: int | None = None,
    seed: int = 90_000,
) -> float:
    """Best cut from the multi-restart long-run battery (no caching).

    Runs ``restarts`` independent runs of both the in-situ and the SA
    solver; ``iterations`` defaults to ``max(50·n, 20·m, 40 000)``.
    """
    exact = exact_bipartite_optimum(problem)
    if exact is not None:
        return exact
    if iterations is None:
        iterations = max(50 * problem.num_nodes, 20 * problem.num_edges, 40_000)
    best = 0.0
    for r in range(restarts):
        for method in ("insitu", "sa"):
            result = solve_maxcut(
                problem, method=method, iterations=iterations, seed=seed + 17 * r
            )
            best = max(best, result.best_cut)
    return best


def reference_cut(
    problem: MaxCutProblem,
    cache_path: Path | str | None = DEFAULT_CACHE,
    restarts: int = 3,
    iterations: int | None = None,
    seed: int = 90_000,
) -> float:
    """Best-known cut for ``problem``, cached on disk.

    Set ``cache_path=None`` to bypass the cache (tests do this).
    """
    if cache_path is None:
        return compute_reference_cut(problem, restarts, iterations, seed)
    cache_file = Path(cache_path)
    key = f"{problem.name}:{instance_fingerprint(problem)}"
    cache: dict[str, float] = {}
    if cache_file.exists():
        try:
            cache = json.loads(cache_file.read_text())
        except (json.JSONDecodeError, OSError):
            cache = {}
    if key in cache:
        return float(cache[key])
    value = compute_reference_cut(problem, restarts, iterations, seed)
    cache[key] = value
    cache_file.parent.mkdir(parents=True, exist_ok=True)
    cache_file.write_text(json.dumps(cache, indent=1, sort_keys=True))
    return value
