"""Solution-quality and cost metrics used by the evaluation benches.

Implements the paper's Fig 10 quantities — normalised cut value and the
90 %-of-optimum success criterion — plus time/energy-to-solution extraction
from instrumented runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The paper's success threshold: a run "solves" an instance when its best
#: cut reaches 90 % of the (best-known) optimal value.
SUCCESS_THRESHOLD = 0.9


def normalized_cut(cut: float, reference: float) -> float:
    """Cut value normalised by the reference optimum (Fig 10 y-axis)."""
    if reference <= 0:
        raise ValueError("reference cut must be positive")
    return cut / reference


def is_success(cut: float, reference: float, threshold: float = SUCCESS_THRESHOLD) -> bool:
    """The paper's success test: ``cut ≥ threshold · reference``."""
    return normalized_cut(cut, reference) >= threshold


def success_rate(cuts, reference: float, threshold: float = SUCCESS_THRESHOLD) -> float:
    """Fraction of runs that meet the success criterion."""
    arr = np.asarray(cuts, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cuts must be non-empty")
    return float(np.mean(arr >= threshold * reference))


@dataclass(frozen=True)
class RunStatistics:
    """Aggregate of a batch of scalar outcomes (cuts, energies, times)."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def from_values(cls, values) -> "RunStatistics":
        """Compute statistics of a non-empty value collection."""
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("values must be non-empty")
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=0)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            count=int(arr.size),
        )


def iterations_to_target(best_trace, target_energy: float) -> int | None:
    """First iteration whose best-so-far energy is ≤ ``target_energy``.

    ``best_trace`` is the per-iteration best-energy trace recorded by the
    annealers; returns ``None`` when the target is never reached.
    """
    trace = np.asarray(best_trace, dtype=np.float64)
    hits = np.flatnonzero(trace <= target_energy)
    return int(hits[0]) if hits.size else None


def cost_to_solution(
    best_trace, cost_trace, target_energy: float
) -> float | None:
    """Cumulative cost (energy or time) when the target is first reached.

    Combines an annealer best-energy trace with a machine cumulative-cost
    trace of the same length — the paper's time/energy-to-solution metric
    (Table 1).  Returns ``None`` when the target is never reached.
    """
    trace = np.asarray(best_trace, dtype=np.float64)
    cost = np.asarray(cost_trace, dtype=np.float64)
    if trace.shape != cost.shape:
        raise ValueError("best_trace and cost_trace must have equal length")
    hit = iterations_to_target(trace, target_energy)
    return None if hit is None else float(cost[hit])
