"""Problem-size scaling studies (extension beyond the paper's four sizes).

The paper reports four discrete sizes; this module measures how the
machines' costs *scale*: per-iteration energy/time versus n for each
annealer, and the crossover behaviour of the incremental-E advantage.
Used by ``bench_scaling.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.baselines import DirectECimAnnealer
from repro.arch.cim_annealer import InSituCimAnnealer
from repro.arch.hardware import HardwareConfig
from repro.ising.gset import generate_random
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class ScalingPoint:
    """Per-size measurement of the three machines."""

    nodes: int
    edges: int
    insitu_energy_per_iter: float
    fpga_energy_per_iter: float
    asic_energy_per_iter: float
    insitu_time_per_iter: float
    baseline_time_per_iter: float

    @property
    def energy_reduction_fpga(self) -> float:
        """FPGA-baseline energy multiplier at this size."""
        return self.fpga_energy_per_iter / self.insitu_energy_per_iter

    @property
    def energy_reduction_asic(self) -> float:
        """ASIC-baseline energy multiplier at this size."""
        return self.asic_energy_per_iter / self.insitu_energy_per_iter

    @property
    def time_reduction(self) -> float:
        """Baseline time multiplier at this size."""
        return self.baseline_time_per_iter / self.insitu_time_per_iter


def measure_scaling(
    sizes=(100, 200, 400, 800, 1600),
    average_degree: int = 12,
    iterations: int = 200,
    seed: int = 0,
) -> list[ScalingPoint]:
    """Measure per-iteration machine costs over a size sweep.

    Uses matched-density random instances so only ``n`` varies; iteration
    count is small because per-iteration costs are nearly stationary.
    """
    rng = ensure_rng(seed)
    points = []
    for n in sizes:
        m = n * average_degree // 2
        problem = generate_random(n, m, seed=int(rng.integers(2**31)))
        model = problem.to_ising()
        ours = InSituCimAnnealer(model, seed=seed).run(iterations)
        fpga = DirectECimAnnealer(
            model, HardwareConfig.baseline_fpga(), seed=seed
        ).run(iterations)
        asic = DirectECimAnnealer(
            model, HardwareConfig.baseline_asic(), seed=seed
        ).run(iterations)
        points.append(
            ScalingPoint(
                nodes=n,
                edges=m,
                insitu_energy_per_iter=ours.annealing_energy / iterations,
                fpga_energy_per_iter=fpga.annealing_energy / iterations,
                asic_energy_per_iter=asic.annealing_energy / iterations,
                insitu_time_per_iter=ours.annealing_time / iterations,
                baseline_time_per_iter=asic.annealing_time / iterations,
            )
        )
    return points


def fitted_exponent(points: list[ScalingPoint], attribute: str) -> float:
    """Least-squares slope of log(attribute) vs log(n).

    ≈ 1 for O(n) scaling, ≈ 0 for size-independent cost.
    """
    import numpy as np

    if len(points) < 2:
        raise ValueError("need at least two scaling points")
    xs = np.log([p.nodes for p in points])
    ys = np.log([getattr(p, attribute) for p in points])
    slope, _ = np.polyfit(xs, ys, 1)
    return float(slope)
