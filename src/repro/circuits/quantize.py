"""k-bit quantization of the coupling matrix for crossbar storage.

The paper maps each matrix element onto a ``1 × k`` sub-array of single-bit
cells ("each cell storing 1 bit under k-bit quantization", Sec. 3.3), and
computes positive- and negative-input contributions separately because the
array only supports non-negative quantities.  :class:`MatrixQuantizer`
implements exactly that storage scheme:

* magnitudes are rounded to ``k``-bit integers against a shared LSB scale,
* signs split the bits into a *positive plane* and a *negative plane*,
* :meth:`QuantizedMatrix.dequantize` reconstructs the stored matrix
  ``Ĵ = lsb · (Σ_b 2^b P_b − Σ_b 2^b N_b)`` with ≤ ½ LSB per-element error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_count, check_square_symmetric


@dataclass(frozen=True)
class QuantizedMatrix:
    """Bit-plane image of a quantized coupling matrix.

    Attributes
    ----------
    positive_planes / negative_planes:
        Boolean arrays of shape ``(k, n, n)``; plane ``b`` holds bit ``b``
        of the magnitude for positively / negatively signed elements.
    lsb:
        Value of one magnitude unit.
    bits:
        ``k``, the quantization width.
    """

    positive_planes: np.ndarray
    negative_planes: np.ndarray
    lsb: float
    bits: int

    @property
    def num_spins(self) -> int:
        """Matrix dimension ``n``."""
        return self.positive_planes.shape[1]

    @property
    def num_columns(self) -> int:
        """Physical crossbar columns per sign plane, ``n · k``."""
        return self.num_spins * self.bits

    def magnitudes(self) -> tuple[np.ndarray, np.ndarray]:
        """Integer magnitude matrices ``(P, N)`` recombined from bit planes.

        Accumulated plane by plane to keep peak memory at one ``(n, n)``
        int32 array even for the 3000-spin instances.
        """
        n = self.num_spins
        pos = np.zeros((n, n), dtype=np.int32)
        neg = np.zeros((n, n), dtype=np.int32)
        for b in range(self.bits):
            weight = np.int32(1 << b)
            pos += self.positive_planes[b].astype(np.int32) * weight
            neg += self.negative_planes[b].astype(np.int32) * weight
        return pos, neg

    def dequantize(self) -> np.ndarray:
        """Reconstruct the stored matrix ``Ĵ``."""
        pos, neg = self.magnitudes()
        return self.lsb * (pos - neg).astype(np.float64)

    def cell_count(self) -> int:
        """Number of programmed '1' cells across both planes."""
        return int(self.positive_planes.sum() + self.negative_planes.sum())


class MatrixQuantizer:
    """Quantizer producing :class:`QuantizedMatrix` bit-plane images.

    Parameters
    ----------
    bits:
        ``k``, bits per element magnitude (paper default: 4).
    """

    def __init__(self, bits: int = 4) -> None:
        # check_count rejects bool (True would quantize to 1 bit) and
        # non-integer floats (2.7 used to silently truncate to 2 bits).
        self.bits = check_count("bits", bits)
        if self.bits > 16:
            raise ValueError(f"bits must be in [1, 16], got {self.bits}")

    @property
    def max_level(self) -> int:
        """Largest representable magnitude level, ``2^k − 1``."""
        return (1 << self.bits) - 1

    def lsb_for_peak(self, peak: float) -> float:
        """LSB that maps a largest |element| of ``peak`` onto the top level."""
        peak = float(peak)
        if peak < 0:
            raise ValueError(f"peak must be >= 0, got {peak}")
        if peak == 0.0:
            return 1.0
        return peak / self.max_level

    def lsb_for(self, matrix: np.ndarray) -> float:
        """LSB that maps the largest |element| onto the top level."""
        return self.lsb_for_peak(float(np.max(np.abs(matrix))) if matrix.size else 0.0)

    def quantize(self, matrix, lsb: float | None = None) -> QuantizedMatrix:
        """Quantize a symmetric matrix into sign-split bit planes.

        ``lsb`` overrides the per-matrix scale — tiled arrays pass the
        whole-matrix LSB so every tile shares one magnitude grid and the
        assembled image matches a monolithic crossbar exactly.
        """
        J = check_square_symmetric(matrix, "matrix")
        return self._quantize_validated(J, lsb)

    def quantize_general(self, matrix, lsb: float | None = None) -> QuantizedMatrix:
        """Quantize a square (not necessarily symmetric) matrix.

        Crossbar *tiles* store off-diagonal blocks of a symmetric matrix,
        which are themselves arbitrary; the array has no symmetry
        requirement, only the whole-model energy algebra does.
        """
        J = np.asarray(matrix, dtype=np.float64)
        if J.ndim != 2 or J.shape[0] != J.shape[1]:
            raise ValueError(f"matrix must be square, got shape {J.shape}")
        return self._quantize_validated(J, lsb)

    def _quantize_validated(self, J: np.ndarray, lsb: float | None = None) -> QuantizedMatrix:
        if lsb is None:
            lsb = self.lsb_for(J)
        else:
            lsb = float(lsb)
            if lsb <= 0:
                raise ValueError(f"lsb must be > 0, got {lsb}")
        levels = np.rint(np.abs(J) / lsb).astype(np.int64)
        levels = np.minimum(levels, self.max_level)
        pos_mask = J > 0
        neg_mask = J < 0
        k = self.bits
        n = J.shape[0]
        pos_planes = np.zeros((k, n, n), dtype=bool)
        neg_planes = np.zeros((k, n, n), dtype=bool)
        for b in range(k):
            bit = (levels >> b) & 1
            pos_planes[b] = (bit == 1) & pos_mask
            neg_planes[b] = (bit == 1) & neg_mask
        return QuantizedMatrix(pos_planes, neg_planes, lsb, k)

    def quantization_error(self, matrix) -> float:
        """Largest per-element reconstruction error for this matrix."""
        J = check_square_symmetric(matrix, "matrix")
        return float(np.max(np.abs(self.quantize(J).dequantize() - J)))
