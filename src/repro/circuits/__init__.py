"""Circuit substrate: crossbar, data converters, drivers and parasitics.

Everything between the device compact models and the architecture-level
annealer machines: k-bit matrix storage, the DG FeFET crossbar with its
sensing chain (mux → SAR ADC → shift&add → sum), line drivers, the back-gate
DAC, the baselines' exponent units, and interconnect parasitics.
"""

from repro.circuits.adc import SarAdc
from repro.circuits.crossbar import ActivationStats, DgFefetCrossbar
from repro.circuits.drivers import BackGateDac, LineDriver
from repro.circuits.exponent_unit import ExponentUnit
from repro.circuits.interconnect import WireModel
from repro.circuits.quantize import MatrixQuantizer, QuantizedMatrix
from repro.circuits.shift_add import ShiftAddUnit

__all__ = [
    "SarAdc",
    "DgFefetCrossbar",
    "ActivationStats",
    "LineDriver",
    "BackGateDac",
    "ExponentUnit",
    "WireModel",
    "MatrixQuantizer",
    "QuantizedMatrix",
    "ShiftAddUnit",
]
