"""Crossbar wiring parasitics (DESTINY-style analytical RC substitution).

The paper extracts wiring parasitics with DESTINY [37]; here an analytical
distributed-RC model supplies the two effects that matter at the
architecture level:

* **settling time** of an array activation, which grows with the physical
  line length (≈ ``0.38·R_total·C_total`` for a distributed line, Elmore);
* **IR-drop attenuation** of summed column currents, which compresses large
  many-row sums slightly and is applied by the device-accurate crossbar
  backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import FEMTO
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class WireModel:
    """Per-cell-pitch RC parameters of the crossbar lines (22 nm class).

    Parameters
    ----------
    resistance_per_cell:
        Ohms of line resistance per cell pitch.
    capacitance_per_cell:
        Farads of line capacitance per cell pitch.
    ir_drop_coefficient:
        Sensitivity of the current loss to the SL voltage drop (1/volt):
        ``loss_fraction = coeff · I_column · R_line``.  A small-signal
        stand-in for the SL IR drop.
    """

    resistance_per_cell: float = 2.5
    capacitance_per_cell: float = 0.08 * FEMTO
    ir_drop_coefficient: float = 0.5

    def __post_init__(self) -> None:
        check_positive("resistance_per_cell", self.resistance_per_cell)
        check_positive("capacitance_per_cell", self.capacitance_per_cell)
        if self.ir_drop_coefficient < 0:
            raise ValueError("ir_drop_coefficient must be >= 0")

    def line_resistance(self, cells: int) -> float:
        """Total line resistance across ``cells`` pitches."""
        if cells < 0:
            raise ValueError("cells must be >= 0")
        return self.resistance_per_cell * cells

    def line_capacitance(self, cells: int) -> float:
        """Total line capacitance across ``cells`` pitches."""
        if cells < 0:
            raise ValueError("cells must be >= 0")
        return self.capacitance_per_cell * cells

    def settle_time(self, cells: int) -> float:
        """Elmore settling time of a distributed line spanning ``cells``."""
        return 0.38 * self.line_resistance(cells) * self.line_capacitance(cells)

    def attenuation(self, column_current: np.ndarray, rows: int) -> np.ndarray:
        """Apply SL IR-drop compression to summed column currents.

        The loss grows with both the current magnitude and the line length;
        coefficients keep it at the few-percent level for the arrays studied
        here (the paper's robustness claim relies on it staying benign).
        """
        i = np.asarray(column_current, dtype=np.float64)
        loss = self.ir_drop_coefficient * self.line_resistance(rows) * i
        factor = np.clip(1.0 - loss, 0.8, 1.0)
        return i * factor
