"""Shift-and-add / summation digital back-end of the crossbar read path.

After the ADC digitises the ``k`` bit-plane columns of a matrix element, the
S&A recombines them with binary weights and the per-column sign metadata
(σ_c sign × plane sign), and the final Sum aggregates all element groups
(paper Fig 6d).  Functionally this is exact integer arithmetic; the model
adds per-operation energy/latency so the ledgers can account for it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import FEMTO, NANO
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ShiftAddUnit:
    """Binary-weight recombiner for ``k`` bit-plane codes.

    Parameters
    ----------
    energy_per_code:
        Joules per shifted-and-accumulated code.
    time_per_group:
        Seconds to fold one k-column group (pipelined with sensing, so it
        only appears once per activation in the timing model).
    """

    energy_per_code: float = 5.0 * FEMTO
    time_per_group: float = 1.0 * NANO

    def __post_init__(self) -> None:
        check_positive("energy_per_code", self.energy_per_code)
        check_positive("time_per_group", self.time_per_group)

    def combine(self, codes, signs=None) -> float:
        """Fold codes of shape ``(k,)`` or ``(k, groups)`` into a value.

        ``signs`` (broadcastable to the group axis) carries the per-column
        sign metadata; the result is ``Σ_g sign_g Σ_b 2^b code[b, g]``.
        """
        arr = np.asarray(codes, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, np.newaxis]
        if arr.ndim != 2:
            raise ValueError(f"codes must be 1-D or 2-D, got shape {arr.shape}")
        weights = (2.0 ** np.arange(arr.shape[0]))[:, np.newaxis]
        per_group = (weights * arr).sum(axis=0)
        if signs is not None:
            per_group = per_group * np.asarray(signs, dtype=np.float64)
        return float(per_group.sum())

    def energy(self, codes_folded: int) -> float:
        """Energy for folding ``codes_folded`` ADC codes."""
        if codes_folded < 0:
            raise ValueError("codes_folded must be >= 0")
        return codes_folded * self.energy_per_code
