"""Line drivers and the back-gate DAC.

Driver energy is transition energy: a line that holds its value between
iterations costs nothing (``C·V²`` is paid on toggles).  This matters for
the proposed annealer — between iterations only the lines of *changed* spins
toggle, which is why its per-iteration energy stays flat while the direct-E
baselines re-drive and re-sense the whole array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import FEMTO, NANO, PICO
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LineDriver:
    """A binary word/bit-line driver charging a wire of ``capacitance``.

    Parameters
    ----------
    capacitance:
        Lumped line capacitance (farads).
    swing:
        Voltage swing (volts).
    time_constant:
        Settling time added to an array activation when this line toggles.
    """

    capacitance: float = 30.0 * FEMTO
    swing: float = 1.0
    time_constant: float = 0.5 * NANO

    def __post_init__(self) -> None:
        check_positive("capacitance", self.capacitance)
        check_positive("swing", self.swing)
        check_positive("time_constant", self.time_constant)

    @property
    def energy_per_toggle(self) -> float:
        """Dynamic energy for one full-swing transition, ``C·V²``."""
        return self.capacitance * self.swing * self.swing

    def energy(self, toggles: int) -> float:
        """Energy for ``toggles`` line transitions."""
        if toggles < 0:
            raise ValueError("toggles must be >= 0")
        return toggles * self.energy_per_toggle


@dataclass(frozen=True)
class BackGateDac:
    """The analog back-gate driver realising the ``V_BG`` temperature knob.

    One *update* reprograms the shared BG rail to a new 10 mV-grid level
    (paper Sec. 3.4); between updates the rail holds its value for free.
    """

    energy_per_update: float = 1.0 * PICO
    time_per_update: float = 2.0 * NANO
    v_min: float = 0.0
    v_max: float = 0.7
    step: float = 0.01

    def __post_init__(self) -> None:
        check_positive("energy_per_update", self.energy_per_update)
        check_positive("time_per_update", self.time_per_update)
        check_positive("step", self.step)
        if self.v_max <= self.v_min:
            raise ValueError("v_max must exceed v_min")

    @property
    def num_levels(self) -> int:
        """Number of distinct rail levels on the step grid."""
        return int(round((self.v_max - self.v_min) / self.step)) + 1

    def snap(self, v_bg: float) -> float:
        """Snap a requested voltage onto the DAC grid (clamped to range)."""
        v = min(max(float(v_bg), self.v_min), self.v_max)
        steps = round((v - self.v_min) / self.step)
        return self.v_min + steps * self.step

    def energy(self, updates: int) -> float:
        """Energy for ``updates`` rail reprogrammings."""
        if updates < 0:
            raise ValueError("updates must be >= 0")
        return updates * self.energy_per_update
