"""DG FeFET crossbar array computing the in-situ incremental energy.

Implements the array of paper Fig 6d.  An ``n × n`` coupling matrix is
stored as sign-split ``k``-bit planes (one ``1 × k`` sub-array per element,
:mod:`repro.circuits.quantize`).  Rows share front gates driven by ``σ_r``,
columns share drain/source lines driven by ``σ_c``, and the common back-gate
rail carries the annealing factor:

.. math::  E_{inc} = \\sigma_r^T \\hat J \\sigma_c \\cdot f(V_{BG}).

Sign handling follows the paper's non-negative-input constraint: row signs
are evaluated in separate *phases* (positive rows, then negative rows, since
rows sum in analog on the column wires), while column signs and plane signs
are digital metadata folded in by the shift-and-add stage.

Two backends:

* ``"behavioral"`` — exact arithmetic on the dequantized matrix with the
  nominal cell's normalised transfer curve as ``f(V_BG)``; optional read
  noise and static weight error.  Fast enough for the 3000-spin benches.
* ``"device"`` — every activated cell evaluated through the
  :class:`~repro.devices.dg_fefet.DGFeFET` compact model with per-cell
  threshold variation, wire IR-drop and real ADC quantization.  Used by the
  device-level tests/ablations and small-array examples.

Both backends report identical :class:`ActivationStats`, which the
architecture layer converts into energy and latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.adc import SarAdc
from repro.circuits.interconnect import WireModel
from repro.circuits.quantize import MatrixQuantizer, QuantizedMatrix
from repro.circuits.shift_add import ShiftAddUnit
from repro.devices.constants import (
    DEFAULT_READ_VDL,
    DEFAULT_READ_VFG,
    VBG_MAX,
    VBG_MIN,
)
from repro.devices.dg_fefet import DGFeFET
from repro.devices.variability import VariationModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range

#: One-time program/erase pulse energy (~10 fJ per ±4 V / 1 µs gate pulse
#: at 22 nm) — shared by every machine's programming-cost bookkeeping.
PROGRAM_PULSE_ENERGY = 1.0e-14


@dataclass(frozen=True)
class ActivationStats:
    """Hardware activity counters for one crossbar evaluation.

    Attributes
    ----------
    phases:
        Sequential array activations (one per row-sign present).
    adc_conversions:
        Total ADC conversions performed.
    mux_slots:
        Sequential conversion slots on the critical path (each slot is one
        ADC conversion time; parallel ADCs share a slot).
    sa_codes:
        Codes folded by the shift-and-add stage.
    fg_toggles / dl_toggles:
        Driver line transitions relative to the previous evaluation.
    active_cells:
        Cells with both gate and drain selected across all phases.
    settle_time:
        Analog settling time added per phase by the wiring (seconds).
    """

    phases: int
    adc_conversions: int
    mux_slots: int
    sa_codes: int
    fg_toggles: int
    dl_toggles: int
    active_cells: int
    settle_time: float


class DgFefetCrossbar:
    """A programmed DG FeFET crossbar with peripheral sensing.

    Parameters
    ----------
    matrix:
        Symmetric coupling matrix to program.
    bits:
        ``k``-bit quantization per element (paper default 4).
    backend:
        ``"behavioral"`` or ``"device"`` (see module docstring).
    adc:
        ADC model; default full scale is sized to a quarter of the worst-case
        column sum so realistic increments use most of the code range.
    wire:
        Interconnect parasitics model.
    shift_add:
        Digital recombination model.
    variation:
        Device-variation model (threshold spread frozen at program time,
        per-read current noise).
    cell:
        Template DG FeFET; defaults to the standard calibrated cell.
    lsb:
        Optional quantization LSB override; tiled arrays pass the
        whole-matrix scale so all tiles share one magnitude grid.
    seed:
        Seed for the variation draws.
    """

    def __init__(
        self,
        matrix,
        bits: int = 4,
        backend: str = "behavioral",
        adc: SarAdc | None = None,
        wire: WireModel | None = None,
        shift_add: ShiftAddUnit | None = None,
        variation: VariationModel | None = None,
        cell: DGFeFET | None = None,
        require_symmetric: bool = True,
        lsb: float | None = None,
        seed=None,
    ) -> None:
        if backend not in ("behavioral", "device"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.quantizer = MatrixQuantizer(bits)
        if require_symmetric:
            self.quantized: QuantizedMatrix = self.quantizer.quantize(matrix, lsb=lsb)
        else:
            # Tile mode: off-diagonal blocks of a symmetric model are
            # arbitrary square matrices; the array itself doesn't care.
            self.quantized = self.quantizer.quantize_general(matrix, lsb=lsb)
        self.matrix_hat = self.quantized.dequantize()
        # The quantizer already check_count-validated bits; reuse its
        # normalised value instead of re-coercing with int() (which let
        # bool/float through).
        self.bits = self.quantizer.bits
        self.n = self.matrix_hat.shape[0]
        self.wire = wire or WireModel()
        self.shift_add = shift_add or ShiftAddUnit()
        self.variation = variation or VariationModel()
        self._rng = ensure_rng(seed)

        # Nominal cell: program once as '1' and once as '0' to obtain the
        # two stored threshold voltages.
        self.cell = cell or DGFeFET()
        self.cell.program_bit(1)
        self._vth_on = self.cell.vth
        self.cell.program_bit(0)
        self._vth_off = self.cell.vth
        self.cell.program_bit(1)
        self._gamma = self.cell.bg_coupling
        self._transistor = self.cell.transistor

        # Reference '1'-cell current at the top of the BG range: the unit
        # that converts sensed amperes back into cell counts.
        self._unit_max = float(
            self._transistor.drain_current(
                DEFAULT_READ_VFG, DEFAULT_READ_VDL, self._vth_on - self._gamma * VBG_MAX
            )
        )
        if adc is None:
            # Size the full scale to the worst-case column sum (all rows
            # conducting); the 13-bit resolution of the [36] SAR keeps the
            # LSB fine enough for single-flip increments.
            full_scale = self._unit_max * max(self.n, 8)
            adc = SarAdc(full_scale=full_scale)
        self.adc = adc

        self._has_neg = bool(self.quantized.negative_planes.any())
        self._planes_used = 2 if self._has_neg else 1

        if self.backend == "device":
            shape = (2, self.bits, self.n, self.n)
            self._vth_offsets = self.variation.sample_vth_offsets(shape, self._rng)
        else:
            self._vth_offsets = None
            # Behavioural stand-in for frozen threshold spread: a static
            # per-element relative weight error evaluated at mid-range V_BG.
            if self.variation.vth_sigma > 0.0:
                mid_factor = self._relative_current_sigma()
                eps = self._rng.normal(0.0, mid_factor, size=self.matrix_hat.shape)
                eps = (eps + eps.T) / 2.0  # keep the stored image symmetric
                self._weight_error = eps
            else:
                self._weight_error = None

        # Driver-state memory for toggle accounting.
        self._last_fg: np.ndarray | None = None
        self._last_dl: np.ndarray | None = None
        self._factor_cache: dict[float, float] = {}

    @property
    def planes(self) -> int:
        """Sign planes in use: 2 when a negative plane exists, else 1."""
        return self._planes_used

    # ------------------------------------------------------------------
    # Factor curve (normalised nominal-cell current)
    # ------------------------------------------------------------------
    def factor(self, v_bg: float) -> float:
        """Normalised '1'-cell current at ``v_bg`` — the physical ``f``.

        This is the quantity Fig 6c matches against the analytic fractional
        factor; both backends use it so their results agree in expectation.
        Values are memoised per 10 µV so the annealing loop pays the device
        evaluation only once per distinct rail level.
        """
        key = round(float(v_bg), 5)
        cached = self._factor_cache.get(key)
        if cached is not None:
            return cached
        check_in_range("v_bg", v_bg, VBG_MIN - 1e-9, VBG_MAX + 1e-9)
        i = float(
            self._transistor.drain_current(
                DEFAULT_READ_VFG,
                DEFAULT_READ_VDL,
                self._vth_on - self._gamma * float(v_bg),
            )
        )
        value = i / self._unit_max
        self._factor_cache[key] = value
        return value

    def _relative_current_sigma(self) -> float:
        """First-order relative current spread caused by ``vth_sigma``."""
        phi = self._transistor.thermal_voltage * self._transistor.ideality
        return min(self.variation.vth_sigma / phi * 0.5, 1.0)

    # ------------------------------------------------------------------
    # Evaluations
    # ------------------------------------------------------------------
    def compute_increment(
        self, sigma_r, sigma_c, v_bg: float, validate: bool = True
    ) -> tuple[float, ActivationStats]:
        """Evaluate ``σ_rᵀ Ĵ σ_c · f(V_BG)`` in-situ.

        ``σ_r``/``σ_c`` take values in {−1, 0, +1} (zeros deselect lines).
        Returns the sensed value (in coupling-matrix units) and the activity
        counters of the evaluation.  ``validate=False`` skips the input
        checks (the annealer machines call this once per iteration with
        vectors they construct themselves).
        """
        r = np.asarray(sigma_r, dtype=np.float64)
        c = np.asarray(sigma_c, dtype=np.float64)
        if validate:
            if r.shape != (self.n,) or c.shape != (self.n,):
                raise ValueError(f"input vectors must have shape ({self.n},)")
            if not np.all(np.isin(r, (-1.0, 0.0, 1.0))) or not np.all(
                np.isin(c, (-1.0, 0.0, 1.0))
            ):
                raise ValueError("inputs must take values in {-1, 0, +1}")
            check_in_range("v_bg", v_bg, VBG_MIN - 1e-9, VBG_MAX + 1e-9)

        if self.backend == "behavioral":
            value = self._behavioral_value(r, c, v_bg)
        else:
            value = self._device_value(r, c, v_bg)
        stats = self._activation_stats(r, c)
        return value, stats

    def compute_quadratic(self, sigma, v_bg: float = VBG_MAX) -> tuple[float, ActivationStats]:
        """Evaluate the full quadratic form ``σᵀ Ĵ σ`` (direct-E baselines).

        This is the same array activation with both input vectors dense; at
        ``V_BG = V_BG^{max}`` the factor is 1 and the sensed value is the
        plain VMV product (the diagonal of the stored image is zero).
        """
        s = np.asarray(sigma, dtype=np.float64)
        return self.compute_increment(s, s, v_bg)

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def _behavioral_value(self, r: np.ndarray, c: np.ndarray, v_bg: float) -> float:
        # Only the driven columns contribute; slicing keeps the cost at
        # O(n·|F|) per evaluation, matching the physical activation.
        cols = np.flatnonzero(c)
        if cols.size == 0:
            return 0.0
        block = self.matrix_hat[:, cols]
        if self._weight_error is not None:
            block = block * (1.0 + self._weight_error[:, cols])
        value = float(r @ (block @ c[cols])) * self.factor(v_bg)
        if self.variation.read_noise_sigma > 0.0:
            value = float(
                self.variation.apply_read_noise(np.asarray(value), self._rng)
            )
        return value

    def _device_value(self, r: np.ndarray, c: np.ndarray, v_bg: float) -> float:
        active_cols = np.flatnonzero(c)
        if active_cols.size == 0:
            return 0.0
        col_sign = c[active_cols]
        v_fg_on = DEFAULT_READ_VFG
        v_dl_on = DEFAULT_READ_VDL
        total = 0.0
        planes = (
            (0, +1.0, self.quantized.positive_planes),
            (1, -1.0, self.quantized.negative_planes),
        )
        for row_sign in (+1.0, -1.0):
            rows_on = r == row_sign
            if not rows_on.any():
                continue
            v_gs = np.where(rows_on, v_fg_on, 0.0)[:, np.newaxis]
            phase_value = 0.0
            for plane_idx, plane_sign, plane_bits in planes:
                if plane_sign < 0 and not self._has_neg:
                    continue
                counts_cols = np.zeros(active_cols.size, dtype=np.float64)
                for b in range(self.bits):
                    bits = plane_bits[b][:, active_cols]
                    vth = np.where(bits, self._vth_on, self._vth_off)
                    if self._vth_offsets is not None:
                        vth = vth + self._vth_offsets[plane_idx, b][:, active_cols]
                    vth_eff = vth - self._gamma * float(v_bg)
                    currents = self._transistor.drain_current(v_gs, v_dl_on, vth_eff)
                    column_current = currents.sum(axis=0)
                    column_current = self.variation.apply_read_noise(
                        column_current, self._rng
                    )
                    column_current = self.wire.attenuation(column_current, self.n)
                    sensed = self.adc.quantize(column_current)
                    counts_cols += (2.0**b) * sensed / self._unit_max
                phase_value += plane_sign * float((counts_cols * col_sign).sum())
            total += row_sign * phase_value
        return total * self.quantized.lsb

    # ------------------------------------------------------------------
    # Activity accounting
    # ------------------------------------------------------------------
    def _activation_stats(self, r: np.ndarray, c: np.ndarray) -> ActivationStats:
        phases = int((r == 1).any()) + int((r == -1).any())
        phases = max(phases, 1)
        active_groups = int(np.count_nonzero(c))
        conversions = phases * active_groups * self.bits * self._planes_used
        total_columns = self.n * self.bits * self._planes_used
        num_adcs = max(1, total_columns // self.adc.mux_ratio)
        active_columns = active_groups * self.bits * self._planes_used
        slots = phases * max(1, -(-active_columns // num_adcs))  # ceil div
        active_cells = phases and int(np.count_nonzero(r)) * active_columns
        fg_now = r.astype(np.int8)
        dl_now = c.astype(np.int8)
        fg_toggles = (
            int(np.count_nonzero(fg_now != self._last_fg))
            if self._last_fg is not None
            else int(np.count_nonzero(fg_now))
        )
        dl_toggles = (
            int(np.count_nonzero(dl_now != self._last_dl))
            if self._last_dl is not None
            else int(np.count_nonzero(dl_now))
        )
        self._last_fg = fg_now
        self._last_dl = dl_now
        return ActivationStats(
            phases=phases,
            adc_conversions=conversions,
            mux_slots=slots,
            sa_codes=conversions,
            fg_toggles=fg_toggles,
            dl_toggles=dl_toggles,
            active_cells=int(active_cells),
            settle_time=phases * self.wire.settle_time(self.n),
        )

    def reset_drive_state(self) -> None:
        """Forget the driver-toggle memory (fresh-run line state).

        A shared programmed array serves many anneal runs; each run
        starts with every FG/DL line parked, so the first activation must
        be billed as toggling from scratch rather than diffed against the
        previous run's final line state.
        """
        self._last_fg = None
        self._last_dl = None

    # ------------------------------------------------------------------
    # Programming cost
    # ------------------------------------------------------------------
    def programming_summary(self) -> dict[str, float]:
        """One-time programming cost summary of the stored image.

        Every cell receives one program-or-erase pulse; '1' cells get the
        set pulse.  Reported so the architecture ledger can show the (tiny,
        amortised) write cost next to the per-iteration read costs.
        """
        total_cells = 2 * self.bits * self.n * self.n
        ones = self.quantized.cell_count()
        return {
            "cells": float(total_cells),
            "programmed_ones": float(ones),
            "write_pulses": float(total_cells),
            "energy": total_cells * PROGRAM_PULSE_ENERGY,
        }
