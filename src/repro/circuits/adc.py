"""SAR ADC model (the 8-to-1 multiplexed converter of ref [36], 22 nm-scaled).

The ADC is the dominant sensing cost in every CiM annealer the paper
compares (Fig 8a/9a break energy into ``e^x`` and ``ADC`` shares).  This
model captures the three things the architecture study needs:

* **quantization** — currents are digitised against a fixed full scale with
  ``bits`` of resolution (monotone, ≤ ½ LSB error in range, saturating);
* **energy** — a constant per conversion;
* **latency** — a constant per conversion (one *mux slot*).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import NANO, PICO
from repro.utils.validation import check_count, check_positive


@dataclass(frozen=True)
class SarAdc:
    """A successive-approximation ADC with an 8-to-1 input multiplexer.

    Parameters
    ----------
    bits:
        Resolution in bits.
    full_scale:
        Input full scale in amperes; codes saturate above it.
    energy_per_conversion:
        Joules per conversion (0.25 pJ default — 13 b SAR of [36] scaled to
        the 22 nm node and the short word the annealer needs).
    time_per_conversion:
        Seconds per conversion (one multiplexer slot; 25 ns ≈ 40 MS/s [36]).
    mux_ratio:
        Number of columns sharing this ADC through the analog mux.
    """

    bits: int = 13
    full_scale: float = 1.0e-5
    energy_per_conversion: float = 0.25 * PICO
    time_per_conversion: float = 25.0 * NANO
    mux_ratio: int = 8

    def __post_init__(self) -> None:
        # check_count rejects bools (True passed `1 <= bits <= 24` as a
        # 1-bit ADC) and non-integer floats (2.7 crashed later at
        # `1 << bits`); frozen dataclass, so write the normalised value
        # back through object.__setattr__.
        object.__setattr__(self, "bits", check_count("bits", self.bits))
        if self.bits > 24:
            raise ValueError(f"bits must be in [1, 24], got {self.bits}")
        check_positive("full_scale", self.full_scale)
        check_positive("energy_per_conversion", self.energy_per_conversion)
        check_positive("time_per_conversion", self.time_per_conversion)
        object.__setattr__(
            self, "mux_ratio", check_count("mux_ratio", self.mux_ratio)
        )

    @property
    def levels(self) -> int:
        """Number of output codes, ``2**bits``."""
        return 1 << self.bits

    @property
    def lsb(self) -> float:
        """Input amperes per code step."""
        return self.full_scale / (self.levels - 1)

    def convert(self, current) -> np.ndarray:
        """Digitise input current(s) to integer codes (saturating)."""
        i = np.asarray(current, dtype=np.float64)
        if np.any(i < -self.lsb):
            raise ValueError("ADC input current must be non-negative")
        codes = np.rint(np.clip(i, 0.0, self.full_scale) / self.lsb)
        return codes.astype(np.int64)

    def to_current(self, codes) -> np.ndarray:
        """Reconstruct the analog value a code represents (code · LSB)."""
        return np.asarray(codes, dtype=np.float64) * self.lsb

    def quantize(self, current) -> np.ndarray:
        """Round-trip ``convert`` + ``to_current``: the sensed analog value."""
        return self.to_current(self.convert(current))
