"""Exponential-function units used by the direct-E baseline annealers.

The CiM/FPGA and CiM/ASIC baselines (paper Sec. 4) evaluate the Metropolis
factor ``exp(−ΔE/T)`` for every uphill move, on the exponent hardware of
ref [18].  The proposed design's whole point is eliminating this unit, so
its per-evaluation energy/latency show up directly in the Fig 8/9 gaps.

The functional evaluation uses a fixed-point piecewise-second-order scheme
(the style of [18]); its numerical error is tiny compared to annealing noise
but is modelled so the baseline is not unrealistically exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import NANO, PICO
from repro.utils.validation import check_count, check_positive


@dataclass(frozen=True)
class ExponentUnit:
    """Hardware ``e^x`` evaluator (for x ≤ 0, the Metropolis range).

    Parameters
    ----------
    energy_per_eval:
        Joules per evaluation.
    time_per_eval:
        Seconds per evaluation.
    fraction_bits:
        Fixed-point fractional bits of the output (quantises the result).
    label:
        ``"fpga"`` or ``"asic"`` in the paper's comparison.
    """

    energy_per_eval: float
    time_per_eval: float
    fraction_bits: int = 12
    label: str = "exp-unit"

    def __post_init__(self) -> None:
        check_positive("energy_per_eval", self.energy_per_eval)
        check_positive("time_per_eval", self.time_per_eval)
        # check_count rejects bools (True passed as 1 fractional bit) and
        # non-integer floats (2.7 crashed later at `1 << fraction_bits`);
        # frozen dataclass, so write the normalised value back.
        object.__setattr__(
            self,
            "fraction_bits",
            check_count("fraction_bits", self.fraction_bits),
        )
        if self.fraction_bits > 30:
            raise ValueError("fraction_bits must be in [1, 30]")

    @classmethod
    def fpga(cls) -> "ExponentUnit":
        """The FPGA implementation of [18] (throughput-oriented, costly)."""
        return cls(energy_per_eval=2790.0 * PICO, time_per_eval=12.0 * NANO, label="fpga")

    @classmethod
    def asic(cls) -> "ExponentUnit":
        """The area-efficient ASIC implementation of [18] at 22 nm."""
        return cls(energy_per_eval=84.0 * PICO, time_per_eval=8.0 * NANO, label="asic")

    def evaluate(self, x) -> np.ndarray:
        """Evaluate ``e^x`` (x ≤ 0) with fixed-point output quantisation."""
        arr = np.asarray(x, dtype=np.float64)
        if np.any(arr > 1e-12):
            raise ValueError("ExponentUnit evaluates e^x for x <= 0 only")
        exact = np.exp(arr)
        scale = float(1 << self.fraction_bits)
        return np.rint(exact * scale) / scale
