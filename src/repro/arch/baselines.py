"""The baseline machines: direct-E FeFET CiM annealers (CiM/FPGA, CiM/ASIC).

These model the comparison targets of Sec. 4: a FeFET crossbar computes the
*full* energy ``E_new = σ_newᵀJσ_new`` every iteration — activating all
``n·k·planes`` columns and paying 8 sequential conversions per 8:1-muxed ADC
— then digital logic forms ``ΔE`` and, for uphill moves, the FPGA or ASIC
exponent unit [18] evaluates the Metropolis factor.

The algorithm itself is the classic SA of :class:`~repro.core.sa.
DirectEAnnealer`; the machine layer books the hardware activity that the
direct-E transformation implies.  (The software computes ΔE with the cheap
identity — mathematically equal to the O(n²) hardware computation — so the
solution quality is exactly what the baseline would produce.)
"""

from __future__ import annotations

import numpy as np

from repro.arch.hardware import HardwareConfig
from repro.arch.ledger import Ledger
from repro.arch.mapping import CrossbarMapping
from repro.arch.result import CimRunResult
from repro.circuits.crossbar import PROGRAM_PULSE_ENERGY
from repro.circuits.quantize import MatrixQuantizer
from repro.core.sa import DirectEAnnealer
from repro.core.schedule import Schedule
from repro.ising.model import IsingModel
from repro.ising.sparse import dense_couplings
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_count


class DirectECimAnnealer:
    """Hardware-instrumented direct-E baseline machine.

    Parameters
    ----------
    model:
        The Ising model to solve (couplings only, as for the proposed
        machine).
    config:
        :meth:`HardwareConfig.baseline_fpga` or
        :meth:`HardwareConfig.baseline_asic` (default FPGA).
    flips_per_iteration / schedule / proposal:
        Algorithm parameters of the inner Metropolis SA.
    record_cost_trace:
        Record cumulative cost per iteration (Fig 8b/9b).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        model: IsingModel,
        config: HardwareConfig | None = None,
        flips_per_iteration: int = 1,
        schedule: Schedule | None = None,
        proposal: str = "random",
        record_cost_trace: bool = False,
        record_trace: bool = False,
        seed=None,
    ) -> None:
        if model.has_fields:
            raise ValueError(
                "crossbar machines store couplings only; fold fields in via "
                "model.with_ancilla() first"
            )
        self.config = config or HardwareConfig.baseline_fpga()
        if self.config.exponent is None:
            raise ValueError("direct-E baselines need an exponent unit")
        rng = ensure_rng(seed)
        # As for the proposed machine: the crossbar needs the dense matrix.
        # Densification allowlisted: programming a monolithic physical
        # array requires every cell of the stored image.
        J = dense_couplings(model)  # repro-lint: disable=RPL001
        quantizer = MatrixQuantizer(self.config.quantization_bits)
        self.quantized = quantizer.quantize(J)
        self.hw_model = IsingModel(
            self.quantized.dequantize(), None, offset=model.offset, name=model.name
        )
        self.mapping = CrossbarMapping.for_matrix(
            J, self.config.quantization_bits, self.config.adc.mux_ratio
        )
        self.flips_per_iteration = int(flips_per_iteration)
        self.record_cost_trace = bool(record_cost_trace)
        self._annealer = DirectEAnnealer(
            self.hw_model,
            flips_per_iteration=flips_per_iteration,
            schedule=schedule,
            proposal=proposal,
            iteration_hook=self._book_iteration,
            record_trace=record_trace,
            seed=rng,
        )
        self._ledger: Ledger | None = None
        self._iter_energy: list[float] | None = None
        self._iter_time: list[float] | None = None
        # Per-iteration constants of the full-array evaluation.
        cfg = self.config
        self._conversions = self.mapping.full_activation_conversions(phases=2)
        self._slots = self.mapping.full_activation_slots(phases=2)
        self._adc_energy = self._conversions * cfg.adc.energy_per_conversion
        self._adc_time = self._slots * cfg.adc.time_per_conversion
        self._sa_energy = self._conversions * cfg.shift_add.energy_per_code
        self._settle = 2 * cfg.wire.settle_time(self.mapping.num_spins)

    @property
    def label(self) -> str:
        """Machine display name."""
        return self.config.label

    # ------------------------------------------------------------------
    def _book_iteration(self, iteration, delta_e, accepted, temperature) -> None:
        assert self._ledger is not None
        cfg = self.config
        ledger = self._ledger
        ledger.add("adc", self._adc_energy, self._adc_time, self._conversions)
        ledger.add("shift_add", self._sa_energy, 0.0)
        # Spin-register lines toggle only when the proposal is accepted.
        driver_energy = 0.0
        if accepted:
            toggles = 2 * self.flips_per_iteration
            driver_energy = toggles * cfg.fg_driver.energy_per_toggle
        ledger.add("drivers", driver_energy, self._settle)
        exp_energy = exp_time = 0.0
        if delta_e > 0:
            exp_energy = cfg.exponent.energy_per_eval
            exp_time = cfg.exponent.time_per_eval
            ledger.add("exponent", exp_energy, exp_time)
        ledger.add("logic", cfg.logic_energy, cfg.logic_time)
        if self._iter_energy is not None:
            total_e = (
                self._adc_energy + self._sa_energy + driver_energy + exp_energy
                + cfg.logic_energy
            )
            total_t = self._adc_time + self._settle + exp_time + cfg.logic_time
            prev_e = self._iter_energy[-1] if self._iter_energy else 0.0
            prev_t = self._iter_time[-1] if self._iter_time else 0.0
            self._iter_energy.append(prev_e + total_e)
            self._iter_time.append(prev_t + total_t)

    # ------------------------------------------------------------------
    def run(self, iterations: int, initial=None) -> CimRunResult:
        """Anneal for ``iterations`` and return solution + cost books."""
        # Validated at the machine boundary: the programming ledger is
        # booked before the inner annealer would reject a bad count.
        iterations = check_count(
            "iterations", iterations,
            hint="the machine needs at least one proposal/accept step",
        )
        self._ledger = Ledger()
        self._iter_energy = [] if self.record_cost_trace else None
        self._iter_time = [] if self.record_cost_trace else None
        cells = 2 * self.config.quantization_bits * self.hw_model.num_spins**2
        self._ledger.add("program", cells * PROGRAM_PULSE_ENERGY, 0.0, cells)
        anneal = self._annealer.run(iterations, initial=initial)
        result = CimRunResult(
            label=self.label,
            anneal=anneal,
            ledger=self._ledger,
            energy_trace=np.asarray(self._iter_energy) if self.record_cost_trace else None,
            time_trace=np.asarray(self._iter_time) if self.record_cost_trace else None,
        )
        self._ledger = None
        return result
