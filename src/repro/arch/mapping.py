"""Crossbar mapping geometry: matrix → physical array dimensions.

One ``n × n`` coupling matrix maps onto an ``n × (n·k·planes)`` cell array
(1×k sub-array per element, positive/negative plane split), with one 8:1-
muxed ADC per ``mux_ratio`` columns.  The machines use this geometry for
their activity formulas; the bit planes are *interleaved* across mux domains
so the k columns of a single element land on k different ADCs (this is what
lets an incremental activation finish in a single conversion slot).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CrossbarMapping:
    """Physical geometry of a programmed crossbar.

    Attributes
    ----------
    num_spins:
        Logical matrix dimension ``n`` (array rows).
    bits:
        ``k``, bits per element.
    planes:
        1 when the matrix is non-negative, 2 when a negative plane exists.
    mux_ratio:
        Columns per ADC.
    ordering:
        Spin-ordering strategy the stored layout uses (``"identity"``, or
        a reordering pass such as ``"rcm"`` — see
        :mod:`repro.core.reorder`).
    bandwidth:
        Matrix bandwidth ``max |i − j|`` of the stored couplings in that
        ordering, when known.  Together with ``ordering`` this is the
        layout half of the mapping story: the tile count a sparse grid
        programs scales with the bandwidth, not just with nnz.
    """

    num_spins: int
    bits: int
    planes: int
    mux_ratio: int = 8
    ordering: str = "identity"
    bandwidth: int | None = None

    def __post_init__(self) -> None:
        if self.num_spins < 1 or self.bits < 1 or self.planes not in (1, 2):
            raise ValueError("invalid mapping geometry")
        if self.mux_ratio < 1:
            raise ValueError("mux_ratio must be >= 1")
        if self.bandwidth is not None and self.bandwidth < 0:
            raise ValueError("bandwidth must be >= 0")

    @classmethod
    def for_matrix(cls, matrix: np.ndarray, bits: int, mux_ratio: int = 8) -> "CrossbarMapping":
        """Derive the geometry for a coupling matrix."""
        planes = 2 if np.any(np.asarray(matrix) < 0) else 1
        return cls(np.asarray(matrix).shape[0], bits, planes, mux_ratio)

    @classmethod
    def for_tiled(
        cls,
        tiled,
        mux_ratio: int = 8,
        ordering: str = "identity",
        bandwidth: int | None = None,
    ) -> "CrossbarMapping":
        """Per-tile geometry of a :class:`~repro.arch.tiling.TiledCrossbar`.

        A tiled machine's physical array is the *tile* — ``tile_size`` rows
        and ``tile_size · k · planes`` columns with its own ADC population —
        so the mapping describes one tile rather than a (nonexistent)
        monolithic ``n``-row array.  Derived from the tile registry alone;
        the full coupling matrix is never consulted, let alone densified.
        ``ordering``/``bandwidth`` record the spin layout the tiles were
        cut from (the machines pass the reordering pass's report through).
        """
        return cls(
            tiled.tile_size, tiled.bits, tiled.planes, mux_ratio,
            ordering=ordering, bandwidth=bandwidth,
        )

    def summary(self) -> dict[str, object]:
        """Geometry + layout report of the programmed array.

        Everything a sizing study needs in one dict: the physical array
        dimensions and ADC population, plus the spin ordering and matrix
        bandwidth the stored layout realises.
        """
        return {
            "num_spins": self.num_spins,
            "bits": self.bits,
            "planes": self.planes,
            "mux_ratio": self.mux_ratio,
            "num_columns": self.num_columns,
            "num_adcs": self.num_adcs,
            "num_cells": self.num_cells,
            "ordering": self.ordering,
            "bandwidth": self.bandwidth,
        }

    @property
    def num_columns(self) -> int:
        """Total physical columns, ``n · k · planes``."""
        return self.num_spins * self.bits * self.planes

    @property
    def num_adcs(self) -> int:
        """ADC count, one per ``mux_ratio`` columns."""
        return max(1, self.num_columns // self.mux_ratio)

    @property
    def num_cells(self) -> int:
        """Total cells in the array."""
        return self.num_spins * self.num_columns

    def full_activation_conversions(self, phases: int = 2) -> int:
        """ADC conversions of a direct-E full-array evaluation."""
        return phases * self.num_columns

    def full_activation_slots(self, phases: int = 2) -> int:
        """Sequential conversion slots of a full-array evaluation.

        Every ADC serves ``mux_ratio`` columns sequentially.
        """
        return phases * self.mux_ratio

    def incremental_conversions(self, active_elements: int, phases: int = 2) -> int:
        """ADC conversions of an incremental evaluation (|F| elements)."""
        if active_elements < 0:
            raise ValueError("active_elements must be >= 0")
        return phases * active_elements * self.bits * self.planes

    def incremental_slots(self, active_elements: int, phases: int = 2) -> int:
        """Sequential slots of an incremental evaluation.

        With bit-interleaved column placement the active columns spread over
        distinct mux domains, so the slot count only grows once the active
        column count exceeds the ADC population.
        """
        active_cols = active_elements * self.bits * self.planes
        if active_cols == 0:
            return 0
        return phases * max(1, -(-active_cols // self.num_adcs))
