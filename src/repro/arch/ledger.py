"""Energy/latency ledgers with per-component breakdowns.

Every architecture-level run books its activity here: component name →
(energy, time, count).  The Fig 8/9 benches read the totals; the breakdown
reproduces the paper's energy split between the ADC and the ``e^x`` unit.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.utils.tables import render_table
from repro.utils.units import format_energy, format_time


@dataclass
class LedgerEntry:
    """Accumulated cost of one component."""

    energy: float = 0.0
    time: float = 0.0
    count: int = 0


@dataclass
class Ledger:
    """Additive energy/time accounting keyed by component name.

    ``time`` entries are *critical-path* contributions: components operating
    in parallel should only book the serialising share (the machines take
    care of that; the ledger just adds).
    """

    entries: dict[str, LedgerEntry] = field(default_factory=lambda: defaultdict(LedgerEntry))

    def add(self, component: str, energy: float = 0.0, time: float = 0.0, count: int = 1) -> None:
        """Book ``energy``/``time`` (non-negative) against ``component``."""
        if energy < 0 or time < 0:
            raise ValueError("ledger amounts must be non-negative")
        entry = self.entries[component]
        entry.energy += energy
        entry.time += time
        entry.count += count

    def merge(self, other: "Ledger") -> None:
        """Fold another ledger's entries into this one."""
        for name, entry in other.entries.items():
            self.add(name, entry.energy, entry.time, entry.count)

    @property
    def total_energy(self) -> float:
        """Total booked energy in joules."""
        return sum(e.energy for e in self.entries.values())

    @property
    def total_time(self) -> float:
        """Total booked critical-path time in seconds."""
        return sum(e.time for e in self.entries.values())

    def energy_breakdown(self) -> dict[str, float]:
        """Energy per component (joules)."""
        return {name: e.energy for name, e in sorted(self.entries.items())}

    def time_breakdown(self) -> dict[str, float]:
        """Time per component (seconds)."""
        return {name: e.time for name, e in sorted(self.entries.items())}

    def energy_share(self, component: str) -> float:
        """Fraction of total energy booked by ``component``."""
        total = self.total_energy
        if total <= 0:
            return 0.0
        return self.entries[component].energy / total if component in self.entries else 0.0

    def as_table(self, title: str | None = None) -> str:
        """Human-readable breakdown table."""
        rows = [
            (name, e.count, format_energy(e.energy), format_time(e.time))
            for name, e in sorted(self.entries.items())
        ]
        rows.append(("TOTAL", sum(e.count for e in self.entries.values()),
                     format_energy(self.total_energy), format_time(self.total_time)))
        return render_table(["component", "ops", "energy", "time"], rows, title=title)
