"""Hardware configuration: the calibrated 22 nm component-cost set.

Groups every peripheral model with the digital-logic constants, and provides
the three named configurations of the paper's comparison:

* :meth:`HardwareConfig.proposed` — the DG FeFET in-situ annealer (no
  exponent unit; incremental sensing),
* :meth:`HardwareConfig.baseline_fpga` / :meth:`HardwareConfig.baseline_asic`
  — FeFET-CiM direct-E annealers with the FPGA / ASIC ``e^x`` hardware of
  ref [18].

Calibration rationale (see DESIGN.md §6): the direct-E machines sense the
full array every iteration (2 row-sign phases × n·k columns, 8 sequential
conversions through each 8:1 mux) while the proposed machine senses only the
flipped element groups (2 phases × |F|·k conversions, one slot).  With the
[36] SAR at 0.25 pJ / 25 ns per conversion and the [18] exponent costs,
these formulas land the paper's reported reduction bands (≈ 401-732× at
n=800 rising to ≈ 1503-1716× at n=3000 for energy; ≈ 8× for time).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.circuits.adc import SarAdc
from repro.circuits.drivers import BackGateDac, LineDriver
from repro.circuits.exponent_unit import ExponentUnit
from repro.circuits.interconnect import WireModel
from repro.circuits.shift_add import ShiftAddUnit
from repro.utils.units import NANO, PICO
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class HardwareConfig:
    """Component set + digital constants of one annealer machine.

    Parameters
    ----------
    adc / fg_driver / dl_driver / bg_dac / shift_add / wire:
        Peripheral component models.
    exponent:
        The ``e^x`` unit (``None`` for the proposed design, which needs none).
    quantization_bits:
        ``k``, crossbar bits per matrix element.
    logic_energy / logic_time:
        Per-iteration controller cost (spin update, accept compare, RNG).
    label:
        Display name used in benches and tables.
    """

    adc: SarAdc = field(default_factory=SarAdc)
    fg_driver: LineDriver = field(default_factory=LineDriver)
    dl_driver: LineDriver = field(default_factory=LineDriver)
    bg_dac: BackGateDac = field(default_factory=BackGateDac)
    shift_add: ShiftAddUnit = field(default_factory=ShiftAddUnit)
    wire: WireModel = field(default_factory=WireModel)
    exponent: ExponentUnit | None = None
    quantization_bits: int = 4
    logic_energy: float = 2.1 * PICO
    logic_time: float = 1.0 * NANO
    label: str = "hardware"

    def __post_init__(self) -> None:
        if not 1 <= self.quantization_bits <= 16:
            raise ValueError("quantization_bits must be in [1, 16]")
        check_positive("logic_energy", self.logic_energy)
        check_positive("logic_time", self.logic_time)

    # ------------------------------------------------------------------
    # Named configurations
    # ------------------------------------------------------------------
    @classmethod
    def proposed(cls, **overrides) -> "HardwareConfig":
        """The DG FeFET CiM in-situ annealer (this work)."""
        return cls(label="This work (DG FeFET CiM in-situ)", **overrides)

    @classmethod
    def baseline_fpga(cls, **overrides) -> "HardwareConfig":
        """FeFET-CiM direct-E annealer + FPGA exponent unit ("CiM/FPGA")."""
        defaults = dict(
            exponent=ExponentUnit.fpga(),
            logic_energy=5.0 * PICO,
            logic_time=2.0 * NANO,
            label="CiM/FPGA baseline",
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def baseline_asic(cls, **overrides) -> "HardwareConfig":
        """FeFET-CiM direct-E annealer + ASIC exponent unit ("CiM/ASIC")."""
        defaults = dict(
            exponent=ExponentUnit.asic(),
            logic_energy=5.0 * PICO,
            logic_time=2.0 * NANO,
            label="CiM/ASIC baseline",
        )
        defaults.update(overrides)
        return cls(**defaults)

    def with_adc(self, adc: SarAdc) -> "HardwareConfig":
        """Copy of this config with a different ADC (used by ablations)."""
        return replace(self, adc=adc)
