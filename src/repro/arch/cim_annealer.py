"""The proposed machine: DG FeFET CiM in-situ annealer (paper Fig 3/7).

Wires the pieces together end-to-end:

* the coupling matrix is quantized and programmed into a
  :class:`~repro.circuits.crossbar.DgFefetCrossbar`;
* the annealing logic is the core :class:`~repro.core.annealer.InSituAnnealer`
  running *against the crossbar* through its evaluator hook, so the accept
  decisions are made on the sensed (quantized, noisy, device-limited)
  ``E_inc`` — not on ideal arithmetic;
* every iteration's hardware activity (ADC conversions, mux slots, driver
  toggles, settle time, BG DAC updates, controller logic) is booked into a
  :class:`~repro.arch.ledger.Ledger`.

The programming pass (layout race → quantize → program) is factored out as
:func:`compile_cim_program`, which returns an immutable :class:`CimProgram`
that any number of :class:`InSituCimAnnealer` instances can anneal against
— the amortisation the paper's economics rest on (one expensive array
write, many cheap anneal runs), surfaced through
:func:`repro.core.plan.compile_plan`.

The ``"behavioral"`` crossbar backend makes runs at the paper's full scale
(3000 spins × 100 000 iterations) take seconds; the ``"device"`` backend
evaluates every activated cell through the compact device model and is meant
for small arrays (tests, ablations, examples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.hardware import HardwareConfig
from repro.arch.ledger import Ledger
from repro.arch.mapping import CrossbarMapping
from repro.arch.result import CimRunResult
from repro.circuits.crossbar import DgFefetCrossbar
from repro.core.annealer import InSituAnnealer
from repro.core.factors import FractionalFactor, VbgEncoder
from repro.core.reorder import (
    REORDER_MODES,
    Permutation,
    graph_bandwidth,
)
from repro.core.schedule import Schedule, VbgStepSchedule
from repro.devices.variability import VariationModel
from repro.ising.model import IsingModel
from repro.ising.sparse import SparseIsingModel, dense_couplings
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_choice, check_count


@dataclass(frozen=True)
class CimProgram:
    """An immutable programmed-crossbar image, ready to anneal against.

    Produced by :func:`compile_cim_program`; bundles everything the
    machine derives *before* the first proposal — the quantized/programmed
    crossbar, the internal layout permutation, the mapping report and the
    stored-image model the controller believes in.  Pass it to
    :class:`InSituCimAnnealer` via ``program=`` to run repeat anneals
    without re-programming the array.
    """

    config: HardwareConfig
    crossbar: object  # DgFefetCrossbar | TiledCrossbar
    mapping: CrossbarMapping
    permutation: Permutation | None
    reorder: str
    tile_size: int | None
    annealer_model: IsingModel | SparseIsingModel
    hw_model: IsingModel | SparseIsingModel


def compile_cim_program(
    model: IsingModel | SparseIsingModel,
    config: HardwareConfig | None = None,
    backend: str = "behavioral",
    variation: VariationModel | None = None,
    tile_size: int | None = None,
    reorder: str | None = None,
    permutation=None,
    seed=None,
) -> CimProgram:
    """Run the machine's programming pass and return the artifacts.

    This is the expensive, run-independent half of the machine: the
    internal layout race (``reorder=``/``permutation=``), whole-matrix
    quantization and the crossbar programming pass.  ``seed`` only draws
    randomness when programming itself is stochastic (``variation=`` or
    ``backend="device"``); the default behavioral/no-variation path is
    draw-free, so the returned program is seed-independent and safe to
    cache (see :class:`repro.core.plan.PlanCache`).

    Validation messages match the historical machine constructor exactly
    — it now delegates here.
    """
    if model.has_fields:
        raise ValueError(
            "crossbar machines store couplings only; fold fields in via "
            "model.with_ancilla() first"
        )
    config = config or HardwareConfig.proposed()
    reorder = check_choice(
        "reorder", "none" if reorder is None else reorder, REORDER_MODES
    )
    if reorder in ("rcm", "partition") and tile_size is None:
        raise ValueError(
            f"reorder={reorder!r} optimises the tile grid and needs "
            "tile_size=...; a monolithic crossbar programs the full "
            "array either way (use reorder='auto' to make it a no-op)"
        )
    if permutation is not None:
        if reorder != "none":
            raise ValueError(
                "pass either reorder= or an explicit permutation=, "
                "not both"
            )
        if tile_size is None:
            raise ValueError(
                "an explicit permutation= layout requires tile_size=..."
            )
    rng = ensure_rng(seed)
    is_sparse = isinstance(model, SparseIsingModel)
    if tile_size is not None:
        from repro.arch.tiling import TiledCrossbar
        from repro.core.plan import resolve_layout

        # Bandwidth-reducing relabelling of the *stored* layout: the
        # scattered edge set is compacted onto few block diagonals so
        # the sparse tile registry stays proportional to nnz, not to
        # the grid.  The controller keeps working in the caller's
        # ordering (see the annealer's `permutation` contract).
        hw_input = model
        perm = None
        if permutation is not None:
            perm = (
                permutation if isinstance(permutation, Permutation)
                else Permutation(permutation)
            )
        else:
            perm = resolve_layout(model, reorder, tile_size=tile_size)
        if perm is not None:
            hw_input = model.permuted(perm)
        # Tiles are extracted block-by-block, so a sparse model is fed
        # straight through — the dense (n, n) matrix is never formed.
        # (Densification allowlisted for the dense-backend branch
        # only: the input already stores all n² couplings.)
        crossbar = TiledCrossbar(
            hw_input if is_sparse else dense_couplings(hw_input),  # repro-lint: disable=RPL001
            tile_size=tile_size,
            bits=config.quantization_bits,
            backend=backend,
            wire=config.wire,
            shift_add=config.shift_add,
            variation=variation,
            seed=rng,
        )
        # Per-tile geometry — the physical array is the tile, not a
        # monolithic n-row crossbar assembled from the full matrix.
        if perm is None:
            ordering, bandwidth = "identity", graph_bandwidth(model)
        else:
            ordering = perm.strategy
            bandwidth = (
                perm.bandwidth_after if perm.bandwidth_after is not None
                else graph_bandwidth(hw_input)
            )
        mapping = CrossbarMapping.for_tiled(
            crossbar, config.adc.mux_ratio,
            ordering=ordering, bandwidth=bandwidth,
        )
        # The algorithmic model the controller believes in: the
        # *stored* image, kept on the model's own coupling backend so
        # the controller's field cache stays O(nnz) for sparse inputs.
        # With a reordering in play the annealer runs against the
        # hardware-ordered image while `hw_model` is published in the
        # caller's ordering (quantization is element-wise, so the two
        # are exact relabellings of each other).
        if is_sparse:
            stored = crossbar.stored_model(
                offset=model.offset, name=model.name
            )
        else:
            stored = IsingModel(
                crossbar.matrix_hat, None,
                offset=model.offset, name=model.name,
            )
        hw_model = stored if perm is None else stored.permuted(perm.inverse)
        return CimProgram(
            config=config, crossbar=crossbar, mapping=mapping,
            permutation=perm, reorder=reorder, tile_size=tile_size,
            annealer_model=stored, hw_model=hw_model,
        )
    # A single physical crossbar programs every cell, so the
    # monolithic machine densifies sparse models here (solver-only
    # paths never do).  Densification allowlisted: crossbar
    # programming is the one consumer that needs the full image.
    J = dense_couplings(model)  # repro-lint: disable=RPL001
    crossbar = DgFefetCrossbar(
        J,
        bits=config.quantization_bits,
        backend=backend,
        adc=None,  # sized to the array by the crossbar itself
        wire=config.wire,
        shift_add=config.shift_add,
        variation=variation,
        seed=rng,
    )
    mapping = CrossbarMapping.for_matrix(
        J, config.quantization_bits, config.adc.mux_ratio
    )
    hw_model = IsingModel(
        crossbar.matrix_hat, None, offset=model.offset, name=model.name
    )
    return CimProgram(
        config=config, crossbar=crossbar, mapping=mapping,
        permutation=None, reorder=reorder, tile_size=None,
        annealer_model=hw_model, hw_model=hw_model,
    )


class InSituCimAnnealer:
    """Hardware-instrumented in-situ CiM annealer.

    Parameters
    ----------
    model:
        The Ising model to solve (fields should be folded in with
        :meth:`~repro.ising.IsingModel.with_ancilla` first — the crossbar
        stores couplings only).  Omit it when annealing against a
        pre-compiled ``program=``.
    config:
        Component/cost set; default :meth:`HardwareConfig.proposed`.
    flips_per_iteration / factor / schedule / acceptance_scale / proposal:
        Algorithm parameters, forwarded to the core annealer.
    backend:
        Crossbar backend (``"behavioral"`` or ``"device"``).
    variation:
        Device-variation model applied by the crossbar.
    tile_size:
        When given, the matrix is stored on a sparse grid of
        ``tile_size``-row arrays (:class:`~repro.arch.tiling.TiledCrossbar`)
        instead of one monolithic crossbar — the multi-array scale-out
        extension.  A :class:`~repro.ising.sparse.SparseIsingModel` input
        is sharded straight from its CSR arrays; neither the coupling
        matrix nor the stored image is ever densified, so 100k+-node
        low-degree instances fit in O(nnz + active-tile cells) memory.
    reorder:
        Spin reordering applied to the *internal* crossbar layout before
        tiling: ``"none"`` (default), ``"rcm"`` (Reverse Cuthill–McKee,
        for banded structure), ``"partition"`` (multilevel min-cut block
        layout of :mod:`repro.core.partition`, for clustered structure)
        or ``"auto"`` (score RCM against the partition layout by exact
        active-tile count and keep the winner only when it strictly
        improves on the identity; greedy degree fallback).  Purely a
        layout optimisation — proposals are drawn in the caller's spin
        order and configurations are returned in it, so results are
        bit-identical to the unreordered machine whenever the stored
        image is exactly representable (all ±1-weighted G-sets).
        ``"rcm"`` and ``"partition"`` require ``tile_size`` (a monolithic
        crossbar has no tile grid to compact); ``"auto"`` quietly
        resolves to the identity without one.  The resulting ordering and
        bandwidth are reported in :attr:`mapping` and the
        :class:`Permutation` is kept on :attr:`permutation`.
    permutation:
        Explicit internal layout: a pre-computed
        :class:`~repro.core.reorder.Permutation` (or raw ``forward``
        array) to store the matrix under, instead of running a reordering
        pass.  Mutually exclusive with ``reorder``; requires ``tile_size``.
        The same transparency contract applies — for exactly-representable
        images, *any* declared layout yields the identical trajectory, so
        this is how layout-independence is asserted at scales where the
        identity ordering itself is too expensive to program.
    use_encoder:
        When True, temperatures are mapped to the 10 mV BG grid through a
        :class:`VbgEncoder` built from the crossbar's own transfer curve
        (always the case in the real hardware; optional here so ideal-factor
        studies are possible).
    record_cost_trace:
        Record cumulative energy/time after every iteration (Fig 8b/9b).
    seed:
        RNG seed.  On the cold path one generator is shared between the
        crossbar programming pass and the annealer (the legacy stream);
        with ``program=`` the seed drives the annealer only.
    program:
        A pre-compiled :class:`CimProgram` to anneal against instead of
        programming a crossbar here.  Mutually exclusive with ``model``
        and every programming-time knob (``config``, ``backend``,
        ``variation``, ``tile_size``, ``reorder``, ``permutation``) —
        those were fixed when the program was compiled.
    """

    def __init__(
        self,
        model: IsingModel | None = None,
        config: HardwareConfig | None = None,
        flips_per_iteration: int = 1,
        factor: FractionalFactor | None = None,
        schedule: Schedule | None = None,
        acceptance_scale: float | str = "auto",
        proposal: str = "scan",
        backend: str = "behavioral",
        variation: VariationModel | None = None,
        tile_size: int | None = None,
        reorder: str | None = None,
        permutation=None,
        use_encoder: bool = True,
        record_cost_trace: bool = False,
        record_trace: bool = False,
        seed=None,
        program: CimProgram | None = None,
    ) -> None:
        if program is not None:
            if model is not None or any(
                knob is not None
                for knob in (config, variation, tile_size, reorder, permutation)
            ) or backend != "behavioral":
                raise ValueError(
                    "program= already fixes the crossbar programming; pass "
                    "model/config/backend/variation/tile_size/reorder/"
                    "permutation to compile_cim_program() instead"
                )
            rng = ensure_rng(seed)
        else:
            if model is None:
                raise ValueError(
                    "model is required unless a compiled program= is given"
                )
            # One generator shared by programming and annealing — the
            # stream contract fixed-seed regressions pin.
            rng = ensure_rng(seed)
            program = compile_cim_program(
                model,
                config=config,
                backend=backend,
                variation=variation,
                tile_size=tile_size,
                reorder=reorder,
                permutation=permutation,
                seed=rng,
            )
        self.program = program
        self.config = program.config
        self.factor = factor or FractionalFactor()
        self.reorder = program.reorder
        self.permutation = program.permutation
        self.crossbar = program.crossbar
        self.mapping = program.mapping
        self.hw_model = program.hw_model
        self._annealer_model = program.annealer_model
        encoder = None
        if use_encoder:
            encoder = VbgEncoder(self.factor, transfer=self.crossbar.factor)
        self.schedule = schedule
        self.flips_per_iteration = int(flips_per_iteration)
        self.record_cost_trace = bool(record_cost_trace)
        self._annealer = InSituAnnealer(
            self._annealer_model,
            flips_per_iteration=flips_per_iteration,
            factor=self.factor,
            schedule=schedule,
            encoder=encoder,
            acceptance_scale=acceptance_scale,
            evaluator=self._evaluate,
            proposal=proposal,
            iteration_hook=self._book_iteration,
            permutation=self.permutation,
            record_trace=record_trace,
            seed=rng,
        )
        self._ledger: Ledger | None = None
        self._iter_energy: list[float] | None = None
        self._iter_time: list[float] | None = None
        self._pending: dict | None = None
        self._last_vbg: float | None = None

    @property
    def label(self) -> str:
        """Machine display name."""
        return self.config.label

    # ------------------------------------------------------------------
    # Crossbar evaluation + cost hooks
    # ------------------------------------------------------------------
    def _evaluate(self, sigma, flips, sigma_r, sigma_c, v_bg) -> float:
        v_bg = self.config.bg_dac.snap(v_bg)
        value, stats = self.crossbar.compute_increment(
            sigma_r, sigma_c, v_bg, validate=False
        )
        cfg = self.config
        energy = (
            stats.adc_conversions * cfg.adc.energy_per_conversion
            + stats.sa_codes * cfg.shift_add.energy_per_code
            + stats.fg_toggles * cfg.fg_driver.energy_per_toggle
            + stats.dl_toggles * cfg.dl_driver.energy_per_toggle
        )
        time = stats.mux_slots * cfg.adc.time_per_conversion + stats.settle_time
        bg_updates = 0
        if self._last_vbg is None or abs(v_bg - self._last_vbg) > 1e-12:
            bg_updates = 1
            energy += cfg.bg_dac.energy_per_update
            time += cfg.bg_dac.time_per_update
            self._last_vbg = v_bg
        self._pending = {
            "adc_energy": stats.adc_conversions * cfg.adc.energy_per_conversion,
            "adc_time": stats.mux_slots * cfg.adc.time_per_conversion,
            "sa_energy": stats.sa_codes * cfg.shift_add.energy_per_code,
            "driver_energy": stats.fg_toggles * cfg.fg_driver.energy_per_toggle
            + stats.dl_toggles * cfg.dl_driver.energy_per_toggle,
            "settle_time": stats.settle_time,
            "bg_updates": bg_updates,
            "conversions": stats.adc_conversions,
            "total_energy": energy,
            "total_time": time,
        }
        return value

    def _book_iteration(self, iteration, delta_e, accepted, temperature) -> None:
        assert self._ledger is not None
        cfg = self.config
        pend = self._pending or {
            "adc_energy": 0.0,
            "adc_time": 0.0,
            "sa_energy": 0.0,
            "driver_energy": 0.0,
            "settle_time": 0.0,
            "bg_updates": 0,
            "conversions": 0,
            "total_energy": 0.0,
            "total_time": 0.0,
        }
        ledger = self._ledger
        ledger.add("adc", pend["adc_energy"], pend["adc_time"], pend["conversions"])
        ledger.add("shift_add", pend["sa_energy"], 0.0)
        ledger.add("drivers", pend["driver_energy"], pend["settle_time"])
        if pend["bg_updates"]:
            ledger.add(
                "bg_dac",
                cfg.bg_dac.energy_per_update * pend["bg_updates"],
                cfg.bg_dac.time_per_update * pend["bg_updates"],
                pend["bg_updates"],
            )
        ledger.add("logic", cfg.logic_energy, cfg.logic_time)
        if self._iter_energy is not None:
            total_e = pend["total_energy"] + cfg.logic_energy
            total_t = pend["total_time"] + cfg.logic_time
            prev_e = self._iter_energy[-1] if self._iter_energy else 0.0
            prev_t = self._iter_time[-1] if self._iter_time else 0.0
            self._iter_energy.append(prev_e + total_e)
            self._iter_time.append(prev_t + total_t)
        self._pending = None

    # ------------------------------------------------------------------
    def run(self, iterations: int, initial=None) -> CimRunResult:
        """Anneal for ``iterations`` and return solution + cost books."""
        # Validated at the machine boundary: the ledger and the default
        # V_BG schedule consume `iterations` before the inner annealer
        # would reject a bool/float count.
        iterations = check_count(
            "iterations", iterations,
            hint="the machine needs at least one proposal/accept step",
        )
        self._ledger = Ledger()
        self._last_vbg = None
        # Shared-program machines reuse one crossbar across runs; clear
        # the driver-toggle memory so every run books costs like a cold
        # array (trajectories never depended on it).
        self.crossbar.reset_drive_state()
        self._iter_energy = [] if self.record_cost_trace else None
        self._iter_time = [] if self.record_cost_trace else None
        # One-time programming cost, amortised across the run.
        prog = self.crossbar.programming_summary()
        self._ledger.add("program", prog["energy"], 0.0, int(prog["write_pulses"]))
        if self._annealer.schedule is None and self.schedule is None:
            # Build the default V_BG walk for this run length.
            self._annealer.schedule = VbgStepSchedule(iterations, factor=self.factor)
        anneal = self._annealer.run(iterations, initial=initial)
        self._annealer.schedule = self.schedule  # reset for reuse
        result = CimRunResult(
            label=self.label,
            anneal=anneal,
            ledger=self._ledger,
            energy_trace=np.asarray(self._iter_energy) if self.record_cost_trace else None,
            time_trace=np.asarray(self._iter_time) if self.record_cost_trace else None,
        )
        self._ledger = None
        return result
