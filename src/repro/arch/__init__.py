"""Architecture layer: energy/latency-instrumented annealer machines.

Combines the algorithmic core with the circuit substrate and books every
hardware event into per-component ledgers — the layer the paper's Fig 8/9
hardware-overhead comparison is generated from.
"""

from repro.arch.baselines import DirectECimAnnealer
from repro.arch.cim_annealer import InSituCimAnnealer
from repro.arch.hardware import HardwareConfig
from repro.arch.ledger import Ledger, LedgerEntry
from repro.arch.mapping import CrossbarMapping
from repro.arch.result import CimRunResult
from repro.arch.tiling import TiledCrossbar

__all__ = [
    "InSituCimAnnealer",
    "DirectECimAnnealer",
    "HardwareConfig",
    "Ledger",
    "LedgerEntry",
    "CrossbarMapping",
    "CimRunResult",
    "TiledCrossbar",
]
