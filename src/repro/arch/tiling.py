"""Multi-tile crossbar: scaling beyond one physical array (extension).

The paper evaluates a single crossbar per annealer ("Each annealer contains
a single crossbar", Sec. 4), which caps the problem size at the array
dimension.  This extension tiles the coupling matrix over a grid of
independent DG FeFET arrays:

* ``J`` is split into ``⌈n/s⌉ × ⌈n/s⌉`` blocks of side ``s`` (the physical
  array rows), each programmed into its own tile;
* an incremental evaluation activates only the tile-columns holding flipped
  spins; all activated tiles operate in parallel and their partial sums are
  combined digitally (one extra adder-tree level);
* activity counters sum across tiles while the critical path takes the
  *maximum* slot count of any tile.

The interface mirrors :class:`~repro.circuits.crossbar.DgFefetCrossbar`
(``matrix_hat``, ``factor``, ``compute_increment``, ``programming_summary``)
so the in-situ machine can drive a tiled array transparently.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.crossbar import ActivationStats, DgFefetCrossbar
from repro.utils.rng import ensure_rng


class TiledCrossbar:
    """A grid of DG FeFET crossbar tiles storing one coupling matrix.

    Parameters
    ----------
    matrix:
        Symmetric coupling matrix of any size.
    tile_size:
        Physical array rows/columns per tile (the block side ``s``).
    bits / backend / wire / shift_add / variation / seed:
        Forwarded to every tile.
    """

    def __init__(
        self,
        matrix,
        tile_size: int,
        bits: int = 4,
        backend: str = "behavioral",
        wire=None,
        shift_add=None,
        variation=None,
        seed=None,
    ) -> None:
        J = np.asarray(matrix, dtype=np.float64)
        if J.ndim != 2 or J.shape[0] != J.shape[1]:
            raise ValueError("matrix must be square")
        if tile_size < 2:
            raise ValueError("tile_size must be >= 2")
        self.n = J.shape[0]
        self.tile_size = int(tile_size)
        self.bits = int(bits)
        self.grid = -(-self.n // self.tile_size)  # ceil division
        rng = ensure_rng(seed)

        self._bounds: list[tuple[int, int]] = [
            (i * self.tile_size, min((i + 1) * self.tile_size, self.n))
            for i in range(self.grid)
        ]
        self._tiles: list[list[DgFefetCrossbar]] = []
        for r0, r1 in self._bounds:
            row_tiles = []
            for c0, c1 in self._bounds:
                block = np.zeros((self.tile_size, self.tile_size))
                block[: r1 - r0, : c1 - c0] = J[r0:r1, c0:c1]
                row_tiles.append(
                    DgFefetCrossbar(
                        block,
                        bits=bits,
                        backend=backend,
                        wire=wire,
                        shift_add=shift_add,
                        variation=variation,
                        require_symmetric=False,
                        seed=rng,
                    )
                )
            self._tiles.append(row_tiles)

        # Reassemble the stored image from the tile images.
        self.matrix_hat = np.zeros_like(J)
        for i, (r0, r1) in enumerate(self._bounds):
            for j, (c0, c1) in enumerate(self._bounds):
                tile_hat = self._tiles[i][j].matrix_hat
                self.matrix_hat[r0:r1, c0:c1] = tile_hat[: r1 - r0, : c1 - c0]

    @property
    def num_tiles(self) -> int:
        """Total tile count, ``grid²``."""
        return self.grid * self.grid

    def factor(self, v_bg: float) -> float:
        """Shared-rail factor (all tiles see the same back-gate voltage)."""
        return self._tiles[0][0].factor(v_bg)

    def compute_increment(
        self, sigma_r, sigma_c, v_bg: float, validate: bool = True
    ) -> tuple[float, ActivationStats]:
        """Tile-parallel evaluation of ``σ_rᵀ Ĵ σ_c · f(V_BG)``."""
        r = np.asarray(sigma_r, dtype=np.float64)
        c = np.asarray(sigma_c, dtype=np.float64)
        if r.shape != (self.n,) or c.shape != (self.n,):
            raise ValueError(f"input vectors must have shape ({self.n},)")
        total = 0.0
        phases = 0
        conversions = sa_codes = fg_toggles = dl_toggles = active_cells = 0
        max_slots = 0
        max_settle = 0.0
        pad = self.tile_size
        active_cols = [
            j for j, (c0, c1) in enumerate(self._bounds) if np.any(c[c0:c1])
        ]
        for j in active_cols:
            c0, c1 = self._bounds[j]
            c_slice = np.zeros(pad)
            c_slice[: c1 - c0] = c[c0:c1]
            for i, (r0, r1) in enumerate(self._bounds):
                r_slice = np.zeros(pad)
                r_slice[: r1 - r0] = r[r0:r1]
                value, stats = self._tiles[i][j].compute_increment(
                    r_slice, c_slice, v_bg, validate=validate
                )
                total += value
                phases = max(phases, stats.phases)
                conversions += stats.adc_conversions
                sa_codes += stats.sa_codes
                fg_toggles += stats.fg_toggles
                dl_toggles += stats.dl_toggles
                active_cells += stats.active_cells
                max_slots = max(max_slots, stats.mux_slots)
                max_settle = max(max_settle, stats.settle_time)
        return total, ActivationStats(
            phases=phases,
            adc_conversions=conversions,
            mux_slots=max_slots,
            sa_codes=sa_codes,
            fg_toggles=fg_toggles,
            dl_toggles=dl_toggles,
            active_cells=active_cells,
            settle_time=max_settle,
        )

    def programming_summary(self) -> dict[str, float]:
        """Aggregate one-time programming cost over all tiles."""
        totals = {"cells": 0.0, "programmed_ones": 0.0, "write_pulses": 0.0, "energy": 0.0}
        for row in self._tiles:
            for tile in row:
                summary = tile.programming_summary()
                for key in totals:
                    totals[key] += summary[key]
        return totals
