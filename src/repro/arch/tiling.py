"""Multi-tile crossbar: sparse-aware scaling beyond one physical array.

The paper evaluates a single crossbar per annealer ("Each annealer contains
a single crossbar", Sec. 4), which caps the problem size at the array
dimension.  This extension tiles the coupling matrix over a grid of
independent DG FeFET arrays:

* ``J`` is split into ``⌈n/s⌉ × ⌈n/s⌉`` blocks of side ``s`` (the physical
  array rows), and a tile is programmed **only for blocks containing
  nonzeros** — the tile registry is a sparse dict, not a dense ``grid²``
  list.  A degree-6 graph with locality (banded / toroidal orderings) needs
  a few hundred tiles where a dense grid would program tens of thousands;
* the grid is built directly from :class:`~repro.ising.sparse.
  SparseIsingModel` CSR arrays via per-tile COO extraction
  (:meth:`~repro.ising.sparse.SparseIsingModel.block_partition`) — the full
  dense ``(n, n)`` matrix is never materialised on that path;
* every tile quantizes against the *whole-matrix* LSB, so the assembled
  stored image is identical to a monolithic crossbar programming the same
  matrix;
* an incremental evaluation activates only the (row-block, col-block) pairs
  where a tile exists **and** the column slice is driven; all activated
  tiles operate in parallel and their partial sums are combined digitally
  (one extra adder-tree level);
* activity counters sum across tiles while the critical path takes the
  *maximum* slot count of any tile.

The interface mirrors :class:`~repro.circuits.crossbar.DgFefetCrossbar`
(``matrix_hat``, ``factor``, ``compute_increment``, ``programming_summary``)
so the in-situ machine can drive a tiled array transparently; consumers that
must stay O(nnz) use :meth:`stored_model` instead of the dense
``matrix_hat``.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.crossbar import (
    PROGRAM_PULSE_ENERGY,
    ActivationStats,
    DgFefetCrossbar,
)
from repro.circuits.quantize import MatrixQuantizer
from repro.devices.constants import VBG_MAX
from repro.ising.sparse import SparseIsingModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_count

_ZERO_STATS = ActivationStats(
    phases=0,
    adc_conversions=0,
    mux_slots=0,
    sa_codes=0,
    fg_toggles=0,
    dl_toggles=0,
    active_cells=0,
    settle_time=0.0,
)


class TiledCrossbar:
    """A sparse grid of DG FeFET crossbar tiles storing one coupling matrix.

    Parameters
    ----------
    matrix:
        Symmetric coupling matrix of any size — a dense square array or a
        :class:`~repro.ising.sparse.SparseIsingModel` (CSR path; the dense
        matrix is never formed).
    tile_size:
        Physical array rows/columns per tile (the block side ``s``).
    bits / backend / wire / shift_add / variation / seed:
        Forwarded to every tile.
    """

    def __init__(
        self,
        matrix,
        tile_size: int,
        bits: int = 4,
        backend: str = "behavioral",
        wire=None,
        shift_add=None,
        variation=None,
        seed=None,
    ) -> None:
        self.tile_size = check_count(
            "tile_size", tile_size, minimum=2,
            hint="a physical tile needs at least 2 rows",
        )
        self.bits = int(bits)
        rng = ensure_rng(seed)
        quantizer = MatrixQuantizer(bits)

        self.backend = backend
        tile_kwargs = dict(
            bits=bits,
            backend=backend,
            wire=wire,
            shift_add=shift_add,
            variation=variation,
            require_symmetric=False,
        )
        s = self.tile_size
        if isinstance(matrix, SparseIsingModel):
            self.n = matrix.num_spins
            self.lsb = quantizer.lsb_for_peak(matrix.max_abs_entry())
        else:
            matrix = np.asarray(matrix, dtype=np.float64)
            if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
                raise ValueError("matrix must be square")
            self.n = matrix.shape[0]
            self.lsb = quantizer.lsb_for(matrix)
        self.grid = -(-self.n // s)
        self._bounds = self._block_bounds()
        # Nonzero blocks in deterministic row-major order, so variation
        # draws from the shared rng are reproducible for a fixed seed and
        # identical between the sparse- and dense-input paths.
        self._tiles: dict[tuple[int, int], DgFefetCrossbar] = {
            key: DgFefetCrossbar(block, lsb=self.lsb, seed=rng, **tile_kwargs)
            for key, block in self._iter_nonzero_blocks(matrix)
        }

        # Column-block → sorted row-blocks holding a tile: the activation
        # index compute_increment walks.
        self._col_rows: dict[int, list[int]] = {}
        for bi, bj in sorted(self._tiles):
            self._col_rows.setdefault(bj, []).append(bi)

        # The factor curve is a nominal-cell property, identical across
        # tiles; an all-zero matrix has no tile, so keep a 2×2 reference.
        if self._tiles:
            self._ref = next(iter(self._tiles.values()))
        else:
            self._ref = DgFefetCrossbar(
                np.zeros((2, 2)), lsb=self.lsb, seed=rng, **tile_kwargs
            )
        self._matrix_hat: np.ndarray | None = None

    def _block_bounds(self) -> list[tuple[int, int]]:
        return [
            (i * self.tile_size, min((i + 1) * self.tile_size, self.n))
            for i in range(self.grid)
        ]

    def _iter_nonzero_blocks(self, matrix):
        """Yield ``((bi, bj), padded_block)`` for every nonzero block.

        Sparse models come through :meth:`SparseIsingModel.block_partition`
        (one O(nnz log nnz) pass, no dense matrix); dense arrays are
        sliced block by block.  Either way the yielded block is the
        ``s × s`` zero-padded array a physical tile programs.
        """
        s = self.tile_size
        if isinstance(matrix, SparseIsingModel):
            for key, (lr, lc, vals) in sorted(matrix.block_partition(s).items()):
                block = np.zeros((s, s))
                block[lr, lc] = vals
                yield key, block
        else:
            for bi, (r0, r1) in enumerate(self._bounds):
                for bj, (c0, c1) in enumerate(self._bounds):
                    sub = matrix[r0:r1, c0:c1]
                    if not np.any(sub):
                        continue  # empty block: no tile is programmed
                    block = np.zeros((s, s))
                    block[: r1 - r0, : c1 - c0] = sub
                    yield (bi, bj), block

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        """Instantiated (nonzero-block) tiles — at most ``grid²``."""
        return len(self._tiles)

    @property
    def grid_tiles(self) -> int:
        """Tile slots of the full grid, ``grid²``."""
        return self.grid * self.grid

    @property
    def occupancy(self) -> float:
        """Fraction of grid slots actually holding a programmed tile."""
        return self.num_tiles / self.grid_tiles if self.grid_tiles else 0.0

    @property
    def planes(self) -> int:
        """Sign planes in use across the grid (2 iff any tile stores one)."""
        if any(tile.planes == 2 for tile in self._tiles.values()):
            return 2
        return 1

    def tile_at(self, block_row: int, block_col: int) -> DgFefetCrossbar | None:
        """The tile programmed at ``(block_row, block_col)``, if any."""
        return self._tiles.get((block_row, block_col))

    @property
    def matrix_hat(self) -> np.ndarray:
        """Dense stored image ``Ĵ`` assembled from the tiles on demand.

        O(n²) memory — small-instance/test convenience only; large sparse
        flows use :meth:`stored_model` and never build this.
        """
        if self._matrix_hat is None:
            out = np.zeros((self.n, self.n))
            for (bi, bj), tile in self._tiles.items():
                r0, r1 = self._bounds[bi]
                c0, c1 = self._bounds[bj]
                out[r0:r1, c0:c1] = tile.matrix_hat[: r1 - r0, : c1 - c0]
            self._matrix_hat = out
        return self._matrix_hat

    def stored_model(
        self, offset: float = 0.0, name: str = "tiled-crossbar"
    ) -> SparseIsingModel:
        """The stored image ``Ĵ`` as a :class:`SparseIsingModel`.

        Collects each tile's dequantized nonzeros back into global COO
        coordinates — O(nnz + tiles · s²) work, never an ``(n, n)`` array.
        Quantization is element-wise on a symmetric matrix, so the image is
        symmetric and the canonical upper triangle is complete.
        """
        rows = [np.zeros(0, dtype=np.intp)]
        cols = [np.zeros(0, dtype=np.intp)]
        vals = [np.zeros(0, dtype=np.float64)]
        for (bi, bj), tile in sorted(self._tiles.items()):
            if bi > bj:
                continue  # lower triangle mirrors the upper one
            r0, r1 = self._bounds[bi]
            c0, c1 = self._bounds[bj]
            hat = tile.matrix_hat[: r1 - r0, : c1 - c0]
            lr, lc = np.nonzero(hat)
            if bi == bj:
                keep = lr <= lc
                lr, lc = lr[keep], lc[keep]
            rows.append(lr + r0)
            cols.append(lc + c0)
            vals.append(hat[lr, lc])
        return SparseIsingModel.from_edges(
            self.n,
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
            None,
            offset=offset,
            name=name,
        )

    def factor(self, v_bg: float) -> float:
        """Shared-rail factor (all tiles see the same back-gate voltage)."""
        return self._ref.factor(v_bg)

    def reset_drive_state(self) -> None:
        """Park every tile's FG/DL lines (fresh-run toggle accounting).

        Mirrors :meth:`DgFefetCrossbar.reset_drive_state` across the
        grid so repeat anneals on one programmed plan bill their first
        activation like a cold machine.
        """
        for tile in self._tiles.values():
            tile.reset_drive_state()
        self._ref.reset_drive_state()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def compute_increment(
        self, sigma_r, sigma_c, v_bg: float, validate: bool = True
    ) -> tuple[float, ActivationStats]:
        """Tile-parallel evaluation of ``σ_rᵀ Ĵ σ_c · f(V_BG)``.

        Only (row-block, col-block) pairs whose tile exists *and* whose
        column slice is driven are activated — for a single-flip proposal
        on a sparse matrix that is the flipped spin's column block times
        the few row blocks holding its neighbours.

        In the behavioral backend the partial sums are combined digitally
        and the shared-rail factor is applied *once* to the combined value
        (tiles are read at ``V_BG^{max}``, where the factor is exactly 1) —
        the same evaluation order as a monolithic array, so behavioral
        tiled and monolithic values agree bit for bit.  The device backend
        keeps the factor inside every tile's analog read, as the physical
        rail does.
        """
        r = np.asarray(sigma_r, dtype=np.float64)
        c = np.asarray(sigma_c, dtype=np.float64)
        if validate and (r.shape != (self.n,) or c.shape != (self.n,)):
            raise ValueError(f"input vectors must have shape ({self.n},)")
        driven = np.flatnonzero(c)
        total = 0.0
        phases = 0
        conversions = sa_codes = fg_toggles = dl_toggles = active_cells = 0
        max_slots = 0
        max_settle = 0.0
        if driven.size == 0:
            return total, _ZERO_STATS
        behavioral = self.backend == "behavioral"
        tile_vbg = VBG_MAX if behavioral else v_bg
        pad = self.tile_size
        for bj in np.unique(driven // pad):
            row_blocks = self._col_rows.get(int(bj))
            if row_blocks is None:
                continue  # the whole column block is structurally zero
            c0, c1 = self._bounds[bj]
            c_slice = np.zeros(pad)
            c_slice[: c1 - c0] = c[c0:c1]
            for bi in row_blocks:
                r0, r1 = self._bounds[bi]
                r_slice = np.zeros(pad)
                r_slice[: r1 - r0] = r[r0:r1]
                value, stats = self._tiles[(bi, bj)].compute_increment(
                    r_slice, c_slice, tile_vbg, validate=validate
                )
                total += value
                phases = max(phases, stats.phases)
                conversions += stats.adc_conversions
                sa_codes += stats.sa_codes
                fg_toggles += stats.fg_toggles
                dl_toggles += stats.dl_toggles
                active_cells += stats.active_cells
                max_slots = max(max_slots, stats.mux_slots)
                max_settle = max(max_settle, stats.settle_time)
        if behavioral:
            total *= self.factor(v_bg)
        return total, ActivationStats(
            phases=phases,
            adc_conversions=conversions,
            mux_slots=max_slots,
            sa_codes=sa_codes,
            fg_toggles=fg_toggles,
            dl_toggles=dl_toggles,
            active_cells=active_cells,
            settle_time=max_settle,
        )

    def matvec(self, x, validate: bool = True) -> np.ndarray:
        """Digitally-combined behavioral MVM ``Ĵ x`` over the tile grid.

        Every programmed tile evaluates its block's partial product
        ``Ĵ[r0:r1, c0:c1] · x[c0:c1]`` in parallel (read at
        ``V_BG^{max}``, where the shared-rail factor is exactly 1) and the
        partial sums are combined digitally per output row — the extra
        adder-tree level of the sharded array.  O(tiles · s²) work, no
        dense ``(n, n)`` assembly.  For dyadic stored images and ±1
        drives every partial sum is exact, so the result is bit-identical
        to :meth:`stored_model`'s CSR SpMV — which is what lets the
        simulated-bifurcation engines run on the tiled machine without a
        separate golden.  The input is not restricted to spins: bSB
        drives the array with continuous DAC levels.
        """
        v = np.asarray(x, dtype=np.float64)
        if validate and v.shape != (self.n,):
            raise ValueError(f"input vector must have shape ({self.n},)")
        out = np.zeros(self.n)
        for (bi, bj), tile in self._tiles.items():
            r0, r1 = self._bounds[bi]
            c0, c1 = self._bounds[bj]
            out[r0:r1] += tile.matrix_hat[: r1 - r0, : c1 - c0] @ v[c0:c1]
        return out

    def batch_matvec(self, x, validate: bool = True) -> np.ndarray:
        """``(R, n)`` products ``Ĵ x_r``, one tile pass for all replicas.

        The replica batch is time-multiplexed onto the same grid: each
        tile's block multiplies every replica's column slice in one
        matmul, partial sums combined digitally as in :meth:`matvec`.
        This is the ``matvec=`` hook :class:`~repro.core.sb.SbEngine`
        consumes on the tiled-machine path.
        """
        v = np.asarray(x, dtype=np.float64)
        if v.ndim == 1:
            return self.matvec(v, validate=validate)
        if validate and (v.ndim != 2 or v.shape[1] != self.n):
            raise ValueError(f"input batch must have shape (R, {self.n})")
        out = np.zeros(v.shape)
        for (bi, bj), tile in self._tiles.items():
            r0, r1 = self._bounds[bi]
            c0, c1 = self._bounds[bj]
            block = tile.matrix_hat[: r1 - r0, : c1 - c0]
            out[:, r0:r1] += v[:, c0:c1] @ block.T
        return out

    # ------------------------------------------------------------------
    # Programming cost
    # ------------------------------------------------------------------
    def programming_summary(self) -> dict[str, float]:
        """One-time programming cost over the *instantiated* tiles.

        Counts the logical cells of each programmed block — empty blocks
        hold no tile and contribute nothing, and the pad cells of edge
        tiles (rows/columns beyond ``n``) are never written, so neither
        inflates the totals.  ``tiles`` / ``grid_tiles`` report the sharded
        geometry alongside the cost.
        """
        totals = {
            "cells": 0.0,
            "programmed_ones": 0.0,
            "write_pulses": 0.0,
            "energy": 0.0,
        }
        for (bi, bj), tile in self._tiles.items():
            r0, r1 = self._bounds[bi]
            c0, c1 = self._bounds[bj]
            cells = 2.0 * self.bits * (r1 - r0) * (c1 - c0)
            totals["cells"] += cells
            totals["programmed_ones"] += float(tile.quantized.cell_count())
            totals["write_pulses"] += cells
            totals["energy"] += cells * PROGRAM_PULSE_ENERGY
        totals["tiles"] = float(self.num_tiles)
        totals["grid_tiles"] = float(self.grid_tiles)
        return totals
