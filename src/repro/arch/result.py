"""Result container for hardware-instrumented annealing runs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.ledger import Ledger
from repro.core.results import AnnealResult
from repro.utils.units import format_energy, format_time


@dataclass
class CimRunResult:
    """Outcome of one machine run: solution quality + hardware cost.

    Attributes
    ----------
    label:
        Machine name (e.g. ``"CiM/FPGA baseline"``).
    anneal:
        The algorithmic result (solution, traces, acceptance counters).
    ledger:
        Per-component energy/time books.
    energy_trace / time_trace:
        Optional cumulative hardware cost after each iteration — the data
        behind the paper's Fig 8b / 9b trend plots.
    """

    label: str
    anneal: AnnealResult
    ledger: Ledger
    energy_trace: np.ndarray | None = None
    time_trace: np.ndarray | None = None

    @property
    def energy(self) -> float:
        """Total machine energy for the run (joules)."""
        return self.ledger.total_energy

    @property
    def time(self) -> float:
        """Total machine time for the run (seconds)."""
        return self.ledger.total_time

    @property
    def programming_energy(self) -> float:
        """One-time array-programming energy (not part of the iteration loop)."""
        entry = self.ledger.entries.get("program")
        return entry.energy if entry else 0.0

    @property
    def annealing_energy(self) -> float:
        """Energy of the annealing loop itself (the paper's Fig 8 quantity).

        Excludes the one-time crossbar programming, which is paid once per
        problem regardless of how many runs/iterations follow.
        """
        return self.energy - self.programming_energy

    @property
    def annealing_time(self) -> float:
        """Time of the annealing loop (programming happens off-line)."""
        return self.time

    @property
    def energy_per_iteration(self) -> float:
        """Mean energy per annealing iteration."""
        iters = max(self.anneal.iterations, 1)
        return self.energy / iters

    @property
    def time_per_iteration(self) -> float:
        """Mean time per annealing iteration."""
        iters = max(self.anneal.iterations, 1)
        return self.time / iters

    def summary(self) -> str:
        """One-line cost/quality summary."""
        return (
            f"{self.label}: E = {format_energy(self.energy)}, "
            f"t = {format_time(self.time)}, best model energy "
            f"{self.anneal.best_energy:.6g} in {self.anneal.iterations} iters"
        )
