"""Tests for the Gset format, generators and the 30-instance paper suite."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.ising import (
    PAPER_ITERATIONS,
    build_instance,
    generate_random,
    generate_skew,
    generate_toroidal,
    paper_instance_suite,
    parse_gset,
    suite_by_size,
    write_gset,
)
from repro.ising.gset import GsetSpec, random_edge_set


class TestFormat:
    GSET_TEXT = "3 2\n1 2 1\n2 3 -1\n"

    def test_parse_basic(self):
        p = parse_gset(self.GSET_TEXT, name="toy")
        assert p.num_nodes == 3
        assert p.num_edges == 2
        assert p.weight_array.tolist() == [1.0, -1.0]
        assert p.edge_array.tolist() == [[0, 1], [1, 2]]

    def test_parse_default_weight_and_comments(self):
        text = "# comment\n2 1\n1 2\n"
        p = parse_gset(text)
        assert p.weight_array.tolist() == [1.0]

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_gset("")

    def test_parse_rejects_missing_edges(self):
        with pytest.raises(ValueError, match="edge lines"):
            parse_gset("3 5\n1 2 1\n")

    def test_parse_rejects_trailing_edges(self):
        """Extra body lines used to be silently dropped by lines[1:m+1]."""
        with pytest.raises(ValueError, match=r"m=1.*3 non-comment"):
            parse_gset("3 1\n1 2 1\n2 3 1\n1 3 1\n")

    def test_header_body_mismatch_names_both_counts(self):
        with pytest.raises(ValueError, match="expected 5 edge lines, found 1"):
            parse_gset("3 5\n1 2 1\n")

    def test_round_trip(self):
        p = generate_random(12, 20, weighted=True, seed=5)
        text = write_gset(p)
        back = parse_gset(text)
        assert back.num_nodes == p.num_nodes
        assert np.array_equal(back.edge_array, p.edge_array)
        assert np.allclose(back.weight_array, p.weight_array)

    def test_write_to_file_object(self):
        p = generate_random(5, 4, seed=1)
        buf = io.StringIO()
        write_gset(p, buf)
        assert buf.getvalue().startswith("5 4\n")

    def test_round_trip_via_path(self, tmp_path):
        p = generate_random(8, 10, seed=2)
        path = tmp_path / "toy.gset"
        write_gset(p, path)
        back = parse_gset(path)
        assert np.array_equal(back.edge_array, p.edge_array)


class TestGenerators:
    def test_random_edge_set_unique_and_in_range(self):
        edges, weights = random_edge_set(30, 100, weighted=False, seed=1)
        assert edges.shape == (100, 2)
        assert np.all(edges[:, 0] < edges[:, 1])
        keys = set(map(tuple, edges))
        assert len(keys) == 100
        assert np.all(weights == 1.0)

    def test_random_edge_set_rejects_overfull(self):
        with pytest.raises(ValueError):
            random_edge_set(4, 7)

    def test_random_weighted_pm1(self):
        _, weights = random_edge_set(30, 100, weighted=True, seed=2)
        assert set(np.unique(weights)).issubset({-1.0, 1.0})

    def test_generators_are_deterministic(self):
        a = generate_random(50, 120, seed=9)
        b = generate_random(50, 120, seed=9)
        assert np.array_equal(a.edge_array, b.edge_array)

    def test_skew_has_heavier_tail_than_random(self):
        skew = generate_skew(200, 800, seed=3)
        rand = generate_random(200, 800, seed=3)
        assert skew.degrees().max() > rand.degrees().max()
        assert skew.num_edges == 800

    def test_toroidal_structure(self):
        p = generate_toroidal(5, 6, seed=1)
        assert p.num_nodes == 30
        assert p.num_edges == 60
        assert np.all(p.degrees() == 4)
        assert np.all(p.weight_array == 1.0)

    def test_toroidal_weighted(self):
        p = generate_toroidal(5, 6, weighted=True, seed=1)
        assert set(np.unique(p.weight_array)).issubset({-1.0, 1.0})

    def test_toroidal_even_grid_is_bipartite(self):
        import networkx as nx

        p = generate_toroidal(4, 6, seed=0)
        assert nx.is_bipartite(p.to_networkx())

    def test_toroidal_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            generate_toroidal(2, 5)


class TestPaperSuite:
    def test_suite_composition(self):
        suite = paper_instance_suite()
        assert len(suite) == 30
        groups = suite_by_size(suite)
        assert {n: len(v) for n, v in groups.items()} == {
            800: 9,
            1000: 9,
            2000: 9,
            3000: 3,
        }

    def test_iteration_budgets(self):
        for spec in paper_instance_suite():
            assert spec.iterations == PAPER_ITERATIONS[spec.nodes]

    def test_specs_have_unique_names_and_seeds(self):
        suite = paper_instance_suite()
        assert len({s.name for s in suite}) == 30
        assert len({(s.nodes, s.seed) for s in suite}) == 30

    def test_build_matches_spec(self):
        spec = paper_instance_suite()[0]
        p = build_instance(spec)
        assert p.num_nodes == spec.nodes
        assert p.num_edges == spec.edges
        assert p.name == spec.name

    def test_build_toroidal_3000(self):
        spec = [s for s in paper_instance_suite() if s.nodes == 3000][0]
        p = build_instance(spec)
        assert p.num_nodes == 3000
        assert p.num_edges == 6000
        assert np.all(p.weight_array == 1.0)

    def test_build_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="family"):
            build_instance(GsetSpec("bad", 800, "nope", 10, False, 1))

    def test_build_rejects_unknown_torus_size(self):
        with pytest.raises(ValueError, match="torus"):
            build_instance(GsetSpec("bad", 800, "toroidal", 10, False, 1))
