"""Tests for the Ising model substrate, including the central flip identity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ising import IsingModel
from repro.utils.rng import ensure_rng


def random_model_and_state(seed, n=None, with_fields=True):
    rng = ensure_rng(seed)
    n = n or int(rng.integers(2, 16))
    model = IsingModel.random(n, with_fields=with_fields, seed=rng)
    sigma = model.random_configuration(rng)
    return model, sigma


class TestConstruction:
    def test_rejects_asymmetric_couplings(self):
        J = np.array([[0.0, 1.0], [0.5, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            IsingModel(J)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            IsingModel(np.zeros((2, 3)))

    def test_rejects_wrong_field_length(self):
        with pytest.raises(ValueError, match="fields"):
            IsingModel(np.zeros((3, 3)), np.zeros(2))

    def test_defaults(self):
        m = IsingModel(np.zeros((4, 4)))
        assert m.num_spins == 4
        assert not m.has_fields
        assert m.offset == 0.0

    def test_random_density_zero_gives_empty_couplings(self):
        m = IsingModel.random(10, density=0.0, seed=1)
        assert np.all(m.J == 0)

    def test_random_rejects_bad_args(self):
        with pytest.raises(ValueError):
            IsingModel.random(0)
        with pytest.raises(ValueError):
            IsingModel.random(5, density=1.5)


class TestEnergy:
    def test_energy_of_known_model(self):
        J = np.array([[0.0, 1.0], [1.0, 0.0]])
        m = IsingModel(J, np.array([0.5, -0.5]), offset=2.0)
        # E = 2*J01*s0*s1 + h·s + offset
        assert m.energy([1, 1]) == pytest.approx(2.0 + 0.0 + 2.0)
        assert m.energy([1, -1]) == pytest.approx(-2.0 + 1.0 + 2.0)

    def test_energy_requires_pm1(self, small_model):
        with pytest.raises(ValueError, match="±1"):
            small_model.energy(np.zeros(small_model.num_spins))

    def test_diagonal_contributes_constant(self):
        J = np.diag([1.0, 2.0, 3.0])
        m = IsingModel(J)
        for sigma in ([1, 1, 1], [-1, 1, -1], [-1, -1, -1]):
            assert m.energy(sigma) == pytest.approx(6.0)

    def test_local_fields_match_definition(self, small_model, rng):
        sigma = small_model.random_configuration(rng)
        g = small_model.local_fields(sigma)
        assert np.allclose(g, small_model.J @ sigma.astype(float))


class TestFlipIdentity:
    """ΔE = 4 σ_rᵀJσ_c + 2 hᵀσ_c — the identity the whole paper rests on."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000), data=st.data())
    def test_multi_flip_identity_matches_direct(self, seed, data):
        model, sigma = random_model_and_state(seed)
        n = model.num_spins
        k = data.draw(st.integers(1, n))
        flips = data.draw(
            st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
        )
        sigma_new = sigma.copy()
        sigma_new[flips] *= -1
        direct = model.energy(sigma_new) - model.energy(sigma)
        incremental = model.delta_energy_flips(sigma, flips)
        assert incremental == pytest.approx(direct, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_single_flip_identity(self, seed):
        model, sigma = random_model_and_state(seed)
        g = model.local_fields(sigma)
        for i in range(model.num_spins):
            sigma_new = sigma.copy()
            sigma_new[i] *= -1
            direct = model.energy(sigma_new) - model.energy(sigma)
            assert model.delta_energy_single(sigma, i) == pytest.approx(direct, abs=1e-9)
            assert model.delta_energy_single(sigma, i, g) == pytest.approx(direct, abs=1e-9)

    def test_flip_identity_independent_of_diagonal(self, rng):
        base = IsingModel.random(8, seed=4)
        with_diag = IsingModel(base.J + np.diag(rng.uniform(-2, 2, 8)))
        sigma = base.random_configuration(rng)
        for flips in ([0], [1, 5], [2, 3, 4]):
            assert base.delta_energy_flips(sigma, flips) == pytest.approx(
                with_diag.delta_energy_flips(sigma, flips)
            )

    def test_empty_flip_set_is_zero(self, small_model, rng):
        sigma = small_model.random_configuration(rng)
        assert small_model.delta_energy_flips(sigma, []) == 0.0

    def test_duplicate_flips_rejected(self, small_model, rng):
        sigma = small_model.random_configuration(rng)
        with pytest.raises(ValueError, match="unique"):
            small_model.delta_energy_flips(sigma, [1, 1])

    def test_out_of_range_flip_rejected(self, small_model, rng):
        sigma = small_model.random_configuration(rng)
        with pytest.raises(IndexError):
            small_model.delta_energy_single(sigma, small_model.num_spins)


class TestDeltaEnergySingleBoundary:
    """``index=True`` used to pass ``0 <= index < n`` and silently flip
    spin 1, and the index path skipped ``check_spin_vector`` entirely.
    Both backends share the regression."""

    def models(self):
        from repro.ising import SparseIsingModel

        dense = IsingModel.random(8, with_fields=True, seed=5)
        return dense, SparseIsingModel.from_dense(dense.J, dense.h)

    def test_boolean_index_rejected(self):
        for model in self.models():
            sigma = model.random_configuration(ensure_rng(1))
            with pytest.raises(ValueError, match="integer index"):
                model.delta_energy_single(sigma, True)

    def test_non_integer_index_rejected(self):
        for model in self.models():
            sigma = model.random_configuration(ensure_rng(1))
            with pytest.raises(ValueError, match="integer index"):
                model.delta_energy_single(sigma, 2.7)
            with pytest.raises(ValueError, match="integer index"):
                model.delta_energy_single(sigma, "3")

    def test_integral_float_and_numpy_index_accepted(self):
        dense, sparse = self.models()
        sigma = dense.random_configuration(ensure_rng(1))
        exact = dense.delta_energy_single(sigma, 2)
        assert dense.delta_energy_single(sigma, 2.0) == exact
        assert sparse.delta_energy_single(sigma, np.int64(2)) == pytest.approx(exact)

    def test_negative_index_rejected(self):
        for model in self.models():
            sigma = model.random_configuration(ensure_rng(1))
            with pytest.raises(IndexError, match=r"\[0, 8\)"):
                model.delta_energy_single(sigma, -1)

    def test_non_spin_sigma_rejected(self):
        for model in self.models():
            with pytest.raises(ValueError, match="±1"):
                model.delta_energy_single(np.zeros(8), 2)


class TestAncilla:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_ancilla_reproduces_field_energy(self, seed):
        model, sigma = random_model_and_state(seed, with_fields=True)
        folded = model.with_ancilla()
        extended = np.concatenate([[1], sigma]).astype(np.int8)
        assert folded.energy(extended) == pytest.approx(model.energy(sigma))

    def test_ancilla_has_no_fields(self, small_model):
        assert not small_model.with_ancilla().has_fields


class TestUtilities:
    def test_scaled(self, small_model, rng):
        sigma = small_model.random_configuration(rng)
        scaled = small_model.scaled(2.5)
        assert scaled.energy(sigma) == pytest.approx(2.5 * small_model.energy(sigma))

    def test_max_abs_coupling_ignores_diagonal(self):
        J = np.array([[9.0, 1.0], [1.0, 9.0]])
        assert IsingModel(J).max_abs_coupling() == 1.0

    def test_brute_force_minimum_is_global(self):
        model = IsingModel.random(8, with_fields=True, seed=2)
        sigma_star, e_star = model.brute_force_minimum()
        assert model.energy(sigma_star) == pytest.approx(e_star)
        rng = ensure_rng(0)
        for _ in range(50):
            s = model.random_configuration(rng)
            assert model.energy(s) >= e_star - 1e-9

    def test_brute_force_rejects_large(self):
        with pytest.raises(ValueError):
            IsingModel.random(21, seed=1).brute_force_minimum()

    def test_random_configuration_is_pm1(self, small_model):
        s = small_model.random_configuration(5)
        assert set(np.unique(s)).issubset({-1, 1})
