"""Tests for the fractional/exponential annealing factors and the encoder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExponentialFactor,
    FractionalFactor,
    VbgEncoder,
    fit_fractional_factor,
)
from repro.devices import DGFeFET, VBG_MAX


class TestFractionalFactor:
    def test_published_parameters(self):
        """f(T) = 1/(−0.006 T + 5) − 0.2 (paper Fig 6c)."""
        f = FractionalFactor()
        assert float(f.value(np.array(0.0))) == pytest.approx(0.0)
        assert f.t_max == pytest.approx((5 - 1 / 1.2) / 0.006, rel=1e-6)
        assert float(f.value(np.array(f.t_max))) == pytest.approx(1.0)

    def test_monotone_increasing(self):
        f = FractionalFactor()
        grid = f.value(np.linspace(0, f.t_max, 200))
        assert np.all(np.diff(grid) >= 0)
        assert np.all(grid >= 0)

    def test_clamps_below_zero(self):
        f = FractionalFactor()
        assert float(f.value(np.array(-50.0))) == 0.0

    def test_vbg_mapping_round_trip(self):
        f = FractionalFactor()
        temps = np.linspace(0, f.t_max, 20)
        back = f.temperature_for_vbg(f.vbg_for_temperature(temps))
        assert np.allclose(back, temps, atol=1e-9)

    def test_vbg_range(self):
        f = FractionalFactor()
        assert float(f.vbg_for_temperature(0.0)) == pytest.approx(0.0)
        assert float(f.vbg_for_temperature(f.t_max)) == pytest.approx(VBG_MAX)

    def test_rejects_decreasing_parameterisation(self):
        with pytest.raises(ValueError):
            FractionalFactor(a=-1.0, b=-0.006, c=5.0, d=1.2)

    def test_rejects_zero_params(self):
        with pytest.raises(ValueError):
            FractionalFactor(a=0.0)
        with pytest.raises(ValueError):
            FractionalFactor(c=0.0)


class TestExponentialFactor:
    def test_downhill_always_accepted(self):
        e = ExponentialFactor()
        assert float(e.acceptance(-1.0, 2.0)) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(de=st.floats(0.01, 50), t=st.floats(0.1, 100))
    def test_matches_metropolis(self, de, t):
        e = ExponentialFactor()
        assert float(e.acceptance(de, t)) == pytest.approx(np.exp(-de / t))

    def test_first_order_close_for_small_ratio(self):
        e = ExponentialFactor()
        assert float(e.first_order(0.1, 10.0)) == pytest.approx(
            float(e.acceptance(0.1, 10.0)), abs=1e-3
        )

    def test_first_order_clipped(self):
        e = ExponentialFactor()
        assert float(e.first_order(100.0, 1.0)) == 0.0
        assert float(e.first_order(-5.0, 1.0)) == 1.0


class TestFitting:
    def test_refit_recovers_published_curve(self):
        truth = FractionalFactor()
        t = np.linspace(0, truth.t_max, 50)
        fitted = fit_fractional_factor(t, truth.value(t))
        assert np.allclose(fitted.value(t), truth.value(t), atol=1e-6)

    def test_fit_device_transfer_curve(self):
        """Fig 6c: fit f(T) against the real DG FeFET normalised current."""
        cell = DGFeFET()
        cell.program_bit(1)
        truth = FractionalFactor()
        t = np.linspace(0, truth.t_max, 40)
        vbg = truth.vbg_for_temperature(t)
        target = cell.normalized_factor(vbg)
        fitted = fit_fractional_factor(t, target)
        err = np.max(np.abs(fitted.value(t) - target))
        assert err < 0.08  # "approximate" match, as the paper shows

    def test_fit_validates_input(self):
        with pytest.raises(ValueError):
            fit_fractional_factor([1.0, 2.0], [0.5])


class TestVbgEncoder:
    def test_ideal_encoder_small_error(self):
        f = FractionalFactor()
        enc = VbgEncoder(f)
        errs = enc.encoding_error(np.linspace(0, f.t_max, 30))
        assert np.max(errs) < 0.05

    def test_levels_on_grid(self):
        f = FractionalFactor()
        enc = VbgEncoder(f)
        assert enc.num_levels == 71
        level = enc.encode(f.t_max / 2)
        assert round(level / 0.01) == pytest.approx(level / 0.01)

    def test_device_transfer_encoder(self):
        """Encoding through the real cell inverts its transfer curve."""
        cell = DGFeFET()
        cell.program_bit(1)
        f = FractionalFactor()
        enc = VbgEncoder(f, transfer=lambda v: float(cell.normalized_factor(np.asarray(v))))
        t_mid = f.t_max / 2
        realized = enc.realized_factor(t_mid)
        requested = float(f.value(np.asarray(t_mid)))
        assert realized == pytest.approx(requested, abs=0.05)

    def test_extreme_temperatures(self):
        f = FractionalFactor()
        enc = VbgEncoder(f)
        assert enc.encode(0.0) == pytest.approx(0.0)
        assert enc.encode(f.t_max) == pytest.approx(VBG_MAX)

    def test_rejects_decreasing_transfer(self):
        f = FractionalFactor()
        with pytest.raises(ValueError):
            VbgEncoder(f, transfer=lambda v: 1.0 - v)
