"""Tests for device characterisation: metrics, retention, endurance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    EnduranceModel,
    FeFET,
    RetentionModel,
    annealing_runs_per_lifetime,
    extract_metrics,
)


class TestExtractMetrics:
    def test_metrics_match_design_targets(self):
        metrics = extract_metrics(FeFET())
        assert metrics.memory_window == pytest.approx(1.2, rel=0.1)
        assert metrics.on_off_ratio > 1e4
        assert 0.05 < metrics.subthreshold_swing < 0.12  # V/decade
        assert metrics.on_current > metrics.off_current

    def test_swing_matches_transistor_model(self):
        fefet = FeFET()
        metrics = extract_metrics(fefet)
        assert metrics.subthreshold_swing == pytest.approx(
            fefet.transistor.subthreshold_swing(), rel=0.15
        )


class TestRetention:
    def test_no_decay_at_time_zero(self):
        assert float(RetentionModel().polarization_fraction(0.0)) == 1.0

    def test_monotone_decay(self):
        model = RetentionModel()
        times = np.logspace(0, 10, 30)
        fractions = model.polarization_fraction(times)
        assert np.all(np.diff(fractions) < 0)

    def test_ten_year_retention_target(self):
        """Default parameters keep >60 % of the window after 10 years."""
        ten_years = 10 * 365.25 * 24 * 3600.0
        assert float(RetentionModel().polarization_fraction(ten_years)) > 0.6

    @settings(max_examples=25, deadline=None)
    @given(fraction=st.floats(0.05, 0.95))
    def test_time_to_fraction_inverts_decay(self, fraction):
        model = RetentionModel()
        t = model.time_to_fraction(fraction)
        assert float(model.polarization_fraction(t)) == pytest.approx(fraction, rel=1e-6)

    def test_window_after(self):
        model = RetentionModel()
        assert model.window_after(1.2, 0.0) == pytest.approx(1.2)
        assert model.window_after(1.2, 1e12) < 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetentionModel(tau=-1.0)
        with pytest.raises(ValueError):
            RetentionModel(beta=1.5)
        with pytest.raises(ValueError):
            RetentionModel().polarization_fraction(-1.0)
        with pytest.raises(ValueError):
            RetentionModel().time_to_fraction(1.5)


class TestEndurance:
    def test_fresh_device_is_reference(self):
        assert float(EnduranceModel().window_fraction(0)) == pytest.approx(1.0)

    def test_wake_up_then_fatigue(self):
        model = EnduranceModel()
        early = float(model.window_fraction(1e4))
        late = float(model.window_fraction(1e12))
        assert early > 1.0  # wake-up opens the window slightly
        assert late < 0.1  # deep fatigue closes it

    def test_cycles_to_fraction(self):
        model = EnduranceModel()
        cycles = model.cycles_to_fraction(0.5)
        assert 1e7 < cycles < 1e12
        assert float(model.window_fraction(cycles * 10)) < 0.5

    def test_no_fatigue_never_reaches_fraction(self):
        model = EnduranceModel(fatigue_cycles=1e30)
        assert model.cycles_to_fraction(0.5) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            EnduranceModel(wake_up_strength=-0.1)
        with pytest.raises(ValueError):
            EnduranceModel(fatigue_cycles=0)
        with pytest.raises(ValueError):
            EnduranceModel().window_fraction(-5)
        with pytest.raises(ValueError):
            EnduranceModel().cycles_to_fraction(0.0)


class TestLifetime:
    def test_problem_capacity(self):
        runs = annealing_runs_per_lifetime(EnduranceModel())
        assert runs > 1e6  # one program per problem: array outlives millions

    def test_reprogram_overhead_scales_down(self):
        model = EnduranceModel()
        base = annealing_runs_per_lifetime(model, reprograms_per_run=1)
        heavy = annealing_runs_per_lifetime(model, reprograms_per_run=10)
        assert heavy == pytest.approx(base / 10)
        with pytest.raises(ValueError):
            annealing_runs_per_lifetime(model, reprograms_per_run=0)
