"""Tests for the device substrate: transistor, Preisach FE, FeFET, DG FeFET."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    VBG_MAX,
    DGFeFET,
    FeFET,
    PreisachFerroelectric,
    Transistor,
    VariationModel,
)


class TestTransistor:
    def test_monotone_in_gate_voltage(self):
        t = Transistor()
        vg = np.linspace(-0.5, 1.5, 50)
        i = t.drain_current(vg, 1.0, 0.4)
        assert np.all(np.diff(i) > 0)

    def test_zero_drain_bias_gives_zero_current(self):
        t = Transistor()
        assert t.drain_current(1.0, 0.0, 0.2) == pytest.approx(0.0, abs=1e-18)

    def test_rejects_negative_drain(self):
        with pytest.raises(ValueError):
            Transistor().drain_current(1.0, -0.1, 0.2)

    def test_subthreshold_swing_near_target(self):
        """Below threshold the current should move ~SS volts per decade."""
        t = Transistor(leakage=0.0)
        v1, v2 = -0.3, -0.2  # both well below v_th = 0.4
        i1 = float(t.drain_current(v1, 1.0, 0.4))
        i2 = float(t.drain_current(v2, 1.0, 0.4))
        decades = np.log10(i2 / i1)
        measured_ss = (v2 - v1) / decades
        assert measured_ss == pytest.approx(t.subthreshold_swing(), rel=0.1)

    def test_saturation_weakly_dependent_on_vds(self):
        t = Transistor(lambda_out=0.0, leakage=0.0)
        i1 = float(t.drain_current(1.2, 1.0, 0.2))
        i2 = float(t.drain_current(1.2, 1.5, 0.2))
        assert i2 == pytest.approx(i1, rel=1e-3)

    def test_on_off_ratio_large(self):
        """At a mid-window read voltage the stored states differ by >1e6."""
        t = Transistor(leakage=0.0)
        ratio = t.on_off_ratio(0.5, 1.0, v_th_on=-0.1, v_th_off=1.1)
        assert ratio > 1e6

    def test_leakage_floor(self):
        t = Transistor(leakage=1e-10)
        i = float(t.drain_current(-2.0, 1.0, 1.0))
        assert i == pytest.approx(1e-10, rel=0.01)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Transistor(i0=-1.0)
        with pytest.raises(ValueError):
            Transistor(ideality=0.5)
        with pytest.raises(ValueError):
            Transistor(leakage=-1e-12)


class TestPreisach:
    def test_saturation_levels(self):
        fe = PreisachFerroelectric()
        fe.reset(-1)
        assert fe.polarization() == pytest.approx(-1.0, abs=1e-3)
        fe.apply(6.0)
        assert fe.polarization() == pytest.approx(1.0, abs=1e-3)

    def test_major_loop_is_hysteretic(self):
        fe = PreisachFerroelectric()
        v, p = fe.major_loop(v_max=4.0)
        half = len(v) // 2
        # polarization at V=0 differs between down-sweep and up-sweep
        down_zero = p[:half][np.argmin(np.abs(v[:half]))]
        up_zero = p[half:][np.argmin(np.abs(v[half:]))]
        assert down_zero > 0.5
        assert up_zero < -0.5

    def test_monotone_response_within_sweep(self):
        fe = PreisachFerroelectric()
        fe.reset(-1)
        ps = fe.apply_waveform(np.linspace(0, 4, 40))
        assert np.all(np.diff(ps) >= -1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        v1=st.floats(0.5, 3.5),
        v2=st.floats(-3.5, -0.5),
    )
    def test_return_point_memory(self, v1, v2):
        """Wiping-out property: a closed minor loop restores the state."""
        fe = PreisachFerroelectric()
        fe.reset(-1)
        fe.apply(v1)
        p_before = fe.polarization()
        # minor loop: down to v2 then back to v1 (v2 above the erase level)
        fe.apply(max(v2, -abs(v1)))
        fe.apply(v1)
        assert fe.polarization() == pytest.approx(p_before, abs=1e-9)

    def test_shorter_pulse_programs_less(self):
        fe = PreisachFerroelectric()
        p_ref = fe.remnant_after_pulse(2.5, 1e-6)
        p_short = fe.remnant_after_pulse(2.5, 1e-8)
        assert p_short < p_ref

    def test_history_tracking_and_reset(self):
        fe = PreisachFerroelectric()
        fe.apply(1.0)
        fe.apply(-1.0)
        assert fe.history == [1.0, -1.0]
        fe.reset(-1)
        assert fe.history == []

    def test_validation(self):
        with pytest.raises(ValueError):
            PreisachFerroelectric(grid_points=4)
        with pytest.raises(ValueError):
            PreisachFerroelectric(sigma=-1)
        fe = PreisachFerroelectric()
        with pytest.raises(ValueError):
            fe.reset(0)


class TestFeFET:
    def test_program_states_split_by_memory_window(self):
        f = FeFET()
        low = f.program_low_vth()
        high = f.program_high_vth()
        assert high - low == pytest.approx(f.memory_window, rel=0.05)

    def test_stored_bit_convention(self):
        f = FeFET()
        f.program_bit(1)
        assert f.stored_bit == 1
        f.program_bit(0)
        assert f.stored_bit == 0

    def test_program_bit_validates(self):
        with pytest.raises(ValueError):
            FeFET().program_bit(2)

    def test_id_vg_window(self):
        """Fig 2b envelope: clear separation at the read voltage."""
        f = FeFET()
        vg = np.linspace(-0.5, 1.5, 41)
        f.program_bit(1)
        on = f.id_vg(vg)
        f.program_bit(0)
        off = f.id_vg(vg)
        read_idx = np.argmin(np.abs(vg - 0.5))
        assert on[read_idx] / off[read_idx] > 1e3
        assert np.all(on >= off - 1e-15)

    def test_on_current_scale(self):
        f = FeFET()
        f.program_bit(1)
        i_on = float(f.drain_current(1.5, 0.1))
        assert 1e-5 < i_on < 1e-3  # Fig 2b tops out near 1e-4 A


class TestDGFeFET:
    def make_cell(self, bit=1):
        d = DGFeFET()
        d.program_bit(bit)
        return d

    def test_bg_shifts_effective_threshold(self):
        d = self.make_cell()
        assert d.effective_vth(0.7) == pytest.approx(
            d.vth - 0.7 * d.bg_coupling
        )

    def test_id_vfg_family_shifts_with_vbg(self):
        """Fig 2d: raising V_BG moves the transfer curve left."""
        d = self.make_cell()
        vfg = np.linspace(-0.5, 1.5, 31)
        currents = {vbg: d.id_vfg(vfg, vbg) for vbg in (-3.0, 0.0, 5.0)}
        mid = len(vfg) // 2
        assert currents[5.0][mid] > currents[0.0][mid] > currents[-3.0][mid]

    def test_four_input_product_gating(self):
        """I_SL = x·G·y·z: any zero input (or stored 0) kills the current."""
        on = self.make_cell(1)
        i_ref = float(on.sl_current(1, 1, VBG_MAX))
        assert i_ref > 1e-6
        assert float(on.sl_current(0, 1, VBG_MAX)) < i_ref / 100
        assert float(on.sl_current(1, 0, VBG_MAX)) == pytest.approx(0.0, abs=1e-15)
        off = self.make_cell(0)
        assert float(off.sl_current(1, 1, VBG_MAX)) < i_ref / 1e4

    def test_sl_current_validates_binary_inputs(self):
        d = self.make_cell()
        with pytest.raises(ValueError):
            d.sl_current(0.5, 1, 0.3)

    def test_isl_vbg_monotone_and_scaled(self):
        """Fig 6b: ~0 → ~10 µA over the back-gate range, monotone."""
        d = self.make_cell()
        vbg = np.linspace(0.0, VBG_MAX, 15)
        i = d.isl_vbg(vbg)
        assert np.all(np.diff(i) > 0)
        assert 5e-6 < i[-1] < 2e-5
        assert i[0] < i[-1] / 10

    def test_normalized_factor_range(self):
        d = self.make_cell()
        norm = d.normalized_factor(np.linspace(0, VBG_MAX, 8))
        assert norm[-1] == pytest.approx(1.0)
        assert np.all(norm >= 0)
        assert np.all(np.diff(norm) > 0)

    def test_bg_does_not_disturb_stored_state(self):
        d = self.make_cell()
        vth_before = d.vth
        d.isl_vbg(np.linspace(0, VBG_MAX, 10))
        assert d.vth == vth_before


class TestVariation:
    def test_ideal_by_default(self):
        v = VariationModel()
        assert v.is_ideal
        assert np.all(v.sample_vth_offsets((3, 3), seed=1) == 0)

    def test_offsets_have_requested_spread(self):
        v = VariationModel(vth_sigma=0.05)
        offsets = v.sample_vth_offsets((200, 200), seed=1)
        assert offsets.std() == pytest.approx(0.05, rel=0.05)

    def test_read_noise_multiplicative(self):
        v = VariationModel(read_noise_sigma=0.01)
        base = np.full(10_000, 2.0)
        noisy = v.apply_read_noise(base, seed=2)
        assert noisy.mean() == pytest.approx(2.0, rel=0.01)
        assert noisy.std() == pytest.approx(0.02, rel=0.1)

    def test_zero_noise_is_identity(self):
        v = VariationModel()
        arr = np.arange(5.0)
        assert v.apply_read_noise(arr, seed=3) is arr

    def test_validation(self):
        with pytest.raises(ValueError):
            VariationModel(vth_sigma=-0.1)
