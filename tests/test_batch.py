"""Tests for the vectorised multi-replica annealers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchDirectEAnnealer,
    BatchInSituAnnealer,
    ConstantSchedule,
    DirectEAnnealer,
    InSituAnnealer,
)
from repro.ising import IsingModel, MaxCutProblem


class TestBatchBasics:
    def test_shapes_and_consistency(self, small_model):
        batch = BatchInSituAnnealer(small_model, replicas=8, seed=3)
        result = batch.run(300)
        assert result.num_replicas == 8
        assert result.best_sigmas.shape == (8, small_model.num_spins)
        for r in range(8):
            check = small_model.energy(result.best_sigmas[r])
            assert check == pytest.approx(float(result.best_energies[r]), abs=1e-6)
            check_final = small_model.energy(result.final_sigmas[r])
            assert check_final == pytest.approx(float(result.final_energies[r]), abs=1e-6)
            assert result.best_energies[r] <= result.final_energies[r] + 1e-9

    def test_deterministic_given_seed(self, small_maxcut):
        model = small_maxcut.to_ising()
        a = BatchInSituAnnealer(model, replicas=4, seed=5).run(200)
        b = BatchInSituAnnealer(model, replicas=4, seed=5).run(200)
        assert np.allclose(a.best_energies, b.best_energies)

    def test_replicas_are_independent(self, small_maxcut):
        model = small_maxcut.to_ising()
        result = BatchInSituAnnealer(model, replicas=16, seed=1).run(100)
        # different replicas end in different states
        assert len({tuple(s) for s in result.final_sigmas.tolist()}) > 1

    def test_field_models(self):
        model = IsingModel.random(10, with_fields=True, seed=2)
        result = BatchInSituAnnealer(model, replicas=5, seed=1).run(300)
        for r in range(5):
            assert model.energy(result.best_sigmas[r]) == pytest.approx(
                float(result.best_energies[r]), abs=1e-6
            )

    def test_initial_broadcast(self, small_model):
        init = np.ones(small_model.num_spins, dtype=np.int8)
        batch = BatchInSituAnnealer(small_model, replicas=3, seed=1)
        result = batch.run(1, initial=init)
        for r in range(3):
            assert np.count_nonzero(result.final_sigmas[r] != init) <= 1

    def test_validation(self, small_model):
        with pytest.raises(ValueError):
            BatchInSituAnnealer(small_model, replicas=0)
        with pytest.raises(ValueError):
            BatchInSituAnnealer(small_model, replicas=2, proposal="walk")
        batch = BatchInSituAnnealer(small_model, replicas=2, seed=1)
        with pytest.raises(ValueError):
            batch.run(0)
        with pytest.raises(ValueError):
            batch.run(10, initial=np.ones(3, dtype=np.int8))


class TestStatisticalEquivalence:
    def test_matches_sequential_ensemble(self):
        """Batch replica quality matches sequential runs statistically."""
        problem = MaxCutProblem.random(60, 300, seed=9)
        model = problem.to_ising()
        iterations = 800
        batch = BatchInSituAnnealer(model, replicas=24, seed=11).run(iterations)
        batch_cuts = batch.best_cuts(problem)
        sequential_cuts = [
            problem.cut_from_energy(
                InSituAnnealer(model, seed=100 + s).run(iterations).best_energy
            )
            for s in range(8)
        ]
        assert np.mean(batch_cuts) == pytest.approx(
            np.mean(sequential_cuts), rel=0.05
        )

    def test_random_proposal_mode(self, small_maxcut):
        model = small_maxcut.to_ising()
        result = BatchInSituAnnealer(
            model, replicas=6, proposal="random", seed=2
        ).run(400)
        assert np.all(result.accepted > 0)


class TestBatchDirectE:
    def test_shapes_and_energy_consistency(self, small_model):
        batch = BatchDirectEAnnealer(small_model, replicas=6, seed=2)
        result = batch.run(300)
        for r in range(6):
            assert small_model.energy(result.best_sigmas[r]) == pytest.approx(
                float(result.best_energies[r]), abs=1e-6
            )

    def test_zero_temperature_is_greedy(self, small_maxcut):
        model = small_maxcut.to_ising()
        sched = ConstantSchedule(300, 1e-12)
        result = BatchDirectEAnnealer(model, replicas=5, schedule=sched, seed=1).run(300)
        # greedy: energy can only go down, so final equals best
        assert np.allclose(result.final_energies, result.best_energies)

    def test_matches_sequential_sa_ensemble(self):
        problem = MaxCutProblem.random(60, 300, seed=9)
        model = problem.to_ising()
        iterations = 1500
        batch = BatchDirectEAnnealer(model, replicas=24, seed=3).run(iterations)
        sequential = [
            problem.cut_from_energy(
                DirectEAnnealer(model, seed=200 + s).run(iterations).best_energy
            )
            for s in range(8)
        ]
        assert np.mean(batch.best_cuts(problem)) == pytest.approx(
            np.mean(sequential), rel=0.05
        )

    def test_validation(self, small_model):
        with pytest.raises(ValueError):
            BatchDirectEAnnealer(small_model, replicas=0)
        with pytest.raises(ValueError):
            BatchDirectEAnnealer(small_model, replicas=2, proposal="walk")

    def test_insitu_beats_sa_in_batch_at_paper_budget(self):
        """The Fig 10 separation visible directly through the batch API."""
        problem = MaxCutProblem.random(400, 4000, seed=6)
        model = problem.to_ising()
        iterations = 350  # sub-sweep budget, as in the paper's 800/700 setup
        ours = BatchInSituAnnealer(model, replicas=12, seed=4).run(iterations)
        base = BatchDirectEAnnealer(model, replicas=12, seed=4).run(iterations)
        assert ours.best_cuts(problem).mean() > base.best_cuts(problem).mean()


class TestThroughput:
    def test_batch_faster_than_sequential(self):
        """The point of the feature: R replicas cheaper than R runs."""
        import time

        problem = MaxCutProblem.random(200, 1200, seed=4)
        model = problem.to_ising()
        iterations, R = 500, 16

        t0 = time.perf_counter()
        BatchInSituAnnealer(model, replicas=R, seed=1).run(iterations)
        batch_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        for s in range(R):
            InSituAnnealer(model, seed=s).run(iterations)
        sequential_time = time.perf_counter() - t0

        assert batch_time < sequential_time
