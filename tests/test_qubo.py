"""Tests for the QUBO model and the exact Ising ⇄ QUBO conversions."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ising import IsingModel, QuboModel
from repro.utils.rng import ensure_rng


def random_qubo(seed, n=None):
    rng = ensure_rng(seed)
    n = n or int(rng.integers(2, 9))
    Q = rng.uniform(-2, 2, (n, n))
    Q = (Q + Q.T) / 2
    np.fill_diagonal(Q, 0.0)
    q = rng.uniform(-2, 2, n)
    return QuboModel(Q, q, offset=float(rng.uniform(-3, 3)))


class TestConstruction:
    def test_diagonal_absorbed_into_linear(self):
        Q = np.array([[2.0, 1.0], [1.0, -3.0]])
        m = QuboModel(Q, np.array([0.5, 0.5]))
        assert np.all(np.diag(m.Q) == 0)
        assert m.q == pytest.approx([2.5, -2.5])
        # objective values unchanged versus naive evaluation
        for x in itertools.product((0, 1), repeat=2):
            arr = np.array(x, dtype=float)
            naive = arr @ Q @ arr + np.array([0.5, 0.5]) @ arr
            assert m.value(list(x)) == pytest.approx(naive)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            QuboModel(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_value_validates_binary(self):
        m = random_qubo(1)
        with pytest.raises(ValueError, match="0/1"):
            m.value(np.full(m.num_variables, 0.5))

    def test_value_validates_shape(self):
        m = random_qubo(1)
        with pytest.raises(ValueError):
            m.value(np.zeros(m.num_variables + 1))


class TestConversions:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_to_ising_preserves_objective(self, seed):
        qubo = random_qubo(seed)
        ising = qubo.to_ising()
        n = qubo.num_variables
        for bits in itertools.product((0, 1), repeat=n):
            x = np.array(bits, dtype=np.int8)
            sigma = QuboModel.x_to_sigma(x)
            assert ising.energy(sigma) == pytest.approx(qubo.value(x), abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_round_trip_preserves_objective(self, seed):
        qubo = random_qubo(seed)
        back = QuboModel.from_ising(qubo.to_ising())
        n = qubo.num_variables
        for bits in itertools.product((0, 1), repeat=n):
            x = np.array(bits, dtype=np.int8)
            assert back.value(x) == pytest.approx(qubo.value(x), abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_from_ising_preserves_objective(self, seed):
        model = IsingModel.random(6, with_fields=True, seed=seed)
        qubo = QuboModel.from_ising(model)
        for bits in itertools.product((0, 1), repeat=6):
            x = np.array(bits, dtype=np.int8)
            sigma = QuboModel.x_to_sigma(x)
            assert qubo.value(x) == pytest.approx(model.energy(sigma), abs=1e-9)

    def test_variable_maps_are_inverse(self):
        x = np.array([0, 1, 1, 0], dtype=np.int8)
        assert np.array_equal(QuboModel.sigma_to_x(QuboModel.x_to_sigma(x)), x)
        sigma = np.array([1, -1, 1], dtype=np.int8)
        assert np.array_equal(QuboModel.x_to_sigma(QuboModel.sigma_to_x(sigma)), sigma)

    def test_ising_diagonal_handled_as_constant(self):
        J = np.array([[1.5, 0.5], [0.5, -1.0]])
        model = IsingModel(J)
        qubo = QuboModel.from_ising(model)
        for bits in itertools.product((0, 1), repeat=2):
            x = np.array(bits, dtype=np.int8)
            sigma = QuboModel.x_to_sigma(x)
            assert qubo.value(x) == pytest.approx(model.energy(sigma), abs=1e-9)
