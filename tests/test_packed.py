"""Bit-packed ±1 coupling backend: primitives, eligibility, bit-identity.

The packed backend's contract is *transparency*: on an eligible model
(zero diagonal, one shared dyadic coupling magnitude ±c) every kernel
computes the identical float64 values as the sparse backend, so solver
trajectories at a fixed seed are bit-identical — not merely close.  The
harness below therefore asserts exact equality (``==`` /
``np.array_equal``), never ``approx``, across all solver families
including the rank-t replica batch engines and the reordered /
partitioned / explicitly-permuted solve rows.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchDirectEAnnealer,
    BatchInSituAnnealer,
    FloatBatchState,
    PackedBatchState,
    PackedCouplingOps,
    coupling_ops,
    solve_ising,
    solve_maxcut,
)
from repro.ising import (
    IsingModel,
    MaxCutProblem,
    PackedIsingModel,
    SparseIsingModel,
    as_backend,
    dyadic_uniform_scale,
    generate_random,
    packed_scale,
    recommended_backend,
)
from repro.ising.packed import (
    PACKED_MAX_NUMERATOR,
    pack_bits,
    pack_spin_rows,
    popcount_bytes,
    unpack_spin_rows,
    words_to_bytes,
)
from repro.utils.rng import ensure_rng

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def eligible_models(n: int, m: int, seed: int, weighted: bool = True):
    """A packed-eligible instance as (sparse, packed) model twins."""
    problem = generate_random(n, m, weighted=weighted, seed=seed)
    sparse = problem.to_ising(backend="sparse")
    return sparse, PackedIsingModel.from_sparse(sparse)


# ---------------------------------------------------------------------------
# Packing primitives
# ---------------------------------------------------------------------------


class TestPackingPrimitives:
    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_spin_row_roundtrip(self, seed):
        """pack → unpack is the identity for every (R, n) shape,
        including the n % 64 ∈ {0, 1, 63} word boundaries."""
        rng = ensure_rng(seed)
        for n in (1, 7, 63, 64, 65, int(rng.integers(2, 200))):
            sigma = rng.choice(np.array([-1, 1], dtype=np.int8), size=(3, n))
            words = pack_spin_rows(sigma)
            assert words.dtype == np.uint64
            assert words.shape == (3, max(1, -(-n // 64)))
            assert np.array_equal(unpack_spin_rows(words, n), sigma)

    def test_pack_bits_places_bit_j_in_word_j64(self):
        for j in (0, 1, 13, 63, 64, 100, 127, 128):
            bits = np.zeros(130, dtype=np.uint8)
            bits[j] = 1
            words = pack_bits(bits[None, :])[0]
            assert words[j >> 6] == np.uint64(1) << np.uint64(j & 63)
            assert words.sum() == words[j >> 6]

    def test_words_to_bytes_is_little_end_first(self):
        words = np.array([0x0123456789ABCDEF], dtype=np.uint64)
        assert list(words_to_bytes(words)) == [
            0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01,
        ]

    def test_popcount_bytes_matches_bit_count(self):
        """Whichever implementation is active (np.bitwise_count on
        numpy ≥ 2, the byte LUT otherwise) agrees with int.bit_count."""
        a = np.arange(256, dtype=np.uint8)
        expect = np.array([int(v).bit_count() for v in range(256)], dtype=np.uint8)
        assert np.array_equal(popcount_bytes(a), expect)

    def test_popcount_lut_fallback_equivalent(self):
        """The numpy<2 LUT table itself (built unconditionally here)
        matches the active popcount on every byte value."""
        lut = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)
        a = np.arange(256, dtype=np.uint8)
        assert np.array_equal(lut[a], popcount_bytes(a))

    def test_pack_spin_rows_rejects_non_2d(self):
        with pytest.raises(ValueError, match="spin tensor"):
            pack_spin_rows(np.ones(8, dtype=np.int8))


# ---------------------------------------------------------------------------
# Eligibility
# ---------------------------------------------------------------------------


class TestEligibility:
    def test_dyadic_uniform_scale(self):
        assert dyadic_uniform_scale([1.0, -1.0, 1.0]) == 1.0
        assert dyadic_uniform_scale([-0.25, 0.25]) == 0.25  # G-set J = W/4
        assert dyadic_uniform_scale([2.0, -2.0]) == 2.0
        assert dyadic_uniform_scale([]) == 1.0
        assert dyadic_uniform_scale([1.0, 0.5]) is None  # mixed magnitudes
        assert dyadic_uniform_scale([0.0, 0.0]) is None  # no sign image
        assert dyadic_uniform_scale([0.3, -0.3]) is None  # huge numerator

    def test_dyadic_numerator_bound(self):
        ok = float(PACKED_MAX_NUMERATOR)
        assert dyadic_uniform_scale([ok, -ok]) == ok
        assert dyadic_uniform_scale([ok + 2.0, -(ok + 2.0)]) is None

    def test_packed_scale_on_models(self):
        sparse, packed = eligible_models(30, 80, seed=1)
        assert packed_scale(sparse) == 0.25
        assert packed_scale(packed) == 0.25
        assert packed.scale == 0.25
        # dense models are probed through J
        assert packed_scale(sparse.to_dense()) == 0.25
        assert packed_scale(IsingModel.random(10, seed=0)) is None

    def test_ineligible_couplings_rejected_with_actionable_message(self):
        general = SparseIsingModel.from_dense(IsingModel.random(8, seed=2).J)
        with pytest.raises(ValueError, match="sparse backend"):
            PackedIsingModel.from_sparse(general)

    def test_nonzero_diagonal_rejected(self):
        J = np.array([[0.5, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="zero coupling diagonal"):
            PackedIsingModel.from_sparse(SparseIsingModel.from_dense(J))


# ---------------------------------------------------------------------------
# Model transformations and structure
# ---------------------------------------------------------------------------


class TestPackedModel:
    def test_is_a_sparse_model(self):
        _, packed = eligible_models(20, 50, seed=3)
        assert isinstance(packed, SparseIsingModel)
        assert isinstance(packed.to_sparse(), SparseIsingModel)
        assert not isinstance(packed.to_sparse(), PackedIsingModel)

    def test_energy_contract_unchanged(self):
        sparse, packed = eligible_models(25, 60, seed=4)
        rng = ensure_rng(0)
        sigma = sparse.random_configuration(rng)
        assert packed.energy(sigma) == sparse.energy(sigma)
        assert np.array_equal(packed.local_fields(sigma), sparse.local_fields(sigma))

    def test_permuted_stays_packed(self):
        _, packed = eligible_models(16, 40, seed=5)
        perm = np.arange(16)[::-1].copy()
        relabelled = packed.permuted(perm)
        assert isinstance(relabelled, PackedIsingModel)
        assert relabelled.scale == packed.scale

    def test_scaled_repacks_when_eligible(self):
        _, packed = eligible_models(16, 40, seed=5)
        doubled = packed.scaled(2.0)
        assert isinstance(doubled, PackedIsingModel)
        assert doubled.scale == 2.0 * packed.scale
        # 0.3 · 0.25 has a huge dyadic numerator → plain sparse
        downgraded = packed.scaled(0.3)
        assert isinstance(downgraded, SparseIsingModel)
        assert not isinstance(downgraded, PackedIsingModel)

    def test_ancilla_fold_downgrades(self):
        """h/2 ancilla couplings break magnitude uniformity: the fold
        returns a plain sparse model rather than failing."""
        problem = generate_random(14, 30, weighted=True, seed=6)
        indptr, indices, data = problem.to_ising(backend="sparse").csr_arrays()
        model = PackedIsingModel(
            indptr, indices, data, fields=np.linspace(-1.0, 1.0, 14)
        )
        folded = model.with_ancilla()
        assert isinstance(folded, SparseIsingModel)
        assert not isinstance(folded, PackedIsingModel)

    def test_memory_accounts_for_packed_structures(self):
        _, packed = eligible_models(50, 150, seed=7)
        assert packed.memory_bytes() > packed.to_sparse().memory_bytes()

    def test_num_spin_words(self):
        for n, expect in ((5, 1), (64, 1), (65, 2), (200, 4)):
            _, packed = eligible_models(n, max(4, n), seed=8)
            assert packed.num_spin_words == expect


# ---------------------------------------------------------------------------
# Field kernels: exact equality with the sparse backend
# ---------------------------------------------------------------------------


class TestFieldExactness:
    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_local_fields_bit_identical(self, seed):
        rng = ensure_rng(seed)
        n = int(rng.integers(2, 150))
        m = int(rng.integers(1, n * (n - 1) // 2 + 1))
        sparse, packed = eligible_models(n, m, seed=seed)
        ops_s, ops_p = coupling_ops(sparse), coupling_ops(packed)
        assert isinstance(ops_p, PackedCouplingOps)
        sigma = sparse.random_configuration(rng)
        assert np.array_equal(ops_p.local_fields(sigma), ops_s.local_fields(sigma))
        batch = rng.choice(np.array([-1, 1], dtype=np.int8), size=(5, n))
        gp = ops_p.batch_local_fields(batch)
        gs = ops_s.batch_local_fields(batch)
        assert np.array_equal(gp, gs)
        assert gp.flags["C_CONTIGUOUS"]

    def test_empty_coupling_fields_are_zero(self):
        empty = PackedIsingModel.from_sparse(
            SparseIsingModel.from_dense(np.zeros((5, 5)))
        )
        sigma = np.ones(5, dtype=np.int8)
        assert np.array_equal(
            coupling_ops(empty).local_fields(sigma), np.zeros(5)
        )

    def test_batch_state_protocol_matches_float_twin(self):
        """gather / flip / record_best / readout agree step for step."""
        sparse, packed = eligible_models(40, 120, seed=9)
        rng = ensure_rng(3)
        sigma = rng.choice(np.array([-1, 1], dtype=np.int8), size=(4, 40)).astype(
            np.float64
        )
        fstate = coupling_ops(sparse).make_batch_state(sigma.copy())
        pstate = coupling_ops(packed).make_batch_state(sigma.copy())
        assert isinstance(fstate, FloatBatchState)
        assert isinstance(pstate, PackedBatchState)
        assert np.array_equal(fstate.fields, pstate.fields)

        rows = np.arange(4)
        idx = rng.integers(0, 40, size=(4, 3))
        assert np.array_equal(fstate.gather(rows[:, None], idx),
                              pstate.gather(rows[:, None], idx))

        acc = np.array([0, 2])
        cols = idx[acc]
        vals = fstate.gather(acc[:, None], cols)
        fstate.flip(acc, cols, vals)
        pstate.flip(acc, cols, vals)
        assert np.array_equal(fstate.final_sigmas(None), pstate.final_sigmas(None))

        improved = np.array([True, False, True, False])
        fstate.record_best(improved)
        pstate.record_best(improved)
        fwd = np.arange(40)[::-1].copy()
        assert np.array_equal(fstate.best_sigmas(fwd), pstate.best_sigmas(fwd))
        assert pstate.memory_bytes() < fstate.memory_bytes()

    def test_flip_handles_two_spins_in_one_word(self):
        """Two accepted flips landing in the same uint64 word must both
        toggle (XOR via ufunc.at, not last-write-wins assignment)."""
        _, packed = eligible_models(70, 150, seed=10)
        sigma = np.ones((1, 70), dtype=np.float64)
        state = coupling_ops(packed).make_batch_state(sigma)
        cols = np.array([[2, 7, 66]])  # 2 and 7 share word 0
        state.flip(np.array([0]), cols, np.ones((1, 3)))
        out = state.final_sigmas(None)[0]
        expect = np.ones(70, dtype=np.int8)
        expect[[2, 7, 66]] = -1
        assert np.array_equal(out, expect)


# ---------------------------------------------------------------------------
# Backend selection and conversion
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_recommended_backend_requires_uniform_signs(self):
        # sparse-regime sizes promote only when the sign-only flag is set
        assert recommended_backend(10_000, 30_000) == "sparse"
        assert recommended_backend(10_000, 30_000, uniform_signs=True) == "packed"
        # dense-regime sizes never promote
        assert recommended_backend(10, 45, uniform_signs=True) == "dense"
        # an edgeless model has nothing to pack
        assert recommended_backend(10_000, 0, uniform_signs=True) == "sparse"

    def test_as_backend_packed(self):
        sparse, packed = eligible_models(30, 80, seed=11)
        up = as_backend(sparse, "packed")
        assert isinstance(up, PackedIsingModel)
        # downgrade: an explicit "sparse" request unpacks
        down = as_backend(packed, "sparse")
        assert isinstance(down, SparseIsingModel)
        assert not isinstance(down, PackedIsingModel)
        # identity: already packed
        assert as_backend(packed, "packed") is packed

    def test_as_backend_auto_promotes_uniform_large_instances(self):
        problem = generate_random(600, 1800, weighted=True, seed=12)
        auto = as_backend(problem.to_ising(backend="sparse"), "auto")
        assert isinstance(auto, PackedIsingModel)
        # a general float model must not promote
        general = SparseIsingModel.from_dense(IsingModel.random(60, seed=0).J)
        assert not isinstance(as_backend(general, "auto"), PackedIsingModel)

    def test_to_ising_backend_packed(self):
        problem = generate_random(40, 100, weighted=True, seed=13)
        model = problem.to_ising(backend="packed")
        assert isinstance(model, PackedIsingModel)
        assert model.scale == 0.25

    def test_ineligible_to_ising_packed_raises(self):
        problem = MaxCutProblem.random(12, 30, seed=1)
        mixed = MaxCutProblem(
            12,
            problem.edge_array,
            problem.weight_array * np.linspace(1.0, 2.0, problem.num_edges),
        )
        with pytest.raises(ValueError, match="sparse backend"):
            mixed.to_ising(backend="packed")


# ---------------------------------------------------------------------------
# Solver bit-identity: every family, every routing row
# ---------------------------------------------------------------------------


def assert_results_identical(a, b):
    assert a.best_energy == b.best_energy
    assert np.array_equal(a.best_sigma, b.best_sigma)


class TestSolverBitIdentity:
    @relaxed
    @given(
        seed=st.integers(0, 10_000),
        method=st.sampled_from(["insitu", "sa", "mesa", "sb"]),
    )
    def test_sequential_families(self, seed, method):
        sparse, packed = eligible_models(30, 90, seed=seed)
        rs = solve_ising(
            sparse, method=method, iterations=200, seed=seed, backend="sparse"
        )
        rp = solve_ising(
            packed, method=method, iterations=200, seed=seed, backend="packed"
        )
        assert_results_identical(rs, rp)
        assert rs.energy == rp.energy
        assert np.array_equal(rs.sigma, rp.sigma)

    @relaxed
    @given(seed=st.integers(0, 10_000), flips=st.integers(1, 4))
    def test_replica_batch_rank_t(self, seed, flips):
        """The rank-t multi-flip batch engines, packed vs sparse."""
        sparse, packed = eligible_models(40, 120, seed=seed)
        for engine in (BatchInSituAnnealer, BatchDirectEAnnealer):
            rs = engine(
                sparse, replicas=5, seed=seed, flips_per_iteration=flips
            ).run(150)
            rp = engine(
                packed, replicas=5, seed=seed, flips_per_iteration=flips
            ).run(150)
            assert np.array_equal(rs.best_energies, rp.best_energies)
            assert np.array_equal(rs.final_energies, rp.final_energies)
            assert np.array_equal(rs.best_sigmas, rp.best_sigmas)
            assert np.array_equal(rs.final_sigmas, rp.final_sigmas)
            assert np.array_equal(rs.accepted, rp.accepted)

    def test_reordered_and_partitioned_rows(self):
        sparse, packed = eligible_models(60, 150, seed=14)
        for kwargs in (
            {"reorder": "rcm"},
            {"reorder": "auto"},
            {"reorder": "rcm", "replicas": 4},
            {"reorder": "partition", "tile_size": 16},
            {"reorder": "rcm", "tile_size": 16},
        ):
            rs = solve_ising(
                sparse, iterations=200, seed=14, backend="sparse", **kwargs
            )
            rp = solve_ising(
                packed, iterations=200, seed=14, backend="packed", **kwargs
            )
            assert_results_identical(rs, rp)

    def test_explicit_permutation_row(self):
        sparse, packed = eligible_models(32, 80, seed=15)
        perm = ensure_rng(0).permutation(32)
        rs = solve_ising(
            sparse, iterations=200, seed=15, backend="sparse", permutation=perm
        )
        rp = solve_ising(
            packed, iterations=200, seed=15, backend="packed", permutation=perm
        )
        assert_results_identical(rs, rp)

    def test_backend_kwarg_end_to_end(self):
        """solve_ising / solve_maxcut backend="packed" equals "sparse"."""
        problem = generate_random(40, 110, weighted=True, seed=16)
        model = problem.to_ising(backend="dense")
        rs = solve_ising(model, iterations=300, seed=16, backend="sparse")
        rp = solve_ising(model, iterations=300, seed=16, backend="packed")
        assert_results_identical(rs, rp)
        cs = solve_maxcut(problem, iterations=300, seed=16, backend="sparse")
        cp = solve_maxcut(problem, iterations=300, seed=16, backend="packed")
        assert cs.best_cut == cp.best_cut
        assert np.array_equal(cs.anneal.best_sigma, cp.anneal.best_sigma)

    def test_sb_replicas_batch(self):
        sparse, packed = eligible_models(40, 110, seed=17)
        rs = solve_ising(
            sparse, method="sb", iterations=200, seed=17, replicas=4,
            backend="sparse",
        )
        rp = solve_ising(
            packed, method="sb", iterations=200, seed=17, replicas=4,
            backend="packed",
        )
        assert np.array_equal(rs.best_energies, rp.best_energies)
        assert np.array_equal(rs.best_sigmas, rp.best_sigmas)
