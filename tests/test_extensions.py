"""Tests for the extension features: TSP, MIS, tiling, program-and-verify."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.arch import InSituCimAnnealer, TiledCrossbar
from repro.circuits import DgFefetCrossbar
from repro.core import solve_ising
from repro.devices import VBG_MAX, FeFET, PulseTrain, program_and_verify
from repro.ising import (
    MaxCutProblem,
    MaxIndependentSetProblem,
    QuboModel,
    TravellingSalesmanProblem,
)
from repro.utils.rng import ensure_rng


class TestTsp:
    def small_instance(self):
        # 4 cities on a square: optimal tour = the perimeter, length 4.
        D = np.array(
            [
                [0.0, 1.0, np.sqrt(2), 1.0],
                [1.0, 0.0, 1.0, np.sqrt(2)],
                [np.sqrt(2), 1.0, 0.0, 1.0],
                [1.0, np.sqrt(2), 1.0, 0.0],
            ]
        )
        return TravellingSalesmanProblem(D)

    def test_validation(self):
        with pytest.raises(ValueError):
            TravellingSalesmanProblem(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            TravellingSalesmanProblem(np.array([[0, 1.0], [2.0, 0]]))
        D = np.ones((3, 3)) - np.eye(3)
        with pytest.raises(ValueError):
            TravellingSalesmanProblem(D, penalty=-1.0)

    def test_tour_length(self):
        tsp = self.small_instance()
        assert tsp.tour_length([0, 1, 2, 3]) == pytest.approx(4.0)
        assert tsp.tour_length([0, 2, 1, 3]) == pytest.approx(2 + 2 * np.sqrt(2))
        with pytest.raises(ValueError):
            tsp.tour_length([0, 0, 1, 2])

    def test_brute_force(self):
        tsp = self.small_instance()
        tour, length = tsp.brute_force_tour()
        assert length == pytest.approx(4.0)
        assert tsp.tour_length(tour) == pytest.approx(length)

    def test_qubo_value_matches_tour_length_on_valid_tours(self):
        tsp = self.small_instance()
        qubo = tsp.to_qubo()
        for perm in itertools.permutations(range(4)):
            x = np.zeros((4, 4))
            for pos, city in enumerate(perm):
                x[city, pos] = 1
            # valid tours: penalty part vanishes, value = tour length
            assert qubo.value(x.ravel()) == pytest.approx(
                tsp.tour_length(np.argmax(x, axis=0))
            )

    def test_invalid_assignment_penalised(self):
        tsp = self.small_instance()
        qubo = tsp.to_qubo()
        x = np.zeros(16)
        # empty assignment: 2n penalty terms of weight A
        assert qubo.value(x) == pytest.approx(2 * 4 * tsp.penalty)

    def test_decode(self):
        tsp = self.small_instance()
        x = np.eye(4)
        assert tsp.decode(x.ravel()).tolist() == [0, 1, 2, 3]
        x[0, 0] = 0  # break the permutation
        assert tsp.decode(x.ravel()) is None

    def test_annealer_finds_valid_tour(self):
        tsp = TravellingSalesmanProblem.random_euclidean(4, seed=3)
        model = tsp.to_qubo().to_ising().with_ancilla()
        best_tour = None
        for attempt in range(8):
            result = solve_ising(model, method="insitu", iterations=12_000, seed=attempt)
            sigma = result.best_sigma
            if sigma[0] == -1:
                sigma = -sigma
            tour = tsp.decode(QuboModel.sigma_to_x(sigma[1:]))
            if tour is not None:
                best_tour = tour
                break
        assert best_tour is not None
        _, optimal = tsp.brute_force_tour()
        assert tsp.tour_length(best_tour) <= 1.5 * optimal


class TestMis:
    def test_path_graph_optimum(self):
        # path 0-1-2-3-4: MIS = {0, 2, 4}, size 3
        prob = MaxIndependentSetProblem(5, np.array([[0, 1], [1, 2], [2, 3], [3, 4]]))
        assert prob.brute_force_optimum() == 3

    def test_qubo_minimum_is_negative_mis_size(self):
        prob = MaxIndependentSetProblem.random(8, 12, seed=4)
        qubo = prob.to_qubo()
        best = min(
            qubo.value(np.array(bits))
            for bits in itertools.product((0, 1), repeat=8)
        )
        assert best == pytest.approx(-prob.brute_force_optimum())

    def test_independence_checks(self):
        prob = MaxIndependentSetProblem(3, np.array([[0, 1]]))
        assert prob.is_independent([1, 0, 1])
        assert not prob.is_independent([1, 1, 0])
        assert prob.set_size([1, 0, 1]) == 2

    def test_solver_finds_optimum(self):
        prob = MaxIndependentSetProblem.random(12, 20, seed=9)
        model = prob.to_qubo().to_ising().with_ancilla()
        best_size = 0
        for attempt in range(5):
            result = solve_ising(model, method="sa", iterations=6_000, seed=attempt)
            sigma = result.best_sigma
            if sigma[0] == -1:
                sigma = -sigma
            x = QuboModel.sigma_to_x(sigma[1:])
            if prob.is_independent(x):
                best_size = max(best_size, prob.set_size(x))
        assert best_size >= prob.brute_force_optimum() - 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MaxIndependentSetProblem(3, np.array([[0, 1]]), penalty=0.5)
        with pytest.raises(ValueError):
            MaxIndependentSetProblem(2, np.array([[0, 0]]))


class TestTiling:
    def test_stored_image_matches_monolithic(self):
        p = MaxCutProblem.random(40, 200, seed=2)
        J = p.to_ising().J
        mono = DgFefetCrossbar(J, seed=0)
        tiled = TiledCrossbar(J, tile_size=16, seed=0)
        assert tiled.grid == 3
        assert tiled.num_tiles == 9
        assert np.allclose(tiled.matrix_hat, mono.matrix_hat, atol=1e-9)

    def test_increment_values_match_monolithic(self):
        p = MaxCutProblem.random(40, 200, seed=2)
        J = p.to_ising().J
        mono = DgFefetCrossbar(J, seed=0)
        tiled = TiledCrossbar(J, tile_size=16, seed=0)
        rng = ensure_rng(7)
        sigma = rng.choice([-1.0, 1.0], 40)
        for trial in range(6):
            flips = rng.choice(40, size=1 + trial % 3, replace=False)
            c = np.zeros(40)
            c[flips] = -sigma[flips]
            r = sigma.copy()
            r[flips] = 0.0
            vbg = float(rng.uniform(0.2, VBG_MAX))
            vm, _ = mono.compute_increment(r, c, vbg)
            vt, _ = tiled.compute_increment(r, c, vbg)
            assert vt == pytest.approx(vm, abs=1e-9)

    def test_parallel_slots_and_summed_conversions(self):
        p = MaxCutProblem.random(40, 200, seed=2)
        J = p.to_ising().J
        tiled = TiledCrossbar(J, tile_size=16, seed=0)
        rng = ensure_rng(3)
        sigma = rng.choice([-1.0, 1.0], 40)
        c = np.zeros(40)
        c[5] = -sigma[5]
        r = sigma.copy()
        r[5] = 0.0
        _, stats = tiled.compute_increment(r, c, VBG_MAX)
        # one active tile-column × 3 row tiles × 2 phases × 4 bits
        assert stats.adc_conversions == 3 * 2 * 4
        assert stats.mux_slots == 2  # tiles sense in parallel

    def test_machine_runs_on_tiles(self):
        p = MaxCutProblem.random(30, 120, seed=5)
        model = p.to_ising()
        machine = InSituCimAnnealer(model, tile_size=12, seed=1)
        assert isinstance(machine.crossbar, TiledCrossbar)
        result = machine.run(300)
        check = machine.hw_model.energy(result.anneal.best_sigma)
        assert check == pytest.approx(result.anneal.best_energy, abs=1e-6)

    # constructor validation lives in tests/test_tiling.py
    # (TestSolveApiRouting.test_tiled_crossbar_validation)


class TestProgramVerify:
    def test_programs_one_state(self):
        fefet = FeFET()
        result = program_and_verify(fefet, 1)
        assert result.success
        assert fefet.stored_bit == 1
        assert result.final_current > 1e-6
        assert result.pulses_used >= 1

    def test_programs_zero_state(self):
        fefet = FeFET()
        program_and_verify(fefet, 1)
        result = program_and_verify(fefet, 0)
        assert result.success
        assert fefet.stored_bit == 0
        assert result.final_current < 1e-6

    def test_uses_fewer_pulses_with_strong_start(self):
        weak = program_and_verify(FeFET(), 1, v_start=1.0, v_step=0.25)
        strong = program_and_verify(FeFET(), 1, v_start=4.0, v_step=0.25)
        assert strong.pulses_used <= weak.pulses_used

    def test_fails_gracefully_when_unreachable(self):
        result = program_and_verify(
            FeFET(), 1, v_start=0.1, v_step=0.01, max_pulses=3
        )
        assert not result.success
        assert result.pulses_used == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            program_and_verify(FeFET(), 2)
        with pytest.raises(ValueError):
            program_and_verify(FeFET(), 1, max_pulses=0)

    def test_pulse_train(self):
        train = PulseTrain.staircase(1.0, 4.0, 7)
        fefet = FeFET()
        vths = train.apply(fefet)
        assert len(vths) == 7
        # ramping positive pulses can only lower (or hold) the threshold
        assert all(b <= a + 1e-12 for a, b in zip(vths, vths[1:]))
        with pytest.raises(ValueError):
            PulseTrain(())
        with pytest.raises(ValueError):
            PulseTrain.staircase(1.0, 2.0, 0)
