"""Rank-t replica batch engine: bit-identity against a straight-line loop.

The batch engines advance R replicas with array-wide rank-``t`` moves
(``batch_cross_term`` / rank-t ``batch_update_fields``).  The pin here is
the strongest available: for dyadic couplings — where every floating-point
sum is exact in any order — a batch run must be **bit-identical, replica by
replica**, to a straight-line reference loop that replays the same RNG
stream through the *sequential* coupling ops (``cross_term`` /
``update_fields``) one replica at a time.  That ties the vectorised rank-t
kernels to the sequential rank-t mathematics on both coupling backends.

Also covered: acceptance-rule parity between the batch and sequential
engines at comparison boundaries (the satellite audit), rank-t validation,
and permutation transparency of the replica path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchDirectEAnnealer,
    BatchInSituAnnealer,
    coupling_ops,
    solve_ising,
)
from repro.core.reorder import reorder_permutation
from repro.ising import IsingModel, MaxCutProblem, SparseIsingModel
from repro.utils.rng import ensure_rng

relaxed = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ENGINES = (BatchInSituAnnealer, BatchDirectEAnnealer)


def dyadic_pair(seed: int, n: int = 18, with_fields: bool = True):
    """A (dense, sparse) model pair with exactly-representable couplings."""
    rng = ensure_rng(seed)
    values = rng.integers(-8, 9, size=(n, n)) / 8.0
    mask = rng.random((n, n)) < 0.35
    upper = np.triu(values * mask, k=1)
    J = upper + upper.T
    h = rng.integers(-8, 9, size=n) / 8.0 if with_fields else None
    dense = IsingModel(J, h, offset=0.125, name=f"dyadic-{n}")
    return dense, SparseIsingModel.from_ising(dense)


def reference_batch_run(engine, iterations: int):
    """Straight-line per-replica replay of ``engine``'s batch run.

    Consumes the engine's RNG in exactly the order :meth:`_BatchEngine.run`
    does (schedule → initial state → proposal tensor → per-iteration
    uniforms), then advances each replica independently with the
    *sequential* coupling ops and the *sequential* acceptance rules.
    Returns ``(best_energies, best_sigmas, final_energies, final_sigmas,
    accepted)`` in the caller's original spin ordering.
    """
    rng = engine._rng
    R, n = engine.replicas, engine.n
    schedule = engine._build_schedule(iterations)
    sigma0 = engine._initial_sigma(None, rng)
    if engine._bwd is not None:
        sigma0 = np.ascontiguousarray(sigma0[:, engine._bwd])
    proposals = engine._proposal_tensor(iterations)
    if engine._fwd is not None:
        proposals = engine._fwd[proposals]
    uniforms = np.stack([rng.random(R) for _ in range(iterations)])

    ops = coupling_ops(engine.model)
    h = engine.model.h
    has_fields = engine.model.has_fields
    insitu = isinstance(engine, BatchInSituAnnealer)

    best_energies = np.empty(R)
    final_energies = np.empty(R)
    best_sigmas = np.empty((R, n))
    final_sigmas = np.empty((R, n))
    accepted = np.zeros(R, dtype=np.int64)
    for r in range(R):
        sig = sigma0[r].copy()
        g = ops.local_fields(sig)
        energy = float(sig @ g + h @ sig) + engine.model.offset
        best_energy, best_sig = energy, sig.copy()
        for it in range(iterations):
            temperature = schedule.temperature(it)
            flips = proposals[it, r].astype(np.intp)
            sig_f = sig[flips]
            cross = ops.cross_term(g, flips, sig_f)
            field_term = (
                float(-(h[flips] * sig_f).sum()) if has_fields else 0.0
            )
            delta_e = 4.0 * cross + 2.0 * field_term
            u = uniforms[it, r]
            if insitu:
                # the sequential InSituAnnealer rule, verbatim
                f_value = engine._factor_at(temperature)
                e_inc = (
                    (cross + field_term / 2.0)
                    * f_value
                    * engine.acceptance_scale
                )
                accept = e_inc <= 0.0 or e_inc <= u
            else:
                # the sequential DirectEAnnealer rule, verbatim
                if delta_e <= 0.0:
                    accept = True
                else:
                    accept = u < np.exp(
                        -delta_e / max(float(temperature), 1e-12)
                    )
            if accept:
                accepted[r] += 1
                ops.update_fields(g, flips, sig_f)
                sig[flips] = -sig_f
                energy += delta_e
                if energy < best_energy:
                    best_energy, best_sig = energy, sig.copy()
        best_energies[r], final_energies[r] = best_energy, energy
        best_sigmas[r], final_sigmas[r] = best_sig, sig
    if engine._fwd is not None:
        best_sigmas = best_sigmas[:, engine._fwd]
        final_sigmas = final_sigmas[:, engine._fwd]
    return best_energies, best_sigmas, final_energies, final_sigmas, accepted


class TestBitIdentityAgainstReferenceLoop:
    @relaxed
    @given(
        seed=st.integers(0, 10_000),
        t=st.integers(1, 6),
        engine_cls=st.sampled_from(ENGINES),
        proposal=st.sampled_from(["scan", "random"]),
        backend=st.sampled_from(["dense", "sparse"]),
    )
    def test_batch_matches_per_replica_reference(
        self, seed, t, engine_cls, proposal, backend
    ):
        dense, sparse = dyadic_pair(seed)
        model = dense if backend == "dense" else sparse
        kwargs = dict(
            replicas=4, flips_per_iteration=t, proposal=proposal, seed=seed
        )
        result = engine_cls(model, **kwargs).run(120)
        ref = reference_batch_run(engine_cls(model, **kwargs), 120)
        best_e, best_s, final_e, final_s, accepted = ref
        assert np.array_equal(result.best_energies, best_e)
        assert np.array_equal(result.final_energies, final_e)
        assert np.array_equal(result.best_sigmas, best_s.astype(np.int8))
        assert np.array_equal(result.final_sigmas, final_s.astype(np.int8))
        assert np.array_equal(result.accepted, accepted)

    @relaxed
    @given(seed=st.integers(0, 10_000), t=st.integers(1, 5))
    def test_permuted_batch_matches_reference_and_identity(self, seed, t):
        """Reordered replica solves replay the identical trajectory."""
        problem = MaxCutProblem.random(40, 120, weighted=True, seed=seed)
        model = problem.to_ising(backend="sparse")
        perm = reorder_permutation(model, "rcm")
        if perm is None:
            return
        for engine_cls in ENGINES:
            kwargs = dict(replicas=3, flips_per_iteration=t, seed=seed)
            plain = engine_cls(model, **kwargs).run(100)
            permuted = engine_cls(
                model.permuted(perm), permutation=perm, **kwargs
            ).run(100)
            assert np.array_equal(plain.best_energies, permuted.best_energies)
            assert np.array_equal(plain.final_sigmas, permuted.final_sigmas)
            assert np.array_equal(plain.best_sigmas, permuted.best_sigmas)
            assert np.array_equal(plain.accepted, permuted.accepted)
            ref = reference_batch_run(
                engine_cls(model.permuted(perm), permutation=perm, **kwargs),
                100,
            )
            assert np.array_equal(permuted.best_energies, ref[0])
            assert np.array_equal(permuted.final_sigmas, ref[3].astype(np.int8))


class TestAcceptanceParity:
    """Satellite audit: batch accept rules == sequential rules at boundaries.

    The oracles below are the sequential engines' accept expressions
    verbatim (InSituAnnealer: ``e_inc <= 0 or e_inc <= u``;
    DirectEAnnealer: ``delta_e <= 0 or u < exp(-delta_e/T)``).  A drift in
    either comparison operator or in the factor/scale association flips
    one of the exact-boundary cases.
    """

    def test_insitu_boundaries(self, small_model):
        engine = BatchInSituAnnealer(
            small_model, replicas=1, acceptance_scale=1.5, seed=0
        )
        temperature = 0.35
        f_value = engine._factor_at(temperature)
        scale = engine.acceptance_scale
        cross = np.array([-1.0, 0.0, 0.25, 0.25, 0.25, 2.0])
        field = np.zeros(6)
        e_inc = cross * f_value * scale
        # u exactly at, just below, and far from the threshold
        u = np.array([0.0, 0.0, e_inc[2], np.nextafter(e_inc[3], -1.0), 1.0, 0.0])
        got = engine._accept(cross, field, 4.0 * cross, temperature, u)
        expected = [
            bool(e <= 0.0 or e <= uu) for e, uu in zip(e_inc, u)
        ]
        assert got.tolist() == expected
        # the boundary rows are the interesting ones: pinned explicitly
        assert got[1]          # e_inc == 0 accepted without consuming luck
        assert got[2]          # e_inc == u accepted (<= comparison)
        assert not got[3]      # u one ulp below e_inc rejected

    def test_insitu_association_matches_sequential(self, small_model):
        """(x·f)·scale, not x·(f·scale) — last-ulp parity with sequential."""
        engine = BatchInSituAnnealer(
            small_model, replicas=1, acceptance_scale="auto", seed=0
        )
        temperature = 0.61
        f_value = engine._factor_at(temperature)
        scale = engine.acceptance_scale
        rng = ensure_rng(7)
        cross = rng.integers(-64, 65, size=512) / 64.0
        field = rng.integers(-64, 65, size=512) / 64.0
        e_inc_seq = (cross + field / 2.0) * f_value * scale
        u = np.abs(e_inc_seq)  # exact threshold for every row
        got = engine._accept(cross, field, 4.0 * cross + 2.0 * field, temperature, u)
        expected = (e_inc_seq <= 0.0) | (e_inc_seq <= u)
        assert np.array_equal(got, expected)

    def test_direct_e_boundaries(self, small_model):
        engine = BatchDirectEAnnealer(small_model, replicas=1, seed=0)
        temperature = 0.8
        delta_e = np.array([-2.0, 0.0, 1.0, 1.0, 1.0])
        threshold = float(np.exp(-1.0 / temperature))
        u = np.array([1.0 - 1e-12, 1.0 - 1e-12, threshold,
                      np.nextafter(threshold, 0.0), 0.0])
        got = engine._accept(
            delta_e / 4.0, np.zeros(5), delta_e, temperature, u
        )
        expected = [
            bool(d <= 0.0 or uu < np.exp(-d / max(temperature, 1e-12)))
            for d, uu in zip(delta_e, u)
        ]
        assert got.tolist() == expected
        assert got[1]          # ΔE == 0 accepted downhill-style
        assert not got[2]      # u == exp(-ΔE/T) rejected (strict <)
        assert got[3]          # one ulp below accepted


class TestRankTValidation:
    def test_flips_bounds_and_bool(self, small_model):
        for engine_cls in ENGINES:
            with pytest.raises(ValueError, match="flips_per_iteration must be an integer"):
                engine_cls(small_model, replicas=2, flips_per_iteration=True)
            with pytest.raises(ValueError, match="flips_per_iteration must be >= 1"):
                engine_cls(small_model, replicas=2, flips_per_iteration=0)
            with pytest.raises(ValueError, match=r"must be in \[1, 12\]"):
                engine_cls(small_model, replicas=2, flips_per_iteration=13)

    def test_boolean_iterations_rejected(self, small_model):
        """run(iterations=True) used to silently run a single iteration."""
        for engine_cls in ENGINES:
            engine = engine_cls(small_model, replicas=2, seed=0)
            for bad in (True, False):
                with pytest.raises(ValueError, match="iterations must be an integer"):
                    engine.run(bad)
        with pytest.raises(ValueError, match="iterations must be >= 1"):
            BatchInSituAnnealer(small_model, replicas=2, seed=0).run(0)

    def test_initial_must_be_spin_valued(self, small_model):
        """±2 entries used to corrupt the cached fields silently."""
        n = small_model.num_spins
        engine = BatchInSituAnnealer(small_model, replicas=3, seed=0)
        bad_flat = np.ones(n)
        bad_flat[4] = 2.0
        with pytest.raises(ValueError, match=r"must be ±1.*spin 4"):
            engine.run(10, initial=bad_flat)
        bad_batch = np.ones((3, n))
        bad_batch[1, 7] = 0.0
        with pytest.raises(ValueError, match=r"replica 1.*spin 7"):
            engine.run(10, initial=bad_batch)

    def test_valid_initial_still_accepted(self, small_model):
        n = small_model.num_spins
        engine = BatchInSituAnnealer(small_model, replicas=2, seed=0)
        init = np.ones((2, n))
        init[1] *= -1
        result = engine.run(5, initial=init)
        assert result.num_replicas == 2

    def test_fortran_ordered_initial_is_handled(self, small_model):
        """An F-ordered (R, n) initial must not break the sparse scatter."""
        sparse = SparseIsingModel.from_ising(small_model)
        n = small_model.num_spins
        init = np.asfortranarray(np.ones((4, n)))
        a = BatchInSituAnnealer(sparse, replicas=4, flips_per_iteration=2,
                                seed=3).run(60, initial=init)
        b = BatchInSituAnnealer(sparse, replicas=4, flips_per_iteration=2,
                                seed=3).run(60, initial=np.ones((4, n)))
        assert np.array_equal(a.final_sigmas, b.final_sigmas)
        assert np.array_equal(a.final_energies, b.final_energies)


class TestReplicaSolveAPI:
    def test_solve_ising_replica_path(self, small_model):
        result = solve_ising(
            small_model, replicas=6, iterations=80, seed=1,
            flips_per_iteration=3,
        )
        assert result.num_replicas == 6
        assert result.best_energy == result.best_energies.min()
        assert np.array_equal(
            result.best_sigma, result.best_sigmas[result.best_replica]
        )

    def test_replicas_reject_mesa_and_tiles(self, small_model):
        with pytest.raises(ValueError, match="no batch engine"):
            solve_ising(small_model, method="mesa", replicas=4)
        with pytest.raises(ValueError, match="tile_size"):
            solve_ising(small_model, replicas=4, tile_size=8)

    def test_replica_reorder_matches_identity(self):
        problem = MaxCutProblem.random(50, 140, weighted=True, seed=2)
        model = problem.to_ising(backend="sparse")
        plain = solve_ising(
            model, method="sa", replicas=5, iterations=150, seed=4,
            flips_per_iteration=2,
        )
        reordered = solve_ising(
            model, method="sa", replicas=5, iterations=150, seed=4,
            flips_per_iteration=2, reorder="rcm",
        )
        assert np.array_equal(plain.best_energies, reordered.best_energies)
        assert np.array_equal(plain.final_sigmas, reordered.final_sigmas)
