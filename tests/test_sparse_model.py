"""Property-based equivalence tests: SparseIsingModel vs the dense model.

The sparse CSR backend must be a drop-in replacement for the dense one.
These tests draw seeded random sparse graphs with *dyadic-rational*
couplings (integers / 8) — values whose sums are exactly representable in
binary floating point — so equality assertions are **bit-for-bit**, not
approximate: ``energy``, ``local_fields`` and ``delta_energy_flips`` must
agree exactly, and fixed-seed anneal trajectories must coincide across
backends for every solver family and both batch engines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchDirectEAnnealer,
    BatchInSituAnnealer,
    auto_acceptance_scale,
    coupling_ops,
    delta_energy,
    solve_ising,
)
from repro.ising import (
    SPARSE_MIN_SPINS,
    IsingModel,
    MaxCutProblem,
    SparseIsingModel,
    as_backend,
    dense_couplings,
    recommended_backend,
)
from repro.utils.rng import ensure_rng

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def dyadic_pair(seed: int, n: int | None = None, with_fields: bool = True):
    """A (dense, sparse) model pair with exactly-representable couplings."""
    rng = ensure_rng(seed)
    n = int(rng.integers(2, 25)) if n is None else n
    values = rng.integers(-8, 9, size=(n, n)) / 8.0
    mask = rng.random((n, n)) < 0.3
    upper = np.triu(values * mask, k=1)
    J = upper + upper.T
    h = rng.integers(-8, 9, size=n) / 8.0 if with_fields else None
    dense = IsingModel(J, h, offset=0.25, name=f"dyadic-{n}")
    return dense, SparseIsingModel.from_ising(dense)


class TestModelEquivalence:
    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_energy_and_local_fields_bit_for_bit(self, seed):
        dense, sparse = dyadic_pair(seed)
        rng = ensure_rng(seed + 1)
        for _ in range(3):
            sigma = dense.random_configuration(rng)
            assert sparse.energy(sigma) == dense.energy(sigma)
            assert np.array_equal(
                sparse.local_fields(sigma), dense.local_fields(sigma)
            )

    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_delta_energy_flips_bit_for_bit(self, seed):
        dense, sparse = dyadic_pair(seed)
        rng = ensure_rng(seed + 2)
        n = dense.num_spins
        sigma = dense.random_configuration(rng)
        for _ in range(4):
            k = int(rng.integers(1, n + 1))
            flips = rng.choice(n, size=k, replace=False)
            d_dense = dense.delta_energy_flips(sigma, flips)
            assert sparse.delta_energy_flips(sigma, flips) == d_dense
            # ... and both match brute-force recomputation.
            sigma_new = sigma.copy()
            sigma_new[flips] *= -1
            assert d_dense == pytest.approx(
                dense.energy(sigma_new) - dense.energy(sigma), abs=1e-9
            )

    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_delta_energy_single_and_helper(self, seed):
        dense, sparse = dyadic_pair(seed)
        rng = ensure_rng(seed + 3)
        sigma = dense.random_configuration(rng)
        g = dense.local_fields(sigma)
        for idx in rng.integers(dense.num_spins, size=4):
            idx = int(idx)
            assert sparse.delta_energy_single(sigma, idx) == dense.delta_energy_single(
                sigma, idx
            )
            assert sparse.delta_energy_single(sigma, idx, g) == dense.delta_energy_single(
                sigma, idx, g
            )
        flips = rng.choice(dense.num_spins, size=2, replace=False)
        assert delta_energy(sparse, sigma, flips) == pytest.approx(
            delta_energy(dense, sigma, flips), abs=1e-12
        )

    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_transformations_match(self, seed):
        dense, sparse = dyadic_pair(seed)
        assert sparse.max_abs_coupling() == dense.max_abs_coupling()
        # Equivalence harness: comparing against the dense backend
        # is the point here.  # repro-lint: disable=RPL001
        assert np.array_equal(dense_couplings(sparse), dense.J)
        rng = ensure_rng(seed + 4)
        sigma = np.concatenate(([1], dense.random_configuration(rng)))
        assert sparse.with_ancilla().energy(sigma) == pytest.approx(
            dense.with_ancilla().energy(sigma), abs=1e-12
        )
        s2 = sigma[1:]
        assert sparse.scaled(0.5).energy(s2) == dense.scaled(0.5).energy(s2)

    def test_auto_acceptance_scale_matches_across_backends(self):
        dense, sparse = dyadic_pair(77)
        assert auto_acceptance_scale(sparse) == auto_acceptance_scale(dense)

    def test_coupling_ops_dispatch(self):
        dense, sparse = dyadic_pair(5)
        assert coupling_ops(dense).kind == "dense"
        assert coupling_ops(sparse).kind == "sparse"
        with pytest.raises(TypeError, match="IsingModel"):
            coupling_ops(object())
        assert coupling_ops(sparse).memory_bytes() < coupling_ops(dense).memory_bytes()


class TestTrajectoryEquivalence:
    @relaxed
    @given(
        seed=st.integers(0, 10_000),
        method=st.sampled_from(["insitu", "sa", "mesa"]),
    )
    def test_fixed_seed_trajectories_coincide(self, seed, method):
        dense, sparse = dyadic_pair(seed, n=30)
        rd = solve_ising(dense, method=method, iterations=300, seed=seed)
        rs = solve_ising(sparse, method=method, iterations=300, seed=seed)
        assert rs.best_energy == rd.best_energy
        assert rs.energy == rd.energy
        assert np.array_equal(rs.sigma, rd.sigma)
        assert np.array_equal(rs.best_sigma, rd.best_sigma)
        assert rs.accepted == rd.accepted
        assert rs.uphill_accepted == rd.uphill_accepted

    @relaxed
    @given(seed=st.integers(0, 10_000), flips=st.integers(2, 5))
    def test_multi_flip_trajectories_coincide(self, seed, flips):
        """The t > 1 cross-term path (flip-set submatrix) is exact too."""
        dense, sparse = dyadic_pair(seed, n=24)
        for method in ("insitu", "sa"):
            rd = solve_ising(
                dense, method=method, iterations=200, seed=seed,
                flips_per_iteration=flips,
            )
            rs = solve_ising(
                sparse, method=method, iterations=200, seed=seed,
                flips_per_iteration=flips,
            )
            assert rs.best_energy == rd.best_energy
            assert np.array_equal(rs.sigma, rd.sigma)

    @pytest.mark.parametrize("engine", [BatchInSituAnnealer, BatchDirectEAnnealer])
    @pytest.mark.parametrize("proposal", ["scan", "random"])
    @pytest.mark.parametrize("flips", [1, 4])
    def test_batch_replicas_coincide(self, engine, proposal, flips):
        problem = MaxCutProblem.random(60, 200, weighted=True, seed=13)
        md = problem.to_ising(backend="dense")
        ms = problem.to_ising(backend="sparse")
        bd = engine(
            md, replicas=6, proposal=proposal, flips_per_iteration=flips, seed=3
        ).run(250)
        bs = engine(
            ms, replicas=6, proposal=proposal, flips_per_iteration=flips, seed=3
        ).run(250)
        assert np.array_equal(bs.best_energies, bd.best_energies)
        assert np.array_equal(bs.final_energies, bd.final_energies)
        assert np.array_equal(bs.final_sigmas, bd.final_sigmas)
        assert np.array_equal(bs.accepted, bd.accepted)


class TestConstructionAndSelection:
    def test_from_edges_matches_from_dense(self):
        problem = MaxCutProblem.random(40, 120, weighted=True, seed=21)
        via_edges = problem.to_ising(backend="sparse")
        via_dense = SparseIsingModel.from_dense(problem.adjacency() / 4.0)
        sigma = via_edges.random_configuration(1)
        assert via_edges.num_interactions == problem.num_edges
        assert via_edges.energy(sigma) == via_dense.energy(sigma)
        # Equivalence harness (tiny model): densify to compare.
        # repro-lint: disable=RPL001
        assert np.array_equal(via_edges.toarray(), via_dense.toarray())

    def test_from_edges_validation(self):
        with pytest.raises(ValueError, match="duplicate"):
            SparseIsingModel.from_edges(4, [0, 1], [1, 0], [1.0, 2.0])
        with pytest.raises(ValueError, match="out of range"):
            SparseIsingModel.from_edges(3, [0], [5], [1.0])
        with pytest.raises(ValueError, match="fields"):
            SparseIsingModel.from_edges(3, [0], [1], [1.0], fields=np.ones(5))
        with pytest.raises(ValueError, match="positive"):
            SparseIsingModel.from_edges(0, [], [], [])

    def test_explicit_zeros_dropped(self):
        m = SparseIsingModel.from_edges(4, [0, 1, 2], [1, 2, 3], [1.0, 0.0, 2.0])
        assert m.num_interactions == 2
        assert m.nnz == 4

    def test_diagonal_entries_are_constant_energy(self):
        J = np.diag([0.5, -0.25, 0.125])
        dense = IsingModel(J)
        sparse = SparseIsingModel.from_dense(J)
        sigma = np.array([1, -1, 1], dtype=np.int8)
        assert sparse.energy(sigma) == dense.energy(sigma) == pytest.approx(0.375)
        assert sparse.delta_energy_flips(sigma, [0, 2]) == 0.0

    def test_round_trip_dense_sparse_dense(self):
        dense, sparse = dyadic_pair(11)
        back = sparse.to_dense()
        assert np.array_equal(back.J, dense.J)
        assert np.array_equal(back.h, dense.h)
        assert back.offset == dense.offset

    def test_recommended_backend_thresholds(self):
        n = SPARSE_MIN_SPINS
        assert recommended_backend(n - 1, 10) == "dense"
        assert recommended_backend(n, 3 * n) == "sparse"
        # density above the ceiling stays dense even at scale
        dense_pairs = int(0.5 * n * (n - 1) / 2)
        assert recommended_backend(n, dense_pairs) == "dense"

    def test_to_ising_auto_selects_by_size(self):
        small = MaxCutProblem.random(40, 120, seed=1)
        assert isinstance(small.to_ising(), IsingModel)
        big = MaxCutProblem.random(SPARSE_MIN_SPINS, 3 * SPARSE_MIN_SPINS, seed=2)
        assert isinstance(big.to_ising(), SparseIsingModel)
        assert isinstance(big.to_ising(backend="dense"), IsingModel)
        with pytest.raises(ValueError, match="backend"):
            small.to_ising(backend="csr")

    def test_as_backend_conversions(self):
        dense, sparse = dyadic_pair(31)
        assert as_backend(dense, "dense") is dense
        assert as_backend(sparse, "sparse") is sparse
        assert isinstance(as_backend(dense, "sparse"), SparseIsingModel)
        assert isinstance(as_backend(sparse, "dense"), IsingModel)
        # auto on a small model picks dense either way
        assert isinstance(as_backend(sparse, "auto"), IsingModel)
        with pytest.raises(ValueError, match="backend"):
            as_backend(dense, "bogus")

    def test_sparse_random_constructor(self):
        m = SparseIsingModel.random(100, degree=6.0, with_fields=True, seed=4)
        assert m.num_spins == 100
        assert m.num_interactions == 300
        assert m.has_fields
        assert 0.0 < m.density < 0.07
        sigma = m.random_configuration(0)
        assert m.energy(sigma) == pytest.approx(m.to_dense().energy(sigma), abs=1e-9)

    def test_brute_force_minimum_matches(self):
        dense, sparse = dyadic_pair(3, n=8)
        sd, ed = dense.brute_force_minimum()
        ss, es = sparse.brute_force_minimum()
        assert es == ed
        assert np.array_equal(ss, sd)
