"""Tests for the shared utilities (rng, units, validation, tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import (
    GIGA,
    NANO,
    PICO,
    check_in_range,
    check_positive,
    check_probability,
    check_spin_vector,
    check_square_symmetric,
    ensure_rng,
    forbid_densification,
    format_energy,
    format_time,
    from_si,
    spawn_rng,
    to_si,
)
from repro.utils.tables import render_series, render_table


class TestRng:
    def test_accepts_none_int_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)
        assert isinstance(ensure_rng(5), np.random.Generator)
        # A raw Generator is the one input ensure_rng must pass through
        # untouched, so this test needs one built outside ensure_rng.
        gen = np.random.default_rng(1)  # repro-lint: disable=RPL002
        assert ensure_rng(gen) is gen

    def test_seed_sequence_matches_default_rng(self):
        seq = np.random.SeedSequence(42)
        a = ensure_rng(seq).integers(10**9)
        b = ensure_rng(np.random.SeedSequence(42)).integers(10**9)
        assert a == b

    def test_same_seed_same_stream(self):
        assert ensure_rng(7).integers(1000) == ensure_rng(7).integers(1000)

    def test_rejects_bad_seed(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_produces_independent_children(self):
        children = spawn_rng(ensure_rng(3), 4)
        assert len(children) == 4
        draws = [c.integers(10**9) for c in children]
        assert len(set(draws)) == 4

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(0), -1)


class TestForbidDensification:
    def test_traps_toarray(self):
        from repro.ising.sparse import SparseIsingModel

        model = SparseIsingModel.random(8, seed=0)
        with forbid_densification():
            with pytest.raises(AssertionError, match="forbid_densification"):
                model.toarray()  # repro-lint: disable=RPL001
        # The patch must be lifted once the context exits.
        assert model.toarray().shape == (8, 8)  # repro-lint: disable=RPL001

    def test_traps_matrix_hat(self):
        from repro.arch import TiledCrossbar
        from repro.ising.sparse import SparseIsingModel

        model = SparseIsingModel.random(8, seed=0)
        crossbar = TiledCrossbar(model, tile_size=4)
        with forbid_densification():
            with pytest.raises(AssertionError, match="forbid_densification"):
                crossbar.matrix_hat
        assert crossbar.matrix_hat.shape == (8, 8)

    def test_matrix_hat_opt_out(self):
        from repro.arch import TiledCrossbar
        from repro.ising.sparse import SparseIsingModel

        model = SparseIsingModel.random(8, seed=0)
        crossbar = TiledCrossbar(model, tile_size=4)
        with forbid_densification(trap_matrix_hat=False):
            assert crossbar.matrix_hat.shape == (8, 8)
            with pytest.raises(AssertionError):
                model.toarray()  # repro-lint: disable=RPL001

    def test_sparse_solve_passes_under_guard(self):
        from repro.core.solver import solve_ising
        from repro.ising.sparse import SparseIsingModel

        model = SparseIsingModel.random(16, seed=1)
        with forbid_densification():
            result = solve_ising(model, iterations=50, seed=2)
        assert np.isfinite(result.best_energy)


class TestUnits:
    def test_round_trip(self):
        assert from_si(to_si(0.25, PICO), PICO) == pytest.approx(0.25)
        assert to_si(25, NANO) == pytest.approx(2.5e-8)

    def test_format_energy(self):
        assert format_energy(2.5e-9) == "2.5 nJ"
        assert format_energy(0.0) == "0 J"
        assert format_energy(3.1e-6) == "3.1 µJ"

    def test_format_time(self):
        assert format_time(4.6e-3) == "4.6 ms"
        assert format_time(25e-9) == "25 ns"
        assert format_time(2.0 * GIGA) == "2 Gs"

    def test_format_small(self):
        assert format_energy(5e-16).endswith("fJ")


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        assert check_positive("x", 0.0, allow_zero=True) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        with pytest.raises(ValueError):
            check_positive("x", -1.0, allow_zero=True)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_range(self):
        assert check_in_range("v", 0.3, 0.0, 0.7) == 0.3
        with pytest.raises(ValueError):
            check_in_range("v", 0.8, 0.0, 0.7)

    def test_check_spin_vector(self):
        arr = check_spin_vector([1, -1, 1])
        assert arr.dtype == np.int8
        with pytest.raises(ValueError):
            check_spin_vector([[1, -1]])
        with pytest.raises(ValueError):
            check_spin_vector([1, 0, -1])
        with pytest.raises(ValueError):
            check_spin_vector([1, -1], n=3)

    def test_check_square_symmetric(self):
        J = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert check_square_symmetric(J).dtype == np.float64
        with pytest.raises(ValueError):
            check_square_symmetric(np.array([[0.0, 1.0], [0.9, 0.0]]))


class TestTables:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.34567], ["xyz", 5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        assert "2.346" in out

    def test_render_table_title(self):
        out = render_table(["a"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_render_table_validates_width(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_series(self):
        out = render_series("x", [1, 2], {"y": [10, 20], "z": [3, 4]})
        assert "x" in out and "y" in out and "z" in out
        assert "20" in out

    def test_render_series_validates_lengths(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], {"y": [1]})
