"""Tests for non-symmetric quantization and the tile crossbar mode."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import DgFefetCrossbar, MatrixQuantizer
from repro.devices import VBG_MAX
from repro.utils.rng import ensure_rng


class TestQuantizeGeneral:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), bits=st.integers(2, 8))
    def test_reconstruction_error_bound(self, seed, bits):
        rng = ensure_rng(seed)
        n = int(rng.integers(2, 10))
        A = rng.uniform(-2, 2, (n, n))  # deliberately asymmetric
        q = MatrixQuantizer(bits)
        hat = q.quantize_general(A).dequantize()
        assert np.max(np.abs(hat - A)) <= q.lsb_for(A) / 2 + 1e-12

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            MatrixQuantizer(4).quantize_general(np.zeros((2, 3)))

    def test_symmetric_path_still_validates(self):
        A = np.array([[0.0, 1.0], [0.5, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            MatrixQuantizer(4).quantize(A)
        # but the general path accepts it
        MatrixQuantizer(4).quantize_general(A)


class TestAsymmetricCrossbar:
    def test_tile_mode_stores_asymmetric_blocks(self):
        rng = ensure_rng(3)
        block = rng.uniform(-1, 1, (12, 12))
        xb = DgFefetCrossbar(block, require_symmetric=False, seed=0)
        assert np.max(np.abs(xb.matrix_hat - block)) <= xb.quantized.lsb / 2 + 1e-12

    def test_tile_mode_evaluates_products(self):
        rng = ensure_rng(4)
        block = rng.uniform(-1, 1, (10, 10))
        xb = DgFefetCrossbar(block, require_symmetric=False, seed=0)
        r = rng.choice([-1.0, 0.0, 1.0], 10)
        c = np.zeros(10)
        c[3] = 1.0
        value, _ = xb.compute_increment(r, c, VBG_MAX)
        exact = float(r @ xb.matrix_hat @ c)
        assert value == pytest.approx(exact, abs=1e-12)

    def test_symmetric_default_rejects_asymmetric(self):
        block = np.array([[0.0, 1.0], [0.5, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            DgFefetCrossbar(block, seed=0)
