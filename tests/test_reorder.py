"""Permutation-equivalence harness for the spin-reordering subsystem.

Reordering must be *unobservable* to callers: solving a relabelled model
(with the relabelling declared) is bit-identical to solving the original,
couplings and energies round-trip exactly through the inverse permutation,
and the tiled machine returns the same pinned results with ``reorder="rcm"``
as with ``"none"`` — only the tile registry (and hence the hardware cost)
changes.  All bit-for-bit assertions use dyadic-rational couplings
(integers / 8), for which every floating-point sum involved is exact in
any summation order, so the equalities are arithmetic facts rather than
platform luck — the same contract the backend-equivalence suite pins.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import InSituCimAnnealer, TiledCrossbar
from repro.core import (
    Permutation,
    count_active_tiles,
    degree_permutation,
    graph_bandwidth,
    partition_permutation,
    rcm_permutation,
    reorder_permutation,
    solve_ising,
)
from repro.ising import SparseIsingModel
from repro.utils.rng import ensure_rng

relaxed = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def dyadic_sparse_model(seed: int, with_fields: bool = False) -> SparseIsingModel:
    """Seeded random sparse model with exactly-representable couplings."""
    rng = ensure_rng(seed)
    n = int(rng.integers(6, 40))
    m = int(rng.integers(n, 3 * n))
    pairs = rng.choice(n * (n - 1) // 2, size=min(m, n * (n - 1) // 2), replace=False)
    rows, cols = np.triu_indices(n, k=1)
    r, c = rows[pairs], cols[pairs]
    vals = rng.integers(-8, 9, size=r.size) / 8.0
    keep = vals != 0
    h = rng.integers(-8, 9, size=n) / 8.0 if with_fields else None
    return SparseIsingModel.from_edges(
        n, r[keep], c[keep], vals[keep], h, offset=0.25, name=f"dyadic-{n}"
    )


def random_permutation(n: int, seed: int) -> Permutation:
    return Permutation(ensure_rng(seed).permutation(n))


def scattered_circulant(n: int, seed: int = 99) -> SparseIsingModel:
    """A degree-6 circulant with randomly relabelled nodes.

    The underlying graph is perfectly banded (bandwidth 3 in its natural
    order); the relabelling scatters its edges over the whole matrix —
    exactly the layout problem RCM is meant to undo.
    """
    rng = ensure_rng(seed)
    base = np.arange(n)
    u = np.concatenate([base, base, base])
    v = np.concatenate([(base + k) % n for k in (1, 2, 3)])
    r, c = np.minimum(u, v), np.maximum(u, v)
    w = rng.choice(np.array([-1.0, 1.0]), size=r.size) / 4.0
    relabel = rng.permutation(n)
    return SparseIsingModel.from_edges(
        n, relabel[r], relabel[c], w, name=f"scattered-circulant-{n}"
    )


# ----------------------------------------------------------------------
# Model-level properties
# ----------------------------------------------------------------------
class TestPermutedModels:
    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_round_trip_is_exact(self, seed):
        """``permuted(p).permuted(p.inverse)`` returns the identical model."""
        model = dyadic_sparse_model(seed, with_fields=True)
        p = random_permutation(model.num_spins, seed + 1)
        back = model.permuted(p).permuted(p.inverse)
        for a, b in zip(model.csr_arrays(), back.csr_arrays()):
            assert np.array_equal(a, b)
        assert np.array_equal(model.h, back.h)
        assert back.offset == model.offset

    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_dense_round_trip_is_exact(self, seed):
        model = dyadic_sparse_model(seed, with_fields=True).to_dense()
        p = random_permutation(model.num_spins, seed + 1)
        back = model.permuted(p).permuted(p.inverse)
        assert np.array_equal(model.J, back.J)
        assert np.array_equal(model.h, back.h)

    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_energy_and_fields_equivariant_bit_for_bit(self, seed):
        """Dyadic sums are order-independent: relabelled energies coincide."""
        model = dyadic_sparse_model(seed, with_fields=True)
        p = random_permutation(model.num_spins, seed + 2)
        permuted = model.permuted(p)
        sigma = model.random_configuration(seed)
        assert permuted.energy(p.permute_vector(sigma)) == model.energy(sigma)
        assert np.array_equal(
            p.restore_vector(permuted.local_fields(p.permute_vector(sigma))),
            model.local_fields(sigma),
        )

    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_dense_and_sparse_permute_agree(self, seed):
        model = dyadic_sparse_model(seed, with_fields=True)
        p = random_permutation(model.num_spins, seed + 3)
        assert np.array_equal(
            # repro-lint: disable=RPL001 (dense-permute equivalence oracle)
            model.permuted(p).toarray(), model.to_dense().permuted(p).J
        )


# ----------------------------------------------------------------------
# Solver equivalence (the transparency contract)
# ----------------------------------------------------------------------
class TestSolverEquivalence:
    @relaxed
    @given(
        seed=st.integers(0, 10_000),
        method=st.sampled_from(["insitu", "sa", "mesa", "sb"]),
    )
    def test_declared_permutation_is_bit_identical(self, seed, method):
        """``solve(model.permuted(p))`` mapped back == ``solve(model)``.

        The permutation is declared to the solver, which draws proposals
        in the original spin space and maps results back — so the entire
        fixed-seed trajectory is the exact relabelled image of the
        unpermuted run.  This includes simulated bifurcation: dSB's
        matvec inputs are ±1, so its row sums are exact — hence
        order-independent — for the dyadic couplings used here.
        """
        model = dyadic_sparse_model(seed, with_fields=True)
        p = random_permutation(model.num_spins, seed + 4)
        base = solve_ising(model, method=method, iterations=200, seed=7)
        mapped = solve_ising(
            model.permuted(p), method=method, iterations=200, seed=7,
            permutation=p,
        )
        assert mapped.energy == base.energy
        assert mapped.best_energy == base.best_energy
        assert mapped.accepted == base.accepted
        assert np.array_equal(mapped.sigma, base.sigma)
        assert np.array_equal(mapped.best_sigma, base.best_sigma)

    @relaxed
    @given(
        seed=st.integers(0, 10_000),
        method=st.sampled_from(["insitu", "sa", "mesa", "sb"]),
    )
    def test_reorder_knob_is_bit_identical(self, seed, method):
        """``reorder="rcm"`` never changes a software solver's output."""
        model = dyadic_sparse_model(seed, with_fields=True)
        base = solve_ising(model, method=method, iterations=200, seed=7)
        reordered = solve_ising(
            model, method=method, iterations=200, seed=7, reorder="rcm"
        )
        assert reordered.best_energy == base.best_energy
        assert reordered.accepted == base.accepted
        assert np.array_equal(reordered.sigma, base.sigma)
        assert np.array_equal(reordered.best_sigma, base.best_sigma)

    def test_multi_flip_trajectories_also_coincide(self):
        model = dyadic_sparse_model(123)
        p = random_permutation(model.num_spins, 5)
        base = solve_ising(
            model, iterations=150, seed=3, flips_per_iteration=3
        )
        mapped = solve_ising(
            model.permuted(p), iterations=150, seed=3,
            flips_per_iteration=3, permutation=p,
        )
        assert mapped.best_energy == base.best_energy
        assert np.array_equal(mapped.best_sigma, base.best_sigma)

    @relaxed
    @given(
        seed=st.integers(0, 10_000),
        method=st.sampled_from(["insitu", "sa", "mesa", "sb"]),
    )
    def test_partition_layout_is_bit_identical(self, seed, method):
        """The min-cut block layout obeys the same transparency contract.

        A partition permutation is just another declared layout, so every
        solver family must return the bit-identical fixed-seed trajectory
        under it — the clustered-instance analogue of the RCM property
        above.
        """
        model = dyadic_sparse_model(seed, with_fields=True)
        p = partition_permutation(model, 4)
        base = solve_ising(model, method=method, iterations=200, seed=7)
        mapped = solve_ising(
            model.permuted(p), method=method, iterations=200, seed=7,
            permutation=p,
        )
        assert mapped.energy == base.energy
        assert mapped.best_energy == base.best_energy
        assert mapped.accepted == base.accepted
        assert np.array_equal(mapped.sigma, base.sigma)
        assert np.array_equal(mapped.best_sigma, base.best_sigma)

    @relaxed
    @given(
        seed=st.integers(0, 10_000),
        method=st.sampled_from(["insitu", "sa"]),
    )
    def test_partition_layout_batch_multiflip_bit_identical(self, seed, method):
        """Rank-t replica batches under a partition layout coincide too."""
        model = dyadic_sparse_model(seed)
        p = partition_permutation(model, 4)
        base = solve_ising(
            model, method=method, iterations=120, seed=3,
            replicas=4, flips_per_iteration=3,
        )
        mapped = solve_ising(
            model.permuted(p), method=method, iterations=120, seed=3,
            replicas=4, flips_per_iteration=3, permutation=p,
        )
        assert np.array_equal(mapped.best_energies, base.best_energies)
        assert np.array_equal(mapped.accepted, base.accepted)
        assert np.array_equal(mapped.final_sigmas, base.final_sigmas)
        assert np.array_equal(mapped.best_sigma, base.best_sigma)

    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_partition_layout_sb_batch_bit_identical(self, seed):
        """The SB replica batch obeys the same layout-transparency
        contract: positions are drawn in the caller's spin space and
        mapped back, so the dSB (R, n) trajectory is the exact relabelled
        image of the unpermuted run."""
        model = dyadic_sparse_model(seed)
        p = partition_permutation(model, 4)
        base = solve_ising(
            model, method="sb", iterations=120, seed=3, replicas=4
        )
        mapped = solve_ising(
            model.permuted(p), method="sb", iterations=120, seed=3,
            replicas=4, permutation=p,
        )
        assert np.array_equal(mapped.best_energies, base.best_energies)
        assert np.array_equal(mapped.accepted, base.accepted)
        assert np.array_equal(mapped.final_sigmas, base.final_sigmas)
        assert np.array_equal(mapped.best_sigmas, base.best_sigmas)


# ----------------------------------------------------------------------
# Tiled-machine equivalence + occupancy
# ----------------------------------------------------------------------
class TestTiledReordering:
    @pytest.mark.parametrize("reorder", ["rcm", "partition"])
    def test_tiled_solve_bit_identical_under_reordering(self, reorder):
        model = scattered_circulant(600)
        base = solve_ising(model, iterations=400, seed=11, tile_size=32)
        mapped = solve_ising(
            model, iterations=400, seed=11, tile_size=32, reorder=reorder
        )
        assert mapped.best_energy == base.best_energy
        assert mapped.accepted == base.accepted
        assert np.array_equal(mapped.best_sigma, base.best_sigma)

    @pytest.mark.parametrize("reorder", ["rcm", "partition"])
    def test_fielded_model_ancilla_survives_reordering(self, reorder):
        """Field fold → reorder → inverse map → ancilla strip round-trips.

        The ancilla spin is pinned at its conventional position in the
        *caller's* ordering; because the machine maps every configuration
        back through the inverse permutation before the ancilla is
        stripped, the internal position of the ancilla row is irrelevant.

        Single-magnitude weights (J ∈ ±1/4, h ∈ ±1/2 so the folded ancilla
        row is also ±1/4) keep the 4-bit stored image exactly representable
        — the same representability story as the ±1-weighted G-sets — so
        the machine comparison is bit-for-bit.
        """
        rng = ensure_rng(77)
        n = 30
        rows, cols = np.triu_indices(n, k=1)
        keep = rng.random(rows.size) < 0.15
        model = SparseIsingModel.from_edges(
            n, rows[keep], cols[keep],
            rng.choice([-0.25, 0.25], size=int(keep.sum())),
            rng.choice([-0.5, 0.5], size=n),
            name="fielded-single-magnitude",
        )
        base = solve_ising(model, iterations=300, seed=5, tile_size=8)
        rcm = solve_ising(
            model, iterations=300, seed=5, tile_size=8, reorder="rcm"
        )
        assert rcm.best_energy == base.best_energy
        assert np.array_equal(rcm.best_sigma, base.best_sigma)
        assert rcm.best_sigma.shape == (model.num_spins,)  # ancilla stripped

    def test_estimated_tiles_matches_machine_exactly(self):
        """The occupancy regression guard for the estimator heuristic."""
        model = scattered_circulant(1200, seed=17)
        tile = 64
        perm = rcm_permutation(model)
        identity_tiles = count_active_tiles(model, tile)
        assert identity_tiles == TiledCrossbar(model, tile_size=tile).num_tiles
        machine = InSituCimAnnealer(model, tile_size=tile, reorder="rcm", seed=0)
        assert machine.permutation is not None
        assert machine.crossbar.num_tiles == perm.estimated_active_tiles(tile)
        assert machine.crossbar.num_tiles < identity_tiles

    def test_rcm_recovers_banded_layout(self):
        model = scattered_circulant(1500, seed=3)
        perm = rcm_permutation(model)
        assert perm.bandwidth_before > 100  # scattered on the way in
        assert perm.bandwidth_after <= 16   # near the circulant's natural 3
        assert perm.estimated_active_tiles(64) * 5 <= count_active_tiles(model, 64)

    def test_auto_keeps_identity_when_already_banded(self):
        """On an already-banded path graph, reordering cannot help.

        (A circulant would not do here: its wrap-around edges give the
        natural order bandwidth ``n − 1``, which RCM improves by cutting
        the cycle.  A path's band is irreducible.)
        """
        rng = ensure_rng(0)
        n = 400
        u = np.concatenate([np.arange(n - 1), np.arange(n - 2)])
        v = np.concatenate([np.arange(1, n), np.arange(2, n)])
        model = SparseIsingModel.from_edges(
            n, u, v, rng.choice([-0.25, 0.25], size=u.size),
        )
        assert reorder_permutation(model, "auto", tile_size=32) is None
        machine = InSituCimAnnealer(model, tile_size=32, reorder="auto", seed=0)
        assert machine.permutation is None
        assert machine.mapping.ordering == "identity"

    def test_auto_reorders_scattered_instances(self):
        model = scattered_circulant(800, seed=9)
        perm = reorder_permutation(model, "auto", tile_size=32)
        assert perm is not None
        machine = InSituCimAnnealer(model, tile_size=32, reorder="auto", seed=0)
        assert machine.mapping.ordering == perm.strategy
        assert machine.mapping.bandwidth == perm.bandwidth_after

    def test_reordered_stored_image_is_exact_relabelling(self):
        """hw_model (caller order) == unreordered machine's stored image."""
        model = scattered_circulant(300, seed=21)
        plain = InSituCimAnnealer(model, tile_size=16, seed=0)
        rcm = InSituCimAnnealer(model, tile_size=16, reorder="rcm", seed=0)
        a, b = plain.hw_model, rcm.hw_model
        for x, y in zip(a.csr_arrays(), b.csr_arrays()):
            assert np.array_equal(x, y)


# ----------------------------------------------------------------------
# Permutation object + reorder passes
# ----------------------------------------------------------------------
class TestPermutationObject:
    def test_identity(self):
        p = Permutation.identity(5)
        assert p.is_identity
        assert len(p) == 5
        x = np.arange(5.0)
        assert np.array_equal(p.permute_vector(x), x)

    def test_inverse_composes_to_identity(self):
        p = random_permutation(20, 1)
        assert np.array_equal(p.forward[p.inverse.forward], np.arange(20))
        x = ensure_rng(2).normal(size=20)
        assert np.array_equal(p.restore_vector(p.permute_vector(x)), x)

    def test_rejects_non_permutations(self):
        with pytest.raises(ValueError, match="distinct position"):
            Permutation([0, 0, 1])
        with pytest.raises(ValueError, match="lie in"):
            Permutation([0, 1, 5])
        with pytest.raises(ValueError, match="length 3"):
            SparseIsingModel.from_edges(3, [0], [1], [0.5]).permuted([0, 1])

    def test_estimated_tiles_requires_structure(self):
        with pytest.raises(ValueError, match="no coupling structure"):
            Permutation.identity(4).estimated_active_tiles(2)

    def test_degree_ordering_sorts_ascending(self):
        # star + pendant chain: the hub has max degree and must come last
        model = SparseIsingModel.from_edges(
            6, [0, 0, 0, 0, 1], [1, 2, 3, 4, 5], [0.5] * 5
        )
        perm = degree_permutation(model)
        assert perm.forward[0] == 5  # hub (degree 4) placed last
        assert perm.bandwidth_before == graph_bandwidth(model)

    def test_inverse_estimates_tiles_of_the_permuted_model(self):
        model = scattered_circulant(200, seed=31)
        perm = rcm_permutation(model)
        inv = perm.inverse
        # Undoing the reordering from the permuted model restores the
        # scattered occupancy.
        assert inv.estimated_active_tiles(16) == count_active_tiles(model, 16)


class TestReorderValidation:
    def test_unknown_reorder_rejected_at_solve_boundary(self):
        model = dyadic_sparse_model(1)
        with pytest.raises(ValueError, match="unknown reorder 'zigzag'"):
            solve_ising(model, reorder="zigzag")

    def test_machine_rejects_rcm_without_tiles(self):
        model = dyadic_sparse_model(2)
        with pytest.raises(ValueError, match="tile_size"):
            InSituCimAnnealer(model, reorder="rcm", seed=0)

    def test_machine_auto_without_tiles_is_identity(self):
        model = dyadic_sparse_model(3)
        machine = InSituCimAnnealer(model, reorder="auto", seed=0)
        assert machine.permutation is None

    def test_reorder_permutation_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown reorder"):
            reorder_permutation(dyadic_sparse_model(4), "zigzag")
