"""Tests for the non-Max-Cut COP families (coloring, knapsack, partitioning)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import solve_ising
from repro.ising import (
    GraphColoringProblem,
    KnapsackProblem,
    NumberPartitioningProblem,
    QuboModel,
)
from repro.utils.rng import ensure_rng


class TestColoring:
    def triangle(self, k=3):
        return GraphColoringProblem(3, np.array([[0, 1], [1, 2], [0, 2]]), k)

    def test_proper_coloring_has_zero_energy(self):
        prob = self.triangle()
        x = np.zeros((3, 3))
        for v, c in enumerate((0, 1, 2)):
            x[v, c] = 1
        assert prob.to_qubo().value(x.ravel()) == pytest.approx(0.0)
        assert prob.is_proper(x.ravel())

    def test_conflict_costs_energy(self):
        prob = self.triangle()
        x = np.zeros((3, 3))
        x[0, 0] = x[1, 0] = x[2, 1] = 1  # vertices 0,1 share colour 0
        value = prob.to_qubo().value(x.ravel())
        assert value == pytest.approx(prob.conflict_weight)
        assert prob.violations(x.ravel())["conflicts"] == 1

    def test_missing_colour_costs_energy(self):
        prob = self.triangle()
        x = np.zeros((3, 3))
        x[0, 0] = x[1, 1] = 1  # vertex 2 uncoloured
        assert prob.to_qubo().value(x.ravel()) == pytest.approx(prob.one_hot_weight)
        assert prob.violations(x.ravel())["one_hot"] == 1

    def test_minimum_over_all_assignments_is_ground_energy(self):
        prob = GraphColoringProblem(3, np.array([[0, 1], [1, 2]]), 2)
        qubo = prob.to_qubo()
        best = min(
            qubo.value(np.array(bits))
            for bits in itertools.product((0, 1), repeat=prob.num_variables)
        )
        assert best == pytest.approx(prob.ground_energy)

    def test_triangle_not_2_colorable(self):
        prob = GraphColoringProblem(3, np.array([[0, 1], [1, 2], [0, 2]]), 2)
        qubo = prob.to_qubo()
        best = min(
            qubo.value(np.array(bits))
            for bits in itertools.product((0, 1), repeat=prob.num_variables)
        )
        assert best > 0

    def test_decode(self):
        prob = self.triangle()
        x = np.zeros((3, 3))
        x[0, 2] = x[1, 0] = 1
        assert prob.decode(x.ravel()).tolist() == [2, 0, -1]

    def test_solver_finds_proper_coloring(self):
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])  # 4-cycle, 2-colorable
        prob = GraphColoringProblem(4, edges, 2)
        model = prob.to_qubo().to_ising()
        result = solve_ising(model, method="insitu", iterations=4000, seed=3)
        x = QuboModel.sigma_to_x(result.best_sigma)
        assert result.best_energy == pytest.approx(prob.ground_energy, abs=1e-9)
        assert prob.is_proper(x)

    def test_validation(self):
        with pytest.raises(ValueError):
            GraphColoringProblem(0, np.zeros((0, 2)), 2)
        with pytest.raises(ValueError):
            GraphColoringProblem(3, np.array([[0, 0]]), 2)


class TestKnapsack:
    def test_qubo_matches_objective_for_feasible(self):
        prob = KnapsackProblem(np.array([10.0, 7.0]), np.array([3.0, 2.0]), 5)
        qubo = prob.to_qubo()
        # take both items, exact capacity → slack 0, objective −17
        x = np.concatenate([[1, 1], np.zeros(prob.num_slack_bits)])
        assert qubo.value(x) == pytest.approx(-17.0)

    def test_slack_register_covers_capacity(self):
        from repro.ising.knapsack import _slack_coefficients

        for cap in (0, 1, 2, 3, 7, 10, 100):
            coeffs = _slack_coefficients(cap)
            assert coeffs.sum() == cap
            reachable = {0}
            for c in coeffs:
                reachable |= {r + c for r in reachable}
            assert set(range(cap + 1)) <= reachable

    def test_qubo_minimum_matches_dp(self):
        prob = KnapsackProblem.random(6, seed=5)
        qubo = prob.to_qubo()
        best_val = None
        for bits in itertools.product((0, 1), repeat=qubo.num_variables):
            v = qubo.value(np.array(bits))
            best_val = v if best_val is None else min(best_val, v)
        _, dp_value = prob.brute_force_optimum()
        # QUBO minimum = −(optimal value) at a feasible, slack-consistent point
        assert best_val == pytest.approx(-dp_value, abs=1e-9)

    def test_dp_optimum_feasible(self):
        prob = KnapsackProblem.random(10, seed=8)
        sel, value = prob.brute_force_optimum()
        assert prob.is_feasible(sel)
        assert prob.total_value(sel) == pytest.approx(value)

    def test_decode_extracts_items(self):
        prob = KnapsackProblem(np.array([5.0]), np.array([2.0]), 4)
        x = np.concatenate([[1], np.zeros(prob.num_slack_bits)])
        assert prob.decode(x).tolist() == [1]

    def test_validation(self):
        with pytest.raises(ValueError):
            KnapsackProblem(np.array([1.0]), np.array([-1.0]), 3)
        with pytest.raises(ValueError):
            KnapsackProblem(np.array([1.0, 2.0]), np.array([1.0]), 3)

    def test_solver_finds_good_solution(self):
        prob = KnapsackProblem.random(8, seed=2)
        model = prob.to_qubo().to_ising()
        result = solve_ising(model, method="sa", iterations=8000, seed=4)
        x = QuboModel.sigma_to_x(result.best_sigma)
        sel = prob.decode(x)
        _, dp_value = prob.brute_force_optimum()
        assert prob.is_feasible(sel)
        assert prob.total_value(sel) >= 0.8 * dp_value


class TestPartitioning:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_energy_equals_squared_residue(self, seed):
        prob = NumberPartitioningProblem.random(8, seed=seed)
        model = prob.to_ising()
        rng = ensure_rng(seed)
        sigma = rng.choice(np.array([-1, 1], dtype=np.int8), prob.num_items)
        assert model.energy(sigma) == pytest.approx(prob.residue(sigma) ** 2)
        assert prob.residue_from_energy(model.energy(sigma)) == pytest.approx(
            prob.residue(sigma)
        )

    def test_perfect_partition_found(self):
        prob = NumberPartitioningProblem(np.array([4.0, 3.0, 2.0, 5.0]))  # 4+3 = 2+5
        result = solve_ising(prob.to_ising(), method="insitu", iterations=2000, seed=1)
        assert prob.residue(result.best_sigma) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NumberPartitioningProblem(np.array([1.0]))
        with pytest.raises(ValueError):
            NumberPartitioningProblem(np.array([1.0, -2.0]))
