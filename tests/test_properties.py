"""Cross-stack property-based tests (hypothesis).

These chain multiple layers together and assert the invariants that keep
the reproduction honest: the crossbar agrees with the algebra, annealers
never report impossible energies, conversions are lossless, and cost books
are internally consistent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import DirectECimAnnealer, HardwareConfig, InSituCimAnnealer
from repro.circuits import DgFefetCrossbar
from repro.core import solve_ising
from repro.devices import VBG_MAX
from repro.ising import IsingModel, MaxCutProblem
from repro.utils.rng import ensure_rng

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@relaxed
@given(seed=st.integers(0, 10_000), bits=st.integers(2, 6))
def test_crossbar_agrees_with_model_delta_energy(seed, bits):
    """4 × (crossbar E_inc at f=1) equals the stored model's exact ΔE."""
    rng = ensure_rng(seed)
    n = int(rng.integers(4, 20))
    m = int(rng.integers(n, n * (n - 1) // 2 + 1))
    problem = MaxCutProblem.random(n, m, weighted=bool(rng.integers(2)), seed=rng)
    xb = DgFefetCrossbar(problem.to_ising().J, bits=bits, seed=0)
    model_hat = IsingModel(xb.matrix_hat)
    sigma = model_hat.random_configuration(rng)
    k = int(rng.integers(1, n))
    flips = rng.choice(n, size=k, replace=False)
    sigma_c = np.zeros(n)
    sigma_c[flips] = -sigma[flips]
    sigma_r = sigma.astype(np.float64).copy()
    sigma_r[flips] = 0.0
    sensed, _ = xb.compute_increment(sigma_r, sigma_c, VBG_MAX)
    exact = model_hat.delta_energy_flips(sigma, flips)
    assert 4.0 * sensed == pytest.approx(exact, abs=1e-9)


@relaxed
@given(seed=st.integers(0, 10_000), method=st.sampled_from(["insitu", "sa", "mesa"]))
def test_annealers_never_report_impossible_energies(seed, method):
    """best_energy matches its configuration and bounds the final energy."""
    model = IsingModel.random(10, with_fields=True, seed=seed)
    result = solve_ising(model, method=method, iterations=200, seed=seed)
    assert result.best_energy == pytest.approx(model.energy(result.best_sigma), abs=1e-6)
    assert result.energy == pytest.approx(model.energy(result.sigma), abs=1e-6)
    assert result.best_energy <= result.energy + 1e-9
    assert result.accepted <= result.iterations
    assert result.uphill_accepted <= result.accepted


@relaxed
@given(seed=st.integers(0, 10_000))
def test_annealer_beats_random_sampling(seed):
    """200 annealing iterations beat the best of 20 random configurations
    on average-sized instances (sanity: the solver actually optimises)."""
    rng = ensure_rng(seed)
    problem = MaxCutProblem.random(30, 120, seed=rng)
    model = problem.to_ising()
    result = solve_ising(model, method="insitu", iterations=400, seed=seed)
    random_best = min(
        model.energy(model.random_configuration(rng)) for _ in range(20)
    )
    assert result.best_energy <= random_best + 1e-9


@relaxed
@given(seed=st.integers(0, 5_000))
def test_machine_ledgers_are_consistent(seed):
    """Ledger totals equal the component sums; counts match iterations."""
    rng = ensure_rng(seed)
    n = int(rng.integers(12, 40))
    m = int(rng.integers(n, 3 * n))
    problem = MaxCutProblem.random(n, m, seed=rng)
    model = problem.to_ising()
    iters = int(rng.integers(20, 120))
    machine = InSituCimAnnealer(model, seed=seed)
    result = machine.run(iters)
    breakdown = result.ledger.energy_breakdown()
    assert sum(breakdown.values()) == pytest.approx(result.energy, rel=1e-9)
    assert result.ledger.entries["logic"].count == iters
    assert result.annealing_energy >= 0
    # ADC conversions: 2 phases × k per iteration on a positive matrix
    assert result.ledger.entries["adc"].count == iters * 2 * machine.config.quantization_bits


@relaxed
@given(seed=st.integers(0, 5_000))
def test_baseline_always_costs_more(seed):
    """For any instance and budget, direct-E costs more energy and time."""
    rng = ensure_rng(seed)
    n = int(rng.integers(16, 64))
    m = int(rng.integers(n, 3 * n))
    problem = MaxCutProblem.random(n, m, seed=rng)
    model = problem.to_ising()
    iters = int(rng.integers(30, 100))
    ours = InSituCimAnnealer(model, seed=seed).run(iters)
    base = DirectECimAnnealer(model, HardwareConfig.baseline_asic(), seed=seed).run(iters)
    assert base.annealing_energy > ours.annealing_energy
    assert base.annealing_time > ours.annealing_time


@relaxed
@given(seed=st.integers(0, 10_000), k=st.integers(1, 5))
def test_incremental_term_count_always_below_direct(seed, k):
    """(n−|F|)·|F| < n² for every valid configuration (the O(n) claim)."""
    from repro.core import num_product_terms

    rng = ensure_rng(seed)
    n = int(rng.integers(max(2, k), 5000))
    direct, inc = num_product_terms(n, min(k, n))
    assert inc < direct


@relaxed
@given(
    seed=st.integers(0, 10_000),
    v_bg=st.floats(0.0, VBG_MAX),
)
def test_factor_scaling_never_flips_sign(seed, v_bg):
    """E_inc has the sign of σ_rᵀJσ_c for every back-gate voltage."""
    rng = ensure_rng(seed)
    problem = MaxCutProblem.random(12, 30, seed=rng)
    xb = DgFefetCrossbar(problem.to_ising().J, seed=0)
    sigma = problem.to_ising().random_configuration(rng).astype(np.float64)
    i = int(rng.integers(12))
    sigma_c = np.zeros(12)
    sigma_c[i] = -sigma[i]
    sigma_r = sigma.copy()
    sigma_r[i] = 0.0
    at_max, _ = xb.compute_increment(sigma_r, sigma_c, VBG_MAX)
    at_vbg, _ = xb.compute_increment(sigma_r, sigma_c, float(v_bg))
    assert at_max * at_vbg >= -1e-15
    assert abs(at_vbg) <= abs(at_max) + 1e-12
