"""Tests for the command-line interface and the solve-API boundary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import solve_ising, solve_maxcut
from repro.ising import IsingModel, MaxCutProblem, generate_random, write_gset


@pytest.fixture
def instance_file(tmp_path):
    path = tmp_path / "toy.gset"
    write_gset(generate_random(40, 150, seed=3), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["generate", "out.gset"],
            ["solve", "in.gset"],
            ["compare", "in.gset"],
            ["curves"],
            ["suite"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_generate_and_solve(self, tmp_path, capsys):
        out = str(tmp_path / "gen.gset")
        assert main(["generate", out, "--nodes", "30", "--edges", "80", "--seed", "1"]) == 0
        assert main(["solve", out, "--iterations", "500", "--seed", "2"]) == 0
        printed = capsys.readouterr().out
        assert "best cut" in printed

    def test_generate_families(self, tmp_path):
        for family in ("random", "skew", "toroidal"):
            out = str(tmp_path / f"{family}.gset")
            code = main(
                ["generate", out, "--nodes", "36", "--edges", "60",
                 "--family", family, "--seed", "1"]
            )
            assert code == 0

    def test_solve_method_and_backend_selection(self, instance_file, capsys):
        """Every method × backend combination solves through the CLI."""
        for method in ("insitu", "sa", "mesa", "sb"):
            for backend in ("auto", "dense", "sparse", "packed"):
                code = main(
                    ["solve", instance_file, "--iterations", "400",
                     "--method", method, "--backend", backend, "--seed", "5"]
                )
                assert code == 0
        printed = capsys.readouterr().out
        assert "best cut" in printed

    def test_solve_rejects_unknown_backend(self, instance_file):
        with pytest.raises(SystemExit):
            main(["solve", instance_file, "--backend", "csr"])

    def test_solve_packed_backend_matches_sparse(self, instance_file, capsys):
        """--backend packed reports the identical cut as sparse (the
        bit-identity contract), including on the replica batch path."""
        outputs = []
        for backend in ("sparse", "packed"):
            code = main(
                ["solve", instance_file, "--iterations", "400", "--backend",
                 backend, "--replicas", "4", "--flips", "2", "--seed", "9"]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_solve_on_tiled_machine(self, instance_file, capsys):
        code = main(
            ["solve", instance_file, "--iterations", "300", "--tile-size",
             "16", "--backend", "sparse", "--seed", "5"]
        )
        assert code == 0
        assert "best cut" in capsys.readouterr().out

    def test_solve_with_reordering(self, instance_file, capsys):
        """Every reorder mode solves through the CLI and agrees on the cut.

        The instance's ±1 weights store exactly, so the reordered tiled
        runs must report the identical best cut as the unreordered one.
        """
        cuts = []
        for reorder in ("none", "rcm", "auto"):
            code = main(
                ["solve", instance_file, "--iterations", "300", "--tile-size",
                 "16", "--backend", "sparse", "--seed", "5",
                 "--reorder", reorder]
            )
            assert code == 0
            out = capsys.readouterr().out
            cuts.append(out.strip().splitlines()[-1])
        assert cuts[0] == cuts[1] == cuts[2]

    def test_solve_reorder_without_tiles_on_software_solver(self, instance_file):
        code = main(
            ["solve", instance_file, "--iterations", "300", "--method", "sa",
             "--reorder", "rcm", "--seed", "5"]
        )
        assert code == 0

    def test_solve_rejects_unknown_reorder(self, instance_file):
        with pytest.raises(SystemExit):
            main(["solve", instance_file, "--reorder", "zigzag"])

    def test_tile_size_rejected_for_non_insitu(self, instance_file, capsys):
        code = main(
            ["solve", instance_file, "--iterations", "300", "--tile-size",
             "16", "--method", "sa"]
        )
        assert code == 2
        assert "tile_size" in capsys.readouterr().err

    def test_solve_with_replicas(self, instance_file, capsys):
        """The replica-batch path through the CLI, with multi-flip moves."""
        for method in ("insitu", "sa"):
            code = main(
                ["solve", instance_file, "--iterations", "300", "--method",
                 method, "--replicas", "6", "--flips", "4", "--seed", "5"]
            )
            assert code == 0
        printed = capsys.readouterr().out
        assert "6 replicas" in printed
        assert "best cut" in printed
        assert "mean" in printed

    def test_solve_replicas_with_reorder_and_partition(self, instance_file, capsys):
        code = main(
            ["solve", instance_file, "--iterations", "300", "--replicas", "4",
             "--backend", "sparse", "--reorder", "rcm", "--partition",
             "--seed", "5"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "partition sizes" in printed

    def test_solve_sb_variants(self, instance_file, capsys):
        """Both SB flavours solve through the CLI; the solver line names
        the variant."""
        for variant, label in (("discrete", "dSB"), ("ballistic", "bSB")):
            code = main(
                ["solve", instance_file, "--iterations", "300", "--method",
                 "sb", "--sb-variant", variant, "--seed", "5"]
            )
            assert code == 0
            assert label in capsys.readouterr().out

    def test_solve_sb_with_replicas(self, instance_file, capsys):
        code = main(
            ["solve", instance_file, "--iterations", "300", "--method", "sb",
             "--replicas", "6", "--seed", "5"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "6 replicas" in printed
        assert "best cut" in printed

    def test_solve_sb_on_tiled_machine(self, instance_file, capsys):
        """SB accepts tile_size — including with replicas, which the flip
        path rejects — serving the matvec from the tiled behavioral MVM."""
        code = main(
            ["solve", instance_file, "--iterations", "300", "--method", "sb",
             "--tile-size", "16", "--backend", "sparse", "--seed", "5"]
        )
        assert code == 0
        code = main(
            ["solve", instance_file, "--iterations", "300", "--method", "sb",
             "--tile-size", "16", "--replicas", "4", "--reorder", "rcm",
             "--backend", "sparse", "--seed", "5"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "4 replicas" in printed

    def test_solve_sb_rejects_unknown_variant(self, instance_file):
        with pytest.raises(SystemExit):
            main(["solve", instance_file, "--method", "sb",
                  "--sb-variant", "goto"])

    def test_solve_replicas_rejected_for_mesa(self, instance_file, capsys):
        code = main(
            ["solve", instance_file, "--method", "mesa", "--replicas", "4"]
        )
        assert code == 2
        assert "batch engine" in capsys.readouterr().err

    def test_solve_replicas_rejected_with_tiles(self, instance_file, capsys):
        code = main(
            ["solve", instance_file, "--replicas", "4", "--tile-size", "16"]
        )
        assert code == 2
        assert "tile_size" in capsys.readouterr().err

    def test_solve_with_reference_and_partition(self, instance_file, capsys):
        code = main(
            ["solve", instance_file, "--iterations", "2000", "--reference",
             "--partition", "--method", "sa"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "reference cut" in printed
        assert "partition sizes" in printed

    def test_compare(self, instance_file, capsys):
        assert main(["compare", instance_file, "--iterations", "200"]) == 0
        printed = capsys.readouterr().out
        assert "CiM/FPGA" in printed
        assert "E ratio" in printed

    def test_curves_both_devices(self, capsys):
        assert main(["curves", "--device", "fefet", "--points", "5"]) == 0
        assert main(["curves", "--device", "dgfefet", "--points", "5"]) == 0
        printed = capsys.readouterr().out
        assert "Fig 2b" in printed
        assert "Fig 6b" in printed

    def test_suite_lists_30(self, capsys):
        assert main(["suite"]) == 0
        printed = capsys.readouterr().out
        assert "R800-0" in printed
        assert "T3000-2" in printed


class TestSolveBoundaryValidation:
    """The solve API fails with actionable errors, not deep-loop crashes."""

    @pytest.fixture
    def model(self):
        return IsingModel.random(12, seed=1)

    @pytest.fixture
    def problem(self):
        return MaxCutProblem.random(12, 30, seed=1)

    def test_unknown_method_raises_value_error(self, model):
        with pytest.raises(ValueError, match="unknown method 'annealinator'"):
            solve_ising(model, method="annealinator")

    def test_non_positive_iterations(self, model, problem):
        for bad in (0, -5):
            with pytest.raises(ValueError, match="iterations must be >= 1"):
                solve_ising(model, iterations=bad)
            with pytest.raises(ValueError, match="iterations must be >= 1"):
                solve_maxcut(problem, iterations=bad)

    def test_non_integer_iterations(self, model):
        with pytest.raises(ValueError, match="iterations must be an integer"):
            solve_ising(model, iterations="lots")
        with pytest.raises(ValueError, match="iterations must be an integer"):
            solve_ising(model, iterations=10.5)
        # integral floats and numpy ints are fine
        assert solve_ising(model, iterations=50.0, seed=0).iterations == 50
        assert solve_ising(model, iterations=np.int64(50), seed=0).iterations == 50

    def test_boolean_iterations_rejected(self, model, problem):
        """``iterations=True`` used to pass operator.index and run once."""
        for bad in (True, False):
            with pytest.raises(ValueError, match="iterations must be an integer"):
                solve_ising(model, iterations=bad)
            with pytest.raises(ValueError, match="iterations must be an integer"):
                solve_maxcut(problem, iterations=bad)

    def test_boolean_replicas_rejected(self, model):
        """Same bool trap for the replica-count boundary."""
        from repro.core import BatchDirectEAnnealer, BatchInSituAnnealer

        for engine in (BatchInSituAnnealer, BatchDirectEAnnealer):
            with pytest.raises(ValueError, match="replicas must be an integer"):
                engine(model, replicas=True)
            with pytest.raises(ValueError, match="replicas must be >= 1"):
                engine(model, replicas=0)
        with pytest.raises(ValueError, match="replicas must be an integer"):
            solve_ising(model, replicas=True)
        with pytest.raises(ValueError, match="replicas must be >= 1"):
            solve_ising(model, replicas=0)
        # the boundary check runs before method-specific dispatch — the SB
        # path must not re-admit the bool
        with pytest.raises(ValueError, match="replicas must be an integer"):
            solve_ising(model, method="sb", replicas=True)
        with pytest.raises(ValueError, match="replicas must be an integer"):
            solve_ising(model, replicas=2.5)

    def test_reference_cut_validated_at_boundary(self, problem):
        """Non-numeric reference cuts fail at the API, not downstream.

        ``reference_cut=True`` used to flow into the result object and
        silently act as a best-known cut of 1.0 in every normalised
        quantity; strings and NaN only exploded later inside
        ``normalized_cut``.
        """
        with pytest.raises(ValueError, match="reference_cut must be a number"):
            solve_maxcut(problem, reference_cut=True)
        with pytest.raises(ValueError, match="reference_cut must be a number"):
            solve_maxcut(problem, reference_cut="1516")
        with pytest.raises(ValueError, match="reference_cut must be a number"):
            solve_maxcut(problem, reference_cut=[40.0])
        with pytest.raises(ValueError, match="reference_cut must be finite"):
            solve_maxcut(problem, reference_cut=float("nan"))
        with pytest.raises(ValueError, match="reference_cut must be finite"):
            solve_maxcut(problem, reference_cut=float("inf"))
        # numeric values (including numpy scalars) pass through
        result = solve_maxcut(
            problem, iterations=50, seed=0, reference_cut=np.float64(40.0)
        )
        assert result.reference_cut == 40.0
        assert result.normalized_cut == result.best_cut / 40.0

    def test_boolean_iterations_rejected_at_engine_level(self, model):
        """run(True) on the engines themselves, not just the solve API."""
        from repro.core import DirectEAnnealer, InSituAnnealer, MesaAnnealer

        for engine in (InSituAnnealer, DirectEAnnealer, MesaAnnealer):
            with pytest.raises(ValueError, match="iterations must be an integer"):
                engine(model, seed=0).run(True)

    def test_boolean_flips_rejected_everywhere(self, model):
        """flips_per_iteration=True must not silently run single-flip."""
        for method in ("insitu", "sa", "mesa"):
            with pytest.raises(
                ValueError, match="flips_per_iteration must be an integer"
            ):
                solve_ising(model, method=method, flips_per_iteration=True)
        with pytest.raises(
            ValueError, match="flips_per_iteration must be an integer"
        ):
            solve_ising(model, replicas=3, flips_per_iteration=True)

    def test_empty_model_rejected(self):
        empty = IsingModel(np.zeros((0, 0)))
        with pytest.raises(ValueError, match="no spins"):
            solve_ising(empty)

    def test_non_model_rejected(self):
        with pytest.raises(ValueError, match="IsingModel"):
            solve_ising(np.zeros((4, 4)))

    def test_unknown_backend_raises(self, model, problem):
        with pytest.raises(ValueError, match="unknown backend 'csr'"):
            solve_ising(model, backend="csr")
        with pytest.raises(ValueError, match="unknown backend 'csr'"):
            solve_maxcut(problem, backend="csr")

    def test_boolean_tile_size_rejected(self, model, problem):
        """``tile_size=True`` must not silently run with 1-row tiles."""
        with pytest.raises(ValueError, match="tile_size must be an integer"):
            solve_ising(model, tile_size=True)
        with pytest.raises(ValueError, match="tile_size must be an integer"):
            solve_maxcut(problem, tile_size=True)

    def test_non_positive_tile_size_rejected(self, model, problem):
        for bad in (0, -4, 1):
            with pytest.raises(ValueError, match="tile_size must be >= 2"):
                solve_ising(model, tile_size=bad)
            with pytest.raises(ValueError, match="tile_size must be >= 2"):
                solve_maxcut(problem, tile_size=bad)

    def test_unknown_reorder_raises(self, model, problem):
        with pytest.raises(ValueError, match="unknown reorder 'zigzag'"):
            solve_ising(model, reorder="zigzag")
        with pytest.raises(ValueError, match="unknown reorder 'zigzag'"):
            solve_maxcut(problem, reorder="zigzag")
        # "degree" is an internal fallback strategy, not a public knob
        with pytest.raises(ValueError, match="unknown reorder 'degree'"):
            solve_ising(model, reorder="degree")

    def test_reorder_accepts_none_and_modes(self, model):
        for reorder in (None, "none", "rcm", "auto"):
            r = solve_ising(model, iterations=60, seed=2, reorder=reorder)
            assert r.iterations == 60

    def test_reorder_conflicts_with_explicit_permutation(self, model):
        perm = np.arange(model.num_spins)[::-1].copy()
        with pytest.raises(ValueError, match="not both"):
            solve_ising(model, reorder="rcm", permutation=perm)

    def test_backend_override_solves(self, model):
        r = solve_ising(model, iterations=100, seed=3, backend="sparse")
        assert r.best_energy <= r.energy + 1e-9
