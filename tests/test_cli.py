"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.ising import generate_random, write_gset


@pytest.fixture
def instance_file(tmp_path):
    path = tmp_path / "toy.gset"
    write_gset(generate_random(40, 150, seed=3), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["generate", "out.gset"],
            ["solve", "in.gset"],
            ["compare", "in.gset"],
            ["curves"],
            ["suite"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_generate_and_solve(self, tmp_path, capsys):
        out = str(tmp_path / "gen.gset")
        assert main(["generate", out, "--nodes", "30", "--edges", "80", "--seed", "1"]) == 0
        assert main(["solve", out, "--iterations", "500", "--seed", "2"]) == 0
        printed = capsys.readouterr().out
        assert "best cut" in printed

    def test_generate_families(self, tmp_path):
        for family in ("random", "skew", "toroidal"):
            out = str(tmp_path / f"{family}.gset")
            code = main(
                ["generate", out, "--nodes", "36", "--edges", "60",
                 "--family", family, "--seed", "1"]
            )
            assert code == 0

    def test_solve_with_reference_and_partition(self, instance_file, capsys):
        code = main(
            ["solve", instance_file, "--iterations", "2000", "--reference",
             "--partition", "--method", "sa"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "reference cut" in printed
        assert "partition sizes" in printed

    def test_compare(self, instance_file, capsys):
        assert main(["compare", instance_file, "--iterations", "200"]) == 0
        printed = capsys.readouterr().out
        assert "CiM/FPGA" in printed
        assert "E ratio" in printed

    def test_curves_both_devices(self, capsys):
        assert main(["curves", "--device", "fefet", "--points", "5"]) == 0
        assert main(["curves", "--device", "dgfefet", "--points", "5"]) == 0
        printed = capsys.readouterr().out
        assert "Fig 2b" in printed
        assert "Fig 6b" in printed

    def test_suite_lists_30(self, capsys):
        assert main(["suite"]) == 0
        printed = capsys.readouterr().out
        assert "R800-0" in printed
        assert "T3000-2" in printed
