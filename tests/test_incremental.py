"""Tests for the incremental-E transformation (paper Sec. 3.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    apply_flips,
    cross_term,
    decompose,
    delta_energy,
    flip_mask,
    incremental_vectors,
    num_product_terms,
)
from repro.ising import IsingModel
from repro.utils.rng import ensure_rng


class TestVectors:
    def test_flip_mask(self):
        mask = flip_mask(5, [1, 3])
        assert mask.tolist() == [0, 1, 0, 1, 0]

    def test_flip_mask_validation(self):
        with pytest.raises(IndexError):
            flip_mask(3, [3])
        with pytest.raises(ValueError):
            flip_mask(3, [1, 1])

    def test_apply_flips(self):
        sigma = np.array([1, -1, 1, -1], dtype=np.int8)
        mask = flip_mask(4, [0, 3])
        assert apply_flips(sigma, mask).tolist() == [-1, -1, 1, 1]

    def test_decompose_partitions_sigma_new(self):
        sigma = np.array([1, -1, 1, -1], dtype=np.int8)
        sigma_new, sigma_r, sigma_c = incremental_vectors(sigma, [1, 2])
        # σ_r + σ_c reassembles σ_new
        assert np.array_equal(sigma_r + sigma_c, sigma_new.astype(float))
        # σ_c non-zero exactly on the flip set, σ_r elsewhere
        assert np.flatnonzero(sigma_c).tolist() == [1, 2]
        assert np.flatnonzero(sigma_r).tolist() == [0, 3]

    def test_sigma_c_is_negated_original(self):
        sigma = np.array([1, -1, 1], dtype=np.int8)
        _, _, sigma_c = incremental_vectors(sigma, [0])
        assert sigma_c[0] == -1  # flipped value of +1

    def test_decompose_validates_shapes(self):
        with pytest.raises(ValueError):
            decompose(np.array([1, -1], dtype=np.int8), np.array([1, 0, 0]))


class TestDeltaEnergy:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000), data=st.data())
    def test_matches_model_delta(self, seed, data):
        """4 σ_rᵀJσ_c + 2 hᵀσ_c equals the direct energy difference."""
        rng = ensure_rng(seed)
        n = int(rng.integers(2, 14))
        model = IsingModel.random(n, with_fields=True, seed=rng)
        sigma = model.random_configuration(rng)
        k = data.draw(st.integers(1, n))
        flips = data.draw(
            st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
        )
        sigma_new = sigma.copy()
        sigma_new[flips] *= -1
        direct = model.energy(sigma_new) - model.energy(sigma)
        assert delta_energy(model, sigma, flips) == pytest.approx(direct, abs=1e-9)

    def test_cross_term_sparse_equals_dense(self, rng):
        model = IsingModel.random(10, seed=1)
        sigma = model.random_configuration(rng)
        _, sigma_r, sigma_c = incremental_vectors(sigma, [2, 7])
        dense = float(sigma_r @ model.J @ sigma_c)
        assert cross_term(model.J, sigma_r, sigma_c) == pytest.approx(dense)

    def test_cross_term_empty(self):
        J = np.zeros((4, 4))
        assert cross_term(J, np.ones(4), np.zeros(4)) == 0.0


class TestComplexity:
    def test_product_term_counts(self):
        direct, incremental = num_product_terms(100, 1)
        assert direct == 10_000
        assert incremental == 99

    def test_incremental_linear_in_n(self):
        """The paper's O(n²) → O(n) claim, literally."""
        for n in (100, 200, 400):
            _, inc = num_product_terms(n, 2)
            assert inc == (n - 2) * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            num_product_terms(0, 0)
        with pytest.raises(ValueError):
            num_product_terms(5, 6)
