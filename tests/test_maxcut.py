"""Tests for Max-Cut instances and their Ising embedding."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ising import MaxCutProblem
from repro.utils.rng import ensure_rng
from tests.conftest import brute_force_maxcut


class TestConstruction:
    def test_rejects_self_loops(self):
        with pytest.raises(ValueError, match="self loops"):
            MaxCutProblem(3, np.array([[0, 0]]))

    def test_rejects_duplicate_edges(self):
        with pytest.raises(ValueError, match="duplicate"):
            MaxCutProblem(3, np.array([[0, 1], [1, 0]]))

    def test_rejects_out_of_range_endpoints(self):
        with pytest.raises(ValueError, match="out of range"):
            MaxCutProblem(3, np.array([[0, 3]]))

    def test_rejects_bad_weights_shape(self):
        with pytest.raises(ValueError, match="weights"):
            MaxCutProblem(3, np.array([[0, 1]]), np.array([1.0, 2.0]))

    def test_empty_graph(self):
        p = MaxCutProblem(4, np.zeros((0, 2), dtype=int))
        assert p.num_edges == 0
        assert p.cut_value([1, 1, -1, -1]) == 0.0

    def test_degrees(self):
        p = MaxCutProblem(4, np.array([[0, 1], [0, 2], [0, 3]]))
        assert list(p.degrees()) == [3, 1, 1, 1]


class TestObjective:
    def test_triangle_cut_values(self):
        p = MaxCutProblem(3, np.array([[0, 1], [1, 2], [0, 2]]))
        assert p.cut_value([1, 1, 1]) == 0.0
        assert p.cut_value([1, -1, 1]) == 2.0

    def test_weighted_cut(self):
        p = MaxCutProblem(3, np.array([[0, 1], [1, 2]]), np.array([2.0, -1.0]))
        assert p.cut_value([1, -1, 1]) == pytest.approx(1.0)
        assert p.total_weight == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_energy_cut_bijection(self, seed):
        """cut(σ) = W_tot/2 − σᵀJσ for every configuration."""
        rng = ensure_rng(seed)
        n = int(rng.integers(4, 14))
        m = int(rng.integers(1, n * (n - 1) // 2 + 1))
        p = MaxCutProblem.random(n, m, weighted=bool(rng.integers(2)), seed=rng)
        model = p.to_ising()
        for _ in range(10):
            sigma = model.random_configuration(rng)
            assert p.cut_value(sigma) == pytest.approx(
                p.cut_from_energy(model.energy(sigma)), abs=1e-9
            )
            assert p.energy_from_cut(p.cut_value(sigma)) == pytest.approx(
                model.energy(sigma), abs=1e-9
            )

    def test_minimum_energy_is_maximum_cut(self, tiny_maxcut):
        model = tiny_maxcut.to_ising()
        _, e_min = model.brute_force_minimum()
        assert tiny_maxcut.cut_from_energy(e_min) == pytest.approx(
            brute_force_maxcut(tiny_maxcut)
        )

    def test_partition_covers_all_nodes(self, small_maxcut, rng):
        sigma = small_maxcut.to_ising().random_configuration(rng)
        left, right = small_maxcut.partition(sigma)
        assert len(left) + len(right) == small_maxcut.num_nodes
        assert set(left).isdisjoint(right)


class TestConversions:
    def test_adjacency_symmetric(self, small_maxcut):
        W = small_maxcut.adjacency()
        assert np.allclose(W, W.T)
        assert np.all(np.diag(W) == 0)
        assert W.sum() == pytest.approx(2 * small_maxcut.total_weight)

    def test_networkx_round_trip(self, small_maxcut):
        g = small_maxcut.to_networkx()
        back = MaxCutProblem.from_networkx(g)
        assert back.num_nodes == small_maxcut.num_nodes
        assert back.num_edges == small_maxcut.num_edges
        rng = ensure_rng(1)
        sigma = rng.choice(np.array([-1, 1], dtype=np.int8), small_maxcut.num_nodes)
        assert back.cut_value(sigma) == pytest.approx(small_maxcut.cut_value(sigma))

    def test_from_networkx_reads_weights(self):
        g = nx.Graph()
        g.add_weighted_edges_from([(0, 1, 3.0), (1, 2, -1.0)])
        p = MaxCutProblem.from_networkx(g)
        assert p.total_weight == pytest.approx(2.0)

    def test_ising_has_no_fields_and_quarter_weights(self, small_maxcut):
        model = small_maxcut.to_ising()
        assert not model.has_fields
        W = small_maxcut.adjacency()
        assert np.allclose(model.J, W / 4.0)
