"""Self-tests for the invariant linter (``tools/repro_lint``).

Each rule gets the four-way fixture treatment: a positive (the rule
fires), a negative (clean idiomatic code passes), a suppressed positive
(inline ``# repro-lint: disable=`` silences it), and an
unused-suppression check (a stale disable becomes an RPL000 finding).
The final gate test lints the real repository and requires zero
findings — the same invocation CI runs.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.repro_lint.config import LintConfig
from tools.repro_lint.engine import run_lint
from tools.repro_lint.reporters import render_json, render_text
from tools.repro_lint.rules import default_rules

REPO_ROOT = Path(__file__).resolve().parent.parent

# Built by concatenation so the engine's line-based suppression scanner
# does not read the fixture strings in *this* file as suppressions for
# this file's own (nonexistent) findings.
DISABLE = "# repro-lint" + ": disable="


def lint_tree(tmp_path: Path, files: dict[str, str], paths=None):
    """Write ``files`` (relative path -> source) under ``tmp_path``, lint."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    findings, _ = run_lint(paths or ["."], root=tmp_path)
    return findings


def codes(findings) -> list[str]:
    return [f.code for f in findings]


# ---------------------------------------------------------------- RPL001


class TestNoDensify:
    def test_toarray_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": "J = model.toarray()\n",
        })
        assert codes(findings) == ["RPL001"]
        assert findings[0].line == 1

    def test_dense_couplings_flagged_through_alias(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "from repro.core.coupling import dense_couplings as dc\n"
                "J = dc(model)\n"
            ),
        })
        assert codes(findings) == ["RPL001"]

    def test_asarray_on_coupling_name_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "import numpy as np\n"
                "J = np.asarray(model)\n"
            ),
        })
        assert codes(findings) == ["RPL001"]

    def test_asarray_on_plain_array_ok(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "import numpy as np\n"
                "x = np.asarray(values)\n"
            ),
        })
        assert findings == []

    def test_sparse_py_is_path_allowlisted(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/ising/sparse.py": "J = model.toarray()\n",
        })
        assert findings == []

    def test_suppressed_with_trailing_comment(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                f"J = model.toarray()  {DISABLE}RPL001\n"
            ),
        })
        assert findings == []

    def test_unused_suppression_reported(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                f"x = 1  {DISABLE}RPL001\n"
            ),
        })
        assert codes(findings) == ["RPL000"]


# ---------------------------------------------------------------- RPL002


class TestRngDiscipline:
    def test_legacy_global_call_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "import numpy as np\n"
                "x = np.random.rand(3)\n"
            ),
        })
        assert codes(findings) == ["RPL002"]
        assert "legacy" in findings[0].message

    def test_default_rng_outside_home_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "tests/test_x.py": (
                "import numpy as np\n"
                "rng = np.random.default_rng(0)\n"
            ),
        })
        assert codes(findings) == ["RPL002"]
        assert "ensure_rng" in findings[0].message

    def test_default_rng_inside_home_ok(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/utils/rng.py": (
                "import numpy as np\n"
                "rng = np.random.default_rng(0)\n"
            ),
        })
        assert findings == []

    def test_resolves_any_import_spelling(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "from numpy.random import default_rng\n"
                "rng = default_rng(0)\n"
            ),
        })
        assert codes(findings) == ["RPL002"]

    def test_generator_annotation_usage_ok(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "import numpy as np\n"
                "def f(rng):\n"
                "    assert isinstance(rng, np.random.Generator)\n"
                "    return np.random.SeedSequence(1)\n"
            ),
        })
        assert findings == []

    def test_comment_line_suppression(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "tests/test_x.py": (
                "import numpy as np\n"
                f"{DISABLE}RPL002\n"
                "rng = np.random.default_rng(0)\n"
            ),
        })
        assert findings == []


# ---------------------------------------------------------------- RPL003


class TestBoundaryValidation:
    def test_unvalidated_public_boundary_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/solver.py": (
                "def solve_thing(model, iterations=1000):\n"
                "    return run_all(model, int(iterations))\n"
            ),
        })
        assert codes(findings) == ["RPL003"]
        assert "iterations" in findings[0].message

    def test_check_count_satisfies(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/solver.py": (
                "from repro.utils.validation import check_count\n"
                "def solve_thing(model, iterations=1000):\n"
                "    iterations = check_count('iterations', iterations)\n"
                "    return run_all(model, iterations)\n"
            ),
        })
        assert findings == []

    def test_forwarding_to_validating_sink_satisfies(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/solver.py": (
                "def solve_wrapper(problem, iterations=1000):\n"
                "    return solve_ising(problem.to_ising(), iterations=iterations)\n"
            ),
        })
        assert findings == []

    def test_private_function_not_audited(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/solver.py": (
                "def _helper(model, iterations):\n"
                "    return iterations\n"
            ),
        })
        assert findings == []

    def test_engine_run_method_audited_everywhere_in_src(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/arch/machine.py": (
                "class Machine:\n"
                "    def run(self, iterations):\n"
                "        return loop(iterations)\n"
            ),
        })
        assert codes(findings) == ["RPL003"]

    def test_non_count_params_ignored(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/solver.py": (
                "def solve_thing(model, method='insitu'):\n"
                "    return dispatch(method)\n"
            ),
        })
        assert findings == []


# ---------------------------------------------------------------- RPL004


class TestReshapeScatterAlias:
    def test_reshape_scatter_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "g.reshape(-1)[flat] -= 2.0 * contrib\n"
            ),
        })
        assert codes(findings) == ["RPL004"]

    def test_ravel_scatter_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": "g.ravel()[flat] = 0.0\n",
        })
        assert codes(findings) == ["RPL004"]

    def test_reading_through_reshape_ok(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": "vals = g.reshape(-1)[flat]\n",
        })
        assert findings == []

    def test_non_flatten_reshape_ok(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": "g.reshape(4, 4)[0] = 1.0\n",
        })
        assert findings == []

    def test_suppressed_with_contiguity_audit(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "# Aliasing audited: g is allocated C-order above.\n"
                f"{DISABLE}RPL004\n"
                "g.reshape(-1)[flat] -= contrib\n"
            ),
        })
        assert findings == []

    def test_ufunc_at_through_reshape_flagged(self, tmp_path):
        """The packed backend's XOR-word scatter shape: ufunc.at through
        a flattening call mutates the base only when it aliases."""
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "import numpy as np\n"
                "np.bitwise_xor.at(words.reshape(-1), flat, masks)\n"
            ),
        })
        assert codes(findings) == ["RPL004"]

    def test_ufunc_at_through_ravel_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "import numpy as np\n"
                "np.add.at(g.ravel(), flat, contrib)\n"
            ),
        })
        assert codes(findings) == ["RPL004"]

    def test_ufunc_at_on_direct_array_ok(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "import numpy as np\n"
                "np.add.at(g, idx, contrib)\n"
            ),
        })
        assert findings == []

    def test_ufunc_at_suppressed_with_contiguity_audit(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "# Aliasing audited: words is C-contiguous by construction.\n"
                f"{DISABLE}RPL004\n"
                "np.bitwise_xor.at(words.reshape(-1), flat, masks)\n"
            ),
        })
        assert findings == []


# ---------------------------------------------------------------- RPL005


class TestUlpDrift:
    def test_np_power_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "import numpy as np\n"
                "p = np.power(alpha, ks)\n"
            ),
        })
        assert codes(findings) == ["RPL005"]

    def test_math_pow_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "import math\n"
                "p = math.pow(alpha, k)\n"
            ),
        })
        assert codes(findings) == ["RPL005"]

    def test_double_star_ok(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": "p = alpha ** ks\n",
        })
        assert findings == []


# ---------------------------------------------------------------- RPL006


PARITY_SOLVER = (
    "def solve_ising(model, method='insitu', iterations=1000, seed=None):\n"
    "    iterations = check_count('iterations', iterations)\n"
    "    return None\n"
    "def solve_maxcut(problem, method='insitu', iterations=1000, seed=None,\n"
    "                 reference_cut=None):\n"
    "    return solve_ising(problem, method, iterations=iterations, seed=seed)\n"
)

PARITY_CLI_OK = (
    "import argparse\n"
    "def build_parser():\n"
    "    parser = argparse.ArgumentParser()\n"
    "    sub = parser.add_subparsers()\n"
    "    solve = sub.add_parser('solve')\n"
    "    solve.add_argument('--method')\n"
    "    solve.add_argument('--iterations', type=int)\n"
    "    solve.add_argument('--seed', type=int)\n"
    "    solve.add_argument('--reference', action='store_true')\n"
    "    return parser\n"
)


class TestApiCliParity:
    def test_fully_wired_cli_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/solver.py": PARITY_SOLVER,
            "src/repro/cli.py": PARITY_CLI_OK,
        })
        assert findings == []

    def test_missing_flag_flagged_cross_file(self, tmp_path):
        cli = PARITY_CLI_OK.replace(
            "    solve.add_argument('--seed', type=int)\n", ""
        )
        findings = lint_tree(tmp_path, {
            "src/repro/core/solver.py": PARITY_SOLVER,
            "src/repro/cli.py": cli,
        })
        # Both solve functions take `seed`, so the knob is reported per
        # function, anchored at the solver (where the fix is specified).
        assert codes(findings) == ["RPL006", "RPL006"]
        assert all("--seed" in f.message for f in findings)
        assert all(f.path == "src/repro/core/solver.py" for f in findings)

    def test_flag_map_is_honoured(self, tmp_path):
        # reference_cut maps to --reference; removing that flag must fire.
        cli = PARITY_CLI_OK.replace(
            "    solve.add_argument('--reference', action='store_true')\n", ""
        )
        findings = lint_tree(tmp_path, {
            "src/repro/core/solver.py": PARITY_SOLVER,
            "src/repro/cli.py": cli,
        })
        assert codes(findings) == ["RPL006"]
        assert "--reference" in findings[0].message

    def test_missing_solve_subparser_is_reported(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/solver.py": PARITY_SOLVER,
            "src/repro/cli.py": "import argparse\n",
        })
        assert codes(findings) == ["RPL006"]
        assert "solve" in findings[0].message


# ---------------------------------------------------------------- RPL007


class TestPlanOwnership:
    def test_fold_and_layout_calls_flagged_in_library_code(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/arch/machine.py": (
                "work = model.with_ancilla()\n"
                "perm = reorder_permutation(work, 'rcm', tile_size=64)\n"
            ),
        })
        assert codes(findings) == ["RPL007", "RPL007"]
        assert "compile_plan" in findings[0].message

    def test_strip_helpers_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "result = _strip_ancilla(result)\n"
            ),
        })
        assert codes(findings) == ["RPL007"]

    def test_plan_module_owns_the_primitives(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/plan.py": (
                "work = model.with_ancilla()\n"
                "perm = reorder_permutation(work, 'rcm')\n"
                "result = _strip_ancilla(result)\n"
            ),
        })
        assert findings == []

    def test_tests_and_benchmarks_exempt(self, tmp_path):
        # Asserting fold/strip semantics requires calling them — the
        # ownership ban only applies to library code under src/.
        findings = lint_tree(tmp_path, {
            "tests/test_fold.py": "work = model.with_ancilla()\n",
            "benchmarks/bench_fold.py": (
                "perm = reorder_permutation(m, 'rcm', tile_size=64)\n"
            ),
        })
        assert findings == []

    def test_suppressed_with_ownership_audit(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/arch/machine.py": (
                "# Fold owned here: equivalence probe against the plan.\n"
                f"work = model.with_ancilla()  {DISABLE}RPL007\n"
            ),
        })
        assert findings == []

    def test_unused_suppression_reported(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/arch/machine.py": (
                f"work = model.fold()  {DISABLE}RPL007\n"
            ),
        })
        assert codes(findings) == ["RPL000"]


# ------------------------------------------------------------ engine/API


class TestEngine:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/bad.py": "def broken(:\n",
        })
        assert codes(findings) == ["RPL900"]

    def test_findings_sorted_and_multi_code_suppression(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/a.py": (
                "import numpy as np\n"
                "x = np.random.rand(3)\n"
                "J = model.toarray()\n"
            ),
            "src/repro/core/b.py": (
                "import numpy as np\n"
                "J = np.asarray(model); x = np.random.rand(2)"
                f"  {DISABLE}RPL001, RPL002\n"
            ),
        })
        assert codes(findings) == ["RPL002", "RPL001"]
        assert [f.path for f in findings] == ["src/repro/core/a.py"] * 2
        assert [f.line for f in findings] == [2, 3]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_lint(["nowhere"], root=tmp_path)

    def test_json_reporter_document(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text("J = model.toarray()\n")
        findings, scanned = run_lint(["src"], root=tmp_path)
        rules = default_rules(LintConfig())
        doc = json.loads(render_json(findings, scanned, rules))
        assert doc["clean"] is False
        assert doc["files_scanned"] == 1
        assert [f["code"] for f in doc["findings"]] == ["RPL001"]
        assert {r["code"] for r in doc["rules"]} == {
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
            "RPL007",
        }

    def test_text_reporter_clean_line(self):
        rules = default_rules(LintConfig())
        out = render_text([], 10, rules)
        assert out == "repro-lint: clean (10 files, 7 rules)"


# ----------------------------------------------------------------- gates


class TestRepositoryGate:
    def test_repository_lints_clean(self):
        # The exact contract CI enforces: zero findings, zero unused
        # suppressions, over the default lint targets.
        findings, scanned = run_lint(
            ["src", "benchmarks", "tests"], root=REPO_ROOT
        )
        assert scanned > 100
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_cli_exit_codes(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint",
             "src", "benchmarks", "tests"],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "repro-lint: clean" in proc.stdout

        (tmp_path / "dirty").mkdir()
        (tmp_path / "dirty" / "x.py").write_text("J = model.toarray()\n")
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", "dirty",
             "--root", str(tmp_path)],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "RPL001" in proc.stdout
