"""Tests for the flip-set proposal layer (`repro.core.proposal`).

The load-bearing contract is scan mode's "every spin proposed exactly once
per sweep".  The original implementation reshuffled early whenever
``n % flips != 0`` and silently dropped the permutation tail, so tail spins
were skipped in that sweep; these tests pin the fixed carry-over semantics
by counting visit multiplicity per aligned sweep window.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.proposal import FlipSelector, random_flip_sets, scan_order
from repro.utils.rng import ensure_rng


def collect(selector: FlipSelector, draws: int) -> np.ndarray:
    """Concatenate ``draws`` flip sets into one flat address stream."""
    return np.concatenate([selector.next() for _ in range(draws)])


class TestScanSweepContract:
    @pytest.mark.parametrize("n,flips", [(10, 3), (10, 7), (12, 5), (7, 2), (9, 4)])
    def test_every_spin_once_per_sweep_when_t_misdivides(self, n, flips):
        """The regression: ``n % flips != 0`` must not drop the tail.

        Over any aligned window of ``n`` consecutive proposed addresses,
        every spin appears exactly once.  The old code visited tail spins
        zero times in their sweep (and the head of the reshuffle twice in
        the window).
        """
        assert n % flips != 0  # the buggy regime
        rng = ensure_rng(5)
        sel = FlipSelector(n, flips, "scan", rng)
        sweeps = 12
        draws = -(-sweeps * n // flips)
        stream = collect(sel, draws)[: sweeps * n]
        visits = stream.reshape(sweeps, n)
        for window in visits:
            assert np.array_equal(np.sort(window), np.arange(n))

    @pytest.mark.parametrize("n,flips", [(10, 3), (9, 4), (6, 5), (5, 5)])
    def test_flip_sets_stay_duplicate_free(self, n, flips):
        rng = ensure_rng(11)
        sel = FlipSelector(n, flips, "scan", rng)
        for _ in range(200):
            out = sel.next()
            assert out.shape == (flips,)
            assert np.unique(out).size == flips

    def test_exact_division_is_a_clean_sweep_partition(self):
        """``n % flips == 0``: each sweep is a disjoint partition as before."""
        n, flips = 12, 4
        rng = ensure_rng(3)
        sel = FlipSelector(n, flips, "scan", rng)
        for _ in range(8):
            sweep = np.concatenate([sel.next() for _ in range(n // flips)])
            assert np.array_equal(np.sort(sweep), np.arange(n))

    def test_single_flip_rng_stream_unchanged(self):
        """t = 1 consumes one permutation per sweep, exactly as the seed."""
        n = 9
        sel = FlipSelector(n, 1, "scan", ensure_rng(21))
        rng = ensure_rng(21)
        expected = np.concatenate([rng.permutation(n) for _ in range(4)])
        stream = collect(sel, 4 * n)
        assert np.array_equal(stream, expected)

    def test_index_map_applies_after_carry(self):
        n, flips = 10, 3
        index_map = np.roll(np.arange(n), 4)
        a = FlipSelector(n, flips, "scan", ensure_rng(9))
        b = FlipSelector(
            n, flips, "scan", ensure_rng(9), index_map=index_map
        )
        for _ in range(40):
            assert np.array_equal(index_map[a.next()], b.next())


class TestScanOrderHelper:
    @pytest.mark.parametrize("n,flips,length", [(10, 3, 95), (8, 8, 40), (13, 6, 130)])
    def test_stream_contract(self, n, flips, length):
        stream = scan_order(n, flips, length, ensure_rng(2))
        assert stream.shape == (length,)
        # aligned n-windows each visit every spin exactly once
        full = stream[: (length // n) * n].reshape(-1, n)
        for window in full:
            assert np.array_equal(np.sort(window), np.arange(n))
        # consecutive flip-sized chunks are duplicate-free
        chunks = stream[: (length // flips) * flips].reshape(-1, flips)
        for chunk in chunks:
            assert np.unique(chunk).size == flips


class TestRandomFlipSets:
    @pytest.mark.parametrize("n,flips", [(20, 1), (20, 3), (6, 5), (4, 4)])
    def test_rows_are_unique_and_in_range(self, n, flips):
        out = random_flip_sets(ensure_rng(8), n, 500, flips)
        assert out.shape == (500, flips)
        assert out.min() >= 0 and out.max() < n
        assert all(np.unique(row).size == flips for row in out)

    def test_deterministic_given_rng(self):
        a = random_flip_sets(ensure_rng(4), 15, 100, 4)
        b = random_flip_sets(ensure_rng(4), 15, 100, 4)
        assert np.array_equal(a, b)


class TestValidation:
    def test_mode_and_flip_bounds(self):
        rng = ensure_rng(0)
        with pytest.raises(ValueError, match="proposal mode"):
            FlipSelector(5, 1, "walk", rng)
        for bad in (0, 6):
            with pytest.raises(ValueError, match="flips"):
                FlipSelector(5, bad, "scan", rng)

    def test_index_map_shape_checked(self):
        rng = ensure_rng(0)
        with pytest.raises(ValueError, match="index_map"):
            FlipSelector(5, 1, "scan", rng, index_map=np.arange(4))
