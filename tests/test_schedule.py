"""Tests for temperature / back-gate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConstantSchedule,
    FractionalFactor,
    GeometricSchedule,
    LinearSchedule,
    ReverseVbgSchedule,
    VbgStepSchedule,
)


class TestGeometric:
    def test_endpoints(self):
        s = GeometricSchedule(100, 10.0, 0.1)
        assert s.temperature(0) == pytest.approx(10.0)
        assert s.temperature(99) == pytest.approx(0.1, rel=1e-6)

    def test_monotone_decreasing(self):
        s = GeometricSchedule(50, 5.0, 0.5)
        profile = s.profile()
        assert np.all(np.diff(profile) <= 0)

    def test_clipped_at_t_end(self):
        s = GeometricSchedule(100, 10.0, 1.0, alpha=0.5)
        assert s.temperature(99) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GeometricSchedule(10, 1.0, 2.0)  # t_end > t_start
        with pytest.raises(ValueError):
            GeometricSchedule(10, 1.0, 0.1, alpha=1.5)
        with pytest.raises(IndexError):
            GeometricSchedule(10, 1.0, 0.1).temperature(10)


class TestLinearConstant:
    def test_linear_ramp(self):
        s = LinearSchedule(11, 10.0, 0.0)
        assert s.temperature(0) == 10.0
        assert s.temperature(10) == 0.0
        assert s.temperature(5) == pytest.approx(5.0)

    def test_constant(self):
        s = ConstantSchedule(5, 3.0)
        assert all(s.temperature(i) == 3.0 for i in range(5))

    def test_single_iteration_linear(self):
        assert LinearSchedule(1, 2.0).temperature(0) == 2.0


class TestVbgStepSchedule:
    def test_walks_down_the_grid(self):
        s = VbgStepSchedule(710, hold=10)
        profile = s.vbg_profile()
        assert profile[0] == pytest.approx(0.7)
        assert profile[-1] == pytest.approx(0.0)
        assert np.all(np.diff(profile) <= 1e-12)
        # levels change every `hold` iterations by one 10 mV step
        assert profile[9] == pytest.approx(0.7)
        assert profile[10] == pytest.approx(0.69)

    def test_holds_at_zero_after_bottom(self):
        """'Once V_BG reaches 0 V, it remains at zero' (Sec. 3.4)."""
        s = VbgStepSchedule(1000, hold=5)
        profile = s.vbg_profile()
        assert np.all(profile[71 * 5 :] == 0.0)

    def test_default_hold_spreads_walk(self):
        s = VbgStepSchedule(710)
        assert s.hold == 10
        assert s.vbg_profile()[-1] == pytest.approx(0.0)

    def test_temperature_consistent_with_factor_map(self):
        f = FractionalFactor()
        s = VbgStepSchedule(100, factor=f)
        for it in (0, 50, 99):
            expected = float(f.temperature_for_vbg(s.vbg(it)))
            assert s.temperature(it) == pytest.approx(expected)

    def test_dac_updates_counts_level_changes(self):
        s = VbgStepSchedule(710, hold=10)
        assert s.dac_updates() == 71  # 70 steps + initial set

    def test_short_run_truncates_walk(self):
        """An *explicit* hold takes the walk as given, truncation and all."""
        s = VbgStepSchedule(30, hold=10)
        profile = s.vbg_profile()
        assert profile[-1] == pytest.approx(0.7 - 0.02)

    @pytest.mark.parametrize("iterations", [1, 2, 3, 5, 17, 70, 71, 72, 710])
    def test_default_hold_always_reaches_v_end(self, iterations):
        """Regression: the default hold used to truncate short runs.

        With ``iterations < num_levels`` the old default (hold=1) walked
        only ``iterations`` of the 71 grid levels and never reached 0 V —
        silently violating the paper's "terminates when V_BG reaches 0 V"
        contract.  The default now compresses the grid instead, so every
        run length lands exactly on ``v_end`` (and starts at ``v_start``
        whenever there is room for more than one level).
        """
        s = VbgStepSchedule(iterations)
        profile = s.vbg_profile()
        assert profile.shape == (iterations,)
        assert profile[-1] == 0.0
        if iterations > 1:
            assert profile[0] == pytest.approx(0.7)
        assert np.all(np.diff(profile) <= 1e-12)
        # the temperature trace bottoms out with the voltage walk
        assert s.temperature(iterations - 1) == 0.0

    def test_compressed_walk_counts_dac_updates(self):
        """Every compressed level is a real DAC reprogramming."""
        for iterations in (1, 2, 5, 40):
            s = VbgStepSchedule(iterations)
            assert s.dac_updates() == iterations
        assert VbgStepSchedule(710).dac_updates() == 71

    def test_validation(self):
        with pytest.raises(ValueError):
            VbgStepSchedule(10, v_start=0.1, v_end=0.5)
        with pytest.raises(ValueError):
            VbgStepSchedule(10, hold=0)
        with pytest.raises(IndexError):
            VbgStepSchedule(10).vbg(10)


class TestReverseVbgSchedule:
    def test_walks_up(self):
        s = ReverseVbgSchedule(710, hold=10)
        profile = s.vbg_profile()
        assert profile[0] == pytest.approx(0.0)
        assert profile[-1] == pytest.approx(0.7)
        assert np.all(np.diff(profile) >= -1e-12)

    @pytest.mark.parametrize("iterations", [2, 5, 70])
    def test_short_default_run_reaches_v_start(self, iterations):
        """The compressed grid applies to the reverse walk too: a short
        default-hold run still spans 0 V → 0.7 V."""
        s = ReverseVbgSchedule(iterations)
        profile = s.vbg_profile()
        assert profile[0] == 0.0
        assert profile[-1] == pytest.approx(0.7)


class TestVectorisedProfiles:
    """``profile()`` / ``vbg_profile()`` are bit-identical to the loops.

    The built-in schedules override the base class's per-iteration
    ``profile()`` loop with vectorised evaluations; these pin that the
    fast path returns the *exact* floats of the scalar path for every
    schedule family (numpy pow vs Python pow differs in the last ulp, so
    this is a real constraint, kept by sharing one cached array — see
    ``GeometricSchedule._temperatures``).
    """

    SCHEDULES = [
        ConstantSchedule(37, 3.0),
        GeometricSchedule(100, 10.0, 0.1),
        GeometricSchedule(100, 10.0, 1.0, alpha=0.5),  # clipped at t_end
        GeometricSchedule(1, 2.0, 2.0),
        LinearSchedule(11, 10.0, 0.0),
        LinearSchedule(1, 2.0),
        VbgStepSchedule(710, hold=10),
        VbgStepSchedule(1000, hold=5),   # long tail held at 0 V
        VbgStepSchedule(30, hold=10),    # explicit hold, truncated walk
        VbgStepSchedule(9),              # compressed grid
        VbgStepSchedule(1),
        ReverseVbgSchedule(710, hold=10),
        ReverseVbgSchedule(25),
    ]

    @pytest.mark.parametrize(
        "schedule", SCHEDULES, ids=lambda s: f"{type(s).__name__}-{s.iterations}"
    )
    def test_profile_matches_temperature_loop(self, schedule):
        loop = np.array(
            [schedule.temperature(i) for i in range(schedule.iterations)]
        )
        profile = schedule.profile()
        assert profile.shape == loop.shape
        assert np.array_equal(profile, loop)

    @pytest.mark.parametrize(
        "schedule",
        [s for s in SCHEDULES if isinstance(s, VbgStepSchedule)],
        ids=lambda s: f"{type(s).__name__}-{s.iterations}",
    )
    def test_vbg_profile_matches_vbg_loop(self, schedule):
        loop = np.array([schedule.vbg(i) for i in range(schedule.iterations)])
        assert np.array_equal(schedule.vbg_profile(), loop)

    @pytest.mark.parametrize(
        "schedule",
        [s for s in SCHEDULES if isinstance(s, VbgStepSchedule)],
        ids=lambda s: f"{type(s).__name__}-{s.iterations}",
    )
    def test_dac_updates_matches_scalar_count(self, schedule):
        changes = sum(
            schedule.vbg(i) != schedule.vbg(i - 1)
            for i in range(1, schedule.iterations)
        )
        assert schedule.dac_updates() == changes + 1

    def test_geometric_temperature_is_cached_array_read(self):
        """Scalar reads come from the same cached array profile() copies
        (the bit-identity mechanism), and the copy protects the cache."""
        s = GeometricSchedule(50, 5.0, 0.5)
        profile = s.profile()
        profile[0] = -1.0  # a caller mutating the copy must not poison
        assert s.temperature(0) == 5.0
        assert s.profile()[0] == 5.0
