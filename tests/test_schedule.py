"""Tests for temperature / back-gate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConstantSchedule,
    FractionalFactor,
    GeometricSchedule,
    LinearSchedule,
    ReverseVbgSchedule,
    VbgStepSchedule,
)


class TestGeometric:
    def test_endpoints(self):
        s = GeometricSchedule(100, 10.0, 0.1)
        assert s.temperature(0) == pytest.approx(10.0)
        assert s.temperature(99) == pytest.approx(0.1, rel=1e-6)

    def test_monotone_decreasing(self):
        s = GeometricSchedule(50, 5.0, 0.5)
        profile = s.profile()
        assert np.all(np.diff(profile) <= 0)

    def test_clipped_at_t_end(self):
        s = GeometricSchedule(100, 10.0, 1.0, alpha=0.5)
        assert s.temperature(99) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GeometricSchedule(10, 1.0, 2.0)  # t_end > t_start
        with pytest.raises(ValueError):
            GeometricSchedule(10, 1.0, 0.1, alpha=1.5)
        with pytest.raises(IndexError):
            GeometricSchedule(10, 1.0, 0.1).temperature(10)


class TestLinearConstant:
    def test_linear_ramp(self):
        s = LinearSchedule(11, 10.0, 0.0)
        assert s.temperature(0) == 10.0
        assert s.temperature(10) == 0.0
        assert s.temperature(5) == pytest.approx(5.0)

    def test_constant(self):
        s = ConstantSchedule(5, 3.0)
        assert all(s.temperature(i) == 3.0 for i in range(5))

    def test_single_iteration_linear(self):
        assert LinearSchedule(1, 2.0).temperature(0) == 2.0


class TestVbgStepSchedule:
    def test_walks_down_the_grid(self):
        s = VbgStepSchedule(710, hold=10)
        profile = s.vbg_profile()
        assert profile[0] == pytest.approx(0.7)
        assert profile[-1] == pytest.approx(0.0)
        assert np.all(np.diff(profile) <= 1e-12)
        # levels change every `hold` iterations by one 10 mV step
        assert profile[9] == pytest.approx(0.7)
        assert profile[10] == pytest.approx(0.69)

    def test_holds_at_zero_after_bottom(self):
        """'Once V_BG reaches 0 V, it remains at zero' (Sec. 3.4)."""
        s = VbgStepSchedule(1000, hold=5)
        profile = s.vbg_profile()
        assert np.all(profile[71 * 5 :] == 0.0)

    def test_default_hold_spreads_walk(self):
        s = VbgStepSchedule(710)
        assert s.hold == 10
        assert s.vbg_profile()[-1] == pytest.approx(0.0)

    def test_temperature_consistent_with_factor_map(self):
        f = FractionalFactor()
        s = VbgStepSchedule(100, factor=f)
        for it in (0, 50, 99):
            expected = float(f.temperature_for_vbg(s.vbg(it)))
            assert s.temperature(it) == pytest.approx(expected)

    def test_dac_updates_counts_level_changes(self):
        s = VbgStepSchedule(710, hold=10)
        assert s.dac_updates() == 71  # 70 steps + initial set

    def test_short_run_truncates_walk(self):
        s = VbgStepSchedule(30, hold=10)
        profile = s.vbg_profile()
        assert profile[-1] == pytest.approx(0.7 - 0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            VbgStepSchedule(10, v_start=0.1, v_end=0.5)
        with pytest.raises(ValueError):
            VbgStepSchedule(10, hold=0)
        with pytest.raises(IndexError):
            VbgStepSchedule(10).vbg(10)


class TestReverseVbgSchedule:
    def test_walks_up(self):
        s = ReverseVbgSchedule(710, hold=10)
        profile = s.vbg_profile()
        assert profile[0] == pytest.approx(0.0)
        assert profile[-1] == pytest.approx(0.7)
        assert np.all(np.diff(profile) >= -1e-12)
