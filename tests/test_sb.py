"""Tests for the simulated-bifurcation solver family (:mod:`repro.core.sb`).

Three layers, mirroring the backend-equivalence suite's contract:

* the new ``matvec`` / ``batch_matvec`` coupling ops agree across the
  dense and CSR adapters — bit-for-bit when couplings *and* inputs are
  dyadic rationals (every sum exact in any order), allclose otherwise;
* the bSB/dSB engines are backend-transparent: fixed-seed trajectories
  on dyadic models coincide bit for bit between backends, under declared
  permutations, and on the tiled crossbar's behavioral MVM;
* the ``method="sb"`` dispatch returns the standard result shapes with
  self-consistent energies.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    SB_VARIANTS,
    SbEngine,
    coupling_ops,
    solve_ising,
    solve_maxcut,
    solve_sb,
)
from repro.core.reorder import Permutation
from repro.ising import IsingModel, MaxCutProblem, SparseIsingModel
from repro.utils.rng import ensure_rng

relaxed = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def dyadic_sparse_model(seed: int, with_fields: bool = False) -> SparseIsingModel:
    """Seeded random sparse model with exactly-representable couplings."""
    rng = ensure_rng(seed)
    n = int(rng.integers(6, 40))
    m = int(rng.integers(n, 3 * n))
    pairs = rng.choice(n * (n - 1) // 2, size=min(m, n * (n - 1) // 2), replace=False)
    rows, cols = np.triu_indices(n, k=1)
    r, c = rows[pairs], cols[pairs]
    vals = rng.integers(-8, 9, size=r.size) / 8.0
    keep = vals != 0
    h = rng.integers(-8, 9, size=n) / 8.0 if with_fields else None
    return SparseIsingModel.from_edges(
        n, r[keep], c[keep], vals[keep], h, offset=0.25, name=f"dyadic-{n}"
    )


def signed_problem(n: int, m: int, seed: int) -> MaxCutProblem:
    """A ±1-weighted Max-Cut instance (J = W/4 stores exactly)."""
    return MaxCutProblem.random(n, m, weighted=True, seed=seed)


# ----------------------------------------------------------------------
# Coupling-op parity: matvec / batch_matvec across backends
# ----------------------------------------------------------------------
class TestMatvecParity:
    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_dyadic_inputs_are_bit_identical(self, seed):
        """Dyadic couplings × dyadic inputs: every sum is exact, so the
        dense product and the CSR bincount SpMV agree bit for bit."""
        sparse = dyadic_sparse_model(seed)
        dense_ops = coupling_ops(sparse.to_dense())
        sparse_ops = coupling_ops(sparse)
        rng = ensure_rng(seed + 1)
        n = sparse.num_spins
        # spins and dyadic continuous positions (k/64 ∈ [-1, 1])
        for x in (
            rng.choice([-1.0, 1.0], size=n),
            rng.integers(-64, 65, size=n) / 64.0,
        ):
            assert np.array_equal(dense_ops.matvec(x), sparse_ops.matvec(x))
        X = rng.integers(-64, 65, size=(5, n)) / 64.0
        assert np.array_equal(
            dense_ops.batch_matvec(X), sparse_ops.batch_matvec(X)
        )

    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_float_inputs_are_allclose(self, seed):
        """Arbitrary float inputs: same mathematics, different summation
        order — backends agree to floating-point tolerance."""
        sparse = dyadic_sparse_model(seed)
        dense_ops = coupling_ops(sparse.to_dense())
        sparse_ops = coupling_ops(sparse)
        rng = ensure_rng(seed + 2)
        x = rng.normal(size=sparse.num_spins)
        assert np.allclose(
            dense_ops.matvec(x), sparse_ops.matvec(x), rtol=1e-12, atol=1e-12
        )
        X = rng.normal(size=(4, sparse.num_spins))
        assert np.allclose(
            dense_ops.batch_matvec(X), sparse_ops.batch_matvec(X),
            rtol=1e-12, atol=1e-12,
        )

    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_batch_rows_equal_single_matvec(self, seed):
        """batch_matvec is row-wise matvec, bit for bit, on both backends."""
        sparse = dyadic_sparse_model(seed)
        rng = ensure_rng(seed + 3)
        X = rng.integers(-64, 65, size=(4, sparse.num_spins)) / 64.0
        for ops in (coupling_ops(sparse), coupling_ops(sparse.to_dense())):
            batch = ops.batch_matvec(X)
            for r in range(X.shape[0]):
                assert np.array_equal(batch[r], ops.matvec(X[r]))

    def test_matvec_matches_local_fields_on_spins(self):
        """On ±1 inputs matvec is exactly the cached local-fields product."""
        model = dyadic_sparse_model(7)
        sigma = model.random_configuration(3).astype(np.float64)
        for ops in (coupling_ops(model), coupling_ops(model.to_dense())):
            assert np.array_equal(ops.matvec(sigma), ops.local_fields(sigma))


# ----------------------------------------------------------------------
# Engine: backend transparency and dynamics
# ----------------------------------------------------------------------
class TestSbEngine:
    @pytest.mark.parametrize("variant", ["discrete", "ballistic"])
    def test_dense_sparse_bit_identical(self, variant):
        """Fixed-seed trajectories coincide bit for bit across backends
        on a ±1-weighted instance (dyadic J = W/4)."""
        problem = signed_problem(48, 180, seed=5)
        dense = problem.to_ising(backend="dense")
        sparse = problem.to_ising(backend="sparse")
        rd = SbEngine(dense, replicas=4, variant=variant, seed=11).run(300)
        rs = SbEngine(sparse, replicas=4, variant=variant, seed=11).run(300)
        assert np.array_equal(rd.best_energies, rs.best_energies)
        assert np.array_equal(rd.best_sigmas, rs.best_sigmas)
        assert np.array_equal(rd.final_energies, rs.final_energies)
        assert np.array_equal(rd.final_sigmas, rs.final_sigmas)
        assert np.array_equal(rd.accepted, rs.accepted)

    @relaxed
    @given(
        seed=st.integers(0, 10_000),
        variant=st.sampled_from(["discrete", "ballistic"]),
    )
    def test_dyadic_models_bit_identical(self, seed, variant):
        """The hypothesis version of the backend-transparency contract,
        including external fields (gradient term 2Jx + h)."""
        sparse = dyadic_sparse_model(seed, with_fields=True)
        rd = SbEngine(sparse.to_dense(), replicas=2, variant=variant, seed=3).run(120)
        rs = SbEngine(sparse, replicas=2, variant=variant, seed=3).run(120)
        assert np.array_equal(rd.best_energies, rs.best_energies)
        assert np.array_equal(rd.best_sigmas, rs.best_sigmas)
        assert np.array_equal(rd.accepted, rs.accepted)

    def test_reported_energies_are_self_consistent(self):
        """Every reported energy reproduces from its configuration."""
        model = dyadic_sparse_model(21, with_fields=True)
        result = SbEngine(model, replicas=6, seed=2).run(200)
        for r in range(6):
            assert model.energy(result.best_sigmas[r]) == result.best_energies[r]
            assert model.energy(result.final_sigmas[r]) == result.final_energies[r]
        assert np.all(result.best_energies <= result.final_energies)
        assert np.all(result.accepted <= result.iterations)
        assert result.best_sigmas.dtype == np.int8

    def test_variant_aliases_and_label(self):
        model = dyadic_sparse_model(1)
        for alias, canonical, label in (
            ("bsb", "ballistic", "bSB"),
            ("dsb", "discrete", "dSB"),
        ):
            engine = SbEngine(model, variant=alias, seed=0)
            assert engine.variant == canonical
            assert engine.variant_label == label
            assert alias in SB_VARIANTS and canonical in SB_VARIANTS

    def test_variants_actually_differ(self):
        """bSB and dSB are different dynamics, not the same code path."""
        problem = signed_problem(40, 150, seed=9)
        model = problem.to_ising(backend="sparse")
        b = SbEngine(model, variant="ballistic", seed=4).run(200)
        d = SbEngine(model, variant="discrete", seed=4).run(200)
        assert not np.array_equal(b.final_sigmas, d.final_sigmas) or (
            b.accepted.tolist() != d.accepted.tolist()
        )

    def test_initial_configuration_seeding(self):
        model = dyadic_sparse_model(13)
        n = model.num_spins
        sigma = model.random_configuration(0)
        engine = SbEngine(model, replicas=3, seed=1)
        result = engine.run(50, initial=sigma)
        assert result.best_sigmas.shape == (3, n)
        # (R, n) stacks are accepted too
        stack = np.tile(sigma, (2, 1))
        SbEngine(model, replicas=2, seed=1).run(10, initial=stack)
        with pytest.raises(ValueError, match="shape"):
            SbEngine(model, replicas=2, seed=1).run(10, initial=sigma[:-1])
        with pytest.raises(ValueError, match="±1"):
            SbEngine(model, seed=1).run(10, initial=np.zeros(n))

    def test_validation(self):
        model = dyadic_sparse_model(2)
        with pytest.raises(ValueError, match="unknown variant 'goto'"):
            SbEngine(model, variant="goto")
        with pytest.raises(ValueError, match="replicas must be an integer"):
            SbEngine(model, replicas=True)
        with pytest.raises(ValueError, match="replicas must be >= 1"):
            SbEngine(model, replicas=0)
        with pytest.raises(ValueError, match="dt must be > 0"):
            SbEngine(model, dt=0.0)
        with pytest.raises(ValueError, match="a0 must be > 0"):
            SbEngine(model, a0=-1.0)
        with pytest.raises(ValueError, match="c0 must be > 0"):
            SbEngine(model, c0=0.0)
        with pytest.raises(ValueError, match="best_every must be an integer"):
            SbEngine(model, best_every=True)
        with pytest.raises(ValueError, match="iterations must be an integer"):
            SbEngine(model, seed=0).run(True)
        with pytest.raises(ValueError, match="no spins"):
            SbEngine(IsingModel(np.zeros((0, 0))))

    def test_auto_c0_is_backend_independent(self):
        model = dyadic_sparse_model(31)
        assert SbEngine(model, seed=0).c0 == SbEngine(model.to_dense(), seed=0).c0

    def test_auto_c0_falls_back_on_empty_couplings(self):
        empty = SparseIsingModel.from_edges(4, [], [], [])
        assert SbEngine(empty, seed=0).c0 == 1.0

    def test_explicit_matvec_override_is_used(self):
        """The matvec= hook really serves the inner loop."""
        model = dyadic_sparse_model(17)
        ops = coupling_ops(model)
        calls = []

        def counting(x):
            calls.append(x.shape)
            return ops.batch_matvec(x)

        base = SbEngine(model, replicas=2, seed=6).run(40)
        hooked = SbEngine(model, replicas=2, seed=6, matvec=counting).run(40)
        assert calls  # the hook was exercised
        assert np.array_equal(base.best_sigmas, hooked.best_sigmas)
        assert np.array_equal(base.best_energies, hooked.best_energies)

    @pytest.mark.parametrize("variant", ["discrete"])
    def test_declared_permutation_is_bit_identical(self, variant):
        """SB obeys the PR 3 transparency contract: solving a relabelled
        model with the relabelling declared coincides bit for bit (dSB:
        matvec inputs are ±1, so row sums are exact in any order)."""
        model = dyadic_sparse_model(41, with_fields=True)
        p = Permutation(ensure_rng(8).permutation(model.num_spins))
        base = SbEngine(model, replicas=3, variant=variant, seed=9).run(150)
        mapped = SbEngine(
            model.permuted(p), replicas=3, variant=variant, seed=9,
            permutation=p,
        ).run(150)
        assert np.array_equal(mapped.best_energies, base.best_energies)
        assert np.array_equal(mapped.best_sigmas, base.best_sigmas)
        assert np.array_equal(mapped.final_sigmas, base.final_sigmas)
        assert np.array_equal(mapped.accepted, base.accepted)


# ----------------------------------------------------------------------
# solve_sb / method="sb" dispatch
# ----------------------------------------------------------------------
class TestSolveSb:
    def test_single_run_result_shape(self):
        model = dyadic_sparse_model(3, with_fields=True)
        result = solve_sb(model, 100, seed=0)
        assert result.solver == "simulated bifurcation (dSB)"
        assert result.metadata["variant"] == "discrete"
        assert set(result.metadata) >= {"variant", "dt", "a0", "c0"}
        assert model.energy(result.best_sigma) == result.best_energy
        assert result.uphill_accepted == 0  # no Metropolis channel

    def test_batch_run_result_shape(self):
        model = dyadic_sparse_model(3)
        result = solve_sb(model, 100, seed=0, replicas=5)
        assert result.num_replicas == 5
        assert result.best_energies.shape == (5,)

    def test_solve_ising_dispatch_matches_solve_sb(self):
        model = dyadic_sparse_model(19)
        direct = solve_sb(model, 150, seed=4)
        via_api = solve_ising(model, method="sb", iterations=150, seed=4)
        assert via_api.best_energy == direct.best_energy
        assert np.array_equal(via_api.best_sigma, direct.best_sigma)

    def test_solve_maxcut_sb_both_backends(self):
        problem = signed_problem(40, 160, seed=1)
        results = {
            backend: solve_maxcut(
                problem, method="sb", iterations=200, seed=3, backend=backend
            )
            for backend in ("dense", "sparse")
        }
        d, s = results["dense"], results["sparse"]
        assert d.best_cut == s.best_cut
        assert np.array_equal(d.anneal.best_sigma, s.anneal.best_sigma)
        assert problem.cut_value(d.anneal.best_sigma) == d.best_cut

    def test_solve_maxcut_sb_replica_batch(self):
        problem = signed_problem(40, 160, seed=1)
        result = solve_maxcut(
            problem, method="sb", iterations=200, seed=3, replicas=6,
            backend="sparse",
        )
        assert result.best_cuts.shape == (6,)
        assert problem.cut_value(result.anneal.best_sigma) == result.best_cut

    def test_ballistic_variant_through_solve_api(self):
        model = dyadic_sparse_model(23)
        result = solve_ising(
            model, method="sb", iterations=100, seed=2, variant="ballistic"
        )
        assert result.solver == "simulated bifurcation (bSB)"

    def test_reorder_knob_is_bit_identical(self):
        """reorder="rcm" never changes the SB output (dSB, dyadic)."""
        model = dyadic_sparse_model(29, with_fields=True)
        base = solve_ising(model, method="sb", iterations=150, seed=7)
        reordered = solve_ising(
            model, method="sb", iterations=150, seed=7, reorder="rcm"
        )
        assert reordered.best_energy == base.best_energy
        assert reordered.accepted == base.accepted
        assert np.array_equal(reordered.best_sigma, base.best_sigma)


# ----------------------------------------------------------------------
# Tiled-crossbar SB: the behavioral MVM serves the inner loop
# ----------------------------------------------------------------------
class TestTiledSb:
    def test_crossbar_matvec_matches_stored_model(self):
        """TiledCrossbar's digitally-combined MVM equals the stored-image
        CSR SpMV bit for bit on spin inputs (dyadic stored values)."""
        from repro.arch.tiling import TiledCrossbar

        problem = signed_problem(50, 200, seed=8)
        model = problem.to_ising(backend="sparse")
        crossbar = TiledCrossbar(model, tile_size=16)
        ops = coupling_ops(crossbar.stored_model())
        rng = ensure_rng(0)
        x = rng.choice([-1.0, 1.0], size=model.num_spins)
        assert np.array_equal(crossbar.matvec(x), ops.matvec(x))
        X = rng.choice([-1.0, 1.0], size=(4, model.num_spins))
        assert np.array_equal(crossbar.batch_matvec(X), ops.batch_matvec(X))
        # 1-D input through the batch entry point delegates to matvec
        assert np.array_equal(crossbar.batch_matvec(x), crossbar.matvec(x))
        xc = rng.uniform(-1, 1, size=model.num_spins)
        assert np.allclose(crossbar.matvec(xc), ops.matvec(xc))

    @pytest.mark.parametrize("tile_size", [16, 25])
    def test_tiled_sb_equals_software_sb(self, tile_size):
        """±1 weights store exactly, so the tiled SB solve is bit-identical
        to the software solve — tile-size-invariant, like the flip path."""
        problem = signed_problem(50, 200, seed=8)
        base = solve_maxcut(
            problem, method="sb", iterations=300, seed=12, backend="sparse"
        )
        tiled = solve_maxcut(
            problem, method="sb", iterations=300, seed=12, backend="sparse",
            tile_size=tile_size,
        )
        assert tiled.best_cut == base.best_cut
        assert tiled.anneal.best_energy == base.anneal.best_energy
        assert tiled.anneal.accepted == base.anneal.accepted
        assert np.array_equal(tiled.anneal.best_sigma, base.anneal.best_sigma)

    def test_tiled_sb_replicas_and_reorder(self):
        problem = signed_problem(50, 200, seed=8)
        base = solve_maxcut(
            problem, method="sb", iterations=300, seed=12, backend="sparse",
            replicas=4,
        )
        for kwargs in ({"reorder": "rcm"}, {}):
            tiled = solve_maxcut(
                problem, method="sb", iterations=300, seed=12,
                backend="sparse", tile_size=16, replicas=4, **kwargs,
            )
            assert np.array_equal(tiled.best_cuts, base.best_cuts)
            assert np.array_equal(
                tiled.anneal.best_sigmas, base.anneal.best_sigmas
            )

    def test_tiled_sb_with_fields_strips_ancilla(self):
        """A fielded model folds through the ancilla spin and the returned
        configurations are in the caller's n-spin space.

        Single-magnitude weights (J ∈ ±1/4, h ∈ ±1/2 so the folded ancilla
        row is also ±1/4) keep the k-bit stored image exactly representable
        — the same story as the ±1-weighted G-sets — so the stored-image
        energies the tiled path reports equal the true model energies.
        """
        rng = ensure_rng(77)
        n = 30
        rows, cols = np.triu_indices(n, k=1)
        keep = rng.random(rows.size) < 0.15
        model = SparseIsingModel.from_edges(
            n, rows[keep], cols[keep],
            rng.choice([-0.25, 0.25], size=int(keep.sum())),
            rng.choice([-0.5, 0.5], size=n),
            name="fielded-single-magnitude",
        )
        single = solve_ising(model, method="sb", iterations=120, seed=5,
                             tile_size=8)
        assert single.best_sigma.shape == (n,)
        batch = solve_ising(model, method="sb", iterations=120, seed=5,
                            tile_size=8, replicas=3)
        assert batch.best_sigmas.shape == (3, n)
        # The fold pins the ancilla to +1 under a global-flip symmetry, so
        # the stripped configuration reproduces the reported energy on the
        # *original* fielded model (the stored image is exact: dyadic J).
        assert model.energy(single.best_sigma) == single.best_energy
        for r in range(3):
            assert model.energy(batch.best_sigmas[r]) == batch.best_energies[r]
