"""Tests for the DG FeFET crossbar: both backends, stats, nonidealities."""

from __future__ import annotations

import numpy as np
import pytest
from repro.circuits import DgFefetCrossbar
from repro.devices import VBG_MAX, VariationModel
from repro.ising import MaxCutProblem
from repro.utils.rng import ensure_rng


def make_problem(n=16, m=48, seed=1, weighted=False):
    return MaxCutProblem.random(n, m, weighted=weighted, seed=seed)


def increment_vectors(sigma, flips):
    sigma = np.asarray(sigma, dtype=np.float64)
    c = np.zeros_like(sigma)
    c[flips] = -sigma[flips]
    r = sigma.copy()
    r[flips] = 0.0
    return r, c


class TestBehavioralBackend:
    def test_matches_exact_arithmetic(self):
        p = make_problem()
        J = p.to_ising().J
        xb = DgFefetCrossbar(J, bits=4, backend="behavioral", seed=0)
        rng = ensure_rng(7)
        sigma = rng.choice([-1.0, 1.0], p.num_nodes)
        for t in (1, 2, 4):
            flips = rng.choice(p.num_nodes, t, replace=False)
            r, c = increment_vectors(sigma, flips)
            value, _ = xb.compute_increment(r, c, VBG_MAX)
            exact = float(r @ xb.matrix_hat @ c) * xb.factor(VBG_MAX)
            assert value == pytest.approx(exact, abs=1e-12)

    def test_factor_scales_value(self):
        p = make_problem()
        xb = DgFefetCrossbar(p.to_ising().J, seed=0)
        rng = ensure_rng(3)
        sigma = rng.choice([-1.0, 1.0], p.num_nodes)
        r, c = increment_vectors(sigma, [2])
        v_hi, _ = xb.compute_increment(r, c, VBG_MAX)
        v_lo, _ = xb.compute_increment(r, c, 0.3)
        if abs(v_hi) > 1e-12:
            assert abs(v_lo) < abs(v_hi)
            assert v_lo * v_hi >= 0  # same sign

    def test_factor_curve_normalised(self):
        xb = DgFefetCrossbar(make_problem().to_ising().J, seed=0)
        assert xb.factor(VBG_MAX) == pytest.approx(1.0)
        assert 0 <= xb.factor(0.0) < 0.1

    def test_empty_sigma_c_gives_zero(self):
        p = make_problem()
        xb = DgFefetCrossbar(p.to_ising().J, seed=0)
        zeros = np.zeros(p.num_nodes)
        ones = np.ones(p.num_nodes)
        value, stats = xb.compute_increment(ones, zeros, VBG_MAX)
        assert value == 0.0
        assert stats.adc_conversions == 0

    def test_input_validation(self):
        p = make_problem()
        xb = DgFefetCrossbar(p.to_ising().J, seed=0)
        bad = np.full(p.num_nodes, 0.5)
        ok = np.zeros(p.num_nodes)
        with pytest.raises(ValueError):
            xb.compute_increment(bad, ok, VBG_MAX)
        with pytest.raises(ValueError):
            xb.compute_increment(ok[:-1], ok, VBG_MAX)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            DgFefetCrossbar(make_problem().to_ising().J, backend="quantum")


class TestDeviceBackend:
    def test_close_to_behavioral_ideal(self):
        p = make_problem(n=20, m=80)
        J = p.to_ising().J
        xb_b = DgFefetCrossbar(J, backend="behavioral", seed=0)
        xb_d = DgFefetCrossbar(J, backend="device", seed=0)
        rng = ensure_rng(5)
        sigma = rng.choice([-1.0, 1.0], p.num_nodes)
        worst = 0.0
        for trial in range(10):
            flips = rng.choice(p.num_nodes, 1 + trial % 3, replace=False)
            r, c = increment_vectors(sigma, flips)
            vbg = float(rng.uniform(0.1, VBG_MAX))
            vb, _ = xb_b.compute_increment(r, c, vbg)
            vd, _ = xb_d.compute_increment(r, c, vbg)
            worst = max(worst, abs(vb - vd))
        # within a few percent of the typical coupling magnitude
        assert worst < 0.1 * np.abs(J[J != 0]).mean() * 4

    def test_quadratic_form_device(self):
        p = make_problem(n=16, m=40)
        J = p.to_ising().J
        xb_d = DgFefetCrossbar(J, backend="device", seed=0)
        rng = ensure_rng(9)
        sigma = rng.choice([-1.0, 1.0], p.num_nodes)
        value, stats = xb_d.compute_quadratic(sigma)
        exact = float(sigma @ xb_d.matrix_hat @ sigma)
        assert value == pytest.approx(exact, abs=0.15 * max(abs(exact), 1.0))
        assert stats.phases == 2

    def test_signed_matrix_uses_both_planes(self):
        p = make_problem(n=12, m=30, weighted=True)
        J = p.to_ising().J
        xb_d = DgFefetCrossbar(J, backend="device", seed=0)
        rng = ensure_rng(2)
        sigma = rng.choice([-1.0, 1.0], p.num_nodes)
        r, c = increment_vectors(sigma, [0, 5])
        vd, stats = xb_d.compute_increment(r, c, VBG_MAX)
        exact = float(r @ xb_d.matrix_hat @ c)
        assert vd == pytest.approx(exact, abs=0.3)
        # negative plane doubles the sensed columns
        assert stats.adc_conversions == stats.phases * 2 * xb_d.bits * 2

    def test_variation_perturbs_device_result(self):
        p = make_problem(n=16, m=60)
        J = p.to_ising().J
        ideal = DgFefetCrossbar(J, backend="device", seed=3)
        varied = DgFefetCrossbar(
            J, backend="device", seed=3, variation=VariationModel(vth_sigma=0.08)
        )
        rng = ensure_rng(4)
        sigma = rng.choice([-1.0, 1.0], p.num_nodes)
        diffs = []
        for i in range(6):
            r, c = increment_vectors(sigma, [i])
            vi, _ = ideal.compute_increment(r, c, 0.5)
            vv, _ = varied.compute_increment(r, c, 0.5)
            diffs.append(abs(vi - vv))
        assert max(diffs) > 0


class TestActivationStats:
    def test_incremental_counts(self):
        p = make_problem(n=16, m=48)
        xb = DgFefetCrossbar(p.to_ising().J, bits=4, seed=0)
        rng = ensure_rng(1)
        sigma = rng.choice([-1.0, 1.0], p.num_nodes)
        r, c = increment_vectors(sigma, [3])
        _, stats = xb.compute_increment(r, c, VBG_MAX)
        assert stats.phases == 2
        assert stats.adc_conversions == 2 * 1 * 4  # phases · |F| · k (pos only)
        assert stats.mux_slots == 2  # one slot per phase
        assert stats.sa_codes == stats.adc_conversions

    def test_full_activation_counts(self):
        p = make_problem(n=16, m=48)
        xb = DgFefetCrossbar(p.to_ising().J, bits=4, seed=0)
        rng = ensure_rng(1)
        sigma = rng.choice([-1.0, 1.0], p.num_nodes)
        _, stats = xb.compute_quadratic(sigma)
        assert stats.adc_conversions == 2 * 16 * 4
        assert stats.mux_slots == 2 * xb.adc.mux_ratio

    def test_toggle_accounting(self):
        p = make_problem(n=10, m=20)
        xb = DgFefetCrossbar(p.to_ising().J, seed=0)
        rng = ensure_rng(1)
        sigma = rng.choice([-1.0, 1.0], p.num_nodes)
        r, c = increment_vectors(sigma, [2])
        _, first = xb.compute_increment(r, c, VBG_MAX)
        _, repeat = xb.compute_increment(r, c, VBG_MAX)
        assert repeat.fg_toggles == 0
        assert repeat.dl_toggles == 0
        r2, c2 = increment_vectors(sigma, [5])
        _, moved = xb.compute_increment(r2, c2, VBG_MAX)
        assert moved.dl_toggles == 2  # column 2 released, column 5 driven

    def test_settle_time_positive(self):
        p = make_problem()
        xb = DgFefetCrossbar(p.to_ising().J, seed=0)
        rng = ensure_rng(1)
        sigma = rng.choice([-1.0, 1.0], p.num_nodes)
        r, c = increment_vectors(sigma, [0])
        _, stats = xb.compute_increment(r, c, VBG_MAX)
        assert stats.settle_time > 0

    def test_programming_summary(self):
        p = make_problem(n=8, m=12)
        xb = DgFefetCrossbar(p.to_ising().J, bits=4, seed=0)
        prog = xb.programming_summary()
        assert prog["cells"] == 2 * 4 * 8 * 8
        assert prog["energy"] > 0
        assert prog["programmed_ones"] == xb.quantized.cell_count()
