"""End-to-end integration tests across the full stack.

These exercise the complete pipeline the way the benches do: problem →
quantized crossbar → annealing machine → metrics, and check the cross-layer
consistency guarantees (software reference vs hardware machine, device vs
behavioural backend, paper-band cost ratios).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import reference_cut, success_rate
from repro.arch import DirectECimAnnealer, HardwareConfig, InSituCimAnnealer
from repro.core import (
    FractionalFactor,
    InSituAnnealer,
    VbgStepSchedule,
    solve_maxcut,
)
from repro.devices import VariationModel
from repro.ising import MaxCutProblem, QuboModel, build_instance, paper_instance_suite
from repro.utils.rng import ensure_rng
from tests.conftest import brute_force_maxcut


class TestSoftwareHardwareConsistency:
    def test_machine_tracks_software_on_ideal_array(self):
        """With an ideal behavioural array, the same seed and the same BG
        encoder, the machine's trajectory matches the software annealer run
        on the stored image — accept decisions are bit-identical."""
        prob = MaxCutProblem.random(24, 80, seed=4)
        model = prob.to_ising()
        machine = InSituCimAnnealer(model, use_encoder=True, seed=11)
        hw = machine.run(400)
        from repro.core import VbgEncoder

        encoder = VbgEncoder(machine.factor, transfer=machine.crossbar.factor)
        soft = InSituAnnealer(machine.hw_model, encoder=encoder, seed=11).run(400)
        assert hw.anneal.best_energy == pytest.approx(soft.best_energy, abs=1e-9)
        assert np.array_equal(hw.anneal.sigma, soft.sigma)

    def test_encoder_changes_little_on_ideal_curve(self):
        prob = MaxCutProblem.random(24, 80, seed=4)
        model = prob.to_ising()
        with_enc = InSituCimAnnealer(model, use_encoder=True, seed=11).run(400)
        without = InSituCimAnnealer(model, use_encoder=False, seed=11).run(400)
        # encoder quantisation may flip late accept decisions, but the
        # solution quality band must be the same
        cut_a = prob.cut_from_energy(with_enc.anneal.best_energy)
        cut_b = prob.cut_from_energy(without.anneal.best_energy)
        assert abs(cut_a - cut_b) <= 0.15 * max(cut_a, cut_b)

    def test_device_machine_solves_small_instance(self):
        prob = MaxCutProblem.random(14, 30, seed=6)
        model = prob.to_ising()
        machine = InSituCimAnnealer(model, backend="device", seed=2)
        result = machine.run(600)
        best = brute_force_maxcut(prob)
        cut = prob.cut_from_energy(result.anneal.best_energy)
        assert cut >= 0.9 * best

    def test_device_machine_with_variation_still_solves(self):
        prob = MaxCutProblem.random(14, 30, seed=6)
        model = prob.to_ising()
        machine = InSituCimAnnealer(
            model,
            backend="device",
            variation=VariationModel(vth_sigma=0.03, read_noise_sigma=0.01),
            seed=2,
        )
        result = machine.run(600)
        cut = prob.cut_from_energy(result.anneal.best_energy)
        assert cut >= 0.85 * brute_force_maxcut(prob)


class TestQuboPipeline:
    def test_qubo_to_machine_round_trip(self):
        """A QUBO with linear terms runs on hardware via the ancilla trick."""
        rng = ensure_rng(8)
        Q = rng.uniform(-1, 1, (10, 10))
        Q = (Q + Q.T) / 2
        np.fill_diagonal(Q, 0)
        qubo = QuboModel(Q, rng.uniform(-1, 1, 10))
        model = qubo.to_ising().with_ancilla()
        machine = InSituCimAnnealer(model, seed=3)
        result = machine.run(800)
        sigma = result.anneal.best_sigma
        # flip everything so the ancilla reads +1, energies are invariant
        if sigma[0] == -1:
            sigma = -sigma
        x = QuboModel.sigma_to_x(sigma[1:])
        # the machine's energy matches the QUBO objective on its own image
        assert machine.hw_model.energy(result.anneal.best_sigma) == pytest.approx(
            result.anneal.best_energy, abs=1e-6
        )
        assert qubo.value(x) <= qubo.value(np.zeros(10, dtype=np.int8)) + 1e-9


class TestPaperStoryEndToEnd:
    def test_group_800_separation(self):
        """One 800-node instance: in-situ ≈ solves at 700 iterations,
        direct-E SA lands measurably lower (the Fig 10 story)."""
        spec = [s for s in paper_instance_suite() if s.nodes == 800][0]
        prob = build_instance(spec)
        ref = reference_cut(prob, cache_path=None, restarts=1, iterations=30_000)
        ins = [
            solve_maxcut(prob, "insitu", spec.iterations, seed=s).best_cut
            for s in range(3)
        ]
        sa = [
            solve_maxcut(prob, "sa", spec.iterations, seed=s).best_cut
            for s in range(3)
        ]
        assert np.mean(ins) > np.mean(sa)
        assert success_rate(ins, ref) >= 2 / 3

    def test_torus_3000_reference_is_exact(self):
        spec = [s for s in paper_instance_suite() if s.nodes == 3000][0]
        prob = build_instance(spec)
        assert reference_cut(prob, cache_path=None) == 6000.0

    def test_energy_reduction_grows_with_n(self):
        """Fig 8a shape: the reduction ratio scales roughly with n."""
        ratios = {}
        for n, m in ((200, 1200), (400, 2400)):
            prob = MaxCutProblem.random(n, m, seed=9)
            model = prob.to_ising()
            r_in = InSituCimAnnealer(model, seed=1).run(150)
            r_as = DirectECimAnnealer(
                model, HardwareConfig.baseline_asic(), seed=1
            ).run(150)
            ratios[n] = r_as.annealing_energy / r_in.annealing_energy
        assert ratios[400] == pytest.approx(2 * ratios[200], rel=0.25)

    def test_time_reduction_near_mux_ratio(self):
        """Fig 9a shape: the time gain sits near the 8:1 mux ratio."""
        prob = MaxCutProblem.random(400, 2400, seed=9)
        model = prob.to_ising()
        r_in = InSituCimAnnealer(model, seed=1).run(150)
        r_fp = DirectECimAnnealer(model, HardwareConfig.baseline_fpga(), seed=1).run(150)
        assert 7.0 < r_fp.time / r_in.time < 9.0

    def test_exponent_unit_only_in_baselines(self):
        prob = MaxCutProblem.random(100, 500, seed=3)
        model = prob.to_ising()
        r_in = InSituCimAnnealer(model, seed=1).run(100)
        r_bl = DirectECimAnnealer(model, HardwareConfig.baseline_asic(), seed=1).run(100)
        assert "exponent" not in r_in.ledger.entries
        assert r_bl.anneal.exponent_evaluations > 0

    def test_published_schedule_walks_the_bg_grid(self):
        """The V_BG walk covers 0.7 → 0 V; the encoder may merge nearby
        levels where the device transfer curve is flat, but most of the 71
        grid levels are visited and the rail ends parked at the bottom."""
        factor = FractionalFactor()
        sched = VbgStepSchedule(710, factor=factor)
        prob = MaxCutProblem.random(50, 200, seed=5)
        machine = InSituCimAnnealer(prob.to_ising(), schedule=sched, seed=1)
        result = machine.run(710)
        assert 40 <= result.ledger.entries["bg_dac"].count <= 71
        ideal = InSituCimAnnealer(
            prob.to_ising(), schedule=VbgStepSchedule(710, factor=factor),
            use_encoder=False, seed=1,
        ).run(710)
        assert ideal.ledger.entries["bg_dac"].count == 71
