"""Tests for the result containers (AnnealResult, MaxCutResult, CimRunResult)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import Ledger
from repro.arch.result import CimRunResult
from repro.core import AnnealResult, MaxCutResult


def make_anneal(**overrides):
    defaults = dict(
        solver="test",
        sigma=np.array([1, -1], dtype=np.int8),
        energy=2.0,
        best_sigma=np.array([1, 1], dtype=np.int8),
        best_energy=1.0,
        iterations=100,
        accepted=40,
        uphill_accepted=10,
        uphill_proposals=30,
    )
    defaults.update(overrides)
    return AnnealResult(**defaults)


class TestAnnealResult:
    def test_acceptance_rate(self):
        assert make_anneal().acceptance_rate == pytest.approx(0.4)
        assert make_anneal(iterations=0).acceptance_rate == 0.0

    def test_summary_contains_key_numbers(self):
        text = make_anneal().summary()
        assert "test" in text
        assert "100 iterations" in text


class TestMaxCutResult:
    def test_normalized_and_success(self):
        res = MaxCutResult(make_anneal(), cut=80.0, best_cut=92.0, reference_cut=100.0)
        assert res.normalized_cut == pytest.approx(0.92)
        assert res.is_success() is True
        assert res.is_success(threshold=0.95) is False

    def test_without_reference(self):
        res = MaxCutResult(make_anneal(), cut=80.0, best_cut=92.0)
        assert res.normalized_cut is None
        assert res.is_success() is None
        assert "92" in res.summary()


class TestCimRunResult:
    def make(self):
        ledger = Ledger()
        ledger.add("adc", energy=4e-12, time=50e-9, count=8)
        ledger.add("program", energy=1e-11, time=0.0, count=100)
        ledger.add("logic", energy=2e-12, time=1e-9)
        return CimRunResult(label="machine", anneal=make_anneal(), ledger=ledger)

    def test_totals(self):
        res = self.make()
        assert res.energy == pytest.approx(1.6e-11)
        assert res.time == pytest.approx(51e-9)

    def test_programming_split(self):
        res = self.make()
        assert res.programming_energy == pytest.approx(1e-11)
        assert res.annealing_energy == pytest.approx(6e-12)
        assert res.annealing_time == res.time

    def test_per_iteration(self):
        res = self.make()
        assert res.energy_per_iteration == pytest.approx(1.6e-11 / 100)
        assert res.time_per_iteration == pytest.approx(51e-9 / 100)

    def test_no_program_entry(self):
        ledger = Ledger()
        ledger.add("adc", energy=1e-12)
        res = CimRunResult(label="m", anneal=make_anneal(), ledger=ledger)
        assert res.programming_energy == 0.0
        assert res.annealing_energy == res.energy

    def test_summary(self):
        assert "machine" in self.make().summary()
