"""Runtime API/CLI parity: every contracted knob must be CLI-reachable.

The static rule RPL006 checks the same contracts by walking the AST of
the contracted API modules and ``cli.py``; this test checks them against
the *live* objects (``inspect.signature`` vs the built argparse parser),
so a refactor that confuses the static pattern-match still cannot
silently drop a flag.  Both sides share the ``PARITY_CONTRACTS`` table
in ``tools.repro_lint.config`` — updating a contract is a one-file edit
that review sees.
"""

from __future__ import annotations

import argparse
import inspect

from repro.cli import build_parser
from repro.core.solver import solve_ising, solve_maxcut
from repro.serve.jobs import job_request
from repro.serve.service import service_config
from tools.repro_lint.config import (
    PARITY_CONTRACTS,
    PARITY_FUNCTIONS,
    SOLVER_KWARG_FLAGS,
)

#: Live callables for every function named in the contracts table (the
#: lookup below asserts the table and this registry cannot drift).
CONTRACT_CALLABLES = {
    "solve_ising": solve_ising,
    "solve_maxcut": solve_maxcut,
    "job_request": job_request,
    "service_config": service_config,
}


def _option_strings(subcommand: str) -> set[str]:
    """All ``--flag`` option strings of one CLI subcommand."""
    parser = build_parser()
    sub_parser = next(
        action.choices[subcommand]
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    flags: set[str] = set()
    for action in sub_parser._actions:
        flags.update(action.option_strings)
    return flags


def test_contract_functions_are_pinned():
    # The static rule and this test must audit the same functions, and
    # the legacy single-contract alias must keep naming the solve pair.
    contracted = {
        name for contract in PARITY_CONTRACTS for name in contract.functions
    }
    assert contracted == set(CONTRACT_CALLABLES)
    assert set(PARITY_FUNCTIONS) == {"solve_ising", "solve_maxcut"}


def test_every_contracted_kwarg_has_a_cli_flag():
    missing = []
    for contract in PARITY_CONTRACTS:
        flags = _option_strings(contract.subcommand)
        flag_map = dict(contract.flag_map)
        for name in contract.functions:
            fn = CONTRACT_CALLABLES[name]
            params = list(inspect.signature(fn).parameters.values())
            for param in params[contract.skip_leading:]:
                if param.kind is inspect.Parameter.VAR_KEYWORD:
                    continue
                if param.name in contract.cli_less:
                    continue
                expected = flag_map.get(
                    param.name, "--" + param.name.replace("_", "-")
                )
                if expected not in flags:
                    missing.append(
                        f"{name}({param.name}) -> {expected} "
                        f"[{contract.subcommand}]"
                    )
    assert not missing, (
        "contracted keyword(s) unreachable from the CLI: "
        + ", ".join(missing)
        + " — add the flag in cli.py or allowlist the kwarg in "
        "tools/repro_lint/config.py (PARITY_CONTRACTS) with a rationale"
    )


def test_engine_kwarg_flags_still_exist():
    # **solver_kwargs knobs the CLI exposes under bespoke flags: the
    # static rule cannot see them (they are not in the signatures), so
    # pin them here.
    flags = _option_strings("solve")
    for kwarg, flag in SOLVER_KWARG_FLAGS.items():
        assert flag in flags, (
            f"CLI flag {flag} (engine kwarg {kwarg!r}) disappeared from "
            "the solve subcommand"
        )


def test_allowlists_stay_minimal():
    # Every allowlist entry must still correspond to a live keyword of
    # its own contract's functions; stale entries hide parity breaks.
    for contract in PARITY_CONTRACTS:
        known_params = set()
        for name in contract.functions:
            known_params.update(
                inspect.signature(CONTRACT_CALLABLES[name]).parameters
            )
        for param, _ in contract.flag_map:
            assert param in known_params, (
                f"stale flag_map entry in {contract.subcommand!r} "
                f"contract: {param!r}"
            )
        for param in contract.cli_less:
            assert param in known_params, (
                f"stale cli_less entry in {contract.subcommand!r} "
                f"contract: {param!r}"
            )
