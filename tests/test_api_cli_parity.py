"""Runtime API/CLI parity: every solve knob must be CLI-reachable.

The static rule RPL006 checks the same contract by walking the AST of
``core/solver.py`` and ``cli.py``; this test checks it against the
*live* objects (``inspect.signature`` vs the built argparse parser), so
a refactor that confuses the static pattern-match still cannot silently
drop a flag.  Both sides share the allowlists in
``tools.repro_lint.config`` — updating the contract is a one-file edit
that review sees.
"""

from __future__ import annotations

import argparse
import inspect

from repro.cli import build_parser
from repro.core.solver import solve_ising, solve_maxcut
from tools.repro_lint.config import (
    PARITY_CLI_LESS,
    PARITY_FLAG_MAP,
    PARITY_FUNCTIONS,
    SOLVER_KWARG_FLAGS,
)

PARITY_CALLABLES = {"solve_ising": solve_ising, "solve_maxcut": solve_maxcut}


def _solve_option_strings() -> set[str]:
    """All ``--flag`` option strings of the ``solve`` subcommand."""
    parser = build_parser()
    solve_parser = next(
        action.choices["solve"]
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    flags: set[str] = set()
    for action in solve_parser._actions:
        flags.update(action.option_strings)
    return flags


def _expected_flag(param: str) -> str:
    """CLI flag a keyword argument maps to (mechanical or allowlisted)."""
    return PARITY_FLAG_MAP.get(param, "--" + param.replace("_", "-"))


def test_parity_functions_are_pinned():
    # The static rule and this test must audit the same functions.
    assert set(PARITY_FUNCTIONS) == set(PARITY_CALLABLES)


def test_every_solver_kwarg_has_a_cli_flag():
    flags = _solve_option_strings()
    missing = []
    for name, fn in PARITY_CALLABLES.items():
        params = list(inspect.signature(fn).parameters.values())
        for param in params[1:]:  # skip the model/problem positional
            if param.kind is inspect.Parameter.VAR_KEYWORD:
                continue
            if param.name in PARITY_CLI_LESS:
                continue
            if _expected_flag(param.name) not in flags:
                missing.append(f"{name}({param.name}) -> {_expected_flag(param.name)}")
    assert not missing, (
        "solver keyword(s) unreachable from `repro solve`: "
        + ", ".join(missing)
        + " — add the flag in cli.py or allowlist the kwarg in "
        "tools/repro_lint/config.py with a rationale"
    )


def test_engine_kwarg_flags_still_exist():
    # **solver_kwargs knobs the CLI exposes under bespoke flags: the
    # static rule cannot see them (they are not in the signatures), so
    # pin them here.
    flags = _solve_option_strings()
    for kwarg, flag in SOLVER_KWARG_FLAGS.items():
        assert flag in flags, (
            f"CLI flag {flag} (engine kwarg {kwarg!r}) disappeared from "
            "the solve subcommand"
        )


def test_allowlists_stay_minimal():
    # Every allowlist entry must still correspond to a live keyword;
    # stale entries hide real parity breaks.
    known_params = set()
    for fn in PARITY_CALLABLES.values():
        known_params.update(inspect.signature(fn).parameters)
    for param in PARITY_FLAG_MAP:
        assert param in known_params, f"stale PARITY_FLAG_MAP entry: {param!r}"
    for param in PARITY_CLI_LESS:
        assert param in known_params, f"stale PARITY_CLI_LESS entry: {param!r}"
