"""The solver service: boundary validation, batching, protocol, CLI.

Two invariants dominate: (1) every error crossing the serve boundary
names the offending job id with the solve API's message bodies, and
(2) every result the service hands back — packed into a block-stacked
batch or solved solo through the plan cache — is bit-identical to the
corresponding solo ``solve_ising`` call.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.core import solve_ising
from repro.ising import SparseIsingModel, generate_random, parse_gset, write_gset
from repro.serve import (
    MAX_JOB_REPLICAS,
    SolverService,
    job_request,
    service_config,
)
from repro.serve.protocol import request, start_server
from repro.serve.service import ServiceOverloadedError


def member(n, seed, offset=0.0):
    base = SparseIsingModel.random(n, degree=4.0, seed=seed)
    indptr, indices, data = base.csr_arrays()
    return SparseIsingModel(
        indptr, indices, np.sign(data) * 0.25, None, offset, f"m{n}s{seed}"
    )


class TestJobBoundary:
    def test_replica_cap_names_the_job(self):
        with pytest.raises(ValueError, match="job 'greedy'"):
            job_request("greedy", member(8, 1), replicas=MAX_JOB_REPLICAS + 1)
        try:
            job_request("greedy", member(8, 1), replicas=MAX_JOB_REPLICAS + 1)
        except ValueError as exc:
            assert f"at most {MAX_JOB_REPLICAS}" in str(exc)

    def test_non_pm1_initial_names_the_job(self):
        with pytest.raises(ValueError, match=r"job 'warm'.*must be ±1"):
            job_request("warm", member(8, 1), initial=np.zeros(8))

    def test_initial_shape_checked_against_replicas(self):
        good = np.ones((2, 8))
        job = job_request("ok", member(8, 1), replicas=2, initial=good)
        assert job.initial.shape == (2, 8)
        with pytest.raises(ValueError, match=r"\(2, 8\)"):
            job_request("bad", member(8, 1), replicas=2, initial=np.ones((3, 8)))

    def test_count_and_choice_messages_match_solve_api(self):
        with pytest.raises(ValueError, match="iterations must be"):
            job_request("j", member(8, 1), iterations=0)
        with pytest.raises(ValueError, match="unknown method"):
            job_request("j", member(8, 1), method="mesa")
        with pytest.raises(ValueError, match=r"flips_per_iteration must be in \[1, 8\]"):
            job_request("j", member(8, 1), flips_per_iteration=9)

    def test_sb_rejects_flip_and_initial_knobs(self):
        with pytest.raises(ValueError, match="only applies to methods"):
            job_request("j", member(8, 1), method="sb", flips_per_iteration=2)
        with pytest.raises(ValueError, match="only applies to methods"):
            job_request("j", member(8, 1), method="sb", initial=np.ones(8))

    def test_seed_must_be_serializable(self):
        with pytest.raises(ValueError, match="seed must be an integer"):
            job_request("j", member(8, 1), seed=np.random.Generator)
        job = job_request("j", member(8, 1), seed=np.int64(5))
        assert job.seed == 5 and isinstance(job.seed, int)


class TestService:
    def test_results_bit_identical_and_grouped(self):
        jobs = []
        expected = {}
        for i in range(6):
            jid = f"sa-{i}"
            jobs.append(job_request(
                jid, member(10 + i, 50 + i), method="sa", iterations=80,
                replicas=2, flips_per_iteration=2, seed=900 + i,
            ))
            expected[jid] = solve_ising(
                jobs[-1].model, method="sa", iterations=80, seed=900 + i,
                replicas=2, flips_per_iteration=2,
            )
        for i in range(3):
            jid = f"in-{i}"
            jobs.append(job_request(
                jid, member(9 + i, 70 + i), method="insitu", iterations=60,
                replicas=1, seed=300 + i,
            ))
            expected[jid] = solve_ising(
                jobs[-1].model, method="insitu", iterations=60, seed=300 + i,
                replicas=1,
            )
        jid = "sb-0"
        jobs.append(job_request(
            jid, member(12, 90), method="sb", iterations=40, replicas=2,
            seed=11,
        ))
        expected[jid] = solve_ising(
            jobs[-1].model, method="sb", iterations=40, seed=11, replicas=2,
        )

        async def run():
            config = service_config(gather_window=0.05)
            async with SolverService(config) as svc:
                results = await asyncio.gather(*(svc.submit(j) for j in jobs))
                return results, svc.stats()

        results, stats = asyncio.run(run())
        for job, res in zip(jobs, results):
            solo = expected[job.job_id]
            assert np.array_equal(solo.best_energies, res.best_energies)
            assert np.array_equal(solo.best_sigmas, res.best_sigmas)
            assert np.array_equal(solo.final_energies, res.final_energies)
            assert np.array_equal(solo.final_sigmas, res.final_sigmas)
            assert np.array_equal(solo.accepted, res.accepted)
        by_id = {r.job_id: r for r in results}
        # The six compatible SA jobs pack; so do the three insitu jobs;
        # SB always runs solo through the plan cache.
        assert all(by_id[f"sa-{i}"].packed for i in range(6))
        assert all(by_id[f"sa-{i}"].batch_size == 6 for i in range(6))
        assert all(by_id[f"in-{i}"].packed for i in range(3))
        assert not by_id["sb-0"].packed
        assert stats["jobs"] == len(jobs)
        assert stats["packed_jobs"] == 9
        assert stats["solo_jobs"] == 1
        assert stats["failed_jobs"] == 0

    def test_plan_cache_counters_surface_in_stats(self):
        m = member(10, 5)
        jobs = [
            job_request(f"rep-{i}", m, method="sb", iterations=20, seed=i)
            for i in range(3)
        ]

        async def run():
            async with SolverService() as svc:
                for job in jobs:
                    await svc.submit(job)
                return svc.stats()

        stats = asyncio.run(run())
        cache = stats["plan_cache"]
        assert cache["misses"] == 1
        assert cache["hits"] == 2
        assert cache["size"] == 1

    def test_warm_start_runs_solo_with_initial(self):
        m = member(10, 6)
        initial = np.ones(10)
        job = job_request(
            "warm", m, method="sa", iterations=30, seed=4, initial=initial
        )

        async def run():
            async with SolverService() as svc:
                return await svc.submit(job)

        res = asyncio.run(run())
        assert not res.packed
        assert res.best_energies.shape == (1,)

    def test_invalid_job_fails_its_future_only(self):
        good = job_request("fine", member(9, 7), method="sa", iterations=20,
                           seed=1)
        # Sneak an invalid flip rank past the boundary to prove per-job
        # failure isolation inside a batch (boundary normally rejects it).
        bad = job_request("doomed", member(9, 8), method="sa", iterations=20,
                          seed=2)
        object.__setattr__(bad, "flips_per_iteration", 20)

        async def run():
            async with SolverService(service_config(gather_window=0.05)) as svc:
                futs = await asyncio.gather(
                    svc.submit(good), svc.submit(bad), return_exceptions=True
                )
                return futs, svc.stats()

        (good_res, bad_res), stats = asyncio.run(run())
        assert good_res.job_id == "fine"
        assert isinstance(bad_res, ValueError)
        assert stats["failed_jobs"] == 1

    def test_submit_nowait_sheds_load_when_queue_full(self):
        jobs = [
            job_request(f"q-{i}", member(8, i), method="sa", iterations=10,
                        seed=i)
            for i in range(3)
        ]

        async def run():
            gate = threading.Event()
            config = service_config(max_queue=1, gather_window=0.0)
            svc = SolverService(config)
            solve_batch = svc._solve_batch
            svc._solve_batch = lambda batch: (gate.wait(5), solve_batch(batch))[1]
            async with svc:
                t1 = asyncio.ensure_future(svc.submit(jobs[0]))
                await asyncio.sleep(0.05)  # scheduler now blocked in the gate
                t2 = asyncio.ensure_future(svc.submit(jobs[1]))
                await asyncio.sleep(0.05)  # fills the depth-1 queue
                with pytest.raises(ServiceOverloadedError, match="job 'q-2'"):
                    await svc.submit_nowait(jobs[2])
                gate.set()
                await asyncio.gather(t1, t2)

        asyncio.run(run())

    def test_submit_outside_lifecycle_is_rejected(self):
        job = job_request("late", member(8, 1), iterations=10)

        async def run():
            svc = SolverService()
            with pytest.raises(RuntimeError, match="job 'late'"):
                await svc.submit(job)

        asyncio.run(run())


class _ServerThread:
    """A live service + TCP endpoint on an ephemeral port, off-thread."""

    def __init__(self) -> None:
        self.port: int | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        assert self._ready.wait(10), "server thread did not come up"
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10)

    def _run(self) -> None:
        async def main_() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            async with SolverService() as service:
                server = await start_server(service, "127.0.0.1", 0)
                self.port = server.sockets[0].getsockname()[1]
                self._ready.set()
                async with server:
                    await self._stop.wait()

        asyncio.run(main_())


GSET_TEXT = "4 4\n1 2 1\n2 3 1\n3 4 1\n4 1 1\n"


class TestProtocolAndCli:
    def test_protocol_round_trip(self):
        with _ServerThread() as server:
            assert request({"op": "ping"}, port=server.port) == {"ok": True}
            solve = request({
                "op": "solve", "job_id": "wire", "gset": GSET_TEXT,
                "method": "sa", "iterations": 50, "replicas": 2, "seed": 9,
            }, port=server.port)
            assert solve["ok"] and solve["job_id"] == "wire"
            problem = parse_gset(GSET_TEXT)
            solo = solve_ising(
                problem.to_ising(backend="auto"), method="sa",
                iterations=50, seed=9, replicas=2,
            )
            best = int(np.argmin(solo.best_energies))
            assert solve["best_energy"] == float(solo.best_energies[best])
            assert solve["best_cut"] == float(
                problem.cut_from_energy(float(solo.best_energies[best]))
            )
            assert solve["best_sigma"] == [
                int(s) for s in solo.best_sigmas[best]
            ]
            stats = request({"op": "stats"}, port=server.port)
            assert stats["ok"] and stats["stats"]["jobs"] == 1
            bad = request({"op": "warp"}, port=server.port)
            assert not bad["ok"] and "unknown op" in bad["error"]
            invalid = request({
                "op": "solve", "job_id": "broken", "gset": GSET_TEXT,
                "iterations": 0,
            }, port=server.port)
            assert not invalid["ok"] and "job 'broken'" in invalid["error"]

    def test_cli_submit_and_stats(self, tmp_path, capsys):
        path = tmp_path / "toy.gset"
        write_gset(generate_random(20, 60, seed=2), path)
        with _ServerThread() as server:
            rc = main([
                "submit", str(path), "--port", str(server.port),
                "--method", "sa", "--iterations", "100", "--seed", "3",
                "--replicas", "2", "--job-id", "cli-job",
            ])
            assert rc == 0
            out = capsys.readouterr().out
            assert "cli-job: best_cut=" in out
            assert main(["submit", "--stats", "--port", str(server.port)]) == 0
            out = capsys.readouterr().out
            assert "jobs: 1" in out
            assert "plan_cache:" in out
            rc = main([
                "submit", str(path), "--port", str(server.port),
                "--iterations", "0",
            ])
            assert rc == 2

    def test_cli_submit_requires_instance_or_stats(self, capsys):
        assert main(["submit", "--port", "1"]) == 2
        assert "instance" in capsys.readouterr().err
