"""Tests for the scaling study utilities and remaining report paths."""

from __future__ import annotations

import pytest

from repro.analysis.scaling import ScalingPoint, fitted_exponent, measure_scaling


class TestScalingPoint:
    def make(self, n=100):
        return ScalingPoint(
            nodes=n,
            edges=n * 6,
            insitu_energy_per_iter=4e-12,
            fpga_energy_per_iter=2e-9,
            asic_energy_per_iter=4e-10,
            insitu_time_per_iter=5e-8,
            baseline_time_per_iter=4e-7,
        )

    def test_reductions(self):
        p = self.make()
        assert p.energy_reduction_fpga == pytest.approx(500.0)
        assert p.energy_reduction_asic == pytest.approx(100.0)
        assert p.time_reduction == pytest.approx(8.0)


class TestMeasureScaling:
    def test_small_sweep(self):
        points = measure_scaling(sizes=(50, 100), iterations=40, seed=1)
        assert [p.nodes for p in points] == [50, 100]
        # baseline cost roughly doubles with n; ours stays put
        assert points[1].asic_energy_per_iter == pytest.approx(
            2 * points[0].asic_energy_per_iter, rel=0.25
        )
        assert points[1].insitu_energy_per_iter == pytest.approx(
            points[0].insitu_energy_per_iter, rel=0.25
        )

    def test_fitted_exponent(self):
        points = measure_scaling(sizes=(50, 100, 200), iterations=40, seed=1)
        assert 0.7 < fitted_exponent(points, "asic_energy_per_iter") < 1.3
        assert fitted_exponent(points, "insitu_energy_per_iter") < 0.3

    def test_fitted_exponent_validation(self):
        points = measure_scaling(sizes=(50,), iterations=20, seed=1)
        with pytest.raises(ValueError):
            fitted_exponent(points, "asic_energy_per_iter")
