"""Tests for the software annealers: in-situ (Algorithm 1), SA, MESA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConstantSchedule,
    DirectEAnnealer,
    InSituAnnealer,
    MesaAnnealer,
    estimate_temperature_range,
    solve_ising,
    solve_maxcut,
)
from repro.core.proposal import FlipSelector
from repro.ising import IsingModel
from repro.utils.rng import ensure_rng
from tests.conftest import brute_force_maxcut


class TestFlipSelector:
    def test_scan_covers_every_spin_once_per_sweep(self):
        rng = ensure_rng(0)
        sel = FlipSelector(10, 1, "scan", rng)
        seen = [int(sel.next()[0]) for _ in range(10)]
        assert sorted(seen) == list(range(10))

    def test_scan_reshuffles_between_sweeps(self):
        rng = ensure_rng(0)
        sel = FlipSelector(50, 1, "scan", rng)
        first = [int(sel.next()[0]) for _ in range(50)]
        second = [int(sel.next()[0]) for _ in range(50)]
        assert sorted(first) == sorted(second)
        assert first != second

    def test_random_mode_bounds(self):
        rng = ensure_rng(0)
        sel = FlipSelector(7, 3, "random", rng)
        for _ in range(20):
            flips = sel.next()
            assert len(set(flips.tolist())) == 3
            assert all(0 <= f < 7 for f in flips)

    def test_validation(self):
        rng = ensure_rng(0)
        with pytest.raises(ValueError):
            FlipSelector(5, 6, "scan", rng)
        with pytest.raises(ValueError):
            FlipSelector(5, 1, "sorted", rng)


class TestInSituAnnealer:
    def test_energy_bookkeeping_consistent(self, small_model):
        annealer = InSituAnnealer(small_model, seed=3)
        result = annealer.run(500)
        assert result.energy == pytest.approx(small_model.energy(result.sigma), abs=1e-6)
        assert result.best_energy == pytest.approx(
            small_model.energy(result.best_sigma), abs=1e-6
        )
        assert result.best_energy <= result.energy + 1e-9

    def test_reaches_small_instance_optimum(self, tiny_maxcut):
        result = solve_maxcut(tiny_maxcut, method="insitu", iterations=3000, seed=5)
        assert result.best_cut == pytest.approx(brute_force_maxcut(tiny_maxcut))

    def test_deterministic_given_seed(self, small_maxcut):
        a = solve_maxcut(small_maxcut, method="insitu", iterations=500, seed=9)
        b = solve_maxcut(small_maxcut, method="insitu", iterations=500, seed=9)
        assert a.best_cut == b.best_cut
        assert np.array_equal(a.anneal.sigma, b.anneal.sigma)

    def test_trace_recording(self, small_model):
        result = InSituAnnealer(small_model, record_trace=True, seed=1).run(200)
        assert result.energy_trace.shape == (200,)
        assert result.best_trace.shape == (200,)
        assert np.all(np.diff(result.best_trace) <= 1e-12)
        assert result.energy_trace[-1] == pytest.approx(result.energy)

    def test_handles_multi_flip(self, small_model):
        result = InSituAnnealer(small_model, flips_per_iteration=3, seed=2).run(300)
        assert result.energy == pytest.approx(small_model.energy(result.sigma), abs=1e-6)

    def test_initial_configuration_respected(self, small_model):
        init = np.ones(small_model.num_spins, dtype=np.int8)
        annealer = InSituAnnealer(small_model, seed=1)
        result = annealer.run(1, initial=init)
        # after one iteration at most one flip set (1 spin) differs
        assert np.count_nonzero(result.sigma != init) <= 1

    def test_iteration_hook_called(self, small_model):
        calls = []
        annealer = InSituAnnealer(
            small_model,
            seed=1,
            iteration_hook=lambda it, de, acc, t: calls.append((it, acc)),
        )
        annealer.run(50)
        assert len(calls) == 50
        assert calls[0][0] == 0

    def test_acceptance_scale_validation(self, small_model):
        with pytest.raises(ValueError):
            InSituAnnealer(small_model, acceptance_scale=-1.0)

    def test_flip_count_validation(self, small_model):
        with pytest.raises(ValueError):
            InSituAnnealer(small_model, flips_per_iteration=0)

    def test_schedule_length_mismatch_rejected(self, small_model):
        sched = ConstantSchedule(10, 1.0)
        annealer = InSituAnnealer(small_model, schedule=sched, seed=0)
        with pytest.raises(ValueError, match="schedule"):
            annealer.run(20)

    def test_exponent_evaluations_zero(self, small_model):
        """The whole point: no e^x hardware in the in-situ flow."""
        result = InSituAnnealer(small_model, seed=1).run(200)
        assert result.exponent_evaluations == 0

    def test_field_model_handled(self):
        model = IsingModel.random(10, with_fields=True, seed=4)
        result = InSituAnnealer(model, seed=1).run(400)
        assert result.energy == pytest.approx(model.energy(result.sigma), abs=1e-6)


class TestDirectEAnnealer:
    def test_energy_bookkeeping_consistent(self, small_model):
        result = DirectEAnnealer(small_model, seed=3).run(500)
        assert result.energy == pytest.approx(small_model.energy(result.sigma), abs=1e-6)

    def test_reaches_small_instance_optimum(self, tiny_maxcut):
        result = solve_maxcut(tiny_maxcut, method="sa", iterations=4000, seed=2)
        assert result.best_cut == pytest.approx(brute_force_maxcut(tiny_maxcut))

    def test_counts_exponent_evaluations(self, small_model):
        result = DirectEAnnealer(small_model, seed=1).run(500)
        assert result.exponent_evaluations == result.uphill_proposals
        assert result.exponent_evaluations > 0

    def test_zero_temperature_is_greedy(self, small_maxcut):
        model = small_maxcut.to_ising()
        sched = ConstantSchedule(300, 1e-12)
        result = DirectEAnnealer(model, schedule=sched, seed=1).run(300)
        assert result.uphill_accepted == 0

    def test_hot_temperature_accepts_most(self, small_maxcut):
        model = small_maxcut.to_ising()
        sched = ConstantSchedule(300, 1e6)
        result = DirectEAnnealer(model, schedule=sched, seed=1).run(300)
        assert result.acceptance_rate > 0.95

    def test_temperature_autotuning(self, small_maxcut):
        model = small_maxcut.to_ising()
        t0, t1 = estimate_temperature_range(model, seed=1)
        assert t0 > t1 > 0

    def test_autotune_validation(self, small_model):
        with pytest.raises(ValueError):
            estimate_temperature_range(small_model, p_start=0.5, p_end=0.9)


class TestMesa:
    def test_runs_epochs_and_improves(self, small_maxcut):
        model = small_maxcut.to_ising()
        result = MesaAnnealer(model, epochs=3, seed=1).run(900)
        assert result.iterations == 900
        assert result.best_energy <= result.energy + 1e-9
        assert result.metadata["epochs"] == 3

    def test_epoch_budget_split(self, small_model):
        result = MesaAnnealer(small_model, epochs=4, seed=1).run(1002)
        assert result.iterations == 1002

    def test_validation(self, small_model):
        with pytest.raises(ValueError):
            MesaAnnealer(small_model, epochs=0)
        with pytest.raises(ValueError):
            MesaAnnealer(small_model, epoch_decay=1.5)
        with pytest.raises(ValueError):
            MesaAnnealer(small_model, epochs=5, seed=1).run(3)


class TestSolverApi:
    def test_solve_ising_methods(self, small_model):
        for method in ("insitu", "sa", "mesa"):
            result = solve_ising(small_model, method=method, iterations=300, seed=1)
            assert result.iterations == 300

    def test_unknown_method(self, small_model):
        with pytest.raises(ValueError, match="unknown method"):
            solve_ising(small_model, method="quantum")

    def test_solve_maxcut_reports_cuts(self, small_maxcut):
        result = solve_maxcut(
            small_maxcut, iterations=500, seed=1, reference_cut=50.0
        )
        assert result.best_cut >= result.cut - 1e9
        assert result.normalized_cut == pytest.approx(result.best_cut / 50.0)
        assert result.is_success(0.5) in (True, False)

    def test_solve_maxcut_without_reference(self, small_maxcut):
        result = solve_maxcut(small_maxcut, iterations=200, seed=1)
        assert result.normalized_cut is None
        assert result.is_success() is None

    def test_summaries_render(self, small_maxcut):
        result = solve_maxcut(small_maxcut, iterations=200, seed=1, reference_cut=50.0)
        assert "best cut" in result.summary()
        assert "iterations" in result.anneal.summary()
