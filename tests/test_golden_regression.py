"""Golden regression tests: pinned fixed-seed end-to-end solver results.

These pin the exact best-energy / best-cut outputs of all three solver
families on a small bundled G-set instance (``tests/data/golden_g60.gset``,
60 nodes / 180 ±1-weighted edges) and on a fixed dyadic-coupling Ising
model.  ±1 weights make ``J = W/4`` exactly representable, so every value
below is bit-exact and backend-independent — a future refactor that
changes *any* of them has silently changed solver behaviour (RNG
consumption order, acceptance rule, schedule, field caching, …) and must
update these goldens deliberately.  The bit-packed popcount backend is
parametrized alongside dense/sparse wherever the instance is
packed-eligible: its trajectories must pin the identical values.

Pinned with numpy 2.x / seed repo state; values are arithmetic-exact, not
platform-float-luck, because all sums involved are dyadic rationals.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core import solve_ising, solve_maxcut
from repro.ising import IsingModel, parse_gset
from repro.utils.rng import ensure_rng

GOLDEN_GSET = Path(__file__).parent / "data" / "golden_g60.gset"

#: method -> (best_cut, best_energy, accepted) at iterations=1600, seed=2024.
GOLDEN_MAXCUT = {
    "insitu": (46.0, -48.0, 282),
    "sa": (44.0, -46.0, 822),
    "mesa": (48.0, -50.0, 603),
}

#: method -> (best_energy, accepted) at iterations=1200, seed=7.
GOLDEN_ISING = {
    "insitu": (-106.375, 177),
    "sa": (-101.125, 633),
    "mesa": (-94.875, 484),
}


@pytest.fixture(scope="module")
def golden_problem():
    problem = parse_gset(GOLDEN_GSET, name="golden-g60")
    assert problem.num_nodes == 60
    assert problem.num_edges == 180
    assert problem.total_weight == -4.0
    return problem


def golden_ising_model() -> IsingModel:
    """The fixed 40-spin dyadic-coupling model with fields."""
    rng = ensure_rng(99)
    n = 40
    values = rng.integers(-8, 9, size=(n, n)) / 8.0
    upper = np.triu(values * (rng.random((n, n)) < 0.25), k=1)
    h = rng.integers(-8, 9, size=n) / 8.0
    return IsingModel(upper + upper.T, h, name="golden-ising-40")


class TestMaxCutGoldens:
    @pytest.mark.parametrize("method", sorted(GOLDEN_MAXCUT))
    @pytest.mark.parametrize("backend", ["dense", "sparse", "packed"])
    def test_pinned_best_cut(self, golden_problem, method, backend):
        cut, energy, accepted = GOLDEN_MAXCUT[method]
        result = solve_maxcut(
            golden_problem,
            method=method,
            iterations=1600,
            seed=2024,
            backend=backend,
        )
        assert result.best_cut == cut
        assert result.anneal.best_energy == energy
        assert result.anneal.accepted == accepted
        # the reported configuration must reproduce the reported cut
        assert golden_problem.cut_value(result.anneal.best_sigma) == cut


class TestTiledMachineGoldens:
    """Pinned tiled-crossbar machine run on the bundled golden instance.

    The hardware-in-the-loop path (``tile_size=`` routes through
    :class:`~repro.arch.cim_annealer.InSituCimAnnealer`) with ±1 weights:
    ``J = W/4`` is dyadic and 4-bit quantization stores it exactly, so the
    run is bit-exact, tile-size-invariant, and identical to the monolithic
    machine.
    """

    GOLDEN_TILED = (46.0, -48.0, 173)  # (best_cut, best_energy, accepted)

    @pytest.mark.parametrize("tile_size", [16, 25])
    def test_pinned_tiled_machine_run(self, golden_problem, tile_size):
        cut, energy, accepted = self.GOLDEN_TILED
        result = solve_maxcut(
            golden_problem,
            iterations=1600,
            seed=2024,
            backend="sparse",
            tile_size=tile_size,
        )
        assert result.best_cut == cut
        assert result.anneal.best_energy == energy
        assert result.anneal.accepted == accepted
        assert golden_problem.cut_value(result.anneal.best_sigma) == cut

    def test_tiled_equals_monolithic_machine(self, golden_problem):
        from repro.arch import InSituCimAnnealer

        mono = InSituCimAnnealer(
            golden_problem.to_ising(backend="dense"), seed=2024
        ).run(1600)
        cut, energy, accepted = self.GOLDEN_TILED
        assert mono.anneal.best_energy == energy
        assert mono.anneal.accepted == accepted

    #: tile_size -> (winning strategy, active tiles) of the ``auto``
    #: scorer on the golden instance.  ``auto`` now races RCM against the
    #: multilevel min-cut partition by exact active-tile count; both
    #: passes are deterministic, so the winner — and its exact tile count
    #: — is a pinnable value.  At tile 16 RCM's band (14 tiles) beats the
    #: partition layout (16) and the identity (16); at tile 25 nothing
    #: strictly beats the identity's 9 tiles and auto keeps it.
    GOLDEN_AUTO_SCORER = {16: ("rcm", 14), 25: (None, 9)}

    @pytest.mark.parametrize("tile_size", sorted(GOLDEN_AUTO_SCORER))
    def test_pinned_auto_scorer_is_deterministic(self, golden_problem, tile_size):
        from repro.core import count_active_tiles, reorder_permutation

        model = golden_problem.to_ising(backend="sparse")
        strategy, tiles = self.GOLDEN_AUTO_SCORER[tile_size]
        first = reorder_permutation(model, "auto", tile_size=tile_size)
        second = reorder_permutation(model, "auto", tile_size=tile_size)
        if strategy is None:
            assert first is None and second is None
            assert count_active_tiles(model, tile_size) == tiles
        else:
            assert first.strategy == second.strategy == strategy
            assert np.array_equal(first.forward, second.forward)
            assert first.estimated_active_tiles(tile_size) == tiles

    #: The reordered tiled machine pins the *same* values as GOLDEN_TILED:
    #: reordering is an internal layout change and ±1 weights store
    #: exactly, so the quantized image's representability story — and the
    #: whole fixed-seed trajectory — is unchanged.  Pinned separately so a
    #: regression that splits the two paths is caught by name.
    GOLDEN_TILED_REORDERED = (46.0, -48.0, 173)

    @pytest.mark.parametrize("reorder", ["rcm", "partition", "auto"])
    def test_pinned_reordered_machine_run(self, golden_problem, reorder):
        cut, energy, accepted = self.GOLDEN_TILED_REORDERED
        assert self.GOLDEN_TILED_REORDERED == self.GOLDEN_TILED
        result = solve_maxcut(
            golden_problem,
            iterations=1600,
            seed=2024,
            backend="sparse",
            tile_size=16,
            reorder=reorder,
        )
        assert result.best_cut == cut
        assert result.anneal.best_energy == energy
        assert result.anneal.accepted == accepted
        assert golden_problem.cut_value(result.anneal.best_sigma) == cut


class TestReplicaBatchGoldens:
    """Pinned replica-batch runs on the bundled golden instance.

    The rank-t batch engines at R = 8 on both coupling backends: ±1
    weights make every sum dyadic, so per-replica best cuts and acceptance
    counts are bit-exact and backend-independent.  A refactor that touches
    the batch RNG stream, the rank-t proposal tensor, the batch cross-term
    or the acceptance rule changes these values and must update them
    deliberately.
    """

    #: (method, flips) -> (best_cut, per-replica best cuts, accepted).
    GOLDEN_BATCH = {
        ("insitu", 1): (
            49.0,
            [44.0, 43.0, 48.0, 48.0, 47.0, 44.0, 46.0, 49.0],
            [351, 295, 319, 312, 351, 276, 296, 291],
        ),
        ("insitu", 4): (
            44.0,
            [42.0, 41.0, 37.0, 44.0, 40.0, 40.0, 41.0, 37.0],
            [118, 131, 147, 144, 151, 157, 150, 132],
        ),
        ("sa", 1): (
            48.0,
            [46.0, 44.0, 41.0, 42.0, 41.0, 47.0, 39.0, 48.0],
            [875, 913, 900, 922, 928, 841, 950, 885],
        ),
        ("sa", 4): (
            40.0,
            [39.0, 36.0, 34.0, 40.0, 39.0, 37.0, 32.0, 39.0],
            [594, 567, 571, 554, 560, 525, 554, 595],
        ),
    }

    @pytest.mark.parametrize("method,flips", sorted(GOLDEN_BATCH))
    @pytest.mark.parametrize("backend", ["dense", "sparse", "packed"])
    def test_pinned_replica_batch(self, golden_problem, method, flips, backend):
        best_cut, cuts, accepted = self.GOLDEN_BATCH[(method, flips)]
        result = solve_maxcut(
            golden_problem,
            method=method,
            iterations=1600,
            seed=2024,
            backend=backend,
            replicas=8,
            flips_per_iteration=flips,
        )
        assert result.best_cut == best_cut
        assert result.best_cuts.tolist() == cuts
        assert result.anneal.accepted.tolist() == accepted
        # the reported best configuration reproduces the reported cut
        assert golden_problem.cut_value(result.anneal.best_sigma) == best_cut


class TestSbGoldens:
    """Pinned simulated-bifurcation runs on the bundled golden instance.

    The SB engines' only non-elementwise operation is the coupling
    matvec, whose inputs under dSB are ±1 — so with the instance's dyadic
    ``J = W/4`` every sum is exact and the pinned values are bit-exact
    and backend-independent, across the dense, sparse *and* behavioral-
    tiled matvec servers.  ``accepted`` counts wall-contact steps.
    At 400 iterations SB already reaches cut 49 — past every flip
    engine's 1600-iteration golden above — which is the point of the
    family.
    """

    #: (best_cut, best_energy, accepted) at iterations=400, seed=2024.
    GOLDEN_SB = {"discrete": (49.0, -51.0, 293), "ballistic": (49.0, -51.0, 89)}

    #: dSB batch at R=8: (best_cut, per-replica best cuts, wall-contact steps).
    GOLDEN_SB_BATCH = (
        49.0,
        [47.0, 49.0, 47.0, 48.0, 49.0, 44.0, 49.0, 48.0],
        [282, 278, 289, 280, 263, 289, 270, 265],
    )

    @pytest.mark.parametrize("variant", sorted(GOLDEN_SB))
    @pytest.mark.parametrize("backend", ["dense", "sparse", "packed"])
    def test_pinned_sb_run(self, golden_problem, variant, backend):
        cut, energy, accepted = self.GOLDEN_SB[variant]
        result = solve_maxcut(
            golden_problem,
            method="sb",
            iterations=400,
            seed=2024,
            backend=backend,
            variant=variant,
        )
        assert result.best_cut == cut
        assert result.anneal.best_energy == energy
        assert result.anneal.accepted == accepted
        assert golden_problem.cut_value(result.anneal.best_sigma) == cut

    @pytest.mark.parametrize("backend", ["dense", "sparse", "packed"])
    def test_pinned_sb_replica_batch(self, golden_problem, backend):
        best_cut, cuts, accepted = self.GOLDEN_SB_BATCH
        result = solve_maxcut(
            golden_problem,
            method="sb",
            iterations=400,
            seed=2024,
            backend=backend,
            replicas=8,
        )
        assert result.best_cut == best_cut
        assert result.best_cuts.tolist() == cuts
        assert result.anneal.accepted.tolist() == accepted
        assert golden_problem.cut_value(result.anneal.best_sigma) == best_cut

    @pytest.mark.parametrize("tile_size", [16, 25])
    def test_pinned_tiled_sb_run(self, golden_problem, tile_size):
        """±1 weights store exactly, so the tiled matvec server returns
        the *same* pinned values as the software backends above."""
        cut, energy, accepted = self.GOLDEN_SB["discrete"]
        result = solve_maxcut(
            golden_problem,
            method="sb",
            iterations=400,
            seed=2024,
            backend="sparse",
            tile_size=tile_size,
        )
        assert result.best_cut == cut
        assert result.anneal.best_energy == energy
        assert result.anneal.accepted == accepted


class TestIsingGoldens:
    @pytest.mark.parametrize("method", sorted(GOLDEN_ISING))
    def test_pinned_best_energy(self, method):
        energy, accepted = GOLDEN_ISING[method]
        model = golden_ising_model()
        result = solve_ising(model, method=method, iterations=1200, seed=7)
        assert result.best_energy == energy
        assert result.accepted == accepted
        assert model.energy(result.best_sigma) == energy
