"""Sparse-aware tiled crossbar: registry, equivalence and bookkeeping tests.

The tiled machine must be a drop-in for the monolithic crossbar: identical
stored image (shared whole-matrix LSB), bit-identical behavioral increments
(dyadic couplings make every partial sum exact), a tile registry that holds
*only* nonzero blocks, and cost bookkeeping that counts logical cells — not
pad cells, not empty blocks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import CrossbarMapping, InSituCimAnnealer, TiledCrossbar
from repro.circuits import DgFefetCrossbar
from repro.core import graph_bandwidth, solve_ising, solve_maxcut
from repro.ising import IsingModel, MaxCutProblem, SparseIsingModel
from repro.utils.rng import ensure_rng

relaxed = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def block_sparse_model(seed: int, n: int = 48, tile: int = 16) -> SparseIsingModel:
    """A model whose nonzeros live in a few chosen blocks, quantizing exactly.

    Roughly half of the block grid stays structurally empty, so tiled
    evaluations exercise both the registry hit and miss paths.  Couplings
    are multiples of 1/16 with the peak pinned to 15/16, so the 4-bit LSB
    is exactly 1/16 and the stored image — hence every behavioral partial
    sum — is exactly representable: tiled-vs-monolithic assertions are
    bit-for-bit, matching the dyadic-exactness contract of the solver
    backends.
    """
    rng = ensure_rng(seed)
    grid = -(-n // tile)
    rows, cols, vals = [], [], []
    seen = set()
    for bi in range(grid):
        for bj in range(bi, grid):
            if rng.random() < 0.5:
                continue  # structurally empty block pair
            for _ in range(int(rng.integers(1, 6))):
                r = int(rng.integers(bi * tile, min((bi + 1) * tile, n)))
                c = int(rng.integers(bj * tile, min((bj + 1) * tile, n)))
                if r == c:
                    continue
                key = (min(r, c), max(r, c))
                if key in seen:
                    continue
                seen.add(key)
                rows.append(key[0])
                cols.append(key[1])
                vals.append(int(rng.integers(-15, 16)) / 16.0 or 0.0625)
    if not rows:  # degenerate draw: pin one coupling so the model is nonempty
        rows, cols, vals = [0], [1], [0.25]
    vals[0] = 15.0 / 16.0  # pin the peak so the quantizer LSB is exactly 1/16
    return SparseIsingModel.from_edges(n, rows, cols, vals, name=f"blocky-{seed}")


class TestBlockPartition:
    @relaxed
    @given(seed=st.integers(0, 10_000), tile=st.sampled_from([4, 7, 16]))
    def test_blocks_reassemble_exactly(self, seed, tile):
        model = block_sparse_model(seed)
        n = model.num_spins
        J = model.toarray()  # repro-lint: disable=RPL001 (tiny reassembly oracle)
        rebuilt = np.zeros_like(J)
        for (bi, bj), (lr, lc, vals) in model.block_partition(tile).items():
            assert lr.size > 0  # only nonzero blocks appear
            assert np.all((0 <= lr) & (lr < tile))
            assert np.all((0 <= lc) & (lc < tile))
            rebuilt[bi * tile + lr, bj * tile + lc] = vals
        assert np.array_equal(rebuilt, J)
        assert n  # sanity: the model is non-degenerate

    def test_empty_model_has_no_blocks(self):
        model = SparseIsingModel.from_dense(np.zeros((6, 6)))
        assert model.block_partition(4) == {}

    def test_max_abs_entry_matches_dense(self):
        model = block_sparse_model(3)
        # repro-lint: disable=RPL001 (dense oracle for the exact max)
        assert model.max_abs_entry() == float(np.max(np.abs(model.toarray())))


class TestTileRegistry:
    def test_empty_blocks_hold_no_tile(self):
        model = block_sparse_model(7)
        tiled = TiledCrossbar(model, tile_size=16, seed=0)
        occupied = set(model.block_partition(16))
        # registry is exactly the nonzero block set
        for bi in range(tiled.grid):
            for bj in range(tiled.grid):
                tile = tiled.tile_at(bi, bj)
                assert (tile is not None) == ((bi, bj) in occupied)
        assert tiled.num_tiles == len(occupied) < tiled.grid_tiles
        assert 0.0 < tiled.occupancy < 1.0

    def test_dense_input_also_skips_empty_blocks(self):
        model = block_sparse_model(11)
        from_sparse = TiledCrossbar(model, tile_size=16, seed=0)
        from_dense = TiledCrossbar(model.toarray(), tile_size=16, seed=0)  # repro-lint: disable=RPL001
        assert from_sparse.num_tiles == from_dense.num_tiles
        assert np.array_equal(from_sparse.matrix_hat, from_dense.matrix_hat)

    def test_all_zero_matrix(self):
        tiled = TiledCrossbar(np.zeros((8, 8)), tile_size=4, seed=0)
        assert tiled.num_tiles == 0
        assert tiled.factor(0.7) == pytest.approx(1.0)
        sigma = np.ones(8)
        c = np.zeros(8)
        c[3] = -1.0
        value, stats = tiled.compute_increment(sigma, c, 0.5)
        assert value == 0.0
        assert stats.adc_conversions == 0
        summary = tiled.programming_summary()
        assert summary["cells"] == 0.0
        assert summary["tiles"] == 0.0


class TestIncrementEquivalence:
    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_tiled_matches_monolithic_bit_for_bit(self, seed):
        """Dense-input and sparse-input tiles equal the monolithic array.

        Couplings are dyadic, so the behavioral VMV partial sums are exact
        and the equality is ``==``, not approx — including proposals whose
        flipped spins land in columns whose blocks are partly or fully
        empty (the registry-miss path).
        """
        model = block_sparse_model(seed)
        n = model.num_spins
        J = model.toarray()  # repro-lint: disable=RPL001 (tiny flip oracle)
        mono = DgFefetCrossbar(J, seed=0)
        tiled_dense = TiledCrossbar(J, tile_size=16, seed=0)
        tiled_sparse = TiledCrossbar(model, tile_size=16, seed=0)
        assert np.array_equal(tiled_dense.matrix_hat, mono.matrix_hat)
        assert np.array_equal(tiled_sparse.matrix_hat, mono.matrix_hat)

        rng = ensure_rng(seed + 1)
        sigma = rng.choice([-1.0, 1.0], n)
        for trial in range(8):
            flips = rng.choice(n, size=1 + trial % 3, replace=False)
            c = np.zeros(n)
            c[flips] = -sigma[flips]
            r = sigma.copy()
            r[flips] = 0.0
            v_bg = float(rng.uniform(0.05, 0.7))
            vm, _ = mono.compute_increment(r, c, v_bg)
            vd, _ = tiled_dense.compute_increment(r, c, v_bg)
            vs, _ = tiled_sparse.compute_increment(r, c, v_bg)
            assert vd == vm
            assert vs == vm

    def test_general_float_couplings_agree_to_tolerance(self):
        """Non-representable stored images: same maths, different sum order.

        When the quantizer LSB is not a dyadic rational the per-tile
        partial sums round differently from the monolithic column sums, so
        agreement is to float tolerance — the same contract the dense and
        sparse solver backends document for arbitrary float couplings.
        """
        rng = ensure_rng(42)
        problem = MaxCutProblem.random(40, 200, seed=3)
        J = problem.to_ising().J * 1.7  # peak 0.425: non-dyadic LSB
        mono = DgFefetCrossbar(J, seed=0)
        tiled = TiledCrossbar(J, tile_size=16, seed=0)
        sigma = rng.choice([-1.0, 1.0], 40)
        for _ in range(6):
            flips = rng.choice(40, size=2, replace=False)
            c = np.zeros(40)
            c[flips] = -sigma[flips]
            r = sigma.copy()
            r[flips] = 0.0
            vm, _ = mono.compute_increment(r, c, 0.5)
            vt, _ = tiled.compute_increment(r, c, 0.5)
            assert vt == pytest.approx(vm, rel=1e-12, abs=1e-12)

    def test_flip_into_fully_empty_column_block(self):
        """A flip whose column block holds no tile senses exactly zero."""
        n, tile = 32, 8
        J = np.zeros((n, n))
        J[0, 1] = J[1, 0] = 0.25  # only block (0, 0) is occupied
        tiled = TiledCrossbar(J, tile_size=tile, seed=0)
        assert tiled.num_tiles == 1
        sigma = np.ones(n)
        c = np.zeros(n)
        c[20] = -1.0  # block 2: structurally empty
        r = sigma.copy()
        r[20] = 0.0
        value, stats = tiled.compute_increment(r, c, 0.6)
        mono_value, _ = DgFefetCrossbar(J, seed=0).compute_increment(r, c, 0.6)
        assert value == mono_value == 0.0
        assert stats.adc_conversions == 0  # no tile was activated


class TestSharedLsb:
    def test_tiles_quantize_on_the_whole_matrix_scale(self):
        """A block whose local max is below the global max still matches.

        Per-tile LSBs would requantize such a block on a finer grid and the
        assembled image would differ from the monolithic crossbar; the
        shared LSB keeps them identical.
        """
        n = 32
        J = np.zeros((n, n))
        J[0, 1] = J[1, 0] = 1.0     # block (0, 0): global peak
        J[0, 20] = J[20, 0] = 0.3   # block (0, 2)/(2, 0): smaller local max
        mono = DgFefetCrossbar(J, seed=0)
        tiled = TiledCrossbar(J, tile_size=8, seed=0)
        assert tiled.lsb == mono.quantized.lsb
        assert np.array_equal(tiled.matrix_hat, mono.matrix_hat)
        sparse = TiledCrossbar(SparseIsingModel.from_dense(J), tile_size=8, seed=0)
        assert sparse.lsb == mono.quantized.lsb
        assert np.array_equal(sparse.matrix_hat, mono.matrix_hat)


class TestProgrammingSummary:
    def test_counts_logical_cells_not_pads(self):
        """Edge tiles are padded to tile_size; pads must not be counted."""
        n, tile, bits = 10, 8, 4
        model = MaxCutProblem.random(n, 30, seed=4).to_ising()
        tiled = TiledCrossbar(model.J, tile_size=tile, bits=bits, seed=0)
        expected_cells = 0.0
        for bi in range(tiled.grid):
            for bj in range(tiled.grid):
                if tiled.tile_at(bi, bj) is None:
                    continue
                r = min((bi + 1) * tile, n) - bi * tile
                c = min((bj + 1) * tile, n) - bj * tile
                expected_cells += 2 * bits * r * c
        summary = tiled.programming_summary()
        assert summary["cells"] == expected_cells
        assert summary["write_pulses"] == expected_cells
        # a fully occupied grid covers exactly the monolithic cell count
        if tiled.num_tiles == tiled.grid_tiles:
            mono = DgFefetCrossbar(model.J, bits=bits, seed=0)
            assert summary["cells"] == mono.programming_summary()["cells"]
            assert (
                summary["programmed_ones"]
                == mono.programming_summary()["programmed_ones"]
            )

    def test_empty_blocks_add_nothing(self):
        model = block_sparse_model(5)
        tiled = TiledCrossbar(model, tile_size=16, seed=0)
        summary = tiled.programming_summary()
        assert summary["tiles"] == tiled.num_tiles
        assert summary["grid_tiles"] == tiled.grid_tiles
        assert summary["cells"] == 2 * tiled.bits * 16 * 16 * tiled.num_tiles
        # ones equal the monolithic image's programmed cells regardless
        mono = DgFefetCrossbar(model.toarray(), seed=0)  # repro-lint: disable=RPL001
        assert summary["programmed_ones"] == (
            mono.programming_summary()["programmed_ones"]
        )


class TestStoredModelAndMapping:
    def test_stored_model_equals_assembled_image(self):
        model = block_sparse_model(9)
        tiled = TiledCrossbar(model, tile_size=16, seed=0)
        stored = tiled.stored_model(offset=1.5, name="img")
        assert stored.offset == 1.5
        # repro-lint: disable=RPL001 (stored-image equivalence check)
        assert np.array_equal(stored.toarray(), tiled.matrix_hat)

    def test_machine_uses_sparse_hw_model_and_tile_mapping(self):
        model = block_sparse_model(13)
        machine = InSituCimAnnealer(model, tile_size=16, seed=0)
        assert isinstance(machine.hw_model, SparseIsingModel)
        assert machine.mapping == CrossbarMapping.for_tiled(
            machine.crossbar, machine.config.adc.mux_ratio,
            ordering="identity", bandwidth=graph_bandwidth(model),
        )
        assert machine.mapping.num_spins == 16  # per-tile geometry
        assert machine.mapping.planes == machine.crossbar.planes
        # The mapping summary reports the layout next to the geometry.
        summary = machine.mapping.summary()
        assert summary["ordering"] == "identity"
        assert summary["bandwidth"] == graph_bandwidth(model)


class TestMachineEquivalence:
    def test_tiled_machine_bit_identical_to_monolithic(self):
        """Same seed, same instance: tiled and monolithic runs coincide."""
        problem = MaxCutProblem.random(40, 200, seed=2)
        model = problem.to_ising()
        mono = InSituCimAnnealer(model, seed=1).run(400)
        tiled = InSituCimAnnealer(
            SparseIsingModel.from_ising(model), tile_size=16, seed=1
        ).run(400)
        assert tiled.anneal.best_energy == mono.anneal.best_energy
        assert tiled.anneal.energy == mono.anneal.energy
        assert tiled.anneal.accepted == mono.anneal.accepted
        assert np.array_equal(tiled.anneal.best_sigma, mono.anneal.best_sigma)
        assert np.array_equal(tiled.anneal.sigma, mono.anneal.sigma)

    def test_dense_input_machine_still_works(self):
        problem = MaxCutProblem.random(30, 120, seed=5)
        machine = InSituCimAnnealer(problem.to_ising(), tile_size=12, seed=1)
        assert isinstance(machine.hw_model, IsingModel)
        result = machine.run(300)
        check = machine.hw_model.energy(result.anneal.best_sigma)
        assert check == pytest.approx(result.anneal.best_energy, abs=1e-9)


class TestSolveApiRouting:
    def test_solve_maxcut_tiled_matches_machine(self):
        problem = MaxCutProblem.random(40, 200, seed=2)
        via_api = solve_maxcut(
            problem, iterations=300, seed=3, backend="sparse", tile_size=16
        )
        machine = InSituCimAnnealer(
            problem.to_ising(backend="sparse"), tile_size=16, seed=3
        )
        direct = machine.run(300)
        assert via_api.anneal.best_energy == direct.anneal.best_energy
        assert via_api.anneal.accepted == direct.anneal.accepted

    def test_fielded_model_folds_and_strips_ancilla(self):
        rng = ensure_rng(5)
        n = 16
        vals = rng.integers(-4, 5, size=(n, n)) / 4.0
        upper = np.triu(vals * (rng.random((n, n)) < 0.4), k=1)
        h = rng.integers(-4, 5, size=n) / 4.0
        model = IsingModel(upper + upper.T, h)
        result = solve_ising(model, iterations=200, seed=2, tile_size=8)
        assert result.sigma.shape == (n,)
        assert result.best_sigma.shape == (n,)
        assert np.all(np.isin(result.best_sigma, (-1, 1)))

    def test_crossbar_backend_reaches_the_tiled_machine(self):
        """`backend` names the coupling backend on the solve API, so the
        machine's simulation backend travels as `crossbar_backend`."""
        problem = MaxCutProblem.random(10, 20, seed=6)
        result = solve_maxcut(
            problem, iterations=30, seed=1, backend="sparse",
            tile_size=4, crossbar_backend="device",
        )
        assert result.anneal.iterations == 30

    def test_tile_size_validation(self):
        model = IsingModel.random(12, seed=1)
        with pytest.raises(ValueError, match="tile_size must be >= 2"):
            solve_ising(model, iterations=10, tile_size=1)
        with pytest.raises(ValueError, match="tile_size must be an integer"):
            solve_ising(model, iterations=10, tile_size=True)
        with pytest.raises(ValueError, match="method='insitu'"):
            solve_ising(model, iterations=10, tile_size=8, method="sa")

    def test_tiled_crossbar_validation(self):
        with pytest.raises(ValueError, match="square"):
            TiledCrossbar(np.zeros((4, 5)), tile_size=2)
        with pytest.raises(ValueError, match="tile_size"):
            TiledCrossbar(np.zeros((4, 4)), tile_size=1)
