"""Block-diagonal union: geometry, packing eligibility, and bit-identity.

The contract under test is the serving layer's foundation: stacking k
independent models into one block-diagonal union, advancing all of them
with ONE batch engine run (``run_stacked``), and slicing per-job results
back out must equal k independent ``solve_ising`` calls with the
corresponding RNG streams — bit-for-bit, never approximately.  The
hypothesis harness sweeps member backends (dense/sparse/packed, mixed
within one stack), external fields on a subset of members, both packable
methods, and flip ranks t ∈ {1, 4}.

Couplings are dyadic (±1/4) throughout: that is the usual backend
transparency contract — dense members run BLAS/einsum kernels solo while
the union always runs sparse/packed scatter kernels, and the two
summation orders only coincide exactly on exactly-representable values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BLOCK_ALIGN,
    compile_lane,
    run_stacked,
    solve_ising,
    stack_models,
)
from repro.ising import PackedIsingModel, SparseIsingModel
from repro.utils.rng import ensure_rng

relaxed = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_member(n, seed, backend="sparse", with_fields=False, offset=0.0):
    """A dyadic-coupling member model on the requested backend."""
    base = SparseIsingModel.random(n, degree=4.0, seed=seed)
    indptr, indices, data = base.csr_arrays()
    data = np.sign(data) * 0.25
    fields = None
    if with_fields:
        rng = ensure_rng(seed + 977)
        fields = np.sign(rng.normal(size=n)) * 0.5
    if backend == "packed":
        return PackedIsingModel(
            indptr, indices, data, fields, offset, f"packed-{n}-{seed}"
        )
    sparse = SparseIsingModel(
        indptr, indices, data, fields, offset, f"sparse-{n}-{seed}"
    )
    if backend == "dense":
        return sparse.to_dense()
    return sparse


def assert_bit_identical(solo, served, label):
    assert np.array_equal(solo.best_energies, served.best_energies), label
    assert np.array_equal(solo.best_sigmas, served.best_sigmas), label
    assert np.array_equal(solo.final_energies, served.final_energies), label
    assert np.array_equal(solo.final_sigmas, served.final_sigmas), label
    assert np.array_equal(solo.accepted, served.accepted), label
    assert solo.iterations == served.iterations, label


@relaxed
@given(
    data=st.data(),
    k=st.integers(min_value=2, max_value=4),
    method=st.sampled_from(["insitu", "sa"]),
    flips=st.sampled_from([1, 4]),
    replicas=st.sampled_from([1, 3]),
)
def test_stacked_run_bit_identical_to_solo_solves(
    data, k, method, flips, replicas
):
    members = []
    for j in range(k):
        n = data.draw(st.integers(min_value=5, max_value=12), label=f"n{j}")
        backend = data.draw(
            st.sampled_from(["dense", "sparse", "packed"]), label=f"b{j}"
        )
        with_fields = data.draw(st.booleans(), label=f"h{j}")
        members.append(
            make_member(
                n, seed=13 * j + 5, backend=backend,
                with_fields=with_fields, offset=0.5 * j,
            )
        )
    iterations = 30
    seeds = [1000 + 7 * j for j in range(k)]
    lanes = [
        compile_lane(
            m, method=method, iterations=iterations, replicas=replicas,
            flips_per_iteration=flips, seed=s,
        )
        for m, s in zip(members, seeds)
    ]
    served = run_stacked(lanes)
    for m, s, r in zip(members, seeds, served):
        solo = solve_ising(
            m, method=method, iterations=iterations, seed=s,
            replicas=replicas, flips_per_iteration=flips,
        )
        assert_bit_identical(solo, r, f"{m.name} method={method} t={flips}")


def test_stack_geometry_pads_to_block_align():
    members = [make_member(n, seed=n) for n in (5, 70, 64)]
    stack = stack_models(members)
    blocks = stack.blocks
    assert [b.start for b in blocks] == [0, BLOCK_ALIGN, 3 * BLOCK_ALIGN]
    assert [b.stop - b.start for b in blocks] == [5, 70, 64]
    assert all(b.padded_stop % BLOCK_ALIGN == 0 for b in blocks)
    assert stack.model.num_spins == blocks[-1].padded_stop
    # Couplings land inside their own block: every CSR row's neighbours
    # stay within the owning member's [start, stop) range.
    indptr, indices, _ = stack.model.csr_arrays()
    for b in blocks:
        lo, hi = indptr[b.start], indptr[b.stop]
        assert np.all(indices[lo:hi] >= b.start)
        assert np.all(indices[lo:hi] < b.stop)
    # Padding rows carry no couplings at all.
    for b in blocks:
        assert indptr[b.stop] == indptr[b.padded_stop]


def test_stack_promotes_to_packed_only_on_shared_scale():
    packed = [make_member(n, seed=n, backend="packed") for n in (9, 17)]
    assert isinstance(stack_models(packed).model, PackedIsingModel)
    # A sparse member (no packed eligibility claim) blocks promotion.
    mixed = [packed[0], make_member(11, seed=3, backend="sparse")]
    stacked = stack_models(mixed)
    assert not isinstance(stacked.model, PackedIsingModel)
    # Different dyadic magnitudes cannot share one packed union.
    other = SparseIsingModel.random(8, degree=4.0, seed=21)
    indptr, indices, dat = other.csr_arrays()
    half = PackedIsingModel(indptr, indices, np.sign(dat) * 0.5)
    assert not isinstance(
        stack_models([packed[0], half]).model, PackedIsingModel
    )


def test_stack_concatenates_fields_with_zero_padding():
    with_h = make_member(6, seed=1, with_fields=True)
    without_h = make_member(7, seed=2, with_fields=False)
    stack = stack_models([with_h, without_h])
    assert stack.model.has_fields
    h = stack.model.h
    b0, b1 = stack.blocks
    assert np.array_equal(h[b0.start:b0.stop], with_h.h)
    assert np.all(h[b0.stop:] == 0.0)
    # No member with fields -> the union carries none either.
    assert not stack_models([without_h]).model.has_fields


def test_run_stacked_rejects_mismatched_lanes():
    m = make_member(8, seed=4)
    lane_a = compile_lane(m, method="sa", iterations=10, seed=0)
    lane_b = compile_lane(m, method="sa", iterations=20, seed=0)
    with pytest.raises(ValueError, match="stacked lanes must share"):
        run_stacked([lane_a, lane_b])
    with pytest.raises(ValueError, match="at least one lane"):
        run_stacked([])


def test_compile_lane_validates_at_the_boundary():
    m = make_member(8, seed=4)
    with pytest.raises(ValueError, match="iterations"):
        compile_lane(m, iterations=0)
    with pytest.raises(ValueError, match="unknown method"):
        compile_lane(m, method="mesa")
    with pytest.raises(ValueError, match="replicas"):
        compile_lane(m, replicas=True)


def test_single_lane_stacked_run_matches_solo():
    # Degenerate stack of one: still bit-identical (the serve solo
    # fallback for warm-started jobs relies on this).
    m = make_member(10, seed=6, with_fields=True)
    lane = compile_lane(
        m, method="insitu", iterations=50, replicas=2, seed=42
    )
    solo = solve_ising(m, method="insitu", iterations=50, seed=42, replicas=2)
    assert_bit_identical(solo, run_stacked([lane])[0], "single lane")
