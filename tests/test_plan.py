"""Compile/execute split: SolvePlan bit-identity, cache semantics, summary.

The contract under test: for exactly-representable (dyadic) couplings, a
solve routed through an explicitly compiled plan — including a plan
*reused* across runs — is bit-identical to the historical single-phase
``solve_ising`` call, across every solver family, coupling backend and
reorder mode.  On top of that: :class:`~repro.core.plan.PlanCache`
hit/miss/eviction semantics, fingerprint sensitivity (any coupling edit
or compile knob flips the key; the display name does not), the
golden-pinned ``SolvePlan.summary()`` provenance on the bundled G-set,
and the satellite boundary fix (``reorder="partition"`` without
``tile_size`` fails at the compile boundary, not deep in the layout
race).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PlanCache, compile_plan, solve_ising
from repro.core.plan import SOLVE_METHODS, _plan_fingerprint, resolve_layout
from repro.ising import IsingModel, MaxCutProblem, parse_gset
from repro.ising.packed import PackedIsingModel
from repro.ising.sparse import as_backend

GOLDEN_GSET = Path(__file__).parent / "data" / "golden_g60.gset"

relaxed = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def dyadic_model(seed: int, n: int = 24, backend: str = "dense") -> IsingModel:
    """A ±1-weighted Max-Cut Ising model (J = W/4, exactly representable)."""
    problem = MaxCutProblem.random(n, 3 * n, weighted=True, seed=seed)
    return as_backend(problem.to_ising(), backend)


def assert_results_equal(a, b) -> None:
    """Bit-exact equality of two single-run results."""
    assert a.energy == b.energy
    assert a.best_energy == b.best_energy
    assert a.accepted == b.accepted
    np.testing.assert_array_equal(a.sigma, b.sigma)
    np.testing.assert_array_equal(a.best_sigma, b.best_sigma)


def assert_batch_results_equal(a, b) -> None:
    """Bit-exact equality of two replica-batch results."""
    np.testing.assert_array_equal(a.best_energies, b.best_energies)
    np.testing.assert_array_equal(a.final_energies, b.final_energies)
    np.testing.assert_array_equal(a.best_sigmas, b.best_sigmas)
    np.testing.assert_array_equal(a.final_sigmas, b.final_sigmas)
    np.testing.assert_array_equal(a.accepted, b.accepted)


@pytest.fixture(scope="module")
def golden_problem():
    return parse_gset(GOLDEN_GSET, name="golden-g60")


# ----------------------------------------------------- bit-identity


class TestPlanBitIdentity:
    @relaxed
    @given(
        seed=st.integers(0, 2**32 - 1),
        method=st.sampled_from(sorted(SOLVE_METHODS)),
        backend=st.sampled_from(["dense", "sparse", "packed"]),
        reorder=st.sampled_from([None, "rcm", "auto"]),
    )
    def test_software_plan_reuse_matches_from_scratch(
        self, seed, method, backend, reorder
    ):
        model = dyadic_model(seed % 7, backend=backend)
        cold = solve_ising(
            model, method=method, iterations=150, seed=seed, reorder=reorder
        )
        plan = compile_plan(model, method=method, reorder=reorder)
        for _ in range(2):  # second pass exercises *warm* reuse
            warm = plan.execute(150, seed=seed)
            assert_results_equal(cold, warm)

    @relaxed
    @given(
        seed=st.integers(0, 2**32 - 1),
        method=st.sampled_from(["insitu", "sb"]),
        backend=st.sampled_from(["dense", "sparse", "packed"]),
        reorder=st.sampled_from([None, "rcm", "partition", "auto"]),
    )
    def test_tiled_plan_reuse_matches_from_scratch(
        self, seed, method, backend, reorder
    ):
        model = dyadic_model(seed % 5, backend=backend)
        cold = solve_ising(
            model, method=method, iterations=120, seed=seed,
            tile_size=8, reorder=reorder,
        )
        plan = compile_plan(model, method=method, tile_size=8, reorder=reorder)
        for _ in range(2):
            warm = plan.execute(120, seed=seed)
            assert_results_equal(cold, warm)

    @relaxed
    @given(
        seed=st.integers(0, 2**32 - 1),
        method=st.sampled_from(["insitu", "sa", "sb"]),
    )
    def test_replica_batch_plan_reuse_matches_from_scratch(self, seed, method):
        model = dyadic_model(3, backend="sparse")
        cold = solve_ising(
            model, method=method, iterations=100, seed=seed, replicas=4
        )
        plan = compile_plan(model, method=method, replicas=4)
        for _ in range(2):
            warm = plan.execute(100, seed=seed)
            assert_batch_results_equal(cold, warm)

    def test_tiled_sb_replicas_with_fields_fold_and_strip(self):
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(17)
        n = 20
        upper = np.triu(rng.integers(-4, 5, size=(n, n)) / 4.0, k=1)
        h = rng.integers(-4, 5, size=n) / 4.0
        model = IsingModel(upper + upper.T, h, name="fielded")
        cold = solve_ising(
            model, method="sb", iterations=80, seed=11,
            tile_size=8, replicas=3,
        )
        plan = compile_plan(model, method="sb", tile_size=8, replicas=3)
        assert plan.folded
        warm = plan.execute(80, seed=11)
        assert_batch_results_equal(cold, warm)
        assert warm.best_sigmas.shape == (3, n)  # ancilla stripped

    def test_fielded_model_software_fold_free(self):
        # Software paths need no fold: the engines take fields directly.
        model = IsingModel.random(12, with_fields=True, seed=7)
        plan = compile_plan(model, method="sa")
        assert not plan.folded
        cold = solve_ising(model, method="sa", iterations=200, seed=5)
        assert_results_equal(cold, plan.execute(200, seed=5))

    def test_fresh_seeds_on_one_plan_match_cold_solves(self, golden_problem):
        # The --repeat contract: one compiled plan, a seed sweep over it.
        model = golden_problem.to_ising(backend="sparse")
        plan = compile_plan(model, method="insitu", tile_size=16, reorder="auto")
        for seed in (0, 1, 2):
            cold = solve_ising(
                model, method="insitu", iterations=300, seed=seed,
                tile_size=16, reorder="auto",
            )
            assert_results_equal(cold, plan.execute(300, seed=seed))


# ----------------------------------------------------- cache semantics


class TestPlanCache:
    def test_hit_miss_and_reuse(self):
        cache = PlanCache(maxsize=4)
        model = dyadic_model(1, backend="sparse")
        first = cache.get_or_compile(model, method="sa")
        again = cache.get_or_compile(model, method="sa")
        assert again is first
        assert (cache.hits, cache.misses, cache.evictions) == (1, 1, 0)
        # A knob change is a different plan.
        other = cache.get_or_compile(model, method="insitu")
        assert other is not first
        assert cache.misses == 2
        # A byte-identical rebuild of the instance still hits.
        twin = dyadic_model(1, backend="sparse")
        assert cache.get_or_compile(twin, method="sa") is first
        assert cache.hits == 2

    def test_lru_eviction_order(self):
        cache = PlanCache(maxsize=2)
        models = [dyadic_model(s, n=12) for s in (1, 2, 3)]
        a = cache.get_or_compile(models[0], method="sa")
        cache.get_or_compile(models[1], method="sa")
        cache.get_or_compile(models[0], method="sa")  # refresh a
        cache.get_or_compile(models[2], method="sa")  # evicts models[1]
        assert cache.evictions == 1
        assert len(cache) == 2
        assert cache.get_or_compile(models[0], method="sa") is a  # still hot
        before = cache.misses
        cache.get_or_compile(models[1], method="sa")  # must recompile
        assert cache.misses == before + 1

    def test_maxsize_validated_and_stats_clear(self):
        with pytest.raises(ValueError, match="maxsize"):
            PlanCache(maxsize=0)
        cache = PlanCache()
        cache.get_or_compile(dyadic_model(4, n=12), method="sa")
        stats = cache.stats()
        assert stats["size"] == 1 and stats["misses"] == 1
        cache.clear()
        assert len(cache) == 0

    def test_cached_tiled_plan_skips_reprogramming_but_stays_exact(
        self, golden_problem
    ):
        cache = PlanCache()
        model = golden_problem.to_ising(backend="sparse")
        plan = cache.get_or_compile(model, method="insitu", tile_size=16)
        hit = cache.get_or_compile(model, method="insitu", tile_size=16)
        assert hit is plan and hit._crossbar is plan._crossbar
        cold = solve_ising(
            model, method="insitu", iterations=200, seed=9, tile_size=16
        )
        assert_results_equal(cold, hit.execute(200, seed=9))


# ----------------------------------------------------- fingerprints


class TestFingerprintSensitivity:
    def fingerprint(self, model, **knobs):
        defaults = dict(
            method="insitu", backend=None, tile_size=None, reorder=None,
            replicas=None, solver_kwargs={},
        )
        defaults.update(knobs)
        return _plan_fingerprint(model, **defaults)

    def test_model_content_drives_the_key(self):
        base = dyadic_model(1, backend="sparse")
        assert self.fingerprint(base) == self.fingerprint(
            dyadic_model(1, backend="sparse")
        )
        assert self.fingerprint(base) != self.fingerprint(
            dyadic_model(2, backend="sparse")
        )

    def test_name_is_excluded_offset_and_fields_are_not(self):
        J = np.zeros((3, 3))
        J[0, 1] = J[1, 0] = -0.25
        a = IsingModel(J, None, name="a")
        b = IsingModel(J, None, name="completely-different")
        assert a.content_fingerprint() == b.content_fingerprint()
        shifted = IsingModel(J, None, offset=1.5)
        fielded = IsingModel(J, np.array([0.5, 0.0, -0.5]))
        assert a.content_fingerprint() != shifted.content_fingerprint()
        assert a.content_fingerprint() != fielded.content_fingerprint()

    def test_backends_hash_distinctly(self):
        dense = dyadic_model(1, backend="dense")
        sparse = as_backend(dense, "sparse")
        packed = as_backend(dense, "packed")
        assert isinstance(packed, PackedIsingModel)
        prints = {
            m.content_fingerprint() for m in (dense, sparse, packed)
        }
        assert len(prints) == 3  # compiled artifacts differ per backend

    def test_every_compile_knob_flips_the_key(self):
        model = dyadic_model(1, backend="sparse")
        base = self.fingerprint(model)
        assert base != self.fingerprint(model, method="sa")
        assert base != self.fingerprint(model, backend="packed")
        assert base != self.fingerprint(model, tile_size=8)
        assert base != self.fingerprint(model, reorder="rcm")
        assert base != self.fingerprint(model, replicas=4)
        assert base != self.fingerprint(
            model, solver_kwargs={"flips_per_iteration": 2}
        )
        # reorder=None and reorder="none" are the same resolved layout.
        assert base == self.fingerprint(model, reorder="none")

    def test_packed_fingerprint_matches_contract(self):
        sparse = dyadic_model(1, backend="sparse")
        packed = as_backend(sparse, "packed")
        twin = as_backend(dyadic_model(1, backend="sparse"), "packed")
        assert packed.content_fingerprint() == twin.content_fingerprint()
        assert packed.content_fingerprint() != sparse.content_fingerprint()


# ----------------------------------------------------- summary / provenance


class TestSummary:
    def test_golden_summary_pinned(self, golden_problem):
        # Pins the auto-scorer outcome (RCM wins with 14 active tiles on
        # the 16-row grid — GOLDEN_AUTO_SCORER) plus the resolved
        # provenance fields the serving layer keys dashboards on.
        model = golden_problem.to_ising(backend="sparse")
        plan = compile_plan(
            model, method="insitu", tile_size=16, reorder="auto"
        )
        info = plan.summary()
        fingerprint = info.pop("fingerprint")
        assert len(fingerprint) == 12
        assert info == {
            "method": "insitu",
            "backend": "sparse",
            "num_spins": 60,
            "folded_fields": False,
            "reorder": "auto",
            "ordering": "rcm",
            "tile_size": 16,
            "replicas": None,
            "tiles": 14,
            "grid_tiles": 16,
            "bits": 4,
        }

    def test_summary_reports_resolved_backend(self, golden_problem):
        # solve_ising(backend=None) keeps the caller's representation;
        # solve_maxcut(backend="auto") resolves by heuristic — summary()
        # is where the resolution becomes visible.
        dense = golden_problem.to_ising(backend="dense")
        assert compile_plan(dense, method="sa").summary()["backend"] == "dense"
        promoted = compile_plan(dense, method="sa", backend="packed")
        assert promoted.summary()["backend"] == "packed"
        assert promoted.requested_backend == "packed"

    def test_software_summary_has_no_tile_fields(self):
        info = compile_plan(dyadic_model(1), method="sa").summary()
        assert "tiles" not in info
        assert info["ordering"] == "identity"
        assert info["tile_size"] is None


# ----------------------------------------------------- boundary validation


class TestBoundaries:
    def test_partition_without_tile_size_fails_at_the_boundary(self):
        model = dyadic_model(1)
        with pytest.raises(ValueError) as exc:
            solve_ising(model, method="sa", iterations=10, reorder="partition")
        # The satellite fix: the error names *both* knobs and the remedy,
        # instead of failing deep inside reorder_permutation.
        assert "tile_size" in str(exc.value)
        assert "partition" in str(exc.value)
        with pytest.raises(ValueError, match="tile_size"):
            compile_plan(model, method="sa", reorder="partition")

    def test_execute_validates_iterations(self):
        plan = compile_plan(dyadic_model(1), method="sa")
        with pytest.raises(ValueError, match="iterations"):
            plan.execute(0)
        with pytest.raises(ValueError, match="iterations"):
            plan.execute(True)

    def test_compile_rejects_legacy_misuse_identically(self):
        model = dyadic_model(1)
        with pytest.raises(ValueError, match="method"):
            compile_plan(model, method="quantum")
        with pytest.raises(ValueError, match="replicas"):
            compile_plan(model, method="mesa", replicas=4)
        with pytest.raises(ValueError, match="tile_size"):
            compile_plan(model, method="mesa", tile_size=8)
        with pytest.raises(ValueError, match="not both"):
            compile_plan(
                model, method="insitu", tile_size=8, reorder="rcm",
                permutation=np.arange(model.num_spins),
            )

    def test_machine_program_kwarg_is_exclusive(self):
        from repro.arch.cim_annealer import InSituCimAnnealer, compile_cim_program

        model = dyadic_model(1, backend="sparse")
        program = compile_cim_program(model, tile_size=8)
        with pytest.raises(ValueError, match="program="):
            InSituCimAnnealer(model, program=program)
        with pytest.raises(ValueError, match="program="):
            InSituCimAnnealer(program=program, tile_size=8)
        with pytest.raises(ValueError, match="model is required"):
            InSituCimAnnealer()

    def test_resolve_layout_none_modes(self):
        model = dyadic_model(1, backend="sparse")
        assert resolve_layout(model, None) is None
        assert resolve_layout(model, "none") is None
        perm = resolve_layout(model, "rcm")
        assert perm is not None and perm.strategy == "rcm"


# ----------------------------------------------------- repeat-run state


class TestRepeatRunState:
    def test_machine_ledgers_identical_across_warm_executes(self, golden_problem):
        # The driver-toggle memory must reset per run: the second execute
        # on one programmed plan books exactly the costs of a cold run.
        from repro.arch.cim_annealer import InSituCimAnnealer, compile_cim_program

        model = golden_problem.to_ising(backend="sparse")
        program = compile_cim_program(model, tile_size=16)
        runs = [
            InSituCimAnnealer(program=program, seed=4).run(150)
            for _ in range(2)
        ]
        cold = InSituCimAnnealer(model, tile_size=16, seed=4).run(150)
        for warm in runs:
            assert warm.anneal.best_energy == cold.anneal.best_energy
            np.testing.assert_array_equal(
                warm.anneal.best_sigma, cold.anneal.best_sigma
            )
            assert warm.ledger.total_energy == cold.ledger.total_energy
            assert warm.ledger.total_time == cold.ledger.total_time
            assert (
                warm.ledger.entries["drivers"].energy
                == cold.ledger.entries["drivers"].energy
            )
