"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ising import IsingModel, MaxCutProblem


@pytest.fixture
def rng():
    """A deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_model():
    """A 12-spin random Ising model with fields."""
    return IsingModel.random(12, with_fields=True, seed=7)


@pytest.fixture
def small_maxcut():
    """A 20-node, 60-edge random Max-Cut instance."""
    return MaxCutProblem.random(20, 60, seed=11)


@pytest.fixture
def tiny_maxcut():
    """A 10-node instance small enough for brute force."""
    return MaxCutProblem.random(10, 20, seed=3)


def brute_force_maxcut(problem: MaxCutProblem) -> float:
    """Exhaustive optimum cut (n ≤ 16)."""
    n = problem.num_nodes
    assert n <= 16
    best = 0.0
    for bits in range(1 << (n - 1)):  # fix spin 0 by symmetry
        sigma = np.ones(n, dtype=np.int8)
        for i in range(n - 1):
            if bits >> i & 1:
                sigma[i + 1] = -1
        best = max(best, problem.cut_value(sigma))
    return best
