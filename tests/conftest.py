"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# The repo-root ``tools`` package (the repro-lint linter) is not on the
# import path by default — pytest adds tests/ and PYTHONPATH adds src/.
_REPO_ROOT = str(Path(__file__).resolve().parent.parent)
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from repro.ising import IsingModel, MaxCutProblem
from repro.utils.rng import ensure_rng


@pytest.fixture
def rng():
    """A deterministic RNG for tests."""
    return ensure_rng(12345)


@pytest.fixture
def small_model():
    """A 12-spin random Ising model with fields."""
    return IsingModel.random(12, with_fields=True, seed=7)


@pytest.fixture
def small_maxcut():
    """A 20-node, 60-edge random Max-Cut instance."""
    return MaxCutProblem.random(20, 60, seed=11)


@pytest.fixture
def tiny_maxcut():
    """A 10-node instance small enough for brute force."""
    return MaxCutProblem.random(10, 20, seed=3)


def brute_force_maxcut(problem: MaxCutProblem) -> float:
    """Exhaustive optimum cut (n ≤ 16)."""
    n = problem.num_nodes
    assert n <= 16
    best = 0.0
    for bits in range(1 << (n - 1)):  # fix spin 0 by symmetry
        sigma = np.ones(n, dtype=np.int8)
        for i in range(n - 1):
            if bits >> i & 1:
                sigma[i + 1] = -1
        best = max(best, problem.cut_value(sigma))
    return best
