"""Unit and property tests for the multilevel min-cut partition subsystem.

The partitioner must produce *valid* tile-aligned partitions (exact block
sizes, bijective block-contiguous permutation), its active-tile estimate
must match what a :class:`TiledCrossbar` actually instantiates, every run
must be deterministic (the ``auto`` scorer relies on it), and on clustered
instances it must beat both the identity scatter and the bandwidth
objective.  Transparency (bit-identical solves) is pinned in
``tests/test_reorder.py`` alongside the other reordering passes; the
``reorder="auto"`` golden lives in ``tests/test_golden_regression.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import InSituCimAnnealer, TiledCrossbar
from repro.core import (
    Partitioning,
    count_active_tiles,
    partition_model,
    partition_permutation,
    rcm_permutation,
    reorder_permutation,
    solve_ising,
)
from repro.ising import IsingModel, SparseIsingModel, planted_partition_maxcut
from repro.utils.rng import ensure_rng

relaxed = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def dyadic_sparse_model(seed: int, with_fields: bool = False) -> SparseIsingModel:
    """Seeded random sparse model with exactly-representable couplings."""
    rng = ensure_rng(seed)
    n = int(rng.integers(6, 40))
    m = int(rng.integers(n, 3 * n))
    pairs = rng.choice(n * (n - 1) // 2, size=min(m, n * (n - 1) // 2), replace=False)
    rows, cols = np.triu_indices(n, k=1)
    r, c = rows[pairs], cols[pairs]
    vals = rng.integers(-8, 9, size=r.size) / 8.0
    keep = vals != 0
    h = rng.integers(-8, 9, size=n) / 8.0 if with_fields else None
    return SparseIsingModel.from_edges(
        n, r[keep], c[keep], vals[keep], h, offset=0.25, name=f"dyadic-{n}"
    )


def clustered_model(
    n: int = 3072, communities: int = 6, seed: int = 5
) -> SparseIsingModel:
    """Small planted-partition instance on the sparse backend."""
    problem, _ = planted_partition_maxcut(n, communities, seed=seed)
    model = problem.to_ising(backend="sparse")
    assert isinstance(model, SparseIsingModel)
    return model


# ----------------------------------------------------------------------
# Partition validity
# ----------------------------------------------------------------------
class TestPartitionValidity:
    @relaxed
    @given(seed=st.integers(0, 10_000), tile=st.sampled_from([2, 4, 8]))
    def test_blocks_are_tile_aligned(self, seed, tile):
        """Every block holds exactly ``tile_size`` spins (last: remainder)."""
        model = dyadic_sparse_model(seed)
        part = partition_model(model, tile)
        assert part.is_tile_aligned
        assert part.balance == 1.0
        assert part.num_blocks == -(-model.num_spins // tile)
        sizes = part.block_sizes()
        assert sizes.sum() == model.num_spins
        assert np.all(sizes[:-1] == tile)

    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_permutation_is_block_contiguous(self, seed):
        """Position ``forward[v] // tile`` is exactly v's block id."""
        model = dyadic_sparse_model(seed)
        part = partition_model(model, 4)
        perm = part.to_permutation()
        assert perm.strategy == "partition"
        assert np.array_equal(perm.forward // 4, part.assignment)

    @relaxed
    @given(seed=st.integers(0, 10_000))
    def test_estimate_matches_machine_exactly(self, seed):
        """``estimated_active_tiles`` equals ``TiledCrossbar.num_tiles``."""
        model = dyadic_sparse_model(seed)
        part = partition_model(model, 4)
        stored = model.permuted(part.to_permutation())
        assert (
            TiledCrossbar(stored, tile_size=4).num_tiles
            == part.estimated_active_tiles()
            == part.to_permutation().estimated_active_tiles(4)
        )

    def test_deterministic(self):
        """Repeated runs return the identical assignment (auto relies on it)."""
        model = clustered_model()
        a = partition_model(model, 64)
        b = partition_model(model, 64)
        assert np.array_equal(a.assignment, b.assignment)
        assert a.edge_cut == b.edge_cut

    def test_edge_cut_matches_direct_count(self):
        model = dyadic_sparse_model(42)
        part = partition_model(model, 4)
        indptr, indices, data = model.csr_arrays()
        rows = np.repeat(np.arange(model.num_spins), np.diff(indptr))
        a = part.assignment
        off = rows != indices
        direct = float(
            np.abs(data[off][a[rows[off]] != a[indices[off]]]).sum() / 2.0
        )
        assert part.edge_cut == direct

    def test_single_block_is_trivial(self):
        model = dyadic_sparse_model(7)
        part = partition_model(model, model.num_spins + 5)
        assert part.num_blocks == 1
        assert np.all(part.assignment == 0)
        assert part.edge_cut == 0.0
        assert part.to_permutation().is_identity

    def test_edgeless_model_partitions_cleanly(self):
        model = SparseIsingModel.from_edges(10, [0], [1], [0.0])  # dropped zero
        part = partition_model(model, 4)
        assert part.is_tile_aligned
        assert part.edge_cut == 0.0

    def test_dense_model_accepted(self):
        sparse = dyadic_sparse_model(11)
        dense = sparse.to_dense()
        assert isinstance(dense, IsingModel)
        assert np.array_equal(
            partition_model(dense, 4).assignment,
            partition_model(sparse, 4).assignment,
        )


# ----------------------------------------------------------------------
# Layout quality on clustered instances
# ----------------------------------------------------------------------
class TestClusteredQuality:
    def test_partition_beats_rcm_and_identity(self):
        """On an SBM, min-cut blocks beat both bandwidth and the scatter."""
        model = clustered_model()
        tile = 64
        part_tiles = partition_permutation(model, tile).estimated_active_tiles(tile)
        rcm_tiles = rcm_permutation(model).estimated_active_tiles(tile)
        identity_tiles = count_active_tiles(model, tile)
        assert part_tiles * 2 <= rcm_tiles
        assert part_tiles * 2 <= identity_tiles

    def test_auto_prefers_partition_on_clustered_instance(self):
        model = clustered_model()
        perm = reorder_permutation(model, "auto", tile_size=64)
        assert perm is not None
        assert perm.strategy == "partition"

    def test_machine_reports_partition_ordering(self):
        model = clustered_model(1024, 4, seed=9)
        machine = InSituCimAnnealer(
            model, tile_size=64, reorder="partition", seed=0
        )
        assert machine.permutation is not None
        assert machine.mapping.ordering == "partition"
        assert machine.crossbar.num_tiles == (
            machine.permutation.estimated_active_tiles(64)
        )


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestPartitionValidation:
    def test_partition_requires_tile_size(self):
        model = dyadic_sparse_model(1)
        with pytest.raises(ValueError, match="tile_size"):
            reorder_permutation(model, "partition")
        with pytest.raises(ValueError, match="tile_size"):
            InSituCimAnnealer(model, reorder="partition", seed=0)
        with pytest.raises(ValueError, match="tile_size"):
            solve_ising(model, iterations=10, reorder="partition")

    @pytest.mark.parametrize("bad", [True, False, 0, -3, 2.5])
    def test_tile_size_validated_everywhere(self, bad):
        """``check_count`` guards every tile_size entry point.

        Booleans (``True`` would silently mean 1) and non-positive or
        fractional counts must fail loudly in the partitioner, the
        estimators, and the CSR block extraction alike.
        """
        model = dyadic_sparse_model(2)
        perm = rcm_permutation(model)
        for call in (
            lambda: partition_model(model, bad),
            lambda: partition_permutation(model, bad),
            lambda: perm.estimated_active_tiles(bad),
            lambda: count_active_tiles(model, bad),
            lambda: model.block_partition(bad),
            lambda: reorder_permutation(model, "auto", tile_size=bad),
            lambda: Partitioning(np.zeros(4, dtype=np.intp), bad, 0.0),
        ):
            with pytest.raises(ValueError, match="tile_size"):
                call()

    def test_misaligned_partitioning_rejects_permutation_export(self):
        bad = Partitioning(np.array([0, 0, 0, 1]), 2, edge_cut=0.0)
        assert not bad.is_tile_aligned
        with pytest.raises(ValueError, match="not tile-aligned"):
            bad.to_permutation()

    def test_assignment_range_checked(self):
        with pytest.raises(ValueError, match="block ids"):
            Partitioning(np.array([0, 5, 0, 1]), 2, edge_cut=0.0)

    def test_generator_requires_divisible_communities(self):
        with pytest.raises(ValueError, match="equal communities"):
            planted_partition_maxcut(100, 7)

    def test_generator_rejects_bad_probabilities(self):
        with pytest.raises(ValueError, match="hub_bias"):
            planted_partition_maxcut(100, 4, hub_bias=1.5)
        with pytest.raises(ValueError, match="hub_fraction"):
            planted_partition_maxcut(100, 4, hub_fraction=-0.1)
