"""Tests for metrics, reference cuts, runners and report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    PAPER_ENERGY_REDUCTIONS,
    PAPER_TIME_REDUCTIONS,
    RunStatistics,
    compute_reference_cut,
    cost_to_solution,
    exact_bipartite_optimum,
    hardware_table,
    instance_fingerprint,
    is_success,
    iterations_to_target,
    normalized_cut,
    quality_table,
    reduction_ratios,
    reference_cut,
    run_hardware_experiment,
    run_quality_experiment,
    success_rate,
    table1,
)
from repro.ising import MaxCutProblem, generate_toroidal
from repro.ising.gset import GsetSpec


class TestMetrics:
    def test_normalized_and_success(self):
        assert normalized_cut(90, 100) == pytest.approx(0.9)
        assert is_success(90, 100)
        assert not is_success(89.9, 100)
        with pytest.raises(ValueError):
            normalized_cut(1, 0)

    def test_success_rate(self):
        assert success_rate([95, 80, 91], 100) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            success_rate([], 100)

    def test_run_statistics(self):
        s = RunStatistics.from_values([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.count == 3
        with pytest.raises(ValueError):
            RunStatistics.from_values([])

    def test_iterations_to_target(self):
        trace = np.array([5.0, 4.0, 3.0, 3.0, 1.0])
        assert iterations_to_target(trace, 3.0) == 2
        assert iterations_to_target(trace, 0.5) is None

    def test_cost_to_solution(self):
        best = np.array([5.0, 3.0, 1.0])
        cost = np.array([10.0, 20.0, 30.0])
        assert cost_to_solution(best, cost, 3.0) == 20.0
        assert cost_to_solution(best, cost, 0.0) is None
        with pytest.raises(ValueError):
            cost_to_solution(best, cost[:-1], 1.0)


class TestReference:
    def test_bipartite_closed_form(self):
        torus = generate_toroidal(4, 4, seed=1)
        assert exact_bipartite_optimum(torus) == pytest.approx(32.0)

    def test_bipartite_closed_form_rejects_negative_weights(self):
        torus = generate_toroidal(4, 4, weighted=True, seed=1)
        if np.any(torus.weight_array < 0):
            assert exact_bipartite_optimum(torus) is None

    def test_non_bipartite_returns_none(self):
        triangle = MaxCutProblem(3, np.array([[0, 1], [1, 2], [0, 2]]))
        assert exact_bipartite_optimum(triangle) is None

    def test_compute_reference_small(self):
        p = MaxCutProblem.random(12, 30, seed=5)
        ref = compute_reference_cut(p, restarts=1, iterations=3000)
        from tests.conftest import brute_force_maxcut

        assert ref == pytest.approx(brute_force_maxcut(p))

    def test_fingerprint_stable_and_distinct(self):
        a = MaxCutProblem.random(10, 20, seed=1)
        b = MaxCutProblem.random(10, 20, seed=2)
        assert instance_fingerprint(a) == instance_fingerprint(a)
        assert instance_fingerprint(a) != instance_fingerprint(b)

    def test_cache_round_trip(self, tmp_path):
        p = MaxCutProblem.random(12, 30, seed=5)
        cache = tmp_path / "refs.json"
        first = reference_cut(p, cache_path=cache, restarts=1, iterations=2000)
        # second call must come from cache (same value, file exists)
        second = reference_cut(p, cache_path=cache, restarts=1, iterations=2000)
        assert cache.exists()
        assert first == second


def tiny_specs():
    return [
        GsetSpec("tiny-a", 800, "random", 3000, False, 42),
        GsetSpec("tiny-b", 800, "random", 3000, False, 43),
    ]


class TestRunners:
    def test_quality_experiment_structure(self, tmp_path):
        results = run_quality_experiment(
            tiny_specs(),
            runs_per_instance=2,
            seed=1,
            reference_cache=tmp_path / "refs.json",
        )
        assert set(results) == {800}
        group = results[800]
        assert set(group) == {"This work", "CiM/FPGA & CiM/ASIC"}
        for res in group.values():
            assert len(res.normalized_cuts) == 4  # 2 instances × 2 runs
            assert 0 <= res.success <= 1
            assert 0 < res.mean_normalized <= 1.05

    def test_hardware_experiment_and_ratios(self):
        spec = GsetSpec("tiny-hw", 800, "random", 3000, False, 44)
        # shrink the iteration budget via a subclassed spec? iterations are
        # tied to node count, so just run it (700 iterations is fast).
        results = run_hardware_experiment([spec], runs_per_instance=1, seed=1)
        ratios = reduction_ratios(results)
        group = ratios[800]
        assert group["CiM/FPGA"]["energy"] > group["CiM/ASIC"]["energy"] > 1
        assert 5 < group["CiM/FPGA"]["time"] < 12

    def test_reduction_ratios_requires_reference(self):
        with pytest.raises(KeyError):
            reduction_ratios({800: {}})


class TestReport:
    def make_results(self, tmp_path):
        return run_quality_experiment(
            tiny_specs()[:1],
            runs_per_instance=1,
            seed=1,
            reference_cache=tmp_path / "refs.json",
        )

    def test_quality_table_renders(self, tmp_path):
        table = quality_table(self.make_results(tmp_path))
        assert "Fig 10" in table
        assert "This work" in table
        assert "paper 98%" in table

    def test_hardware_table_renders(self):
        spec = GsetSpec("tiny-hw2", 800, "random", 3000, False, 45)
        results = run_hardware_experiment([spec], runs_per_instance=1, seed=1)
        ratios = reduction_ratios(results)
        e_table = hardware_table(results, ratios, "energy", PAPER_ENERGY_REDUCTIONS)
        t_table = hardware_table(results, ratios, "time", PAPER_TIME_REDUCTIONS)
        assert "Fig 8a" in e_table and "Fig 9a" in t_table
        assert "732x" in e_table  # paper reference column
        with pytest.raises(ValueError):
            hardware_table(results, ratios, "power", {})

    def test_table1_renders(self):
        text = table1(
            {
                "problem_size": 3000,
                "time_to_solution": 4.6e-3,
                "energy_to_solution": 0.9e-6,
                "success_rate": 0.98,
            }
        )
        assert "This work (reproduction)" in text
        assert "O(n)" in text
        assert "HyCiM" in text
