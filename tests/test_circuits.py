"""Tests for the circuit substrate: ADC, drivers, quantizer, exponent, wires."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    BackGateDac,
    ExponentUnit,
    LineDriver,
    MatrixQuantizer,
    SarAdc,
    ShiftAddUnit,
    WireModel,
)
from repro.utils.rng import ensure_rng


class TestSarAdc:
    def test_code_monotone_in_input(self):
        adc = SarAdc(bits=8, full_scale=1e-5)
        inputs = np.linspace(0, 1e-5, 300)
        codes = adc.convert(inputs)
        assert np.all(np.diff(codes) >= 0)

    @settings(max_examples=40, deadline=None)
    @given(frac=st.floats(0.0, 1.0))
    def test_quantization_error_within_half_lsb(self, frac):
        adc = SarAdc(bits=10, full_scale=2e-5)
        x = frac * adc.full_scale
        err = abs(float(adc.quantize(x)) - x)
        assert err <= adc.lsb / 2 + 1e-18

    def test_saturation(self):
        adc = SarAdc(bits=6, full_scale=1e-6)
        assert adc.convert(5e-6) == adc.levels - 1

    def test_rejects_negative_input(self):
        with pytest.raises(ValueError):
            SarAdc().convert(-1e-6)

    def test_levels_and_lsb(self):
        adc = SarAdc(bits=4, full_scale=1.5e-6)
        assert adc.levels == 16
        assert adc.lsb == pytest.approx(1.5e-6 / 15)

    def test_validation(self):
        with pytest.raises(ValueError):
            SarAdc(bits=0)
        with pytest.raises(ValueError):
            SarAdc(full_scale=-1.0)
        with pytest.raises(ValueError):
            SarAdc(mux_ratio=0)

    def test_count_boundary_regressions(self):
        """bits=True used to pass the range check as a 1-bit ADC and
        bits=2.7 only crashed later at ``1 << bits``."""
        with pytest.raises(ValueError, match="bits must be an integer"):
            SarAdc(bits=True)
        with pytest.raises(ValueError, match="bits must be an integer"):
            SarAdc(bits=2.7)
        with pytest.raises(ValueError, match="bits must be in"):
            SarAdc(bits=25)
        with pytest.raises(ValueError, match="mux_ratio must be an integer"):
            SarAdc(mux_ratio=True)
        # integral floats normalise to int (the check_count convenience)
        assert SarAdc(bits=8.0).levels == 256


class TestDrivers:
    def test_driver_energy_scales_with_toggles(self):
        d = LineDriver()
        assert d.energy(10) == pytest.approx(10 * d.energy_per_toggle)
        assert d.energy(0) == 0.0
        with pytest.raises(ValueError):
            d.energy(-1)

    def test_driver_energy_is_cv2(self):
        d = LineDriver(capacitance=1e-15, swing=2.0)
        assert d.energy_per_toggle == pytest.approx(4e-15)

    def test_bg_dac_snap_to_grid(self):
        dac = BackGateDac()
        assert dac.snap(0.234) == pytest.approx(0.23)
        assert dac.snap(-1.0) == 0.0
        assert dac.snap(5.0) == pytest.approx(0.7)

    def test_bg_dac_level_count(self):
        assert BackGateDac().num_levels == 71

    def test_bg_dac_energy(self):
        dac = BackGateDac()
        assert dac.energy(3) == pytest.approx(3 * dac.energy_per_update)
        with pytest.raises(ValueError):
            dac.energy(-1)

    def test_bg_dac_validation(self):
        with pytest.raises(ValueError):
            BackGateDac(v_min=0.5, v_max=0.1)


class TestExponentUnit:
    def test_named_configs(self):
        fpga, asic = ExponentUnit.fpga(), ExponentUnit.asic()
        assert fpga.energy_per_eval > asic.energy_per_eval
        assert fpga.label == "fpga"
        assert asic.label == "asic"

    def test_evaluate_accurate_for_metropolis_range(self):
        unit = ExponentUnit.asic()
        xs = np.linspace(-10, 0, 30)
        out = unit.evaluate(xs)
        assert np.allclose(out, np.exp(xs), atol=2 ** -unit.fraction_bits)

    def test_output_is_quantized(self):
        unit = ExponentUnit(energy_per_eval=1e-12, time_per_eval=1e-9, fraction_bits=4)
        val = float(unit.evaluate(-0.1))
        assert val * 16 == pytest.approx(round(val * 16))

    def test_rejects_positive_arguments(self):
        with pytest.raises(ValueError):
            ExponentUnit.asic().evaluate(0.5)

    def test_count_boundary_regressions(self):
        """fraction_bits=True used to quantize to 1 fractional bit and
        2.7 only crashed later at ``1 << fraction_bits``."""
        for bad in (True, 2.7, 0, 31):
            with pytest.raises(ValueError, match="fraction_bits"):
                ExponentUnit(
                    energy_per_eval=1e-12, time_per_eval=1e-9, fraction_bits=bad
                )


class TestWireModel:
    def test_settle_time_grows_quadratically(self):
        w = WireModel()
        t100 = w.settle_time(100)
        t200 = w.settle_time(200)
        assert t200 == pytest.approx(4 * t100)

    def test_attenuation_reduces_large_currents_more(self):
        w = WireModel()
        small = w.attenuation(np.array([1e-7]), 1000).item()
        large = w.attenuation(np.array([1e-5]), 1000).item()
        assert small / 1e-7 > large / 1e-5  # relative loss grows with current

    def test_attenuation_bounded(self):
        """Loss is clipped at 20 %, so the output never collapses."""
        w = WireModel(ir_drop_coefficient=100.0)
        out = w.attenuation(np.array([1e-3]), 3000).item()
        assert out == pytest.approx(0.8e-3)

    def test_negative_cells_rejected(self):
        with pytest.raises(ValueError):
            WireModel().settle_time(-1)


class TestShiftAdd:
    def test_combine_binary_weights(self):
        sa = ShiftAddUnit()
        # codes per bit plane: b0=1, b1=2, b2=3 → 1 + 4 + 12 = 17
        assert sa.combine([1, 2, 3]) == pytest.approx(17.0)

    def test_combine_with_signs(self):
        sa = ShiftAddUnit()
        codes = np.array([[1, 1], [1, 0]])  # groups: 3 and 1
        assert sa.combine(codes, signs=[1, -1]) == pytest.approx(2.0)

    def test_combine_validates_shape(self):
        with pytest.raises(ValueError):
            ShiftAddUnit().combine(np.zeros((2, 2, 2)))

    def test_energy(self):
        sa = ShiftAddUnit()
        assert sa.energy(8) == pytest.approx(8 * sa.energy_per_code)
        with pytest.raises(ValueError):
            sa.energy(-1)


class TestMatrixQuantizer:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), bits=st.integers(2, 8))
    def test_reconstruction_error_within_half_lsb(self, seed, bits):
        rng = ensure_rng(seed)
        n = int(rng.integers(2, 12))
        A = rng.uniform(-3, 3, (n, n))
        A = (A + A.T) / 2
        q = MatrixQuantizer(bits)
        reconstructed = q.quantize(A).dequantize()
        assert np.max(np.abs(reconstructed - A)) <= q.lsb_for(A) / 2 + 1e-12

    def test_sign_planes_disjoint(self):
        rng = ensure_rng(3)
        A = rng.uniform(-1, 1, (6, 6))
        A = (A + A.T) / 2
        qm = MatrixQuantizer(4).quantize(A)
        overlap = qm.positive_planes.any(axis=0) & qm.negative_planes.any(axis=0)
        assert not overlap.any()

    def test_non_negative_matrix_has_empty_negative_plane(self):
        A = np.array([[0.0, 1.0], [1.0, 0.0]])
        qm = MatrixQuantizer(4).quantize(A)
        assert not qm.negative_planes.any()
        assert qm.num_columns == 2 * 4

    def test_zero_matrix(self):
        qm = MatrixQuantizer(4).quantize(np.zeros((3, 3)))
        assert np.all(qm.dequantize() == 0)
        assert qm.cell_count() == 0

    def test_exact_for_single_magnitude(self):
        """Unit-weight Max-Cut style matrices quantize exactly."""
        A = np.array([[0, 0.25, 0.25], [0.25, 0, 0], [0.25, 0, 0]])
        q = MatrixQuantizer(4)
        assert q.quantization_error(A) == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            MatrixQuantizer(0)
        with pytest.raises(ValueError):
            MatrixQuantizer(17)

    def test_count_boundary_regressions(self):
        """bits=2.7 used to silently truncate to a 2-bit quantizer and
        bits=True to quantize to 1 bit."""
        with pytest.raises(ValueError, match="bits must be an integer"):
            MatrixQuantizer(bits=2.7)
        with pytest.raises(ValueError, match="bits must be an integer"):
            MatrixQuantizer(bits=True)
        assert MatrixQuantizer(bits=4.0).max_level == 15
